//! The `xsynth` command-line tool: BLIF/PLA in, synthesized BLIF or cell
//! reports out. Run `xsynth` with no arguments for usage.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match xsynth::cli::parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match xsynth::cli::execute(&cmd) {
        Ok(text) => print!("{text}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
