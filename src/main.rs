//! The `xsynth` command-line tool: BLIF/PLA in, synthesized BLIF or cell
//! reports out. Run `xsynth` with no arguments for usage.
//!
//! Exit codes follow the error taxonomy in `xsynth_core::Error` — 2 usage,
//! 3 parse, 4 I/O, 5 netlist, 6 input mismatch, 7 verification failed,
//! 8 budget exceeded.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match xsynth::cli::parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match xsynth::cli::execute(&cmd) {
        Ok(text) => print!("{text}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(err.exit_code());
        }
    }
}
