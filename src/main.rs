//! The `xsynth` command-line tool: BLIF/PLA in, synthesized BLIF or cell
//! reports out. Run `xsynth` with no arguments for usage.
//!
//! Exit codes follow the error taxonomy in `xsynth_core::Error` — 2 usage,
//! 3 parse, 4 I/O, 5 netlist, 6 input mismatch, 7 verification failed,
//! 8 budget exceeded, 9 output failed, 10 protocol violation,
//! 11 overloaded (the daemon shed the request; safe to retry).

fn main() {
    // Fault-injection builds honour `XSYNTH_FAILPOINTS`; release builds
    // compile the sites away and never read the variable.
    #[cfg(feature = "failpoints")]
    if let Err(msg) = xsynth_trace::failpoint::arm_from_env() {
        eprintln!("{msg}");
        std::process::exit(2);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match xsynth::cli::parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match xsynth::cli::execute(&cmd) {
        Ok(text) => print!("{text}"),
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(err.exit_code());
        }
    }
}
