//! # xsynth — multilevel logic synthesis for arithmetic functions
//!
//! A from-scratch Rust reproduction of *Tsai & Marek-Sadowska, "Multilevel
//! Logic Synthesis for Arithmetic Functions", DAC 1996*: synthesis of
//! multilevel networks directly from fixed-polarity Reed-Muller (FPRM)
//! forms, with GF(2) algebraic factorization and simulation-driven XOR
//! redundancy removal, plus every substrate the paper's experimental setup
//! needs (ROBDDs, OFDDs, a SIS-style SOP synthesis baseline, BLIF/PLA and
//! genlib I/O, logic/fault simulation, power estimation, technology
//! mapping, and the Table 2 benchmark suite).
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here as a module.
//!
//! # Quick start
//!
//! ```
//! use xsynth::core::{synthesize, SynthOptions};
//! use xsynth::net::{GateKind, Network};
//!
//! // specify a full adder
//! let mut spec = Network::new("full_adder");
//! let a = spec.add_input("a");
//! let b = spec.add_input("b");
//! let cin = spec.add_input("cin");
//! let sum = spec.add_gate(GateKind::Xor, vec![a, b, cin]);
//! let ab = spec.add_gate(GateKind::And, vec![a, b]);
//! let ac = spec.add_gate(GateKind::And, vec![a, cin]);
//! let bc = spec.add_gate(GateKind::And, vec![b, cin]);
//! let cout = spec.add_gate(GateKind::Or, vec![ab, ac, bc]);
//! spec.add_output("sum", sum);
//! spec.add_output("cout", cout);
//!
//! // run the paper's FPRM flow
//! let outcome = synthesize(&spec, &SynthOptions::default());
//! assert!(outcome.report.redundancy.reverted == 0);
//! for m in 0..8 {
//!     assert_eq!(outcome.network.eval_u64(m), spec.eval_u64(m));
//! }
//! // every run carries a structured trace of the pipeline phases
//! assert!(outcome.report.trace.span_names().contains("synthesize"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;

/// Boolean function substrate: truth tables, cubes, SOP covers, FPRM forms.
pub use xsynth_boolean as boolean;

/// Structured tracing and metrics (spans, counters, gauges, exporters).
pub use xsynth_trace as trace;

/// Reduced ordered binary decision diagrams.
pub use xsynth_bdd as bdd;

/// Ordered functional decision diagrams (fixed-polarity Davio expansion).
pub use xsynth_ofdd as ofdd;

/// Multilevel logic networks.
pub use xsynth_net as net;

/// BLIF / PLA / genlib readers and writers.
pub use xsynth_blif as blif;

/// Logic simulation, fault simulation and power estimation.
pub use xsynth_sim as sim;

/// SOP-based (SIS-style) synthesis baseline.
pub use xsynth_sop as sop;

/// The paper's FPRM synthesis flow (factorization + redundancy removal).
pub use xsynth_core as core;

/// Technology mapping onto standard-cell libraries.
pub use xsynth_map as map;

/// The Table 2 benchmark suite.
pub use xsynth_circuits as circuits;

/// Benchmark harness, telemetry schema, and regression comparison.
pub use xsynth_bench as bench;

/// Content-addressed synthesis result cache (structural cone hashing).
pub use xsynth_cache as cache;

/// The `xsynth serve` daemon: NDJSON protocol, scheduler, worker pool.
pub use xsynth_serve as serve;
