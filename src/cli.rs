//! Implementation of the `xsynth` command-line tool.
//!
//! The binary is a thin wrapper; everything lives here so it can be unit
//! tested. Subcommands:
//!
//! * `synth <in.blif|in.pla>` — run the FPRM flow (default) or the SOP
//!   baseline (`--method sop`), write BLIF to `-o` or stdout.
//! * `stats <in>` — print network statistics and both cost metrics.
//! * `map <in>` — synthesize and technology-map, print the cell netlist
//!   summary.
//! * `bench <circuit>` — run a built-in Table 2 benchmark by name.
//! * `verify <a> <b>` — check two networks for combinational equivalence.
//! * `serve` — run the long-lived synthesis daemon (`--tcp` and/or
//!   `--socket`), sharing one engine, substrate pool, and
//!   content-addressed result cache across all jobs.
//!
//! Every run can be resource-governed with `--bdd-node-cap`,
//! `--phase-timeout-ms` and `--max-patterns`; error families map to
//! distinct process exit codes (see [`USAGE`]).

use std::fmt::Write as _;
use std::time::Duration;
use xsynth_blif::{parse_blif, parse_pla, write_blif};
use xsynth_core::{
    phase, try_synthesize, Budget, EquivChecker, Error, FactorMethod, SynthOptions, SynthOutcome,
    SynthReport,
};
use xsynth_map::{map_network, Library};
use xsynth_net::Network;
use xsynth_sop::{script_algebraic, ScriptOptions};
use xsynth_trace::json::Value;
use xsynth_trace::Trace;

/// A parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    /// Subcommand: synth | stats | map | bench | verify.
    pub action: Action,
    /// Input path or benchmark name.
    pub input: String,
    /// Second input (the candidate) for `verify`.
    pub input2: Option<String>,
    /// Output path (`-o`), stdout when absent.
    pub output: Option<String>,
    /// Synthesis engine.
    pub engine: Engine,
    /// Skip the redundancy-removal pass.
    pub no_redundancy: bool,
    /// Disable the per-output salvage ladder: the first fault in any
    /// output's pipeline fails the whole run (exit 9) instead of being
    /// retried on a degraded rung.
    pub no_salvage: bool,
    /// Print the phase profile, counters and span tree.
    pub stats: bool,
    /// Write the run's Chrome `trace_event` JSON to this path.
    pub trace_json: Option<String>,
    /// Write a single-record benchmark telemetry suite (`BENCH_*.json`
    /// schema) for the run to this path (`synth`/`bench`/`map` only).
    pub bench_json: Option<String>,
    /// Resource budget (`--bdd-node-cap`, `--phase-timeout-ms`,
    /// `--max-patterns`); unlimited by default.
    pub budget: Budget,
    /// `serve`: TCP listen address (`--tcp`, e.g. `127.0.0.1:7171`).
    pub tcp: Option<String>,
    /// `serve`: unix-domain socket path (`--socket`).
    pub socket: Option<String>,
    /// `serve`: worker pool size (`--workers`, 0 = auto).
    pub workers: usize,
    /// `serve`: result-cache byte budget in MiB (`--cache-mb`).
    pub cache_mb: Option<usize>,
    /// `serve`: per-connection queue bound (`--queue`).
    pub per_conn_queue: Option<usize>,
    /// `serve`: daemon-wide queue bound (`--global-queue`).
    pub global_queue: Option<usize>,
    /// `serve`: partial-request-line timeout in ms (`--read-timeout-ms`).
    pub read_timeout_ms: Option<u64>,
    /// `serve`: idle-connection reap timeout in ms (`--idle-timeout-ms`).
    pub idle_timeout_ms: Option<u64>,
    /// `serve`: drain grace window in ms (`--drain-timeout-ms`).
    pub drain_timeout_ms: Option<u64>,
    /// `serve`: request-line byte cap in KiB (`--max-line-kb`).
    pub max_line_kb: Option<u64>,
    /// `serve`: run under a supervisor process so SIGTERM triggers a
    /// graceful drain instead of an abrupt exit (`--drain-on-term`).
    pub drain_on_term: bool,
    /// `top`: refresh interval in milliseconds (`--interval-ms`).
    pub interval_ms: u64,
    /// `top`: render one frame and exit (`--once`) — for scripts and CI.
    pub once: bool,
}

/// What to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Synthesize and write BLIF.
    Synth,
    /// Print statistics only.
    Stats,
    /// Synthesize, map, print the cell summary.
    Map,
    /// Run a built-in benchmark by name.
    Bench,
    /// Check two networks for combinational equivalence.
    Verify,
    /// Run the long-lived synthesis daemon.
    Serve,
    /// Poll a running daemon's `metrics`/`recent` ops and render a
    /// refreshing status table.
    Top,
}

/// Which synthesis engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The paper's FPRM flow (default).
    Fprm,
    /// The paper's FPRM flow, cube method only.
    FprmCube,
    /// The paper's FPRM flow, OFDD method only.
    FprmOfdd,
    /// The Kronecker-FDD extension.
    Kfdd,
    /// The SIS-style SOP baseline.
    Sop,
    /// No optimization (parse and re-emit).
    None,
}

/// Usage text.
pub const USAGE: &str = "\
usage: xsynth <synth|stats|map|bench|verify|serve|top> [input] [options]

  synth <in.blif|in.pla>   synthesize, write BLIF (stdout or -o FILE)
  stats <in.blif|in.pla>   print cost metrics for the input network
  map   <in.blif|in.pla>   synthesize + technology-map, print cells
                           (-o FILE writes a structural Verilog netlist)
  bench <name>             run a built-in Table 2 circuit by name
  verify <a> <b>           check two networks for equivalence
  serve                    run the synthesis daemon (newline-delimited JSON
                           over --tcp and/or --socket; one shared engine,
                           substrate pool and result cache for all jobs)
  top <addr>               live daemon dashboard: poll `metrics`/`recent`
                           and redraw (host:port = TCP, else a unix socket
                           path)

serve options:
  --tcp ADDR            listen on a TCP address (e.g. 127.0.0.1:7171)
  --socket PATH         listen on a unix-domain socket at PATH
  --workers N           worker pool size (default: sized from CPU count)
  --cache-mb N          result-cache byte budget in MiB (default 64;
                        0 disables the result cache entirely)
  --queue N             per-connection queue bound (default 64); excess
                        pipelined jobs are shed as typed `overloaded`
  --global-queue N      daemon-wide queue bound (default 1024)
  --read-timeout-ms N   reap a connection whose partial request line
                        stalls this long (slow-loris guard; default 30000)
  --idle-timeout-ms N   reap a connection idle this long (default 300000)
  --drain-timeout-ms N  grace window for queued jobs after a drain starts;
                        the rest are shed with typed errors (default 5000)
  --max-line-kb N       longest accepted request line in KiB (default 8192)
  --drain-on-term       run the daemon under a supervisor process: when
                        the supervisor dies (SIGTERM, kill), the daemon
                        drains gracefully instead of dying mid-job

top options:
  --interval-ms N       refresh interval (default 2000)
  --once                render one frame to stdout and exit

options:
  -o FILE               write output to FILE
  --method ENGINE       fprm (default) | cube | ofdd | kfdd | sop | none
  --no-redundancy       skip the XOR redundancy-removal pass
  --no-salvage          disable the per-output salvage ladder (first fault
                        in any output's pipeline is fatal)
  --stats               print per-phase timings, counters and the span tree
  --trace-json FILE     write Chrome trace_event JSON (chrome://tracing,
                        Perfetto) for the synthesis run
  --bench-json FILE     write the run's benchmark telemetry record
                        (schema-versioned BENCH_*.json, see bench_compare)
  --bdd-node-cap N      cap every BDD manager at N nodes; phases degrade
                        gracefully where possible, else exit 8
  --phase-timeout-ms N  wall-clock budget per pipeline phase; tripped
                        phases keep their best result so far
  --max-patterns N      cap every simulation pattern set at N patterns

exit codes:
  0 ok          2 usage       3 parse error      4 I/O error
  5 netlist     6 input mismatch   7 verification failed   8 budget exceeded
  9 output failed (fault not recoverable by the salvage ladder)
  10 protocol violation (serve wire message outside the contract)
  11 overloaded (daemon shed the request; safe to retry after the
     reply's retry_after_ms hint)
";

/// Parses the command line (excluding `argv[0]`).
///
/// # Errors
///
/// Returns a human-readable message for malformed invocations.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let action = match it.next().map(String::as_str) {
        Some("synth") => Action::Synth,
        Some("stats") => Action::Stats,
        Some("map") => Action::Map,
        Some("bench") => Action::Bench,
        Some("verify") => Action::Verify,
        Some("serve") => Action::Serve,
        Some("top") => Action::Top,
        Some(other) => return Err(format!("unknown subcommand '{other}'\n{USAGE}")),
        None => return Err(USAGE.to_string()),
    };
    // `serve` takes no positional input; the circuits arrive on the wire.
    // `top` reuses the slot for the daemon address.
    let input = if action == Action::Serve {
        String::new()
    } else {
        it.next()
            .ok_or_else(|| format!("missing input\n{USAGE}"))?
            .clone()
    };
    if action == Action::Bench {
        validate_bench_name(&input)?;
    }
    let input2 = if action == Action::Verify {
        Some(
            it.next()
                .ok_or_else(|| format!("verify needs two inputs\n{USAGE}"))?
                .clone(),
        )
    } else {
        None
    };
    fn number(flag: &str, value: Option<&String>) -> Result<u64, String> {
        let v = value.ok_or_else(|| format!("{flag} needs a number"))?;
        v.parse()
            .map_err(|_| format!("{flag} needs a number, got '{v}'"))
    }
    let mut output = None;
    let mut engine = Engine::Fprm;
    let mut no_redundancy = false;
    let mut no_salvage = false;
    let mut stats = false;
    let mut trace_json = None;
    let mut bench_json = None;
    let mut budget = Budget::default();
    let mut tcp = None;
    let mut socket = None;
    let mut workers = 0usize;
    let mut cache_mb = None;
    let mut per_conn_queue = None;
    let mut global_queue = None;
    let mut read_timeout_ms = None;
    let mut idle_timeout_ms = None;
    let mut drain_timeout_ms = None;
    let mut max_line_kb = None;
    let mut drain_on_term = false;
    let mut interval_ms = 2000u64;
    let mut once = false;
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" => {
                output = Some(
                    it.next()
                        .ok_or_else(|| "-o needs a file".to_string())?
                        .clone(),
                )
            }
            "--trace-json" => {
                trace_json = Some(
                    it.next()
                        .ok_or_else(|| "--trace-json needs a file".to_string())?
                        .clone(),
                )
            }
            "--bench-json" => {
                bench_json = Some(
                    it.next()
                        .ok_or_else(|| "--bench-json needs a file".to_string())?
                        .clone(),
                )
            }
            "--method" => {
                engine = match it.next().map(String::as_str) {
                    Some("fprm") => Engine::Fprm,
                    Some("cube") => Engine::FprmCube,
                    Some("ofdd") => Engine::FprmOfdd,
                    Some("kfdd") => Engine::Kfdd,
                    Some("sop") => Engine::Sop,
                    Some("none") => Engine::None,
                    other => return Err(format!("bad --method {other:?}")),
                }
            }
            "--no-redundancy" => no_redundancy = true,
            "--no-salvage" => no_salvage = true,
            "--stats" => stats = true,
            "--bdd-node-cap" => {
                budget = budget.bdd_node_cap(Some(number(a, it.next())? as usize));
            }
            "--phase-timeout-ms" => {
                budget = budget.phase_timeout(Some(Duration::from_millis(number(a, it.next())?)));
            }
            "--max-patterns" => {
                budget = budget.max_patterns(Some(number(a, it.next())? as usize));
            }
            "--tcp" if action == Action::Serve => {
                tcp = Some(
                    it.next()
                        .ok_or_else(|| "--tcp needs an address".to_string())?
                        .clone(),
                )
            }
            "--socket" if action == Action::Serve => {
                socket = Some(
                    it.next()
                        .ok_or_else(|| "--socket needs a path".to_string())?
                        .clone(),
                )
            }
            "--workers" if action == Action::Serve => {
                workers = number(a, it.next())? as usize;
            }
            "--cache-mb" if action == Action::Serve => {
                cache_mb = Some(number(a, it.next())? as usize);
            }
            "--queue" if action == Action::Serve => {
                per_conn_queue = Some(number(a, it.next())? as usize);
            }
            "--global-queue" if action == Action::Serve => {
                global_queue = Some(number(a, it.next())? as usize);
            }
            "--read-timeout-ms" if action == Action::Serve => {
                read_timeout_ms = Some(number(a, it.next())?);
            }
            "--idle-timeout-ms" if action == Action::Serve => {
                idle_timeout_ms = Some(number(a, it.next())?);
            }
            "--drain-timeout-ms" if action == Action::Serve => {
                drain_timeout_ms = Some(number(a, it.next())?);
            }
            "--max-line-kb" if action == Action::Serve => {
                max_line_kb = Some(number(a, it.next())?);
            }
            "--drain-on-term" if action == Action::Serve => drain_on_term = true,
            "--interval-ms" if action == Action::Top => {
                interval_ms = number(a, it.next())?;
            }
            "--once" if action == Action::Top => once = true,
            other => return Err(format!("unknown option '{other}'\n{USAGE}")),
        }
    }
    Ok(Command {
        action,
        input,
        input2,
        output,
        engine,
        no_redundancy,
        no_salvage,
        stats,
        trace_json,
        bench_json,
        budget,
        tcp,
        socket,
        workers,
        cache_mb,
        per_conn_queue,
        global_queue,
        read_timeout_ms,
        idle_timeout_ms,
        drain_timeout_ms,
        max_line_kb,
        drain_on_term,
        interval_ms,
        once,
    })
}

/// Checks a `bench` circuit name against the registry at parse time, so
/// typos fail before any work starts. Unknown names get an error listing
/// near-matches (small edit distance or substring hits).
fn validate_bench_name(name: &str) -> Result<(), String> {
    let known: Vec<&'static str> = xsynth_circuits::registry()
        .into_iter()
        .map(|b| b.name)
        .collect();
    if known.contains(&name) {
        return Ok(());
    }
    let mut near: Vec<&str> = known
        .iter()
        .copied()
        .filter(|k| edit_distance(name, k) <= 2 || k.contains(name) || name.contains(k))
        .collect();
    near.sort_unstable();
    let mut msg = format!("unknown benchmark '{name}'");
    if near.is_empty() {
        let _ = write!(msg, "; run with no arguments to see usage");
    } else {
        let _ = write!(msg, "; did you mean {}?", near.join(", "));
    }
    Err(msg)
}

/// Levenshtein distance over bytes — circuit names are short ASCII.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// Loads a network from a path by extension (`.pla` → espresso PLA,
/// anything else → BLIF), or from a built-in benchmark name for `bench`.
pub fn load(cmd: &Command) -> Result<Network, Error> {
    load_source(&cmd.input, cmd.action == Action::Bench)
}

/// Loads one network source: a benchmark name (`bench_only`), or a file
/// path that falls back to the benchmark registry when no file exists.
fn load_source(input: &str, bench_only: bool) -> Result<Network, Error> {
    if bench_only {
        return xsynth_circuits::build(input)
            .ok_or_else(|| Error::msg(format!("unknown benchmark '{input}'")));
    }
    // other subcommands also accept built-in benchmark names when no such
    // file exists
    if !std::path::Path::new(input).exists() {
        if let Some(net) = xsynth_circuits::build(input) {
            return Ok(net);
        }
    }
    let text = std::fs::read_to_string(input).map_err(|e| Error::io(input, e))?;
    if input.ends_with(".pla") {
        let pla = parse_pla(&text)?;
        let name = input
            .rsplit('/')
            .next()
            .unwrap_or("pla")
            .trim_end_matches(".pla");
        Ok(pla.to_network(name))
    } else {
        Ok(parse_blif(&text)?)
    }
}

/// Runs the chosen engine. FPRM-family engines also return the synthesis
/// report (for `--stats` and `--trace-json`); the SOP baseline and `none`
/// have no report.
///
/// # Errors
///
/// Returns [`Error::Budget`] when the command's budget is too tight for
/// the pipeline to produce any result.
pub fn run_engine(cmd: &Command, spec: &Network) -> Result<(Network, Option<SynthReport>), Error> {
    match cmd.engine {
        Engine::None => Ok((spec.sweep(), None)),
        Engine::Sop => Ok((script_algebraic(spec, &ScriptOptions::default()), None)),
        Engine::Fprm | Engine::FprmCube | Engine::FprmOfdd | Engine::Kfdd => {
            let method = match cmd.engine {
                Engine::FprmCube => FactorMethod::Cube,
                Engine::FprmOfdd => FactorMethod::Ofdd,
                Engine::Kfdd => FactorMethod::Kfdd,
                _ => FactorMethod::Best,
            };
            let opts = SynthOptions::builder()
                .method(method)
                .redundancy_removal(!cmd.no_redundancy)
                .salvage(!cmd.no_salvage)
                .budget(cmd.budget.clone())
                .build();
            let SynthOutcome { network, report } = try_synthesize(spec, &opts)?;
            Ok((network, Some(report)))
        }
    }
}

/// Renders the report's degradation notes — curtailed phases, a
/// downgraded verification backend, and outputs the salvage ladder
/// recovered — or an empty string when the run was clean.
fn render_budget_notes(report: &SynthReport) -> String {
    let mut s = String::new();
    if !report.curtailed.is_empty() {
        let _ = writeln!(
            s,
            "# budget: curtailed phases: {}",
            report.curtailed.join(", ")
        );
    }
    if report.verify_downgraded {
        let _ = writeln!(
            s,
            "# budget: verification downgraded to fixed-seed simulation"
        );
    }
    for rec in &report.salvaged {
        let _ = writeln!(
            s,
            "# salvage: output `{}` recovered at {}: {}",
            rec.output,
            rec.rung.as_str(),
            rec.cause.lines().next().unwrap_or("")
        );
    }
    s
}

/// Renders the `--stats` block: the trace-derived per-phase wall-clock
/// profile, the polarity-search counters, and the full span tree of a
/// [`SynthReport`].
pub fn render_report(report: &SynthReport) -> String {
    let p = &report.profile;
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let mut s = String::new();
    let _ = writeln!(s, "# phase timings (ms):");
    let _ = writeln!(
        s,
        "#   fprm generation:    {:9.2}",
        ms(p.duration(phase::FPRM))
    );
    let _ = writeln!(
        s,
        "#   factoring:          {:9.2}",
        ms(p.duration(phase::FACTORING))
    );
    let _ = writeln!(
        s,
        "#   sharing:            {:9.2}",
        ms(p.duration(phase::SHARING))
    );
    let _ = writeln!(
        s,
        "#   redundancy removal: {:9.2}",
        ms(p.duration(phase::REDUNDANCY))
    );
    let _ = writeln!(
        s,
        "#   verify:             {:9.2}",
        ms(p.duration(phase::VERIFY))
    );
    let _ = writeln!(s, "#   total:              {:9.2}", ms(p.total));
    let _ = writeln!(
        s,
        "# polarity search: {} candidates evaluated, {} memo hits",
        report.polarity_search.candidates_evaluated, report.polarity_search.memo_hits
    );
    let pct = |hits: f64, lookups: f64| {
        if lookups > 0.0 {
            100.0 * hits / lookups
        } else {
            0.0
        }
    };
    let gauges = report.trace.gauge_finals();
    let apply_hits = gauges.get("bdd.apply_hits").copied().unwrap_or(0.0);
    let apply_misses = gauges.get("bdd.apply_misses").copied().unwrap_or(0.0);
    let _ = writeln!(
        s,
        "# apply cache: {:.1}% hit ({:.0} of {:.0} lookups)",
        pct(apply_hits, apply_hits + apply_misses),
        apply_hits,
        apply_hits + apply_misses
    );
    let c = &report.cache;
    let result_hits = (c.polarity_hits + c.cubes_hits + c.factored_hits) as f64;
    let result_lookups = result_hits + c.lookup_misses as f64;
    let _ = writeln!(
        s,
        "# result cache: {:.1}% hit ({:.0} of {:.0} lookups; polarity {}, cubes {}, factored {})",
        pct(result_hits, result_lookups),
        result_hits,
        result_lookups,
        c.polarity_hits,
        c.cubes_hits,
        c.factored_hits
    );
    let _ = writeln!(s, "# trace:");
    for line in report.trace.render_tree().lines() {
        let _ = writeln!(s, "#   {line}");
    }
    s
}

/// The telemetry `flow` label for an engine.
fn engine_label(engine: Engine) -> &'static str {
    match engine {
        Engine::Fprm => "fprm",
        Engine::FprmCube => "fprm-cube",
        Engine::FprmOfdd => "fprm-ofdd",
        Engine::Kfdd => "kfdd",
        Engine::Sop => "sop",
        Engine::None => "none",
    }
}

/// Writes a single-record benchmark telemetry suite describing the exact
/// run the CLI just performed (same `BENCH_*.json` schema as
/// `table2 --json`; diffable with `bench_compare`).
fn write_bench_json(
    path: &str,
    cmd: &Command,
    spec: &Network,
    result: &Network,
    report: Option<SynthReport>,
    synth_seconds: f64,
) -> Result<String, Error> {
    let lib = Library::mcnc();
    let measured = xsynth_bench::record_from_run(
        &cmd.input,
        engine_label(cmd.engine),
        spec,
        result.clone(),
        report,
        &[synth_seconds],
        &lib,
        &cmd.budget,
    );
    let suite = xsynth_bench::BenchSuite {
        suite: "cli".to_string(),
        records: vec![measured.record],
    };
    std::fs::write(path, suite.to_json()).map_err(|e| Error::io(path, e))?;
    Ok(format!("# wrote benchmark record to {path}\n"))
}

/// Writes the run's Chrome `trace_event` JSON to `path` (engines without a
/// synthesis report emit an empty but valid trace document).
fn write_trace_json(path: &str, report: Option<&SynthReport>) -> Result<String, Error> {
    let json = match report {
        Some(r) => r.trace.to_chrome_json(),
        None => Trace::default().to_chrome_json(),
    };
    std::fs::write(path, &json).map_err(|e| Error::io(path, e))?;
    Ok(format!("# wrote trace to {path}\n"))
}

/// Renders the `stats` block for a network.
pub fn render_stats(net: &Network) -> String {
    let (gates2, lits2) = net.two_input_cost();
    let mut s = String::new();
    let _ = writeln!(s, "{net}");
    let _ = writeln!(s, "  two-input AND/OR gates: {gates2}");
    let _ = writeln!(s, "  literals (paper metric): {lits2}");
    let _ = writeln!(s, "  logic depth: {}", net.depth());
    s
}

/// Parses and executes a command line in one step — the single fallible
/// entry point the binary (and embedding code) calls. Usage errors, I/O
/// errors, parse errors and verification failures all arrive as one
/// [`Error`].
///
/// # Errors
///
/// Everything [`parse_args`] and [`execute`] can report.
pub fn run(args: &[String]) -> Result<String, Error> {
    // Fault-injection builds honour `XSYNTH_FAILPOINTS` for the whole
    // invocation; release builds compile this away entirely. A malformed
    // plan is a usage error, same as any bad flag.
    #[cfg(feature = "failpoints")]
    xsynth_trace::failpoint::arm_from_env().map_err(Error::Msg)?;
    let cmd = parse_args(args).map_err(Error::Msg)?;
    execute(&cmd)
}

/// Executes a full command, returning the text to print.
///
/// # Errors
///
/// Propagates load/parse/I/O errors and verification failures.
pub fn execute(cmd: &Command) -> Result<String, Error> {
    if cmd.action == Action::Serve {
        return run_serve(cmd);
    }
    if cmd.action == Action::Top {
        return run_top(cmd);
    }
    let spec = load(cmd)?;
    match cmd.action {
        Action::Serve | Action::Top => unreachable!("handled above"),
        Action::Stats => Ok(render_stats(&spec)),
        Action::Verify => {
            let candidate = load_source(cmd.input2.as_deref().unwrap_or_default(), false)?;
            let mut checker = EquivChecker::with_budget(&spec, &cmd.budget);
            if !checker.try_check(&candidate)? {
                return Err(Error::Verify(format!(
                    "{} is not equivalent to {}",
                    cmd.input2.as_deref().unwrap_or_default(),
                    cmd.input
                )));
            }
            let backend = if checker.is_exact() {
                "exact BDD check"
            } else if checker.downgraded() {
                "simulation, downgraded by budget"
            } else {
                "simulation"
            };
            Ok(format!("equivalent ({backend})\n"))
        }
        Action::Synth | Action::Bench => {
            let t0 = std::time::Instant::now();
            let (result, report) = run_engine(cmd, &spec)?;
            let synth_seconds = t0.elapsed().as_secs_f64();
            let mut checker = EquivChecker::with_budget(&spec, &cmd.budget);
            if !checker.try_check(&result)? {
                return Err(Error::Verify(
                    "internal error: result failed verification".into(),
                ));
            }
            let mut out = String::new();
            let _ = writeln!(out, "# spec:   {}", render_stats(&spec).trim_end());
            let _ = writeln!(out, "# result: {}", render_stats(&result).trim_end());
            if let Some(r) = &report {
                out.push_str(&render_budget_notes(r));
            }
            if cmd.stats {
                match &report {
                    Some(r) => out.push_str(&render_report(r)),
                    None => {
                        let _ = writeln!(out, "# (no synthesis report for this engine)");
                    }
                }
            }
            if let Some(path) = &cmd.trace_json {
                out.push_str(&write_trace_json(path, report.as_ref())?);
            }
            if let Some(path) = &cmd.bench_json {
                out.push_str(&write_bench_json(
                    path,
                    cmd,
                    &spec,
                    &result,
                    report.clone(),
                    synth_seconds,
                )?);
            }
            let blif = write_blif(&result);
            match &cmd.output {
                Some(path) => {
                    std::fs::write(path, &blif).map_err(|e| Error::io(path, e))?;
                    let _ = writeln!(out, "# wrote {path}");
                }
                None => out.push_str(&blif),
            }
            Ok(out)
        }
        Action::Map => {
            let t0 = std::time::Instant::now();
            let (result, report) = run_engine(cmd, &spec)?;
            let synth_seconds = t0.elapsed().as_secs_f64();
            let lib = Library::mcnc();
            let mapped = map_network(&result, &lib);
            let mut s = render_stats(&result);
            let _ = writeln!(
                s,
                "  mapped: {} cells / {} pins / area {:.1} / depth {}",
                mapped.num_gates(),
                mapped.num_literals(),
                mapped.area(),
                mapped.depth()
            );
            let mut cells: Vec<(String, usize)> = mapped.cell_histogram().into_iter().collect();
            cells.sort();
            for (cell, count) in cells {
                let _ = writeln!(s, "    {count:3} × {cell}");
            }
            if cmd.stats {
                if let Some(r) = &report {
                    s.push_str(&render_report(r));
                }
            }
            if let Some(path) = &cmd.trace_json {
                s.push_str(&write_trace_json(path, report.as_ref())?);
            }
            if let Some(path) = &cmd.bench_json {
                s.push_str(&write_bench_json(
                    path,
                    cmd,
                    &spec,
                    &result,
                    report.clone(),
                    synth_seconds,
                )?);
            }
            if let Some(path) = &cmd.output {
                let verilog = mapped.to_verilog(spec.name());
                std::fs::write(path, &verilog).map_err(|e| Error::io(path, e))?;
                let _ = writeln!(s, "  wrote Verilog netlist to {path}");
            }
            Ok(s)
        }
    }
}

/// Environment marker the `--drain-on-term` supervisor sets on the
/// daemon child it spawns, so the child knows to watch its stdin pipe
/// for EOF (= the supervisor died) instead of spawning a supervisor of
/// its own.
const SUPERVISED_ENV: &str = "XSYNTH_SERVE_SUPERVISED";

/// Runs the `serve` daemon: binds the configured listeners, announces
/// them on stdout (so scripts using an ephemeral TCP port can read the
/// bound address), and blocks until a `shutdown` request drains the
/// queue. Jobs inherit the command's engine, redundancy/salvage flags
/// and budget as daemon defaults; each job may override its budget.
///
/// With `--drain-on-term` the process forks into a supervisor/daemon
/// pair (see [`run_serve_supervisor`]): the std-only daemon installs no
/// signal handler, so SIGTERM delivery is detected as the supervisor's
/// death closing the daemon's stdin pipe, which triggers a graceful
/// drain instead of an abrupt exit.
fn run_serve(cmd: &Command) -> Result<String, Error> {
    let supervised = std::env::var_os(SUPERVISED_ENV).is_some();
    if cmd.drain_on_term && !supervised {
        return run_serve_supervisor(cmd);
    }
    let method = match cmd.engine {
        Engine::Fprm => FactorMethod::Best,
        Engine::FprmCube => FactorMethod::Cube,
        Engine::FprmOfdd => FactorMethod::Ofdd,
        Engine::Kfdd => FactorMethod::Kfdd,
        Engine::Sop | Engine::None => {
            return Err(Error::msg("serve only runs the FPRM-family engines"));
        }
    };
    let options = SynthOptions::builder()
        .method(method)
        .redundancy_removal(!cmd.no_redundancy)
        .salvage(!cmd.no_salvage)
        .budget(cmd.budget.clone())
        .build();
    let mut opts = xsynth_serve::ServeOptions {
        tcp: cmd.tcp.clone(),
        unix: cmd.socket.clone().map(Into::into),
        workers: cmd.workers,
        options,
        ..xsynth_serve::ServeOptions::default()
    };
    if let Some(mb) = cmd.cache_mb {
        opts.cache_bytes = mb << 20;
    }
    if let Some(n) = cmd.per_conn_queue {
        opts.per_conn_queue = n;
    }
    if let Some(n) = cmd.global_queue {
        opts.global_queue = n;
    }
    if let Some(ms) = cmd.read_timeout_ms {
        opts.read_timeout = Duration::from_millis(ms);
    }
    if let Some(ms) = cmd.idle_timeout_ms {
        opts.idle_timeout = Duration::from_millis(ms);
    }
    if let Some(ms) = cmd.drain_timeout_ms {
        opts.drain_timeout = Duration::from_millis(ms);
    }
    if let Some(kb) = cmd.max_line_kb {
        opts.max_line_bytes = (kb as usize) << 10;
    }
    let server = xsynth_serve::Server::bind(opts)?;
    if let Some(addr) = server.tcp_addr() {
        println!("# serve: listening on tcp {addr}");
    }
    if let Some(path) = server.unix_path() {
        println!("# serve: listening on unix {}", path.display());
    }
    if cmd.drain_on_term && supervised {
        spawn_supervisor_watch(server.drain_handle());
    }
    server.wait();
    Ok("# serve: shutdown complete\n".to_string())
}

/// Watches the supervised daemon's stdin pipe and begins a graceful
/// drain the moment it reaches EOF or errors — which happens exactly
/// when the supervisor process dies (SIGTERM, SIGKILL, crash) and the
/// kernel closes its end of the pipe.
fn spawn_supervisor_watch(handle: xsynth_serve::DrainHandle) {
    std::thread::Builder::new()
        .name("xsynth-serve-term".into())
        .spawn(move || {
            use std::io::Read as _;
            let mut stdin = std::io::stdin();
            let mut buf = [0u8; 256];
            loop {
                match stdin.read(&mut buf) {
                    // Any payload on the pipe is ignored; only its
                    // closure carries meaning.
                    Ok(n) if n > 0 => {}
                    _ => {
                        handle.shutdown();
                        return;
                    }
                }
            }
        })
        .expect("spawn supervisor watch thread");
}

/// The `--drain-on-term` supervisor: re-executes this binary as a child
/// daemon (same serve argv, [`SUPERVISED_ENV`] set, stdin piped) and
/// waits for it. The supervisor keeps default signal dispositions, so a
/// SIGTERM kills *it* immediately (the conventional 143 exit the service
/// manager sees) while the orphaned daemon notices the closed stdin pipe
/// and drains gracefully: queued work is answered or shed with typed
/// `overloaded` errors within `--drain-timeout-ms`, listeners close, and
/// unix socket files are unlinked.
fn run_serve_supervisor(cmd: &Command) -> Result<String, Error> {
    let exe = std::env::current_exe().map_err(|e| Error::io("current_exe", e))?;
    let mut child = std::process::Command::new(exe)
        .args(serve_argv(cmd))
        .env(SUPERVISED_ENV, "1")
        .stdin(std::process::Stdio::piped())
        .spawn()
        .map_err(|e| Error::io("spawning supervised daemon", e))?;
    // Hold the child's stdin write end for the supervisor's whole life:
    // dropping it (normal return) or dying with it (signal) closes the
    // pipe and the daemon drains. `Child::wait` closes any piped stdin
    // before blocking, so the handle must be taken out of the child
    // first or the daemon would drain the moment it starts.
    let drain_pipe = child.stdin.take();
    let status = child
        .wait()
        .map_err(|e| Error::io("supervised daemon", e))?;
    drop(drain_pipe);
    match status.code() {
        Some(0) => Ok(String::new()), // the daemon already printed its epilogue
        Some(code) => std::process::exit(code),
        None => std::process::exit(1),
    }
}

/// Reconstructs the `serve` argv of a parsed [`Command`] so the
/// supervisor can re-execute itself as the daemon child. Inverse of
/// [`parse_args`] for the serve-relevant subset (listeners, workers,
/// cache, engine, redundancy/salvage, budget, overload limits).
fn serve_argv(cmd: &Command) -> Vec<String> {
    let mut v = vec!["serve".to_string()];
    let mut flag = |name: &str, value: Option<String>| {
        v.push(name.to_string());
        if let Some(value) = value {
            v.push(value);
        }
    };
    if let Some(tcp) = &cmd.tcp {
        flag("--tcp", Some(tcp.clone()));
    }
    if let Some(socket) = &cmd.socket {
        flag("--socket", Some(socket.clone()));
    }
    if cmd.workers != 0 {
        flag("--workers", Some(cmd.workers.to_string()));
    }
    if let Some(mb) = cmd.cache_mb {
        flag("--cache-mb", Some(mb.to_string()));
    }
    if cmd.engine != Engine::Fprm {
        let name = match cmd.engine {
            Engine::Fprm => "fprm",
            Engine::FprmCube => "cube",
            Engine::FprmOfdd => "ofdd",
            Engine::Kfdd => "kfdd",
            Engine::Sop => "sop",
            Engine::None => "none",
        };
        flag("--method", Some(name.to_string()));
    }
    if cmd.no_redundancy {
        flag("--no-redundancy", None);
    }
    if cmd.no_salvage {
        flag("--no-salvage", None);
    }
    if let Some(cap) = cmd.budget.bdd_node_cap {
        flag("--bdd-node-cap", Some(cap.to_string()));
    }
    if let Some(t) = cmd.budget.phase_timeout {
        flag("--phase-timeout-ms", Some(t.as_millis().to_string()));
    }
    if let Some(p) = cmd.budget.max_patterns {
        flag("--max-patterns", Some(p.to_string()));
    }
    if let Some(n) = cmd.per_conn_queue {
        flag("--queue", Some(n.to_string()));
    }
    if let Some(n) = cmd.global_queue {
        flag("--global-queue", Some(n.to_string()));
    }
    if let Some(ms) = cmd.read_timeout_ms {
        flag("--read-timeout-ms", Some(ms.to_string()));
    }
    if let Some(ms) = cmd.idle_timeout_ms {
        flag("--idle-timeout-ms", Some(ms.to_string()));
    }
    if let Some(ms) = cmd.drain_timeout_ms {
        flag("--drain-timeout-ms", Some(ms.to_string()));
    }
    if let Some(kb) = cmd.max_line_kb {
        flag("--max-line-kb", Some(kb.to_string()));
    }
    if cmd.drain_on_term {
        flag("--drain-on-term", None);
    }
    v
}

/// Runs `xsynth top <addr>`: polls the daemon's `metrics` and `recent`
/// wire ops and renders a status table. `--once` returns a single frame
/// (for scripts and CI); otherwise the loop clears the screen and
/// redraws every `--interval-ms`. A poll that fails — daemon restarting,
/// connection refused, mid-read drop — does not exit the dashboard: the
/// loop keeps retrying with backoff ([`reconnect_delay`]) and shows the
/// error in place of the frame until the daemon answers again.
fn run_top(cmd: &Command) -> Result<String, Error> {
    let addr = cmd.input.as_str();
    if cmd.once {
        return top_frame(addr);
    }
    let mut failures: u32 = 0;
    loop {
        use std::io::Write as _;
        let delay = match top_frame(addr) {
            Ok(frame) => {
                failures = 0;
                // plain full redraw — clear screen, cursor home, draw
                print!("\x1b[2J\x1b[H{frame}");
                Duration::from_millis(cmd.interval_ms)
            }
            Err(e) => {
                failures = failures.saturating_add(1);
                let delay = reconnect_delay(failures, cmd.interval_ms);
                print!(
                    "\x1b[2J\x1b[Hxsynth top: {addr} unreachable ({e})\nretrying in {:.1}s (attempt {failures})\n",
                    delay.as_secs_f64()
                );
                delay
            }
        };
        let _ = std::io::stdout().flush();
        std::thread::sleep(delay);
    }
}

/// Backoff between failed `top` polls: starts at the refresh interval
/// (floored at 100 ms so `--interval-ms 0` cannot spin) and doubles per
/// consecutive failure, capped at 10 s so a daemon restart is picked up
/// promptly no matter how long the outage lasted.
fn reconnect_delay(failures: u32, interval_ms: u64) -> Duration {
    let base = interval_ms.clamp(100, 10_000);
    let factor = 1u64 << failures.saturating_sub(1).min(7);
    Duration::from_millis(base.saturating_mul(factor).min(10_000))
}

/// Fetches and renders one `top` frame. `host:port` addresses poll over
/// TCP, anything else is treated as a unix socket path. Reconnecting per
/// frame keeps the daemon's reader-thread count bounded and survives
/// daemon restarts between polls.
fn top_frame(addr: &str) -> Result<String, Error> {
    if addr.contains(':') {
        let mut client = xsynth_serve::Client::connect_tcp(addr)?;
        render_top(&mut client, addr)
    } else {
        #[cfg(unix)]
        {
            let mut client = xsynth_serve::Client::connect_unix(addr)?;
            render_top(&mut client, addr)
        }
        #[cfg(not(unix))]
        Err(Error::msg(
            "unix sockets are not available on this platform",
        ))
    }
}

/// Renders the `top` table from one `metrics` + one `recent` exchange.
fn render_top<S: std::io::Read + std::io::Write>(
    client: &mut xsynth_serve::Client<S>,
    addr: &str,
) -> Result<String, Error> {
    let m = client.metrics()?;
    if m.get("status").and_then(Value::as_str) != Some("ok") {
        return Err(Error::msg(format!(
            "daemon answered `metrics` with an error: {}",
            m.get("error")
                .and_then(|e| e.get("message"))
                .and_then(Value::as_str)
                .unwrap_or("unknown")
        )));
    }
    let text = m
        .get("text")
        .and_then(Value::as_str)
        .ok_or_else(|| Error::Protocol("metrics reply missing `text`".into()))?;
    let fams = xsynth_trace::metrics::parse(text).map_err(Error::Protocol)?;
    let value = |name: &str, label: Option<(&str, &str)>| -> f64 {
        fams.get(name)
            .and_then(|f| {
                f.samples.iter().find(|s| match label {
                    Some((k, v)) => s.label(k) == Some(v),
                    None => true,
                })
            })
            .map(|s| s.value)
            .unwrap_or(0.0)
    };
    let sample = |name: &str, suffix: &str| -> f64 {
        fams.get(name)
            .and_then(|f| {
                f.samples
                    .iter()
                    .find(|s| s.name == format!("{name}{suffix}"))
            })
            .map(|s| s.value)
            .unwrap_or(0.0)
    };
    let pct = |hits: f64, lookups: f64| {
        if lookups > 0.0 {
            100.0 * hits / lookups
        } else {
            0.0
        }
    };

    let mut s = String::new();
    let _ = writeln!(
        s,
        "xsynth serve @ {addr} — up {:.0}s, workers {:.0} ({:.0} busy)",
        value("xsynth_uptime_seconds", None),
        value("xsynth_workers", None),
        value("xsynth_workers_busy", None),
    );
    let hits = value("xsynth_cache_hits_total", None);
    let lookups = hits + value("xsynth_cache_misses_total", None);
    let _ = writeln!(
        s,
        "jobs: {:.0} ok / {:.0} error   result cache: {:.1}% hit ({:.0}/{:.0}), {:.0} entries, {:.1} MiB",
        value("xsynth_jobs_total", Some(("outcome", "ok"))),
        value("xsynth_jobs_total", Some(("outcome", "error"))),
        pct(hits, lookups),
        hits,
        lookups,
        value("xsynth_cache_entries", None),
        value("xsynth_cache_bytes", None) / (1024.0 * 1024.0),
    );
    let _ = writeln!(
        s,
        "load: queue {:.0}/{:.0}   shed {:.0} / cancelled {:.0} / reaped {:.0}",
        value("xsynth_queue_depth", None),
        value("xsynth_queue_capacity", None),
        value("xsynth_jobs_shed_total", None),
        value("xsynth_jobs_cancelled_total", None),
        value("xsynth_conns_reaped_total", None),
    );
    let _ = writeln!(
        s,
        "bdd: peak {:.0} nodes   job seconds: p50 {:.4} p90 {:.4} p99 {:.4} (n={:.0})",
        value("xsynth_bdd_peak_nodes", None),
        value("xsynth_job_seconds_p50", None),
        value("xsynth_job_seconds_p90", None),
        value("xsynth_job_seconds_p99", None),
        sample("xsynth_job_seconds", "_count"),
    );

    let r = client.recent(Some(10))?;
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "{:<12} {:<14} {:<8} {:>9} {:>6} {:>6} {:>10}",
        "ID", "NAME", "OUTCOME", "SECONDS", "HITS", "MISS", "PEAK-NODES"
    );
    for job in r.get("jobs").and_then(Value::as_arr).unwrap_or(&[]) {
        let g = |k: &str| {
            job.get(k)
                .and_then(Value::as_str)
                .unwrap_or("-")
                .to_string()
        };
        let n = |k: &str| job.get(k).and_then(Value::as_f64).unwrap_or(0.0);
        let _ = writeln!(
            s,
            "{:<12} {:<14} {:<8} {:>9.4} {:>6.0} {:>6.0} {:>10.0}",
            g("id"),
            g("name"),
            g("outcome"),
            n("seconds"),
            n("cache_hits"),
            n("cache_misses"),
            n("peak_nodes"),
        );
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_basic() {
        let c = parse_args(&argv("synth foo.blif -o out.blif --method sop")).unwrap();
        assert_eq!(c.action, Action::Synth);
        assert_eq!(c.input, "foo.blif");
        assert_eq!(c.output.as_deref(), Some("out.blif"));
        assert_eq!(c.engine, Engine::Sop);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&argv("")).is_err());
        assert!(parse_args(&argv("frobnicate x")).is_err());
        assert!(parse_args(&argv("synth")).is_err());
        assert!(parse_args(&argv("synth a.blif --method wat")).is_err());
        assert!(parse_args(&argv("synth a.blif --wat")).is_err());
    }

    #[test]
    fn bench_subcommand_runs_builtin() {
        let c = parse_args(&argv("bench z4ml")).unwrap();
        let out = execute(&c).unwrap();
        assert!(out.contains(".model"), "{out}");
        assert!(out.contains("# result:"));
    }

    #[test]
    fn bench_unknown_circuit_fails_at_parse_time() {
        let err = parse_args(&argv("bench nonesuch")).unwrap_err();
        assert!(err.contains("unknown benchmark 'nonesuch'"), "{err}");
    }

    #[test]
    fn bench_typo_suggests_near_matches() {
        let err = parse_args(&argv("bench z4mll")).unwrap_err();
        assert!(err.contains("did you mean"), "{err}");
        assert!(err.contains("z4ml"), "{err}");
    }

    #[test]
    fn stats_flag_prints_phase_timings() {
        let c = parse_args(&argv("bench rd53 --stats")).unwrap();
        assert!(c.stats);
        let out = execute(&c).unwrap();
        assert!(out.contains("phase timings"), "{out}");
        assert!(out.contains("polarity search:"), "{out}");
        // the structured span tree rides along, with the paper phases
        assert!(out.contains("# trace:"), "{out}");
        assert!(out.contains("synthesize"), "{out}");
        assert!(out.contains("fprm"), "{out}");
        assert!(out.contains("redundancy"), "{out}");
    }

    #[test]
    fn trace_json_flag_writes_valid_chrome_trace() {
        let dir = std::env::temp_dir().join("xsynth_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let tracep = dir.join("rd53-trace.json");
        let c = parse_args(&argv(&format!(
            "bench rd53 --trace-json {}",
            tracep.display()
        )))
        .unwrap();
        let out = execute(&c).unwrap();
        assert!(out.contains("wrote trace to"), "{out}");
        let json = std::fs::read_to_string(&tracep).unwrap();
        xsynth_trace::json::validate(&json).expect("trace JSON must parse");
        for phase in ["synthesize", "fprm", "factoring", "sharing", "redundancy"] {
            assert!(json.contains(&format!("\"name\":\"{phase}\"")), "{phase}");
        }
    }

    #[test]
    fn bench_json_flag_writes_telemetry_record() {
        let dir = std::env::temp_dir().join("xsynth_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("rd53-bench.json");
        let out = run(&argv(&format!("bench rd53 --bench-json {}", p.display()))).unwrap();
        assert!(out.contains("wrote benchmark record"), "{out}");
        let text = std::fs::read_to_string(&p).unwrap();
        let suite = xsynth_bench::BenchSuite::from_json(&text).expect("strict parse");
        assert_eq!(suite.suite, "cli");
        let r = suite.find("rd53", "fprm").expect("record present");
        assert!(r.verified.passed());
        assert!(r.map_lits > 0 && r.runs == 1);
        assert!(r.phases.contains_key(phase::FPRM));
    }

    #[test]
    fn run_is_a_single_fallible_entry_point() {
        assert!(run(&argv("bench rd53")).is_ok());
        let err = run(&argv("bench nonesuch")).unwrap_err();
        assert!(err.to_string().contains("unknown benchmark"), "{err}");
        let err = run(&argv("synth /no/such/file.blif")).unwrap_err();
        assert!(matches!(err, Error::Io { .. }), "{err}");
    }

    #[test]
    fn synth_roundtrip_through_files() {
        let dir = std::env::temp_dir().join("xsynth_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let inp = dir.join("in.blif");
        let outp = dir.join("out.blif");
        std::fs::write(
            &inp,
            ".model m\n.inputs a b\n.outputs y\n.names a b y\n10 1\n01 1\n.end\n",
        )
        .unwrap();
        let c = parse_args(&argv(&format!(
            "synth {} -o {}",
            inp.display(),
            outp.display()
        )))
        .unwrap();
        execute(&c).unwrap();
        let text = std::fs::read_to_string(&outp).unwrap();
        let net = xsynth_blif::parse_blif(&text).unwrap();
        for m in 0..4u64 {
            assert_eq!(net.eval_u64(m)[0], (m & 1 != 0) ^ (m & 2 != 0));
        }
    }

    #[test]
    fn pla_input_supported() {
        let dir = std::env::temp_dir().join("xsynth_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let inp = dir.join("in.pla");
        std::fs::write(&inp, ".i 2\n.o 1\n11 1\n.e\n").unwrap();
        let c = parse_args(&argv(&format!("stats {}", inp.display()))).unwrap();
        let out = execute(&c).unwrap();
        assert!(out.contains("two-input"));
    }

    #[test]
    fn map_subcommand_reports_cells() {
        let c = parse_args(&argv("bench f2")).unwrap();
        let c = Command {
            action: Action::Map,
            ..c
        };
        let out = execute(&c).unwrap();
        assert!(out.contains("mapped:"), "{out}");
        assert!(out.contains('×'));
    }

    #[test]
    fn map_writes_verilog() {
        let dir = std::env::temp_dir().join("xsynth_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let outp = dir.join("out.v");
        let cmd = Command {
            action: Action::Map,
            input: "f2".into(),
            input2: None,
            output: Some(outp.display().to_string()),
            engine: Engine::Fprm,
            no_redundancy: false,
            no_salvage: false,
            stats: false,
            trace_json: None,
            bench_json: None,
            budget: Budget::default(),
            tcp: None,
            socket: None,
            workers: 0,
            cache_mb: None,
            per_conn_queue: None,
            global_queue: None,
            read_timeout_ms: None,
            idle_timeout_ms: None,
            drain_timeout_ms: None,
            max_line_kb: None,
            drain_on_term: false,
            interval_ms: 2000,
            once: false,
        };
        let text = execute(&cmd).unwrap();
        assert!(text.contains("wrote Verilog"), "{text}");
        let v = std::fs::read_to_string(&outp).unwrap();
        assert!(v.contains("module f2"), "{v}");
        assert!(v.contains("endmodule"));
    }

    #[test]
    fn parse_budget_flags() {
        let c = parse_args(&argv(
            "bench rd53 --bdd-node-cap 5000 --phase-timeout-ms 250 --max-patterns 64",
        ))
        .unwrap();
        assert_eq!(
            c.budget,
            Budget::default()
                .bdd_node_cap(Some(5000))
                .phase_timeout(Some(Duration::from_millis(250)))
                .max_patterns(Some(64))
        );
        assert!(parse_args(&argv("bench rd53 --bdd-node-cap")).is_err());
        assert!(parse_args(&argv("bench rd53 --bdd-node-cap many")).is_err());
        assert!(parse_args(&argv("bench rd53 --phase-timeout-ms -5")).is_err());
    }

    #[test]
    fn parse_no_salvage_flag() {
        assert!(!parse_args(&argv("bench rd53")).unwrap().no_salvage);
        let c = parse_args(&argv("bench rd53 --no-salvage")).unwrap();
        assert!(c.no_salvage);
        // the flagged command still runs end to end on a healthy circuit
        let out = execute(&c).unwrap();
        assert!(out.contains(".model"), "{out}");
    }

    #[test]
    fn parse_serve_flags() {
        let c = parse_args(&argv(
            "serve --tcp 127.0.0.1:0 --socket /tmp/x.sock --workers 2 --cache-mb 16",
        ))
        .unwrap();
        assert_eq!(c.action, Action::Serve);
        assert_eq!(c.input, "");
        assert_eq!(c.tcp.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(c.socket.as_deref(), Some("/tmp/x.sock"));
        assert_eq!(c.workers, 2);
        assert_eq!(c.cache_mb, Some(16));
        // serve-only flags stay serve-only
        assert!(parse_args(&argv("bench rd53 --tcp 127.0.0.1:0")).is_err());
    }

    #[test]
    fn parse_overload_flags() {
        let c = parse_args(&argv(
            "serve --tcp 127.0.0.1:0 --queue 4 --global-queue 16 --read-timeout-ms 250 \
             --idle-timeout-ms 9000 --drain-timeout-ms 1500 --max-line-kb 64 --drain-on-term",
        ))
        .unwrap();
        assert_eq!(c.per_conn_queue, Some(4));
        assert_eq!(c.global_queue, Some(16));
        assert_eq!(c.read_timeout_ms, Some(250));
        assert_eq!(c.idle_timeout_ms, Some(9000));
        assert_eq!(c.drain_timeout_ms, Some(1500));
        assert_eq!(c.max_line_kb, Some(64));
        assert!(c.drain_on_term);
        // defaults stay "inherit from ServeOptions"
        let c = parse_args(&argv("serve --tcp 127.0.0.1:0")).unwrap();
        assert_eq!(c.per_conn_queue, None);
        assert!(!c.drain_on_term);
        // overload flags are serve-only
        assert!(parse_args(&argv("bench rd53 --queue 4")).is_err());
        assert!(parse_args(&argv("top /tmp/x.sock --drain-on-term")).is_err());
        assert!(parse_args(&argv("serve --tcp x --queue lots")).is_err());
    }

    #[test]
    fn serve_argv_roundtrips_through_parse_args() {
        let line = "serve --tcp 127.0.0.1:0 --socket /tmp/x.sock --workers 3 --cache-mb 8 \
                    --method kfdd --no-redundancy --no-salvage --bdd-node-cap 5000 \
                    --phase-timeout-ms 250 --max-patterns 64 --queue 4 --global-queue 16 \
                    --read-timeout-ms 250 --idle-timeout-ms 9000 --drain-timeout-ms 1500 \
                    --max-line-kb 64 --drain-on-term";
        let cmd = parse_args(&argv(line)).unwrap();
        let reparsed = parse_args(&serve_argv(&cmd)).unwrap();
        assert_eq!(cmd, reparsed);
        // a minimal command reconstructs minimally
        let cmd = parse_args(&argv("serve --tcp 127.0.0.1:0")).unwrap();
        assert_eq!(serve_argv(&cmd), vec!["serve", "--tcp", "127.0.0.1:0"]);
    }

    #[test]
    fn reconnect_delay_backs_off_and_caps() {
        // first failure retries at the poll interval
        assert_eq!(reconnect_delay(1, 2000), Duration::from_millis(2000));
        // doubles per consecutive failure
        assert_eq!(reconnect_delay(2, 2000), Duration::from_millis(4000));
        // capped at 10 s no matter how long the outage
        assert_eq!(reconnect_delay(10, 2000), Duration::from_millis(10_000));
        assert_eq!(
            reconnect_delay(u32::MAX, 2000),
            Duration::from_millis(10_000)
        );
        // a zero interval cannot busy-spin
        assert!(reconnect_delay(1, 0) >= Duration::from_millis(100));
    }

    #[test]
    fn usage_documents_the_overloaded_exit_code() {
        assert!(USAGE.contains("11 overloaded"), "{USAGE}");
        assert!(USAGE.contains("--drain-on-term"), "{USAGE}");
    }

    #[test]
    fn parse_top_flags() {
        let c = parse_args(&argv("top 127.0.0.1:7171 --interval-ms 500 --once")).unwrap();
        assert_eq!(c.action, Action::Top);
        assert_eq!(c.input, "127.0.0.1:7171");
        assert_eq!(c.interval_ms, 500);
        assert!(c.once);
        // defaults
        let c = parse_args(&argv("top /tmp/x.sock")).unwrap();
        assert_eq!(c.interval_ms, 2000);
        assert!(!c.once);
        // top needs an address; top-only flags stay top-only
        assert!(parse_args(&argv("top")).is_err());
        assert!(parse_args(&argv("bench rd53 --once")).is_err());
    }

    #[test]
    fn top_once_renders_a_live_daemon_frame() {
        let server = xsynth_serve::Server::bind(xsynth_serve::ServeOptions {
            tcp: Some("127.0.0.1:0".into()),
            workers: 1,
            ..Default::default()
        })
        .expect("bind");
        let addr = server.tcp_addr().expect("tcp addr").to_string();
        let mut client = xsynth_serve::Client::connect_tcp(&addr).expect("connect");
        let blif = ".model cli_top\n.inputs a b\n.outputs y\n.names a b y\n10 1\n01 1\n.end\n";
        let reply = client.synth_blif(blif, Some("top-job")).expect("synth");
        assert_eq!(
            reply.get("status").and_then(Value::as_str),
            Some("ok"),
            "{reply:?}"
        );
        let cmd = parse_args(&argv(&format!("top {addr} --once"))).unwrap();
        let frame = execute(&cmd).expect("one frame");
        assert!(frame.contains("xsynth serve @"), "{frame}");
        assert!(frame.contains("jobs: 1 ok"), "{frame}");
        assert!(frame.contains("load: queue"), "{frame}");
        assert!(frame.contains("top-job"), "{frame}");
        assert!(frame.contains("cli_top"), "{frame}");
        client.shutdown().expect("shutdown");
        server.wait();
    }

    #[test]
    fn stats_flag_prints_cache_hit_ratios() {
        let out = run(&argv("bench rd53 --stats")).unwrap();
        assert!(out.contains("# apply cache:"), "{out}");
        assert!(out.contains("# result cache:"), "{out}");
        assert!(out.contains("% hit ("), "{out}");
    }

    #[test]
    fn serve_misconfigurations_are_usage_errors() {
        // no listener at all
        let c = parse_args(&argv("serve")).unwrap();
        assert_eq!(execute(&c).unwrap_err().exit_code(), 2);
        // the SOP baseline has no FPRM engine to keep warm
        let c = parse_args(&argv("serve --tcp 127.0.0.1:0 --method sop")).unwrap();
        assert_eq!(execute(&c).unwrap_err().exit_code(), 2);
    }

    #[test]
    fn verify_subcommand_compares_two_networks() {
        // two built-in names resolve through the registry fallback
        let out = run(&argv("verify rd53 rd53")).unwrap();
        assert!(out.contains("equivalent"), "{out}");
        let err = run(&argv("verify rd53 rd73")).unwrap_err();
        assert_eq!(err.exit_code(), 6, "{err}"); // different input sets
        assert!(run(&argv("verify rd53")).is_err());
    }

    #[test]
    fn verify_failure_maps_to_exit_code_7() {
        let dir = std::env::temp_dir().join("xsynth_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("vf_a.blif");
        let b = dir.join("vf_b.blif");
        std::fs::write(
            &a,
            ".model m\n.inputs a b\n.outputs y\n.names a b y\n10 1\n01 1\n.end\n",
        )
        .unwrap();
        std::fs::write(
            &b,
            ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n",
        )
        .unwrap();
        let err = run(&argv(&format!("verify {} {}", a.display(), b.display()))).unwrap_err();
        assert!(matches!(err, Error::Verify(_)), "{err}");
        assert_eq!(err.exit_code(), 7);
        let out = run(&argv(&format!("verify {} {}", a.display(), a.display()))).unwrap();
        assert!(out.contains("exact BDD check"), "{out}");
    }

    #[test]
    fn budget_exhaustion_maps_to_exit_code_8() {
        // 8 BDD nodes cannot hold a 5-input benchmark's spec BDDs
        let err = run(&argv("bench rd53 --bdd-node-cap 8")).unwrap_err();
        assert!(matches!(err, Error::Budget(_)), "{err}");
        assert_eq!(err.exit_code(), 8);
    }

    #[test]
    fn parse_error_maps_to_exit_code_3() {
        let dir = std::env::temp_dir().join("xsynth_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.blif");
        std::fs::write(&bad, ".model m\n.names a y\nthis is not a cover\n.end\n").unwrap();
        let err = run(&argv(&format!("synth {}", bad.display()))).unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
    }

    #[test]
    fn starved_bench_reports_curtailed_phases() {
        let out = run(&argv("bench rd53 --phase-timeout-ms 0 --max-patterns 4")).unwrap();
        assert!(out.contains("# budget: curtailed phases:"), "{out}");
        assert!(out.contains(".model"), "{out}");
    }

    #[test]
    fn engines_all_verify() {
        for engine in [
            Engine::Fprm,
            Engine::FprmCube,
            Engine::FprmOfdd,
            Engine::Kfdd,
            Engine::Sop,
            Engine::None,
        ] {
            let cmd = Command {
                action: Action::Bench,
                input: "rd53".into(),
                input2: None,
                output: None,
                engine,
                no_redundancy: false,
                no_salvage: false,
                stats: false,
                trace_json: None,
                bench_json: None,
                budget: Budget::default(),
                tcp: None,
                socket: None,
                workers: 0,
                cache_mb: None,
                per_conn_queue: None,
                global_queue: None,
                read_timeout_ms: None,
                idle_timeout_ms: None,
                drain_timeout_ms: None,
                max_line_kb: None,
                drain_on_term: false,
                interval_ms: 2000,
                once: false,
            };
            let out = execute(&cmd).expect("engine runs");
            assert!(out.contains(".model"));
        }
    }
}
