//! A reduced ordered binary decision diagram (ROBDD) package.
//!
//! This is the workspace's stand-in for the "SIS 1.2 ROBDD package" the
//! paper builds on (Bryant, 1986). It provides a [`BddManager`] arena with a
//! unique table (so equivalent functions share one canonical node and
//! equivalence checking is pointer comparison), the usual apply operations,
//! cofactors, satisfy counting and conversion to and from the
//! representations in [`xsynth_boolean`].
//!
//! # Examples
//!
//! ```
//! use xsynth_bdd::BddManager;
//!
//! let mut m = BddManager::new(3);
//! let (a, b, c) = (m.var(0), m.var(1), m.var(2));
//! let ab = m.and(a, b);
//! let f = m.or(ab, c);
//! let g = m.ite(a, b, c); // a·b + ¬a·c
//! assert_ne!(f, g);
//! assert_eq!(m.eval(f, 0b011), true);
//! ```

#![warn(missing_docs)]

use std::collections::HashMap;
use xsynth_boolean::{Sop, TruthTable, VarSet};

/// A handle to a BDD node inside a [`BddManager`].
///
/// Handles are canonical: two handles from the same manager are equal if
/// and only if they denote the same Boolean function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant-zero function.
    pub const ZERO: Bdd = Bdd(0);
    /// The constant-one function.
    pub const ONE: Bdd = Bdd(1);

    /// Whether this is a terminal (constant) node.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// Raw index, for debugging and statistics.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: Bdd,
    hi: Bdd,
}

const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
}

/// An arena of shared, reduced, ordered BDD nodes over a fixed number of
/// variables in natural index order.
///
/// Cloning a manager duplicates the node arena and caches; handles created
/// in the original remain valid (and denote the same functions) in the
/// clone, which is what lets the polarity search fan candidate evaluations
/// out across threads.
#[derive(Debug, Clone)]
pub struct BddManager {
    n: usize,
    nodes: Vec<Node>,
    unique: HashMap<(u32, Bdd, Bdd), Bdd>,
    cache: HashMap<(Op, Bdd, Bdd), Bdd>,
    not_cache: HashMap<Bdd, Bdd>,
}

impl BddManager {
    /// Creates a manager for functions of `n` variables.
    pub fn new(n: usize) -> Self {
        let nodes = vec![
            Node {
                var: TERMINAL_VAR,
                lo: Bdd::ZERO,
                hi: Bdd::ZERO,
            },
            Node {
                var: TERMINAL_VAR,
                lo: Bdd::ONE,
                hi: Bdd::ONE,
            },
        ];
        BddManager {
            n,
            nodes,
            unique: HashMap::new(),
            cache: HashMap::new(),
            not_cache: HashMap::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Total number of nodes allocated (including both terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The constant function `value`.
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::ONE
        } else {
            Bdd::ZERO
        }
    }

    /// The projection function of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.num_vars()`.
    pub fn var(&mut self, var: usize) -> Bdd {
        assert!(var < self.n, "variable {var} out of range");
        self.mk(var as u32, Bdd::ZERO, Bdd::ONE)
    }

    /// The complemented projection `¬var`.
    pub fn nvar(&mut self, var: usize) -> Bdd {
        assert!(var < self.n, "variable {var} out of range");
        self.mk(var as u32, Bdd::ONE, Bdd::ZERO)
    }

    fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Bdd {
        if lo == hi {
            return lo;
        }
        if let Some(&b) = self.unique.get(&(var, lo, hi)) {
            return b;
        }
        let id = Bdd(self.nodes.len() as u32);
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), id);
        id
    }

    fn node(&self, b: Bdd) -> Node {
        self.nodes[b.0 as usize]
    }

    /// The top variable of `b`, or `None` for constants.
    pub fn top_var(&self, b: Bdd) -> Option<usize> {
        if b.is_const() {
            None
        } else {
            Some(self.node(b).var as usize)
        }
    }

    /// The low (var = 0) child; `b` itself for constants.
    pub fn low(&self, b: Bdd) -> Bdd {
        if b.is_const() {
            b
        } else {
            self.node(b).lo
        }
    }

    /// The high (var = 1) child; `b` itself for constants.
    pub fn high(&self, b: Bdd) -> Bdd {
        if b.is_const() {
            b
        } else {
            self.node(b).hi
        }
    }

    fn apply(&mut self, op: Op, f: Bdd, g: Bdd) -> Bdd {
        match op {
            Op::And => {
                if f == Bdd::ZERO || g == Bdd::ZERO {
                    return Bdd::ZERO;
                }
                if f == Bdd::ONE {
                    return g;
                }
                if g == Bdd::ONE || f == g {
                    return f;
                }
            }
            Op::Or => {
                if f == Bdd::ONE || g == Bdd::ONE {
                    return Bdd::ONE;
                }
                if f == Bdd::ZERO {
                    return g;
                }
                if g == Bdd::ZERO || f == g {
                    return f;
                }
            }
            Op::Xor => {
                if f == Bdd::ZERO {
                    return g;
                }
                if g == Bdd::ZERO {
                    return f;
                }
                if f == g {
                    return Bdd::ZERO;
                }
                if f == Bdd::ONE {
                    return self.not(g);
                }
                if g == Bdd::ONE {
                    return self.not(f);
                }
            }
        }
        // commutative ops: normalize operand order for the cache
        let key = if f <= g { (op, f, g) } else { (op, g, f) };
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let (nf, ng) = (self.node(f), self.node(g));
        let var = nf.var.min(ng.var);
        let (f0, f1) = if nf.var == var {
            (nf.lo, nf.hi)
        } else {
            (f, f)
        };
        let (g0, g1) = if ng.var == var {
            (ng.lo, ng.hi)
        } else {
            (g, g)
        };
        let lo = self.apply(op, f0, g0);
        let hi = self.apply(op, f1, g1);
        let r = self.mk(var, lo, hi);
        self.cache.insert(key, r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(Op::And, f, g)
    }

    /// Disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(Op::Or, f, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.apply(Op::Xor, f, g)
    }

    /// Negation.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        if f == Bdd::ZERO {
            return Bdd::ONE;
        }
        if f == Bdd::ONE {
            return Bdd::ZERO;
        }
        if let Some(&r) = self.not_cache.get(&f) {
            return r;
        }
        let n = self.node(f);
        let lo = self.not(n.lo);
        let hi = self.not(n.hi);
        let r = self.mk(n.var, lo, hi);
        self.not_cache.insert(f, r);
        self.not_cache.insert(r, f);
        r
    }

    /// If-then-else: `c·t + ¬c·e`.
    pub fn ite(&mut self, c: Bdd, t: Bdd, e: Bdd) -> Bdd {
        let ct = self.and(c, t);
        let nc = self.not(c);
        let nce = self.and(nc, e);
        self.or(ct, nce)
    }

    /// Cofactor of `f` with `var` fixed to `phase`.
    pub fn cofactor(&mut self, f: Bdd, var: usize, phase: bool) -> Bdd {
        let var = var as u32;
        let mut memo = HashMap::new();
        self.cofactor_rec(f, var, phase, &mut memo)
    }

    fn cofactor_rec(&mut self, f: Bdd, var: u32, phase: bool, memo: &mut HashMap<Bdd, Bdd>) -> Bdd {
        if f.is_const() {
            return f;
        }
        let n = self.node(f);
        if n.var > var {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let r = if n.var == var {
            if phase {
                n.hi
            } else {
                n.lo
            }
        } else {
            let lo = self.cofactor_rec(n.lo, var, phase, memo);
            let hi = self.cofactor_rec(n.hi, var, phase, memo);
            self.mk(n.var, lo, hi)
        };
        memo.insert(f, r);
        r
    }

    /// Evaluates `f` on the assignment encoded in `minterm` (bit `i` =
    /// variable `i`).
    pub fn eval(&self, f: Bdd, minterm: u64) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let n = self.node(cur);
            cur = if minterm & (1u64 << n.var) != 0 {
                n.hi
            } else {
                n.lo
            };
        }
        cur == Bdd::ONE
    }

    /// Number of satisfying assignments over all `n` variables.
    pub fn count_sat(&self, f: Bdd) -> u64 {
        (self.sat_fraction(f) * (1u128 << self.n) as f64).round() as u64
    }

    /// Fraction of the input space on which `f` is one (the signal
    /// probability under uniform independent inputs).
    pub fn sat_fraction(&self, f: Bdd) -> f64 {
        let mut memo = HashMap::new();
        self.sat_frac(f, &mut memo)
    }

    fn sat_frac(&self, f: Bdd, memo: &mut HashMap<Bdd, f64>) -> f64 {
        if f == Bdd::ZERO {
            return 0.0;
        }
        if f == Bdd::ONE {
            return 1.0;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let n = self.node(f);
        let r = 0.5 * self.sat_frac(n.lo, memo) + 0.5 * self.sat_frac(n.hi, memo);
        memo.insert(f, r);
        r
    }

    /// The set of variables `f` depends on.
    pub fn support(&self, f: Bdd) -> VarSet {
        let mut seen = std::collections::HashSet::new();
        let mut sup = VarSet::new();
        let mut stack = vec![f];
        while let Some(b) = stack.pop() {
            if b.is_const() || !seen.insert(b) {
                continue;
            }
            let n = self.node(b);
            sup.insert(n.var as usize);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        sup
    }

    /// Number of distinct internal nodes in the DAG rooted at `f`.
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(b) = stack.pop() {
            if b.is_const() || !seen.insert(b) {
                continue;
            }
            count += 1;
            let n = self.node(b);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    #[allow(clippy::wrong_self_convention)] // manager-style constructor, as in CUDD
    /// Builds a BDD from a truth table.
    ///
    /// # Panics
    ///
    /// Panics if the table's arity differs from the manager's.
    pub fn from_table(&mut self, t: &TruthTable) -> Bdd {
        assert_eq!(t.num_vars(), self.n, "arity mismatch");
        self.from_table_rec(t, 0, 0)
    }

    #[allow(clippy::wrong_self_convention)]
    fn from_table_rec(&mut self, t: &TruthTable, var: usize, prefix: u64) -> Bdd {
        if var == self.n {
            return self.constant(t.eval(prefix));
        }
        let lo = self.from_table_rec(t, var + 1, prefix);
        let hi = self.from_table_rec(t, var + 1, prefix | (1 << var));
        self.mk(var as u32, lo, hi)
    }

    /// Builds a BDD from a sum-of-products cover.
    pub fn from_sop(&mut self, s: &Sop) -> Bdd {
        let mut acc = Bdd::ZERO;
        for c in s.cubes() {
            let mut cube = Bdd::ONE;
            // AND literals from highest variable down so intermediate BDDs
            // stay small under the natural order.
            let mut lits: Vec<(usize, bool)> = c
                .positive()
                .iter()
                .map(|v| (v, true))
                .chain(c.negative().iter().map(|v| (v, false)))
                .collect();
            lits.sort_unstable_by_key(|l| std::cmp::Reverse(l.0));
            for (v, ph) in lits {
                let lit = if ph { self.var(v) } else { self.nvar(v) };
                cube = self.and(cube, lit);
            }
            acc = self.or(acc, cube);
        }
        acc
    }

    /// Converts `f` to a truth table (requires `n ≤ MAX_TT_VARS`).
    pub fn to_table(&self, f: Bdd) -> TruthTable {
        TruthTable::from_fn(self.n, |m| self.eval(f, m))
    }

    /// One satisfying assignment of `f` (variables outside the support are
    /// set to 0), or `None` when `f` is unsatisfiable.
    pub fn any_sat(&self, f: Bdd) -> Option<Vec<bool>> {
        if f == Bdd::ZERO {
            return None;
        }
        let mut assignment = vec![false; self.n];
        let mut cur = f;
        while !cur.is_const() {
            let node = self.node(cur);
            if node.lo != Bdd::ZERO {
                cur = node.lo;
            } else {
                assignment[node.var as usize] = true;
                cur = node.hi;
            }
        }
        debug_assert_eq!(cur, Bdd::ONE, "reduced BDDs reach 1 by avoiding 0");
        Some(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsynth_boolean::Cube;

    #[test]
    fn canonical_equality() {
        let mut m = BddManager::new(3);
        let (a, b) = (m.var(0), m.var(1));
        let ab = m.and(a, b);
        let ba = m.and(b, a);
        assert_eq!(ab, ba);
        let na = m.not(a);
        let nna = m.not(na);
        assert_eq!(a, nna);
    }

    #[test]
    fn demorgan() {
        let mut m = BddManager::new(2);
        let (a, b) = (m.var(0), m.var(1));
        let and = m.and(a, b);
        let nand = m.not(and);
        let (na, nb) = (m.not(a), m.not(b));
        let or = m.or(na, nb);
        assert_eq!(nand, or);
    }

    #[test]
    fn xor_identities() {
        let mut m = BddManager::new(4);
        let (a, b) = (m.var(0), m.var(1));
        let x = m.xor(a, b);
        let x2 = m.xor(x, b);
        assert_eq!(x2, a);
        let zero = m.xor(a, a);
        assert_eq!(zero, Bdd::ZERO);
        let one = m.constant(true);
        let nx = m.xor(x, one);
        let notx = m.not(x);
        assert_eq!(nx, notx);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut m = BddManager::new(3);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        for mt in 0..8u64 {
            let expect = (mt & 1 != 0 && mt & 2 != 0) || mt & 4 != 0;
            assert_eq!(m.eval(f, mt), expect);
        }
    }

    #[test]
    fn table_roundtrip() {
        let t = TruthTable::from_fn(6, |m| (m * 37 + 11) % 5 < 2);
        let mut m = BddManager::new(6);
        let f = m.from_table(&t);
        assert_eq!(m.to_table(f), t);
        assert_eq!(m.count_sat(f), t.count_ones());
    }

    #[test]
    fn sop_agrees_with_table() {
        let s = Sop::from_cubes([
            Cube::new([0, 2], []).unwrap(),
            Cube::new([1], [3]).unwrap(),
            Cube::new([], [0, 1]).unwrap(),
        ]);
        let t = s.to_table(4);
        let mut m = BddManager::new(4);
        let via_sop = m.from_sop(&s);
        let via_tab = m.from_table(&t);
        assert_eq!(via_sop, via_tab);
    }

    #[test]
    fn cofactor_and_support() {
        let mut m = BddManager::new(3);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let bc = m.and(b, c);
        let f = m.ite(a, bc, c);
        let f1 = m.cofactor(f, 0, true);
        assert_eq!(f1, bc);
        let f0 = m.cofactor(f, 0, false);
        assert_eq!(f0, c);
        let sup = m.support(f);
        assert_eq!(sup, VarSet::from_vars([0, 1, 2]));
        assert!(m.support(c).contains(2));
        assert_eq!(m.support(Bdd::ONE), VarSet::new());
    }

    #[test]
    fn sat_fraction_of_var() {
        let mut m = BddManager::new(5);
        let a = m.var(3);
        assert_eq!(m.sat_fraction(a), 0.5);
        let b = m.var(1);
        let ab = m.and(a, b);
        assert_eq!(m.sat_fraction(ab), 0.25);
        assert_eq!(m.count_sat(ab), 8);
    }

    #[test]
    fn adder_bdd_is_compact() {
        // carry-out of an 8-bit adder has a linear-size BDD with interleaved
        // variable order.
        let n = 16;
        let mut m = BddManager::new(n);
        let mut carry = Bdd::ZERO;
        for i in 0..8 {
            let a = m.var(2 * i);
            let b = m.var(2 * i + 1);
            let ab = m.and(a, b);
            let axb = m.xor(a, b);
            let t = m.and(axb, carry);
            carry = m.or(ab, t);
        }
        assert!(m.size(carry) <= 3 * 8, "adder carry BDD should be linear");
    }

    #[test]
    fn size_counts_shared_nodes_once() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        assert_eq!(m.size(a), 1);
        let b = m.var(1);
        let x = m.xor(a, b);
        assert_eq!(m.size(x), 3);
    }

    #[test]
    fn any_sat_finds_witnesses() {
        let mut m = BddManager::new(4);
        let (a, b) = (m.var(0), m.var(3));
        let nb = m.not(b);
        let f = m.and(a, nb);
        let w = m.any_sat(f).expect("satisfiable");
        assert!(w[0] && !w[3]);
        assert!(m.any_sat(Bdd::ZERO).is_none());
        assert_eq!(m.any_sat(Bdd::ONE), Some(vec![false; 4]));
    }

    #[test]
    fn cofactor_of_unrelated_var_is_identity() {
        let mut m = BddManager::new(4);
        let (a, b) = (m.var(0), m.var(1));
        let f = m.and(a, b);
        assert_eq!(m.cofactor(f, 3, true), f);
        assert_eq!(m.cofactor(f, 3, false), f);
    }
}
