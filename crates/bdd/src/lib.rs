//! A reduced ordered binary decision diagram (ROBDD) package with a
//! shared concurrent node store and complement edges.
//!
//! This is the workspace's stand-in for the "SIS 1.2 ROBDD package" the
//! paper builds on (Bryant, 1986). It provides a [`BddManager`] arena with a
//! unique table (so equivalent functions share one canonical node and
//! equivalence checking is pointer comparison), the usual apply operations,
//! cofactors, satisfy counting and conversion to and from the
//! representations in [`xsynth_boolean`].
//!
//! # Complement edges
//!
//! A [`Bdd`] handle carries a *complement bit*: `f` and `¬f` share one
//! stored node and differ only in that bit, so negation is a bit flip —
//! O(1), allocation-free — and the DAG holds roughly half the nodes a
//! complement-free package would for negation-heavy workloads (the
//! paper's FPRM descent negates on every polarity flip and Davio
//! expansion). Canonicity is preserved by the standard normalization:
//! a complement may only be stored on the *low* (else) edge — the stored
//! high (then) edge is always regular — and there is a single regular
//! `one` terminal (`ZERO` is its complement). `mk` re-normalizes a
//! complemented then-edge by complementing both children and returning a
//! complemented handle, so two handles are equal if and only if they
//! denote the same function, exactly as before.
//!
//! # Concurrency
//!
//! A manager is a cheap handle (`Arc`) onto one shared substrate, and
//! [`BddManager::clone`] is O(1): the clone addresses the *same* DAG, so
//! handles created through any clone are valid — and canonical — through
//! every other. The substrate is lock-striped: nodes, the unique table and
//! the operation caches are split across [`NUM_SHARDS`] shards selected by
//! a deterministic hash of the node (or cache key), so threads hash-consing
//! different subfunctions rarely contend. Node *reads* (child traversal,
//! evaluation, counting) take no lock at all — the arena is append-only and
//! slots are published through `OnceLock`.
//!
//! The node cap ([`BddManager::set_node_limit`]) is a single atomic
//! allocation counter on the shared substrate: N worker threads driving
//! clones of one manager collectively observe one global cap, not N private
//! ones.
//!
//! # Examples
//!
//! ```
//! use xsynth_bdd::BddManager;
//!
//! let mut m = BddManager::new(3);
//! let (a, b, c) = (m.var(0), m.var(1), m.var(2));
//! let ab = m.and(a, b);
//! let f = m.or(ab, c);
//! let g = m.ite(a, b, c); // a·b + ¬a·c
//! assert_ne!(f, g);
//! assert_eq!(m.eval(f, 0b011), true);
//! // negation is a complement-bit flip: free, and an involution
//! let nf = m.not(f);
//! assert_eq!(m.not(nf), f);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use xsynth_boolean::{Sop, TruthTable, VarSet};

/// Error returned by the `try_` operation forms when an operation would
/// allocate past the manager's node cap (see
/// [`BddManager::set_node_limit`]).
///
/// The manager is left in a usable state: every handle created before the
/// failed operation remains valid, so callers can keep the best result
/// obtained so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeLimitExceeded {
    /// The node cap that was in force when allocation failed.
    pub limit: usize,
}

impl std::fmt::Display for NodeLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BDD node limit of {} nodes exceeded", self.limit)
    }
}

impl std::error::Error for NodeLimitExceeded {}

/// Number of shards the unique table, node arena and operation caches are
/// striped across.
pub const NUM_SHARDS: usize = 1 << SHARD_BITS;

const SHARD_BITS: u32 = 6;
const SHARD_MASK: u32 = (NUM_SHARDS as u32) - 1;
/// First arena chunk holds 2^10 slots; each subsequent chunk doubles.
const CHUNK_BASE_BITS: u32 = 10;
/// 16 doubling chunks cover the full 25-bit per-shard slot space (one
/// handle bit goes to the complement edge).
const MAX_CHUNKS: usize = 16;
const MAX_SLOT: u32 = (1 << (32 - SHARD_BITS - 1)) - 1;

/// A handle to a BDD node inside a [`BddManager`].
///
/// Handles are canonical: two handles from the same substrate (the manager
/// or any clone of it) are equal if and only if they denote the same
/// Boolean function. The numeric value of a handle encodes a complement
/// bit (bit 0 — `f` and `¬f` address the same stored node) plus the
/// node's shard and arena slot; under parallel construction the value a
/// given function gets depends on allocation interleaving, so nothing
/// semantic may depend on handle numbering — only on handle *equality*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant-one function: the package's single regular terminal.
    pub const ONE: Bdd = Bdd(0);
    /// The constant-zero function — the complement edge onto the `one`
    /// terminal.
    pub const ZERO: Bdd = Bdd(1);

    /// Whether this is a terminal (constant) node.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// Raw index, for debugging and statistics.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The complement bit (0 or 1) as a handle-XOR mask.
    fn cbit(self) -> u32 {
        self.0 & 1
    }

    /// This function negated: the same stored node, complement flipped.
    fn complement(self) -> Bdd {
        Bdd(self.0 ^ 1)
    }

    /// The regular (complement-stripped) handle of the stored node.
    fn regular(self) -> Bdd {
        Bdd(self.0 & !1)
    }

    /// XORs a complement mask (0 or 1) into the handle.
    fn xor_c(self, c: u32) -> Bdd {
        Bdd(self.0 ^ c)
    }

    fn shard(self) -> usize {
        ((self.0 >> 1) & SHARD_MASK) as usize
    }

    fn slot(self) -> u32 {
        self.0 >> (1 + SHARD_BITS)
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    /// Low (else) edge — the one edge a complement may be stored on.
    lo: Bdd,
    /// High (then) edge — always regular in canonical form.
    hi: Bdd,
}

const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Xor,
}

/// Append-only node storage for one shard: a fixed directory of doubling
/// chunks whose slots are published through `OnceLock`, so readers need no
/// lock and never observe a half-written node. Writers are already
/// serialized by the shard's unique-table mutex.
#[derive(Debug)]
struct Arena {
    chunks: [OnceLock<Box<[OnceLock<Node>]>>; MAX_CHUNKS],
}

impl Arena {
    fn new() -> Self {
        Arena {
            chunks: std::array::from_fn(|_| OnceLock::new()),
        }
    }

    /// Chunk index and offset of `slot`: chunk `c` starts at
    /// `2^BASE · (2^c − 1)` and holds `2^(BASE+c)` slots.
    fn locate(slot: u32) -> (usize, usize) {
        let c = u32::BITS - 1 - ((slot >> CHUNK_BASE_BITS) + 1).leading_zeros();
        let start = ((1u32 << c) - 1) << CHUNK_BASE_BITS;
        (c as usize, (slot - start) as usize)
    }

    fn get(&self, slot: u32) -> Node {
        let (c, off) = Self::locate(slot);
        *self.chunks[c]
            .get()
            .and_then(|chunk| chunk[off].get())
            .expect("BDD handle does not belong to this substrate")
    }

    /// Publishes `node` at `slot`. Caller holds the shard's unique-table
    /// lock, so slots are written exactly once, in order.
    fn set(&self, slot: u32, node: Node) {
        let (c, off) = Self::locate(slot);
        let chunk = self.chunks[c].get_or_init(|| {
            (0..1usize << (CHUNK_BASE_BITS as usize + c))
                .map(|_| OnceLock::new())
                .collect()
        });
        let _ = chunk[off].set(node);
    }
}

/// The unique table of one shard plus that shard's next free arena slot;
/// guarded by one mutex so lookup + allocate + insert is atomic and a node
/// can never be inserted twice.
#[derive(Debug, Default)]
struct UniqueTable {
    map: HashMap<(u32, Bdd, Bdd), Bdd>,
    len: u32,
}

#[derive(Debug)]
struct Shard {
    nodes: Arena,
    unique: Mutex<UniqueTable>,
    apply: Mutex<HashMap<(Op, Bdd, Bdd), Bdd>>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            nodes: Arena::new(),
            unique: Mutex::new(UniqueTable::default()),
            apply: Mutex::new(HashMap::new()),
        }
    }
}

/// The substrate all clones of one manager address.
#[derive(Debug)]
struct Shared {
    n: usize,
    shards: Vec<Shard>,
    /// Total nodes allocated, the terminal included — the single global
    /// counter the node cap is enforced against.
    node_count: AtomicUsize,
    /// The node cap; `usize::MAX` means uncapped.
    limit: AtomicUsize,
    apply_hits: AtomicU64,
    apply_misses: AtomicU64,
    /// Bumped by [`BddManager::try_reclaim`] each time the substrate is
    /// replaced wholesale. Handles are only meaningful within one
    /// generation; long-lived owners compare generations to notice that
    /// cached handles went stale.
    generation: u64,
}

/// Locks a shard-level mutex, ignoring poisoning: a panic inside the
/// package only ever fires *before* the guarded state is mutated (the
/// fault-injection site sits ahead of the allocation), so the data behind
/// a poisoned lock is still consistent and the fault-containment layers
/// above keep using the manager.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Shard selector: a deterministic (fixed-key) hash, so a key's shard —
/// and therefore the node set each shard ends up with — is stable across
/// runs and processes.
fn shard_of<T: Hash>(key: &T) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) & (NUM_SHARDS - 1)
}

/// Worker-thread count for the workspace's parallel fan-outs: the
/// `XSYNTH_THREADS` environment variable when set to a positive integer,
/// otherwise the machine's available parallelism, clamped to `cap` (the
/// number of independent work items). `XSYNTH_THREADS=1` forces every
/// fan-out onto the calling thread, which CI uses to run the determinism
/// and chaos suites across a thread-count matrix.
pub fn worker_threads(cap: usize) -> usize {
    let configured = std::env::var("XSYNTH_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t > 0);
    let threads = configured.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    threads.min(cap.max(1))
}

/// An arena of shared, reduced, ordered BDD nodes over a fixed number of
/// variables in natural index order.
///
/// Cloning a manager is O(1) and yields a new handle onto the *same*
/// substrate: handles created through any clone are valid and canonical
/// through every other, allocations count against one shared node cap, and
/// the unique table / operation caches are shared. This is what lets the
/// per-output synthesis workers and the polarity search fan out across
/// threads while hash-consing into one DAG.
#[derive(Debug, Clone)]
pub struct BddManager {
    shared: Arc<Shared>,
}

impl BddManager {
    /// Creates a manager for functions of `n` variables.
    pub fn new(n: usize) -> Self {
        let shards: Vec<Shard> = (0..NUM_SHARDS).map(|_| Shard::new()).collect();
        // the single terminal lives at slot 0 of shard 0, so its regular
        // handle is the fixed 0 (`ONE`) and its complement 1 (`ZERO`)
        shards[0].nodes.set(
            0,
            Node {
                var: TERMINAL_VAR,
                lo: Bdd::ONE,
                hi: Bdd::ONE,
            },
        );
        lock(&shards[0].unique).len = 1;
        BddManager {
            shared: Arc::new(Shared {
                n,
                shards,
                node_count: AtomicUsize::new(1),
                limit: AtomicUsize::new(usize::MAX),
                apply_hits: AtomicU64::new(0),
                apply_misses: AtomicU64::new(0),
                generation: 0,
            }),
        }
    }

    /// Creates a manager for `n` variables that refuses to grow past
    /// `limit` nodes (the terminal included). Operations must use the
    /// `try_` forms to observe the cap as an error rather than a panic.
    pub fn with_node_limit(n: usize, limit: usize) -> Self {
        let m = Self::new(n);
        m.shared.limit.store(limit, Ordering::Relaxed);
        m
    }

    /// Sets (`Some`) or clears (`None`) the node cap. Nodes already
    /// allocated are unaffected; only future allocations are checked. The
    /// cap lives on the shared substrate, so it governs this manager *and
    /// every clone of it* — N worker threads collectively stay under one
    /// global budget.
    pub fn set_node_limit(&mut self, limit: Option<usize>) {
        self.shared
            .limit
            .store(limit.unwrap_or(usize::MAX), Ordering::Relaxed);
    }

    /// The node cap, if one is set.
    pub fn node_limit(&self) -> Option<usize> {
        match self.shared.limit.load(Ordering::Relaxed) {
            usize::MAX => None,
            l => Some(l),
        }
    }

    /// The substrate generation this handle addresses. Starts at 0 and is
    /// bumped by each successful [`BddManager::try_reclaim`]; two handles
    /// with different generations share no nodes, so a cached [`Bdd`]
    /// stamped with an older generation must be discarded, not resolved.
    pub fn generation(&self) -> u64 {
        self.shared.generation
    }

    /// Generational reclamation for long-lived owners (the daemon's engine
    /// pool): replaces the entire substrate — unique tables, operation
    /// caches, arena — with a fresh, empty generation, releasing every
    /// node at once instead of pinning dead ones against the global cap.
    ///
    /// Reclamation is refused (returns `false`, substrate untouched) while
    /// any other clone of this manager is alive, because their handles
    /// would dangle into the dropped arena. The node cap carries over; the
    /// generation counter increments so stale-handle caches can tell.
    pub fn try_reclaim(&mut self) -> bool {
        if Arc::get_mut(&mut self.shared).is_none() {
            return false;
        }
        let limit = self.shared.limit.load(Ordering::Relaxed);
        let next_gen = self.shared.generation + 1;
        let mut fresh = BddManager::new(self.shared.n);
        fresh.shared.limit.store(limit, Ordering::Relaxed);
        Arc::get_mut(&mut fresh.shared)
            .expect("freshly constructed Arc is unique")
            .generation = next_gen;
        self.shared = fresh.shared;
        true
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.shared.n
    }

    /// Total number of nodes allocated across all clones of this manager
    /// (including the terminal). `f` and `¬f` share one node, so building
    /// the negation of an existing function allocates nothing.
    pub fn num_nodes(&self) -> usize {
        self.shared.node_count.load(Ordering::Relaxed)
    }

    /// Apply-cache hits and misses accumulated over the life of the
    /// substrate (all clones, all threads). The *ratio* proves cache
    /// effectiveness — e.g. that commutative operand normalization turns
    /// `and(g, f)` into a hit after `and(f, g)`, that `or` shares the
    /// `and` cache through De Morgan, and that `xor` keys are
    /// complement-stripped so `xor(¬f, g)` hits the `xor(f, g)` entry —
    /// but the split between hits and misses is schedule-dependent under
    /// parallelism, so callers must report these as gauges, never as
    /// determinism-checked counters.
    pub fn apply_cache_stats(&self) -> (u64, u64) {
        (
            self.shared.apply_hits.load(Ordering::Relaxed),
            self.shared.apply_misses.load(Ordering::Relaxed),
        )
    }

    /// Per-shard node occupancy: how many nodes each of the [`NUM_SHARDS`]
    /// unique-table shards holds. Because the shard selector is a fixed
    /// deterministic hash, the distribution is a property of the node set,
    /// not of scheduling — a skewed profile here means one shard's mutex
    /// carries most of the construction traffic. Surfaced through the
    /// daemon's `metrics` exposition.
    pub fn shard_occupancy(&self) -> Vec<usize> {
        self.shared
            .shards
            .iter()
            .map(|s| lock(&s.unique).len as usize)
            .collect()
    }

    /// Canonical-form violations in the stored node set: entries whose
    /// then-edge carries a complement, whose children are equal (the
    /// reduction rule should have elided the node), or whose unique-table
    /// key disagrees with the stored node. Always 0 — exposed so the
    /// concurrency suites can assert the invariant after racing threads
    /// hammer the substrate.
    #[doc(hidden)]
    pub fn canonical_violations(&self) -> usize {
        let mut violations = 0;
        for (sh, shard) in self.shared.shards.iter().enumerate() {
            let tab = lock(&shard.unique);
            for (&(var, lo, hi), &id) in tab.map.iter() {
                let n = shard.nodes.get(id.slot());
                let stored_matches = n.var == var && n.lo == lo && n.hi == hi;
                let id_in_shard = id.shard() == sh && id.cbit() == 0;
                if hi.cbit() != 0 || lo == hi || !stored_matches || !id_in_shard {
                    violations += 1;
                }
            }
        }
        violations
    }

    /// The constant function `value`.
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::ONE
        } else {
            Bdd::ZERO
        }
    }

    /// Unwraps a `try_` result for the infallible public forms, which are
    /// only used on managers without a node cap.
    fn expect_ok<T>(r: Result<T, NodeLimitExceeded>) -> T {
        r.unwrap_or_else(|e| panic!("{e} (use the try_ operation forms under a node cap)"))
    }

    /// The projection function of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.num_vars()`, or if a node cap is set and
    /// tripped (use [`BddManager::try_var`] under a budget).
    pub fn var(&mut self, var: usize) -> Bdd {
        Self::expect_ok(self.try_var(var))
    }

    /// Fallible form of [`BddManager::var`].
    pub fn try_var(&mut self, var: usize) -> Result<Bdd, NodeLimitExceeded> {
        assert!(var < self.shared.n, "variable {var} out of range");
        self.mk(var as u32, Bdd::ZERO, Bdd::ONE)
    }

    /// The complemented projection `¬var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.num_vars()`, or if a node cap is set and
    /// tripped (use [`BddManager::try_nvar`] under a budget).
    pub fn nvar(&mut self, var: usize) -> Bdd {
        Self::expect_ok(self.try_nvar(var))
    }

    /// Fallible form of [`BddManager::nvar`]. Shares the projection's
    /// node: after `var(v)` this allocates nothing.
    pub fn try_nvar(&mut self, var: usize) -> Result<Bdd, NodeLimitExceeded> {
        assert!(var < self.shared.n, "variable {var} out of range");
        self.mk(var as u32, Bdd::ONE, Bdd::ZERO)
    }

    /// Hash-conses `(var, lo, hi)` after complement normalization: a
    /// complemented then-edge is rewritten by complementing both children
    /// and returning a complemented handle, so the *stored* then-edge is
    /// always regular and `f`/`¬f` resolve to one node. One shard
    /// (selected by node hash) owns both the unique-table entry and the
    /// arena slot, and its mutex is held across lookup + cap check +
    /// allocate + insert, so two threads racing on the same node serialize
    /// and double-insertion is impossible. Lock order is strictly
    /// unique(shard) → nothing: the arena write needs no lock and no other
    /// mutex is taken while the unique lock is held, so interleaved
    /// operations cannot deadlock.
    fn mk(&self, var: u32, lo: Bdd, hi: Bdd) -> Result<Bdd, NodeLimitExceeded> {
        if lo == hi {
            return Ok(lo);
        }
        // canonical form: complements live on the else-edge only
        let c = hi.cbit();
        let (lo, hi) = (lo.xor_c(c), hi.xor_c(c));
        let sh = shard_of(&(var, lo, hi));
        let shard = &self.shared.shards[sh];
        let mut tab = lock(&shard.unique);
        if let Some(&b) = tab.map.get(&(var, lo, hi)) {
            return Ok(b.xor_c(c));
        }
        let limit = self.shared.limit.load(Ordering::Relaxed);
        xsynth_trace::fail_point!("bdd.alloc", Err(NodeLimitExceeded { limit }));
        // the global cap: claim one allocation or refuse
        if self
            .shared
            .node_count
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
                (c < limit).then_some(c + 1)
            })
            .is_err()
        {
            return Err(NodeLimitExceeded { limit });
        }
        let slot = tab.len;
        if slot > MAX_SLOT {
            // handle space exhausted in this shard; give the claim back
            self.shared.node_count.fetch_sub(1, Ordering::Relaxed);
            return Err(NodeLimitExceeded { limit });
        }
        let id = Bdd(((slot << SHARD_BITS) | sh as u32) << 1);
        shard.nodes.set(slot, Node { var, lo, hi });
        tab.len += 1;
        tab.map.insert((var, lo, hi), id);
        Ok(id.xor_c(c))
    }

    /// The stored node a handle (of either polarity) addresses.
    fn node(&self, b: Bdd) -> Node {
        self.shared.shards[b.shard()].nodes.get(b.slot())
    }

    /// Top variable of a non-constant handle.
    fn var_of(&self, b: Bdd) -> u32 {
        self.node(b).var
    }

    /// Cofactors of `b` (non-constant) at `var`, which must be at or above
    /// `b`'s top variable. The stored children inherit the handle's
    /// complement bit — the identity `(¬f)|ₓ = ¬(f|ₓ)` as a handle XOR.
    fn cofactors_at(&self, b: Bdd, var: u32) -> (Bdd, Bdd) {
        let n = self.node(b);
        if n.var == var {
            let c = b.cbit();
            (n.lo.xor_c(c), n.hi.xor_c(c))
        } else {
            (b, b)
        }
    }

    /// The top variable of `b`, or `None` for constants.
    pub fn top_var(&self, b: Bdd) -> Option<usize> {
        if b.is_const() {
            None
        } else {
            Some(self.node(b).var as usize)
        }
    }

    /// The low (var = 0) child, with the handle's complement resolved;
    /// `b` itself for constants.
    pub fn low(&self, b: Bdd) -> Bdd {
        if b.is_const() {
            b
        } else {
            self.node(b).lo.xor_c(b.cbit())
        }
    }

    /// The high (var = 1) child, with the handle's complement resolved;
    /// `b` itself for constants.
    pub fn high(&self, b: Bdd) -> Bdd {
        if b.is_const() {
            b
        } else {
            self.node(b).hi.xor_c(b.cbit())
        }
    }

    fn and_rec(&self, f: Bdd, g: Bdd) -> Result<Bdd, NodeLimitExceeded> {
        if f == Bdd::ZERO || g == Bdd::ZERO || f == g.complement() {
            return Ok(Bdd::ZERO);
        }
        if f == Bdd::ONE || f == g {
            return Ok(g);
        }
        if g == Bdd::ONE {
            return Ok(f);
        }
        // commutative: normalize operand order for the cache, so
        // and(g, f) hits the entry and(f, g) populated
        let key = if f <= g {
            (Op::And, f, g)
        } else {
            (Op::And, g, f)
        };
        let cache = &self.shared.shards[shard_of(&key)].apply;
        if let Some(&r) = lock(cache).get(&key) {
            self.shared.apply_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(r);
        }
        self.shared.apply_misses.fetch_add(1, Ordering::Relaxed);
        let var = self.var_of(f).min(self.var_of(g));
        let (f0, f1) = self.cofactors_at(f, var);
        let (g0, g1) = self.cofactors_at(g, var);
        let lo = self.and_rec(f0, g0)?;
        let hi = self.and_rec(f1, g1)?;
        let r = self.mk(var, lo, hi)?;
        lock(cache).insert(key, r);
        Ok(r)
    }

    fn xor_rec(&self, f: Bdd, g: Bdd) -> Result<Bdd, NodeLimitExceeded> {
        if f == Bdd::ZERO {
            return Ok(g);
        }
        if g == Bdd::ZERO {
            return Ok(f);
        }
        if f == Bdd::ONE {
            return Ok(g.complement());
        }
        if g == Bdd::ONE {
            return Ok(f.complement());
        }
        if f == g {
            return Ok(Bdd::ZERO);
        }
        if f == g.complement() {
            return Ok(Bdd::ONE);
        }
        // xor is complement-invariant: strip both complement bits from
        // the key and re-apply their parity to the result, so xor(¬f, g)
        // hits the entry xor(f, g) populated (and costs no new nodes)
        let c = f.cbit() ^ g.cbit();
        let (f, g) = (f.regular(), g.regular());
        let key = if f <= g {
            (Op::Xor, f, g)
        } else {
            (Op::Xor, g, f)
        };
        let cache = &self.shared.shards[shard_of(&key)].apply;
        if let Some(&r) = lock(cache).get(&key) {
            self.shared.apply_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(r.xor_c(c));
        }
        self.shared.apply_misses.fetch_add(1, Ordering::Relaxed);
        let var = self.var_of(f).min(self.var_of(g));
        let (f0, f1) = self.cofactors_at(f, var);
        let (g0, g1) = self.cofactors_at(g, var);
        let lo = self.xor_rec(f0, g0)?;
        let hi = self.xor_rec(f1, g1)?;
        let r = self.mk(var, lo, hi)?;
        lock(cache).insert(key, r);
        Ok(r.xor_c(c))
    }

    /// Conjunction.
    ///
    /// # Panics
    ///
    /// Panics only if a node cap is set and tripped (use
    /// [`BddManager::try_and`] under a budget).
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Self::expect_ok(self.and_rec(f, g))
    }

    /// Fallible form of [`BddManager::and`].
    pub fn try_and(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, NodeLimitExceeded> {
        self.and_rec(f, g)
    }

    /// Disjunction, computed by De Morgan over the conjunction — with
    /// complement edges the negations are free, and `or(f, g)` shares the
    /// apply-cache entries of `and(¬f, ¬g)`.
    ///
    /// # Panics
    ///
    /// Panics only if a node cap is set and tripped (use
    /// [`BddManager::try_or`] under a budget).
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Self::expect_ok(self.try_or(f, g))
    }

    /// Fallible form of [`BddManager::or`].
    pub fn try_or(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, NodeLimitExceeded> {
        Ok(self.and_rec(f.complement(), g.complement())?.complement())
    }

    /// Exclusive or.
    ///
    /// # Panics
    ///
    /// Panics only if a node cap is set and tripped (use
    /// [`BddManager::try_xor`] under a budget).
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Self::expect_ok(self.xor_rec(f, g))
    }

    /// Fallible form of [`BddManager::xor`].
    pub fn try_xor(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, NodeLimitExceeded> {
        self.xor_rec(f, g)
    }

    /// Negation: a complement-bit flip. O(1), allocation-free, and never
    /// fails — it cannot trip a node cap because it creates no node.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        f.complement()
    }

    /// Fallible form of [`BddManager::not`], kept for API symmetry with
    /// the other operations; with complement edges it is infallible.
    pub fn try_not(&mut self, f: Bdd) -> Result<Bdd, NodeLimitExceeded> {
        Ok(f.complement())
    }

    /// If-then-else: `c·t + ¬c·e`.
    ///
    /// # Panics
    ///
    /// Panics only if a node cap is set and tripped (use
    /// [`BddManager::try_ite`] under a budget).
    pub fn ite(&mut self, c: Bdd, t: Bdd, e: Bdd) -> Bdd {
        Self::expect_ok(self.try_ite(c, t, e))
    }

    /// Fallible form of [`BddManager::ite`].
    pub fn try_ite(&mut self, c: Bdd, t: Bdd, e: Bdd) -> Result<Bdd, NodeLimitExceeded> {
        let ct = self.try_and(c, t)?;
        let nce = self.try_and(c.complement(), e)?;
        self.try_or(ct, nce)
    }

    /// Cofactor of `f` with `var` fixed to `phase`.
    ///
    /// # Panics
    ///
    /// Panics only if a node cap is set and tripped (use
    /// [`BddManager::try_cofactor`] under a budget).
    pub fn cofactor(&mut self, f: Bdd, var: usize, phase: bool) -> Bdd {
        Self::expect_ok(self.try_cofactor(f, var, phase))
    }

    /// Fallible form of [`BddManager::cofactor`].
    pub fn try_cofactor(
        &mut self,
        f: Bdd,
        var: usize,
        phase: bool,
    ) -> Result<Bdd, NodeLimitExceeded> {
        let var = var as u32;
        let mut memo = HashMap::new();
        self.cofactor_rec(f, var, phase, &mut memo)
    }

    fn cofactor_rec(
        &self,
        f: Bdd,
        var: u32,
        phase: bool,
        memo: &mut HashMap<Bdd, Bdd>,
    ) -> Result<Bdd, NodeLimitExceeded> {
        if f.is_const() {
            return Ok(f);
        }
        let n = self.node(f);
        if n.var > var {
            return Ok(f);
        }
        if let Some(&r) = memo.get(&f) {
            return Ok(r);
        }
        let c = f.cbit();
        let r = if n.var == var {
            if phase {
                n.hi.xor_c(c)
            } else {
                n.lo.xor_c(c)
            }
        } else {
            let lo = self.cofactor_rec(n.lo.xor_c(c), var, phase, memo)?;
            let hi = self.cofactor_rec(n.hi.xor_c(c), var, phase, memo)?;
            self.mk(n.var, lo, hi)?
        };
        memo.insert(f, r);
        Ok(r)
    }

    /// Evaluates `f` on the assignment encoded in `minterm` (bit `i` =
    /// variable `i`).
    pub fn eval(&self, f: Bdd, minterm: u64) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let n = self.node(cur);
            let next = if minterm & (1u64 << n.var) != 0 {
                n.hi
            } else {
                n.lo
            };
            // complement parity accumulates down the path
            cur = next.xor_c(cur.cbit());
        }
        cur == Bdd::ONE
    }

    /// Number of satisfying assignments over all `n` variables, computed
    /// exactly by integer node-weight accumulation (no float rounding, so
    /// counts stay exact past the ~52-variable precision limit of `f64`).
    ///
    /// Saturates at `u128::MAX` for managers over 128 or more variables,
    /// where the count itself can overflow.
    pub fn count_sat(&self, f: Bdd) -> u128 {
        // weight(b) = satisfying assignments over variables >= level(b),
        // where level is the node's variable index and n for terminals.
        let mut memo: HashMap<Bdd, u128> = HashMap::new();
        let w = self.sat_weight(f, &mut memo);
        Self::shl_sat(w, self.level(f))
    }

    fn level(&self, b: Bdd) -> u32 {
        if b.is_const() {
            self.shared.n as u32
        } else {
            self.node(b).var
        }
    }

    fn shl_sat(v: u128, k: u32) -> u128 {
        if v == 0 {
            0
        } else if k >= 128 || v.leading_zeros() < k {
            u128::MAX
        } else {
            v << k
        }
    }

    fn sat_weight(&self, f: Bdd, memo: &mut HashMap<Bdd, u128>) -> u128 {
        if f == Bdd::ZERO {
            return 0;
        }
        if f == Bdd::ONE {
            return 1;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        // memoized on the full handle: f and ¬f have different weights,
        // so the complement bit is part of the key
        let (lo_h, hi_h) = (self.low(f), self.high(f));
        let var = self.node(f).var;
        let lo = self.sat_weight(lo_h, memo);
        let hi = self.sat_weight(hi_h, memo);
        let lo = Self::shl_sat(lo, self.level(lo_h) - var - 1);
        let hi = Self::shl_sat(hi, self.level(hi_h) - var - 1);
        let r = lo.saturating_add(hi);
        memo.insert(f, r);
        r
    }

    /// Fraction of the input space on which `f` is one (the signal
    /// probability under uniform independent inputs).
    pub fn sat_fraction(&self, f: Bdd) -> f64 {
        let mut memo = HashMap::new();
        self.sat_frac(f, &mut memo)
    }

    fn sat_frac(&self, f: Bdd, memo: &mut HashMap<Bdd, f64>) -> f64 {
        if f == Bdd::ZERO {
            return 0.0;
        }
        if f == Bdd::ONE {
            return 1.0;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let r = 0.5 * self.sat_frac(self.low(f), memo) + 0.5 * self.sat_frac(self.high(f), memo);
        memo.insert(f, r);
        r
    }

    /// The set of variables `f` depends on.
    pub fn support(&self, f: Bdd) -> VarSet {
        let mut seen = std::collections::HashSet::new();
        let mut sup = VarSet::new();
        // complement bits never change the support; traverse the stored
        // (regular) node graph so f and ¬f walk identical sets
        let mut stack = vec![f.regular()];
        while let Some(b) = stack.pop() {
            if b.is_const() || !seen.insert(b) {
                continue;
            }
            let n = self.node(b);
            sup.insert(n.var as usize);
            stack.push(n.lo.regular());
            stack.push(n.hi.regular());
        }
        sup
    }

    /// Number of distinct internal nodes in the DAG rooted at `f`.
    /// Complement edges are transparent: `f` and `¬f` share every node,
    /// so their sizes are equal.
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.regular()];
        let mut count = 0;
        while let Some(b) = stack.pop() {
            if b.is_const() || !seen.insert(b) {
                continue;
            }
            count += 1;
            let n = self.node(b);
            stack.push(n.lo.regular());
            stack.push(n.hi.regular());
        }
        count
    }

    #[allow(clippy::wrong_self_convention)] // manager-style constructor, as in CUDD
    /// Builds a BDD from a truth table.
    ///
    /// # Panics
    ///
    /// Panics if the table's arity differs from the manager's, or if a
    /// node cap is set and tripped (use [`BddManager::try_from_table`]
    /// under a budget).
    pub fn from_table(&mut self, t: &TruthTable) -> Bdd {
        Self::expect_ok(self.try_from_table(t))
    }

    #[allow(clippy::wrong_self_convention)]
    /// Fallible form of [`BddManager::from_table`]. Still panics on an
    /// arity mismatch, which is a programming error.
    pub fn try_from_table(&mut self, t: &TruthTable) -> Result<Bdd, NodeLimitExceeded> {
        assert_eq!(t.num_vars(), self.shared.n, "arity mismatch");
        self.from_table_rec(t, 0, 0)
    }

    #[allow(clippy::wrong_self_convention)]
    fn from_table_rec(
        &self,
        t: &TruthTable,
        var: usize,
        prefix: u64,
    ) -> Result<Bdd, NodeLimitExceeded> {
        if var == self.shared.n {
            return Ok(self.constant(t.eval(prefix)));
        }
        let lo = self.from_table_rec(t, var + 1, prefix)?;
        let hi = self.from_table_rec(t, var + 1, prefix | (1 << var))?;
        self.mk(var as u32, lo, hi)
    }

    /// Builds a BDD from a sum-of-products cover.
    ///
    /// # Panics
    ///
    /// Panics only if a node cap is set and tripped (use
    /// [`BddManager::try_from_sop`] under a budget).
    pub fn from_sop(&mut self, s: &Sop) -> Bdd {
        Self::expect_ok(self.try_from_sop(s))
    }

    /// Fallible form of [`BddManager::from_sop`].
    pub fn try_from_sop(&mut self, s: &Sop) -> Result<Bdd, NodeLimitExceeded> {
        let mut acc = Bdd::ZERO;
        for c in s.cubes() {
            let mut cube = Bdd::ONE;
            // AND literals from highest variable down so intermediate BDDs
            // stay small under the natural order.
            let mut lits: Vec<(usize, bool)> = c
                .positive()
                .iter()
                .map(|v| (v, true))
                .chain(c.negative().iter().map(|v| (v, false)))
                .collect();
            lits.sort_unstable_by_key(|l| std::cmp::Reverse(l.0));
            for (v, ph) in lits {
                let lit = if ph {
                    self.try_var(v)?
                } else {
                    self.try_nvar(v)?
                };
                cube = self.try_and(cube, lit)?;
            }
            acc = self.try_or(acc, cube)?;
        }
        Ok(acc)
    }

    /// Copies the DAGs rooted at `roots` into `dst` (same arity),
    /// returning the corresponding handles in `dst`, in order.
    ///
    /// Only nodes *reachable* from `roots` are allocated in `dst` — this
    /// is garbage collection by copy: a construction's dead intermediate
    /// nodes (hash-consed but no longer referenced) stay behind in
    /// `self`, so building in a scratch manager and copying the live
    /// roots out leaves the destination substrate holding exactly the
    /// live structure. Complement bits are preserved; shared nodes are
    /// copied once.
    ///
    /// # Panics
    ///
    /// Panics on an arity mismatch, or if `dst` has a node cap and it
    /// trips (use [`BddManager::try_copy_roots`] under a budget).
    pub fn copy_roots(&self, roots: &[Bdd], dst: &mut BddManager) -> Vec<Bdd> {
        Self::expect_ok(self.try_copy_roots(roots, dst))
    }

    /// Fallible form of [`BddManager::copy_roots`]. Still panics on an
    /// arity mismatch, which is a programming error.
    pub fn try_copy_roots(
        &self,
        roots: &[Bdd],
        dst: &mut BddManager,
    ) -> Result<Vec<Bdd>, NodeLimitExceeded> {
        assert_eq!(self.shared.n, dst.shared.n, "arity mismatch");
        let mut memo: HashMap<Bdd, Bdd> = HashMap::new();
        roots
            .iter()
            .map(|&r| self.copy_rec(r, dst, &mut memo))
            .collect()
    }

    fn copy_rec(
        &self,
        f: Bdd,
        dst: &BddManager,
        memo: &mut HashMap<Bdd, Bdd>,
    ) -> Result<Bdd, NodeLimitExceeded> {
        if f.is_const() {
            return Ok(f);
        }
        // memoize on the regular handle so f and ¬f share one copy
        let reg = f.regular();
        if let Some(&r) = memo.get(&reg) {
            return Ok(r.xor_c(f.cbit()));
        }
        let n = self.node(reg);
        let lo = self.copy_rec(n.lo, dst, memo)?;
        let hi = self.copy_rec(n.hi, dst, memo)?;
        let r = dst.mk(n.var, lo, hi)?;
        memo.insert(reg, r);
        Ok(r.xor_c(f.cbit()))
    }

    /// Converts `f` to a truth table (requires `n ≤ MAX_TT_VARS`).
    pub fn to_table(&self, f: Bdd) -> TruthTable {
        TruthTable::from_fn(self.shared.n, |m| self.eval(f, m))
    }

    /// One satisfying assignment of `f` (variables outside the support are
    /// set to 0), or `None` when `f` is unsatisfiable.
    pub fn any_sat(&self, f: Bdd) -> Option<Vec<bool>> {
        if f == Bdd::ZERO {
            return None;
        }
        let mut assignment = vec![false; self.shared.n];
        let mut cur = f;
        while !cur.is_const() {
            let var = self.node(cur).var as usize;
            let lo = self.low(cur);
            if lo != Bdd::ZERO {
                cur = lo;
            } else {
                assignment[var] = true;
                cur = self.high(cur);
            }
        }
        debug_assert_eq!(cur, Bdd::ONE, "reduced BDDs reach 1 by avoiding 0");
        Some(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsynth_boolean::Cube;

    #[test]
    fn canonical_equality() {
        let mut m = BddManager::new(3);
        let (a, b) = (m.var(0), m.var(1));
        let ab = m.and(a, b);
        let ba = m.and(b, a);
        assert_eq!(ab, ba);
        let na = m.not(a);
        let nna = m.not(na);
        assert_eq!(a, nna);
    }

    #[test]
    fn complement_edges_share_nodes_and_negation_is_free() {
        let mut m = BddManager::new(4);
        assert_eq!(Bdd::ZERO, Bdd::ONE.complement());
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let ab = m.and(a, b);
        let f = m.xor(ab, c);
        let before = m.num_nodes();
        // negation allocates nothing: f and ¬f share one stored node
        let nf = m.not(f);
        assert_eq!(m.num_nodes(), before, "not must be allocation-free");
        assert_ne!(nf, f);
        assert_eq!(m.not(nf), f);
        assert_eq!(m.size(nf), m.size(f), "f and ¬f share the whole DAG");
        // the complemented projection rides the projection's node
        let na = m.nvar(0);
        assert_eq!(m.num_nodes(), before, "nvar reuses var's node");
        assert_eq!(na, m.not(a));
        assert_eq!(m.canonical_violations(), 0);
    }

    #[test]
    fn shard_occupancy_sums_to_num_nodes() {
        let mut m = BddManager::new(6);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let ab = m.and(a, b);
        let _ = m.xor(ab, c);
        let occ = m.shard_occupancy();
        assert_eq!(occ.len(), NUM_SHARDS);
        assert_eq!(occ.iter().sum::<usize>(), m.num_nodes());
    }

    #[test]
    fn stored_then_edges_are_always_regular() {
        let mut m = BddManager::new(5);
        let t = TruthTable::from_fn(5, |v| (v * 31 + 7) % 3 == 0);
        let f = m.from_table(&t);
        let g = m.not(f);
        let x = m.xor(f, g);
        assert_eq!(x, Bdd::ONE, "f xor ¬f is a tautology");
        assert_eq!(m.canonical_violations(), 0);
    }

    #[test]
    fn demorgan() {
        let mut m = BddManager::new(2);
        let (a, b) = (m.var(0), m.var(1));
        let and = m.and(a, b);
        let nand = m.not(and);
        let (na, nb) = (m.not(a), m.not(b));
        let or = m.or(na, nb);
        assert_eq!(nand, or);
    }

    #[test]
    fn xor_identities() {
        let mut m = BddManager::new(4);
        let (a, b) = (m.var(0), m.var(1));
        let x = m.xor(a, b);
        let x2 = m.xor(x, b);
        assert_eq!(x2, a);
        let zero = m.xor(a, a);
        assert_eq!(zero, Bdd::ZERO);
        let one = m.constant(true);
        let nx = m.xor(x, one);
        let notx = m.not(x);
        assert_eq!(nx, notx);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut m = BddManager::new(3);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        for mt in 0..8u64 {
            let expect = (mt & 1 != 0 && mt & 2 != 0) || mt & 4 != 0;
            assert_eq!(m.eval(f, mt), expect);
        }
        // the complement evaluates complemented everywhere
        let nf = m.not(f);
        for mt in 0..8u64 {
            assert_eq!(m.eval(nf, mt), !m.eval(f, mt));
        }
    }

    #[test]
    fn table_roundtrip() {
        let t = TruthTable::from_fn(6, |m| (m * 37 + 11) % 5 < 2);
        let mut m = BddManager::new(6);
        let f = m.from_table(&t);
        assert_eq!(m.to_table(f), t);
        assert_eq!(m.count_sat(f), t.count_ones() as u128);
        // negation inverts the count over the full space
        let nf = m.not(f);
        assert_eq!(m.count_sat(nf), (1u128 << 6) - t.count_ones() as u128);
    }

    #[test]
    fn sop_agrees_with_table() {
        let s = Sop::from_cubes([
            Cube::new([0, 2], []).unwrap(),
            Cube::new([1], [3]).unwrap(),
            Cube::new([], [0, 1]).unwrap(),
        ]);
        let t = s.to_table(4);
        let mut m = BddManager::new(4);
        let via_sop = m.from_sop(&s);
        let via_tab = m.from_table(&t);
        assert_eq!(via_sop, via_tab);
    }

    #[test]
    fn cofactor_and_support() {
        let mut m = BddManager::new(3);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let bc = m.and(b, c);
        let f = m.ite(a, bc, c);
        let f1 = m.cofactor(f, 0, true);
        assert_eq!(f1, bc);
        let f0 = m.cofactor(f, 0, false);
        assert_eq!(f0, c);
        let sup = m.support(f);
        assert_eq!(sup, VarSet::from_vars([0, 1, 2]));
        assert!(m.support(c).contains(2));
        assert_eq!(m.support(Bdd::ONE), VarSet::new());
        // cofactoring commutes with complement
        let nf = m.not(f);
        let nf1 = m.cofactor(nf, 0, true);
        assert_eq!(nf1, m.not(bc));
        assert_eq!(m.support(nf), sup);
    }

    #[test]
    fn sat_fraction_of_var() {
        let mut m = BddManager::new(5);
        let a = m.var(3);
        assert_eq!(m.sat_fraction(a), 0.5);
        let b = m.var(1);
        let ab = m.and(a, b);
        assert_eq!(m.sat_fraction(ab), 0.25);
        assert_eq!(m.count_sat(ab), 8);
        let nab = m.not(ab);
        assert_eq!(m.sat_fraction(nab), 0.75);
        assert_eq!(m.count_sat(nab), 24);
    }

    #[test]
    fn adder_bdd_is_compact() {
        // carry-out of an 8-bit adder has a linear-size BDD with interleaved
        // variable order.
        let n = 16;
        let mut m = BddManager::new(n);
        let mut carry = Bdd::ZERO;
        for i in 0..8 {
            let a = m.var(2 * i);
            let b = m.var(2 * i + 1);
            let ab = m.and(a, b);
            let axb = m.xor(a, b);
            let t = m.and(axb, carry);
            carry = m.or(ab, t);
        }
        assert!(m.size(carry) <= 3 * 8, "adder carry BDD should be linear");
    }

    #[test]
    fn size_counts_shared_nodes_once() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        assert_eq!(m.size(a), 1);
        let b = m.var(1);
        let x = m.xor(a, b);
        assert_eq!(m.size(x), 2, "xor shares b's node via a complement edge");
    }

    #[test]
    fn any_sat_finds_witnesses() {
        let mut m = BddManager::new(4);
        let (a, b) = (m.var(0), m.var(3));
        let nb = m.not(b);
        let f = m.and(a, nb);
        let w = m.any_sat(f).expect("satisfiable");
        assert!(w[0] && !w[3]);
        assert!(m.any_sat(Bdd::ZERO).is_none());
        assert_eq!(m.any_sat(Bdd::ONE), Some(vec![false; 4]));
        // a complemented root still yields a valid witness
        let nf = m.not(f);
        let w = m.any_sat(nf).expect("satisfiable");
        assert!(m.eval(
            nf,
            w.iter()
                .enumerate()
                .fold(0u64, |acc, (i, &bit)| { acc | (u64::from(bit) << i) })
        ));
    }

    #[test]
    fn cofactor_of_unrelated_var_is_identity() {
        let mut m = BddManager::new(4);
        let (a, b) = (m.var(0), m.var(1));
        let f = m.and(a, b);
        assert_eq!(m.cofactor(f, 3, true), f);
        assert_eq!(m.cofactor(f, 3, false), f);
    }

    #[test]
    fn count_sat_is_exact_at_60_vars() {
        // OR of 60 variables has 2^60 - 1 minterms; the old f64 path
        // rounded this to 2^60 exactly (off by one past 52 bits of
        // mantissa).
        let n = 60;
        let mut m = BddManager::new(n);
        let mut f = Bdd::ZERO;
        for v in 0..n {
            let x = m.var(v);
            f = m.or(f, x);
        }
        assert_eq!(m.count_sat(f), (1u128 << 60) - 1);
        // AND of all 60 variables: exactly one minterm.
        let mut g = Bdd::ONE;
        for v in 0..n {
            let x = m.var(v);
            g = m.and(g, x);
        }
        assert_eq!(m.count_sat(g), 1);
        assert_eq!(m.count_sat(Bdd::ONE), 1u128 << 60);
        assert_eq!(m.count_sat(Bdd::ZERO), 0);
    }

    #[test]
    fn count_sat_wide_free_variables() {
        // A single variable among 100: half the space is satisfying, and
        // the free variables on both sides of the tested one must be
        // accounted for exactly.
        let mut m = BddManager::new(100);
        let x = m.var(57);
        assert_eq!(m.count_sat(x), 1u128 << 99);
    }

    #[test]
    fn node_limit_trips_as_error_and_keeps_manager_usable() {
        let mut m = BddManager::with_node_limit(8, 3);
        assert_eq!(m.node_limit(), Some(3));
        let a = m.try_var(0).unwrap();
        let b = m.try_var(1).unwrap();
        // The manager is at its cap now (the terminal + 2 vars); any new
        // node must fail with the typed error.
        let err = m.try_and(a, b).unwrap_err();
        assert_eq!(err, NodeLimitExceeded { limit: 3 });
        // Cache-hit and reduction paths still work without allocating —
        // and so does negation, which never allocates at all.
        assert_eq!(m.try_and(a, a).unwrap(), a);
        assert_eq!(m.try_or(a, Bdd::ONE).unwrap(), Bdd::ONE);
        let na = m.try_not(a).unwrap();
        assert_eq!(m.try_not(na).unwrap(), a);
        // Raising the cap lets the failed operation through.
        m.set_node_limit(Some(64));
        let ab = m.try_and(a, b).unwrap();
        assert!(!ab.is_const());
        m.set_node_limit(None);
        assert_eq!(m.node_limit(), None);
    }

    #[test]
    fn reclaim_resets_nodes_and_bumps_generation() {
        let mut m = BddManager::with_node_limit(8, 1 << 20);
        assert_eq!(m.generation(), 0);
        let a = m.var(0);
        let b = m.var(1);
        m.and(a, b);
        let grown = m.num_nodes();
        assert!(grown > 1);
        assert!(m.try_reclaim());
        assert_eq!(m.generation(), 1);
        assert_eq!(m.num_nodes(), 1, "only the terminal survives reclamation");
        assert_eq!(m.node_limit(), Some(1 << 20), "cap carries over");
        // the fresh generation is fully usable
        let a2 = m.var(0);
        let b2 = m.var(1);
        assert!(!m.and(a2, b2).is_const());
    }

    #[test]
    fn reclaim_refused_while_clones_are_alive() {
        let mut m = BddManager::new(4);
        let clone = m.clone();
        let a = m.var(0);
        assert!(!m.try_reclaim(), "a live clone pins the substrate");
        assert_eq!(m.generation(), 0);
        // existing handles stay valid because nothing was dropped
        assert_eq!(m.and(a, Bdd::ONE), a);
        drop(clone);
        assert!(m.try_reclaim());
        assert_eq!(m.generation(), 1);
    }

    #[test]
    fn uncapped_manager_never_errors() {
        let mut m = BddManager::new(6);
        let t = TruthTable::from_fn(6, |v| v % 3 == 1);
        let f = m.try_from_table(&t).unwrap();
        assert_eq!(m.to_table(f), t);
    }

    #[test]
    fn clones_share_one_substrate() {
        let mut m = BddManager::new(4);
        let (a, b) = (m.var(0), m.var(1));
        let before = m.num_nodes();
        // the same function built through a clone allocates nothing new
        // and returns the very same handle
        let mut c = m.clone();
        let ab = m.and(a, b);
        assert_eq!(c.and(a, b), ab);
        assert_eq!(m.num_nodes(), before + 1);
        // new structure built in the clone is visible (and canonical) in
        // the original
        let x = c.xor(a, b);
        assert_eq!(m.xor(a, b), x);
        assert_eq!(m.num_nodes(), c.num_nodes());
        assert!(m.eval(x, 0b01));
    }

    #[test]
    fn node_limit_is_global_across_clones() {
        let mut m = BddManager::with_node_limit(8, 4);
        let mut c = m.clone();
        let a = m.try_var(0).unwrap();
        let b = c.try_var(1).unwrap();
        // the terminal + 2 vars allocated; the next node (through either
        // handle) reaches the cap of 4, the one after must trip
        let ab = c.try_and(a, b).unwrap();
        assert!(!ab.is_const());
        assert!(m.try_or(a, b).is_err());
        assert!(c.try_xor(a, b).is_err());
        // raising the cap through one handle unblocks every clone
        m.set_node_limit(Some(64));
        assert!(c.try_xor(a, b).is_ok());
        assert_eq!(m.num_nodes(), c.num_nodes());
    }

    #[test]
    fn commuted_apply_hits_the_cache() {
        let mut m = BddManager::new(6);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        let g = m.xor(b, c);
        // swapped operands must hit the entry the first call populated
        let and_fg = m.and(f, g);
        let (hits0, misses0) = m.apply_cache_stats();
        assert_eq!(m.and(g, f), and_fg);
        let (hits1, misses1) = m.apply_cache_stats();
        assert_eq!(hits1, hits0 + 1, "swapped and must hit");
        assert_eq!(misses1, misses0, "swapped and must not miss");
        let xor_fg = m.xor(f, g);
        let (hits0, misses0) = m.apply_cache_stats();
        assert_eq!(m.xor(g, f), xor_fg);
        let (hits1, misses1) = m.apply_cache_stats();
        assert_eq!(hits1, hits0 + 1, "swapped xor must hit");
        assert_eq!(misses1, misses0, "swapped xor must not miss");
    }

    #[test]
    fn complement_normalized_keys_survive_negation() {
        let mut m = BddManager::new(6);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        let g = m.xor(b, c);
        // xor keys are complement-stripped: negating either operand (or
        // both) reuses the same cache entry and allocates nothing
        let x = m.xor(f, g);
        let nodes0 = m.num_nodes();
        let (hits0, misses0) = m.apply_cache_stats();
        let nf = m.not(f);
        let ng = m.not(g);
        assert_eq!(m.xor(nf, g), m.not(x));
        assert_eq!(m.xor(f, ng), m.not(x));
        assert_eq!(m.xor(nf, ng), x);
        let (hits1, misses1) = m.apply_cache_stats();
        assert_eq!(hits1, hits0 + 3, "complemented xor operands must hit");
        assert_eq!(misses1, misses0);
        assert_eq!(m.num_nodes(), nodes0, "no new nodes for negated xors");
        // or(f, g) = ¬and(¬f, ¬g): the De Morgan pair shares one entry
        let o = m.or(f, g);
        let (hits0, _) = m.apply_cache_stats();
        assert_eq!(m.and(nf, ng), m.not(o));
        let (hits1, _) = m.apply_cache_stats();
        assert_eq!(hits1, hits0 + 1, "or and its De Morgan and share the cache");
    }

    #[test]
    fn copy_roots_is_garbage_collection_by_copy() {
        let mut scratch = BddManager::new(6);
        // build a function with throwaway intermediates
        let (a, b, c) = (scratch.var(0), scratch.var(1), scratch.var(2));
        let ab = scratch.and(a, b);
        let dead = scratch.xor(ab, c); // never a root
        let f = scratch.or(ab, c);
        let nf = scratch.not(f);
        let _ = dead;
        let built = scratch.num_nodes();

        let mut dst = BddManager::new(6);
        let copied = scratch.copy_roots(&[f, nf], &mut dst);
        // dst holds only the live DAG: terminal + reachable nodes of f
        // (¬f shares all of them via its complement bit)
        assert_eq!(dst.num_nodes(), 1 + scratch.size(f), "{built} built");
        assert!(dst.num_nodes() < built, "dead intermediates left behind");
        // semantics survive the copy, complements included
        for m in 0..64u64 {
            assert_eq!(dst.eval(copied[0], m), scratch.eval(f, m));
            assert_eq!(dst.eval(copied[1], m), !scratch.eval(f, m));
        }
        // f and ¬f still share one node on the other side
        assert_eq!(copied[1], dst.not(copied[0]));
        assert_eq!(dst.canonical_violations(), 0);
        // copying into the same substrate is the identity
        let mut back = scratch.clone();
        let same = scratch.copy_roots(&[f, nf], &mut back);
        assert_eq!(same, vec![f, nf]);
    }

    #[test]
    fn copy_roots_observes_the_destination_cap() {
        let mut scratch = BddManager::new(6);
        let (a, b, c) = (scratch.var(0), scratch.var(1), scratch.var(2));
        let ab = scratch.and(a, b);
        let f = scratch.or(ab, c);
        let mut tiny = BddManager::with_node_limit(6, 2);
        assert!(scratch.try_copy_roots(&[f], &mut tiny).is_err());
    }

    #[test]
    fn worker_threads_respects_cap() {
        // no env manipulation here (tests run concurrently); just the
        // clamping contract
        assert_eq!(worker_threads(0), 1);
        assert!(worker_threads(1) == 1);
        assert!(worker_threads(usize::MAX) >= 1);
    }

    #[test]
    fn arena_locate_is_dense_and_in_bounds() {
        // every slot maps into its chunk's bounds, consecutive slots are
        // consecutive, and chunk starts line up with the doubling layout
        let mut expected_start = 0u32;
        for c in 0..MAX_CHUNKS as u32 {
            let size = 1u32 << (CHUNK_BASE_BITS + c);
            assert_eq!(Arena::locate(expected_start), (c as usize, 0));
            assert_eq!(
                Arena::locate(expected_start + size - 1),
                (c as usize, size as usize - 1)
            );
            expected_start += size;
            if expected_start > MAX_SLOT {
                break;
            }
        }
        assert!(expected_start >= MAX_SLOT, "chunks must cover slot space");
    }
}
