//! A reduced ordered binary decision diagram (ROBDD) package.
//!
//! This is the workspace's stand-in for the "SIS 1.2 ROBDD package" the
//! paper builds on (Bryant, 1986). It provides a [`BddManager`] arena with a
//! unique table (so equivalent functions share one canonical node and
//! equivalence checking is pointer comparison), the usual apply operations,
//! cofactors, satisfy counting and conversion to and from the
//! representations in [`xsynth_boolean`].
//!
//! # Examples
//!
//! ```
//! use xsynth_bdd::BddManager;
//!
//! let mut m = BddManager::new(3);
//! let (a, b, c) = (m.var(0), m.var(1), m.var(2));
//! let ab = m.and(a, b);
//! let f = m.or(ab, c);
//! let g = m.ite(a, b, c); // a·b + ¬a·c
//! assert_ne!(f, g);
//! assert_eq!(m.eval(f, 0b011), true);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::HashMap;
use xsynth_boolean::{Sop, TruthTable, VarSet};

/// Error returned by the `try_` operation forms when an operation would
/// allocate past the manager's node cap (see
/// [`BddManager::set_node_limit`]).
///
/// The manager is left in a usable state: every handle created before the
/// failed operation remains valid, so callers can keep the best result
/// obtained so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeLimitExceeded {
    /// The node cap that was in force when allocation failed.
    pub limit: usize,
}

impl std::fmt::Display for NodeLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BDD node limit of {} nodes exceeded", self.limit)
    }
}

impl std::error::Error for NodeLimitExceeded {}

/// A handle to a BDD node inside a [`BddManager`].
///
/// Handles are canonical: two handles from the same manager are equal if
/// and only if they denote the same Boolean function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(u32);

impl Bdd {
    /// The constant-zero function.
    pub const ZERO: Bdd = Bdd(0);
    /// The constant-one function.
    pub const ONE: Bdd = Bdd(1);

    /// Whether this is a terminal (constant) node.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// Raw index, for debugging and statistics.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: Bdd,
    hi: Bdd,
}

const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
}

/// An arena of shared, reduced, ordered BDD nodes over a fixed number of
/// variables in natural index order.
///
/// Cloning a manager duplicates the node arena and caches; handles created
/// in the original remain valid (and denote the same functions) in the
/// clone, which is what lets the polarity search fan candidate evaluations
/// out across threads.
#[derive(Debug, Clone)]
pub struct BddManager {
    n: usize,
    nodes: Vec<Node>,
    unique: HashMap<(u32, Bdd, Bdd), Bdd>,
    cache: HashMap<(Op, Bdd, Bdd), Bdd>,
    not_cache: HashMap<Bdd, Bdd>,
    limit: usize,
}

impl BddManager {
    /// Creates a manager for functions of `n` variables.
    pub fn new(n: usize) -> Self {
        let nodes = vec![
            Node {
                var: TERMINAL_VAR,
                lo: Bdd::ZERO,
                hi: Bdd::ZERO,
            },
            Node {
                var: TERMINAL_VAR,
                lo: Bdd::ONE,
                hi: Bdd::ONE,
            },
        ];
        BddManager {
            n,
            nodes,
            unique: HashMap::new(),
            cache: HashMap::new(),
            not_cache: HashMap::new(),
            limit: usize::MAX,
        }
    }

    /// Creates a manager for `n` variables that refuses to grow past
    /// `limit` nodes (terminals included). Operations must use the `try_`
    /// forms to observe the cap as an error rather than a panic.
    pub fn with_node_limit(n: usize, limit: usize) -> Self {
        let mut m = Self::new(n);
        m.limit = limit;
        m
    }

    /// Sets (`Some`) or clears (`None`) the node cap. Nodes already
    /// allocated are unaffected; only future allocations are checked.
    pub fn set_node_limit(&mut self, limit: Option<usize>) {
        self.limit = limit.unwrap_or(usize::MAX);
    }

    /// The node cap, if one is set.
    pub fn node_limit(&self) -> Option<usize> {
        if self.limit == usize::MAX {
            None
        } else {
            Some(self.limit)
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Total number of nodes allocated (including both terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The constant function `value`.
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::ONE
        } else {
            Bdd::ZERO
        }
    }

    /// Unwraps a `try_` result for the infallible public forms, which are
    /// only used on managers without a node cap.
    fn expect_ok<T>(r: Result<T, NodeLimitExceeded>) -> T {
        r.unwrap_or_else(|e| panic!("{e} (use the try_ operation forms under a node cap)"))
    }

    /// The projection function of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.num_vars()`, or if a node cap is set and
    /// tripped (use [`BddManager::try_var`] under a budget).
    pub fn var(&mut self, var: usize) -> Bdd {
        Self::expect_ok(self.try_var(var))
    }

    /// Fallible form of [`BddManager::var`].
    pub fn try_var(&mut self, var: usize) -> Result<Bdd, NodeLimitExceeded> {
        assert!(var < self.n, "variable {var} out of range");
        self.mk(var as u32, Bdd::ZERO, Bdd::ONE)
    }

    /// The complemented projection `¬var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.num_vars()`, or if a node cap is set and
    /// tripped (use [`BddManager::try_nvar`] under a budget).
    pub fn nvar(&mut self, var: usize) -> Bdd {
        Self::expect_ok(self.try_nvar(var))
    }

    /// Fallible form of [`BddManager::nvar`].
    pub fn try_nvar(&mut self, var: usize) -> Result<Bdd, NodeLimitExceeded> {
        assert!(var < self.n, "variable {var} out of range");
        self.mk(var as u32, Bdd::ONE, Bdd::ZERO)
    }

    fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Result<Bdd, NodeLimitExceeded> {
        if lo == hi {
            return Ok(lo);
        }
        if let Some(&b) = self.unique.get(&(var, lo, hi)) {
            return Ok(b);
        }
        xsynth_trace::fail_point!("bdd.alloc", Err(NodeLimitExceeded { limit: self.limit }));
        if self.nodes.len() >= self.limit {
            return Err(NodeLimitExceeded { limit: self.limit });
        }
        let id = Bdd(self.nodes.len() as u32);
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), id);
        Ok(id)
    }

    fn node(&self, b: Bdd) -> Node {
        self.nodes[b.0 as usize]
    }

    /// The top variable of `b`, or `None` for constants.
    pub fn top_var(&self, b: Bdd) -> Option<usize> {
        if b.is_const() {
            None
        } else {
            Some(self.node(b).var as usize)
        }
    }

    /// The low (var = 0) child; `b` itself for constants.
    pub fn low(&self, b: Bdd) -> Bdd {
        if b.is_const() {
            b
        } else {
            self.node(b).lo
        }
    }

    /// The high (var = 1) child; `b` itself for constants.
    pub fn high(&self, b: Bdd) -> Bdd {
        if b.is_const() {
            b
        } else {
            self.node(b).hi
        }
    }

    fn apply(&mut self, op: Op, f: Bdd, g: Bdd) -> Result<Bdd, NodeLimitExceeded> {
        match op {
            Op::And => {
                if f == Bdd::ZERO || g == Bdd::ZERO {
                    return Ok(Bdd::ZERO);
                }
                if f == Bdd::ONE {
                    return Ok(g);
                }
                if g == Bdd::ONE || f == g {
                    return Ok(f);
                }
            }
            Op::Or => {
                if f == Bdd::ONE || g == Bdd::ONE {
                    return Ok(Bdd::ONE);
                }
                if f == Bdd::ZERO {
                    return Ok(g);
                }
                if g == Bdd::ZERO || f == g {
                    return Ok(f);
                }
            }
            Op::Xor => {
                if f == Bdd::ZERO {
                    return Ok(g);
                }
                if g == Bdd::ZERO {
                    return Ok(f);
                }
                if f == g {
                    return Ok(Bdd::ZERO);
                }
                if f == Bdd::ONE {
                    return self.try_not(g);
                }
                if g == Bdd::ONE {
                    return self.try_not(f);
                }
            }
        }
        // commutative ops: normalize operand order for the cache
        let key = if f <= g { (op, f, g) } else { (op, g, f) };
        if let Some(&r) = self.cache.get(&key) {
            return Ok(r);
        }
        let (nf, ng) = (self.node(f), self.node(g));
        let var = nf.var.min(ng.var);
        let (f0, f1) = if nf.var == var {
            (nf.lo, nf.hi)
        } else {
            (f, f)
        };
        let (g0, g1) = if ng.var == var {
            (ng.lo, ng.hi)
        } else {
            (g, g)
        };
        let lo = self.apply(op, f0, g0)?;
        let hi = self.apply(op, f1, g1)?;
        let r = self.mk(var, lo, hi)?;
        self.cache.insert(key, r);
        Ok(r)
    }

    /// Conjunction.
    ///
    /// # Panics
    ///
    /// Panics only if a node cap is set and tripped (use
    /// [`BddManager::try_and`] under a budget).
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Self::expect_ok(self.apply(Op::And, f, g))
    }

    /// Fallible form of [`BddManager::and`].
    pub fn try_and(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, NodeLimitExceeded> {
        self.apply(Op::And, f, g)
    }

    /// Disjunction.
    ///
    /// # Panics
    ///
    /// Panics only if a node cap is set and tripped (use
    /// [`BddManager::try_or`] under a budget).
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Self::expect_ok(self.apply(Op::Or, f, g))
    }

    /// Fallible form of [`BddManager::or`].
    pub fn try_or(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, NodeLimitExceeded> {
        self.apply(Op::Or, f, g)
    }

    /// Exclusive or.
    ///
    /// # Panics
    ///
    /// Panics only if a node cap is set and tripped (use
    /// [`BddManager::try_xor`] under a budget).
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        Self::expect_ok(self.apply(Op::Xor, f, g))
    }

    /// Fallible form of [`BddManager::xor`].
    pub fn try_xor(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, NodeLimitExceeded> {
        self.apply(Op::Xor, f, g)
    }

    /// Negation.
    ///
    /// # Panics
    ///
    /// Panics only if a node cap is set and tripped (use
    /// [`BddManager::try_not`] under a budget).
    pub fn not(&mut self, f: Bdd) -> Bdd {
        Self::expect_ok(self.try_not(f))
    }

    /// Fallible form of [`BddManager::not`].
    pub fn try_not(&mut self, f: Bdd) -> Result<Bdd, NodeLimitExceeded> {
        if f == Bdd::ZERO {
            return Ok(Bdd::ONE);
        }
        if f == Bdd::ONE {
            return Ok(Bdd::ZERO);
        }
        if let Some(&r) = self.not_cache.get(&f) {
            return Ok(r);
        }
        let n = self.node(f);
        let lo = self.try_not(n.lo)?;
        let hi = self.try_not(n.hi)?;
        let r = self.mk(n.var, lo, hi)?;
        self.not_cache.insert(f, r);
        self.not_cache.insert(r, f);
        Ok(r)
    }

    /// If-then-else: `c·t + ¬c·e`.
    ///
    /// # Panics
    ///
    /// Panics only if a node cap is set and tripped (use
    /// [`BddManager::try_ite`] under a budget).
    pub fn ite(&mut self, c: Bdd, t: Bdd, e: Bdd) -> Bdd {
        Self::expect_ok(self.try_ite(c, t, e))
    }

    /// Fallible form of [`BddManager::ite`].
    pub fn try_ite(&mut self, c: Bdd, t: Bdd, e: Bdd) -> Result<Bdd, NodeLimitExceeded> {
        let ct = self.try_and(c, t)?;
        let nc = self.try_not(c)?;
        let nce = self.try_and(nc, e)?;
        self.try_or(ct, nce)
    }

    /// Cofactor of `f` with `var` fixed to `phase`.
    ///
    /// # Panics
    ///
    /// Panics only if a node cap is set and tripped (use
    /// [`BddManager::try_cofactor`] under a budget).
    pub fn cofactor(&mut self, f: Bdd, var: usize, phase: bool) -> Bdd {
        Self::expect_ok(self.try_cofactor(f, var, phase))
    }

    /// Fallible form of [`BddManager::cofactor`].
    pub fn try_cofactor(
        &mut self,
        f: Bdd,
        var: usize,
        phase: bool,
    ) -> Result<Bdd, NodeLimitExceeded> {
        let var = var as u32;
        let mut memo = HashMap::new();
        self.cofactor_rec(f, var, phase, &mut memo)
    }

    fn cofactor_rec(
        &mut self,
        f: Bdd,
        var: u32,
        phase: bool,
        memo: &mut HashMap<Bdd, Bdd>,
    ) -> Result<Bdd, NodeLimitExceeded> {
        if f.is_const() {
            return Ok(f);
        }
        let n = self.node(f);
        if n.var > var {
            return Ok(f);
        }
        if let Some(&r) = memo.get(&f) {
            return Ok(r);
        }
        let r = if n.var == var {
            if phase {
                n.hi
            } else {
                n.lo
            }
        } else {
            let lo = self.cofactor_rec(n.lo, var, phase, memo)?;
            let hi = self.cofactor_rec(n.hi, var, phase, memo)?;
            self.mk(n.var, lo, hi)?
        };
        memo.insert(f, r);
        Ok(r)
    }

    /// Evaluates `f` on the assignment encoded in `minterm` (bit `i` =
    /// variable `i`).
    pub fn eval(&self, f: Bdd, minterm: u64) -> bool {
        let mut cur = f;
        while !cur.is_const() {
            let n = self.node(cur);
            cur = if minterm & (1u64 << n.var) != 0 {
                n.hi
            } else {
                n.lo
            };
        }
        cur == Bdd::ONE
    }

    /// Number of satisfying assignments over all `n` variables, computed
    /// exactly by integer node-weight accumulation (no float rounding, so
    /// counts stay exact past the ~52-variable precision limit of `f64`).
    ///
    /// Saturates at `u128::MAX` for managers over 128 or more variables,
    /// where the count itself can overflow.
    pub fn count_sat(&self, f: Bdd) -> u128 {
        // weight(b) = satisfying assignments over variables >= level(b),
        // where level is the node's variable index and n for terminals.
        let mut memo: HashMap<Bdd, u128> = HashMap::new();
        let w = self.sat_weight(f, &mut memo);
        Self::shl_sat(w, self.level(f))
    }

    fn level(&self, b: Bdd) -> u32 {
        if b.is_const() {
            self.n as u32
        } else {
            self.node(b).var
        }
    }

    fn shl_sat(v: u128, k: u32) -> u128 {
        if v == 0 {
            0
        } else if k >= 128 || v.leading_zeros() < k {
            u128::MAX
        } else {
            v << k
        }
    }

    fn sat_weight(&self, f: Bdd, memo: &mut HashMap<Bdd, u128>) -> u128 {
        if f == Bdd::ZERO {
            return 0;
        }
        if f == Bdd::ONE {
            return 1;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let n = self.node(f);
        let lo = self.sat_weight(n.lo, memo);
        let hi = self.sat_weight(n.hi, memo);
        let lo = Self::shl_sat(lo, self.level(n.lo) - n.var - 1);
        let hi = Self::shl_sat(hi, self.level(n.hi) - n.var - 1);
        let r = lo.saturating_add(hi);
        memo.insert(f, r);
        r
    }

    /// Fraction of the input space on which `f` is one (the signal
    /// probability under uniform independent inputs).
    pub fn sat_fraction(&self, f: Bdd) -> f64 {
        let mut memo = HashMap::new();
        self.sat_frac(f, &mut memo)
    }

    fn sat_frac(&self, f: Bdd, memo: &mut HashMap<Bdd, f64>) -> f64 {
        if f == Bdd::ZERO {
            return 0.0;
        }
        if f == Bdd::ONE {
            return 1.0;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let n = self.node(f);
        let r = 0.5 * self.sat_frac(n.lo, memo) + 0.5 * self.sat_frac(n.hi, memo);
        memo.insert(f, r);
        r
    }

    /// The set of variables `f` depends on.
    pub fn support(&self, f: Bdd) -> VarSet {
        let mut seen = std::collections::HashSet::new();
        let mut sup = VarSet::new();
        let mut stack = vec![f];
        while let Some(b) = stack.pop() {
            if b.is_const() || !seen.insert(b) {
                continue;
            }
            let n = self.node(b);
            sup.insert(n.var as usize);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        sup
    }

    /// Number of distinct internal nodes in the DAG rooted at `f`.
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        let mut count = 0;
        while let Some(b) = stack.pop() {
            if b.is_const() || !seen.insert(b) {
                continue;
            }
            count += 1;
            let n = self.node(b);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    #[allow(clippy::wrong_self_convention)] // manager-style constructor, as in CUDD
    /// Builds a BDD from a truth table.
    ///
    /// # Panics
    ///
    /// Panics if the table's arity differs from the manager's, or if a
    /// node cap is set and tripped (use [`BddManager::try_from_table`]
    /// under a budget).
    pub fn from_table(&mut self, t: &TruthTable) -> Bdd {
        Self::expect_ok(self.try_from_table(t))
    }

    #[allow(clippy::wrong_self_convention)]
    /// Fallible form of [`BddManager::from_table`]. Still panics on an
    /// arity mismatch, which is a programming error.
    pub fn try_from_table(&mut self, t: &TruthTable) -> Result<Bdd, NodeLimitExceeded> {
        assert_eq!(t.num_vars(), self.n, "arity mismatch");
        self.from_table_rec(t, 0, 0)
    }

    #[allow(clippy::wrong_self_convention)]
    fn from_table_rec(
        &mut self,
        t: &TruthTable,
        var: usize,
        prefix: u64,
    ) -> Result<Bdd, NodeLimitExceeded> {
        if var == self.n {
            return Ok(self.constant(t.eval(prefix)));
        }
        let lo = self.from_table_rec(t, var + 1, prefix)?;
        let hi = self.from_table_rec(t, var + 1, prefix | (1 << var))?;
        self.mk(var as u32, lo, hi)
    }

    /// Builds a BDD from a sum-of-products cover.
    ///
    /// # Panics
    ///
    /// Panics only if a node cap is set and tripped (use
    /// [`BddManager::try_from_sop`] under a budget).
    pub fn from_sop(&mut self, s: &Sop) -> Bdd {
        Self::expect_ok(self.try_from_sop(s))
    }

    /// Fallible form of [`BddManager::from_sop`].
    pub fn try_from_sop(&mut self, s: &Sop) -> Result<Bdd, NodeLimitExceeded> {
        let mut acc = Bdd::ZERO;
        for c in s.cubes() {
            let mut cube = Bdd::ONE;
            // AND literals from highest variable down so intermediate BDDs
            // stay small under the natural order.
            let mut lits: Vec<(usize, bool)> = c
                .positive()
                .iter()
                .map(|v| (v, true))
                .chain(c.negative().iter().map(|v| (v, false)))
                .collect();
            lits.sort_unstable_by_key(|l| std::cmp::Reverse(l.0));
            for (v, ph) in lits {
                let lit = if ph {
                    self.try_var(v)?
                } else {
                    self.try_nvar(v)?
                };
                cube = self.try_and(cube, lit)?;
            }
            acc = self.try_or(acc, cube)?;
        }
        Ok(acc)
    }

    /// Converts `f` to a truth table (requires `n ≤ MAX_TT_VARS`).
    pub fn to_table(&self, f: Bdd) -> TruthTable {
        TruthTable::from_fn(self.n, |m| self.eval(f, m))
    }

    /// One satisfying assignment of `f` (variables outside the support are
    /// set to 0), or `None` when `f` is unsatisfiable.
    pub fn any_sat(&self, f: Bdd) -> Option<Vec<bool>> {
        if f == Bdd::ZERO {
            return None;
        }
        let mut assignment = vec![false; self.n];
        let mut cur = f;
        while !cur.is_const() {
            let node = self.node(cur);
            if node.lo != Bdd::ZERO {
                cur = node.lo;
            } else {
                assignment[node.var as usize] = true;
                cur = node.hi;
            }
        }
        debug_assert_eq!(cur, Bdd::ONE, "reduced BDDs reach 1 by avoiding 0");
        Some(assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsynth_boolean::Cube;

    #[test]
    fn canonical_equality() {
        let mut m = BddManager::new(3);
        let (a, b) = (m.var(0), m.var(1));
        let ab = m.and(a, b);
        let ba = m.and(b, a);
        assert_eq!(ab, ba);
        let na = m.not(a);
        let nna = m.not(na);
        assert_eq!(a, nna);
    }

    #[test]
    fn demorgan() {
        let mut m = BddManager::new(2);
        let (a, b) = (m.var(0), m.var(1));
        let and = m.and(a, b);
        let nand = m.not(and);
        let (na, nb) = (m.not(a), m.not(b));
        let or = m.or(na, nb);
        assert_eq!(nand, or);
    }

    #[test]
    fn xor_identities() {
        let mut m = BddManager::new(4);
        let (a, b) = (m.var(0), m.var(1));
        let x = m.xor(a, b);
        let x2 = m.xor(x, b);
        assert_eq!(x2, a);
        let zero = m.xor(a, a);
        assert_eq!(zero, Bdd::ZERO);
        let one = m.constant(true);
        let nx = m.xor(x, one);
        let notx = m.not(x);
        assert_eq!(nx, notx);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut m = BddManager::new(3);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        for mt in 0..8u64 {
            let expect = (mt & 1 != 0 && mt & 2 != 0) || mt & 4 != 0;
            assert_eq!(m.eval(f, mt), expect);
        }
    }

    #[test]
    fn table_roundtrip() {
        let t = TruthTable::from_fn(6, |m| (m * 37 + 11) % 5 < 2);
        let mut m = BddManager::new(6);
        let f = m.from_table(&t);
        assert_eq!(m.to_table(f), t);
        assert_eq!(m.count_sat(f), t.count_ones() as u128);
    }

    #[test]
    fn sop_agrees_with_table() {
        let s = Sop::from_cubes([
            Cube::new([0, 2], []).unwrap(),
            Cube::new([1], [3]).unwrap(),
            Cube::new([], [0, 1]).unwrap(),
        ]);
        let t = s.to_table(4);
        let mut m = BddManager::new(4);
        let via_sop = m.from_sop(&s);
        let via_tab = m.from_table(&t);
        assert_eq!(via_sop, via_tab);
    }

    #[test]
    fn cofactor_and_support() {
        let mut m = BddManager::new(3);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let bc = m.and(b, c);
        let f = m.ite(a, bc, c);
        let f1 = m.cofactor(f, 0, true);
        assert_eq!(f1, bc);
        let f0 = m.cofactor(f, 0, false);
        assert_eq!(f0, c);
        let sup = m.support(f);
        assert_eq!(sup, VarSet::from_vars([0, 1, 2]));
        assert!(m.support(c).contains(2));
        assert_eq!(m.support(Bdd::ONE), VarSet::new());
    }

    #[test]
    fn sat_fraction_of_var() {
        let mut m = BddManager::new(5);
        let a = m.var(3);
        assert_eq!(m.sat_fraction(a), 0.5);
        let b = m.var(1);
        let ab = m.and(a, b);
        assert_eq!(m.sat_fraction(ab), 0.25);
        assert_eq!(m.count_sat(ab), 8);
    }

    #[test]
    fn adder_bdd_is_compact() {
        // carry-out of an 8-bit adder has a linear-size BDD with interleaved
        // variable order.
        let n = 16;
        let mut m = BddManager::new(n);
        let mut carry = Bdd::ZERO;
        for i in 0..8 {
            let a = m.var(2 * i);
            let b = m.var(2 * i + 1);
            let ab = m.and(a, b);
            let axb = m.xor(a, b);
            let t = m.and(axb, carry);
            carry = m.or(ab, t);
        }
        assert!(m.size(carry) <= 3 * 8, "adder carry BDD should be linear");
    }

    #[test]
    fn size_counts_shared_nodes_once() {
        let mut m = BddManager::new(2);
        let a = m.var(0);
        assert_eq!(m.size(a), 1);
        let b = m.var(1);
        let x = m.xor(a, b);
        assert_eq!(m.size(x), 3);
    }

    #[test]
    fn any_sat_finds_witnesses() {
        let mut m = BddManager::new(4);
        let (a, b) = (m.var(0), m.var(3));
        let nb = m.not(b);
        let f = m.and(a, nb);
        let w = m.any_sat(f).expect("satisfiable");
        assert!(w[0] && !w[3]);
        assert!(m.any_sat(Bdd::ZERO).is_none());
        assert_eq!(m.any_sat(Bdd::ONE), Some(vec![false; 4]));
    }

    #[test]
    fn cofactor_of_unrelated_var_is_identity() {
        let mut m = BddManager::new(4);
        let (a, b) = (m.var(0), m.var(1));
        let f = m.and(a, b);
        assert_eq!(m.cofactor(f, 3, true), f);
        assert_eq!(m.cofactor(f, 3, false), f);
    }

    #[test]
    fn count_sat_is_exact_at_60_vars() {
        // OR of 60 variables has 2^60 - 1 minterms; the old f64 path
        // rounded this to 2^60 exactly (off by one past 52 bits of
        // mantissa).
        let n = 60;
        let mut m = BddManager::new(n);
        let mut f = Bdd::ZERO;
        for v in 0..n {
            let x = m.var(v);
            f = m.or(f, x);
        }
        assert_eq!(m.count_sat(f), (1u128 << 60) - 1);
        // AND of all 60 variables: exactly one minterm.
        let mut g = Bdd::ONE;
        for v in 0..n {
            let x = m.var(v);
            g = m.and(g, x);
        }
        assert_eq!(m.count_sat(g), 1);
        assert_eq!(m.count_sat(Bdd::ONE), 1u128 << 60);
        assert_eq!(m.count_sat(Bdd::ZERO), 0);
    }

    #[test]
    fn count_sat_wide_free_variables() {
        // A single variable among 100: half the space is satisfying, and
        // the free variables on both sides of the tested one must be
        // accounted for exactly.
        let mut m = BddManager::new(100);
        let x = m.var(57);
        assert_eq!(m.count_sat(x), 1u128 << 99);
    }

    #[test]
    fn node_limit_trips_as_error_and_keeps_manager_usable() {
        let mut m = BddManager::with_node_limit(8, 4);
        assert_eq!(m.node_limit(), Some(4));
        let a = m.try_var(0).unwrap();
        let b = m.try_var(1).unwrap();
        // The manager is at its cap now (2 terminals + 2 vars); any new
        // node must fail with the typed error.
        let err = m.try_and(a, b).unwrap_err();
        assert_eq!(err, NodeLimitExceeded { limit: 4 });
        // Cache-hit and reduction paths still work without allocating.
        assert_eq!(m.try_and(a, a).unwrap(), a);
        assert_eq!(m.try_or(a, Bdd::ONE).unwrap(), Bdd::ONE);
        // Raising the cap lets the failed operation through.
        m.set_node_limit(Some(64));
        let ab = m.try_and(a, b).unwrap();
        assert!(!ab.is_const());
        m.set_node_limit(None);
        assert_eq!(m.node_limit(), None);
    }

    #[test]
    fn uncapped_manager_never_errors() {
        let mut m = BddManager::new(6);
        let t = TruthTable::from_fn(6, |v| v % 3 == 1);
        let f = m.try_from_table(&t).unwrap();
        assert_eq!(m.to_table(f), t);
    }
}
