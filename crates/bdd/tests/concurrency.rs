//! Concurrency contract of the shared BDD substrate: clones of one
//! manager address the same DAG, so threads hash-consing the same
//! functions get *identical* handles, the node count matches a sequential
//! build (no duplicate insertion, ever), the global node cap binds all
//! threads together, and interleaved `try_` operations never deadlock.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use xsynth_bdd::{Bdd, BddManager, NodeLimitExceeded};

/// A deterministic little formula family over `n` variables, built only
/// from `try_` ops so capped managers can run it too: XOR-chains, AND/OR
/// ladders and their negations, selected by `seed`.
fn build_formula(m: &mut BddManager, n: usize, seed: u64) -> Result<Bdd, NodeLimitExceeded> {
    let mut acc = m.constant(seed & 1 == 0);
    for v in 0..n {
        let x = if (seed >> (v % 48)) & 1 == 0 {
            m.try_var(v)?
        } else {
            m.try_nvar(v)?
        };
        acc = match (seed >> (2 * v)) % 3 {
            0 => m.try_and(acc, x)?,
            1 => m.try_or(acc, x)?,
            _ => m.try_xor(acc, x)?,
        };
        if (seed >> (v % 31)) & 4 == 4 {
            acc = m.try_not(acc)?;
        }
    }
    Ok(acc)
}

#[test]
fn racing_threads_get_identical_canonical_handles() {
    const THREADS: usize = 8;
    const SEEDS: u64 = 24;
    let n = 12;
    let m = BddManager::new(n);
    // every thread builds every formula, racing on the same substrate
    let per_thread: Vec<Vec<Bdd>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let mut local = m.clone();
                s.spawn(move || {
                    (0..SEEDS)
                        // stagger the order per thread so the races cover
                        // different allocation interleavings
                        .map(|k| (k + t as u64) % SEEDS)
                        .map(|seed| build_formula(&mut local, n, seed).expect("uncapped"))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no worker panics"))
            .collect()
    });
    // thread t built seed (k + t) % SEEDS at position k; re-align back to
    // seed order, then demand handle-for-handle equality across threads
    let aligned: Vec<Vec<Bdd>> = per_thread
        .iter()
        .enumerate()
        .map(|(t, v)| {
            (0..SEEDS as usize)
                .map(|k| v[(k + SEEDS as usize - t % SEEDS as usize) % SEEDS as usize])
                .collect()
        })
        .collect();
    for t in 1..THREADS {
        assert_eq!(
            aligned[0], aligned[t],
            "thread {t} disagrees on canonical handles"
        );
    }
    // replaying the whole family sequentially allocates nothing new: the
    // substrate already holds every node, proving the racing inserts were
    // deduplicated rather than duplicated
    let after_race = m.num_nodes();
    let mut replay = m.clone();
    for seed in 0..SEEDS {
        build_formula(&mut replay, n, seed).expect("uncapped");
    }
    assert_eq!(
        m.num_nodes(),
        after_race,
        "sequential replay allocated new nodes — the racy build duplicated some"
    );
    // and a fresh manager building the same family sequentially needs at
    // least as many nodes: the shared build can't have lost anything
    let mut fresh = BddManager::new(n);
    for seed in 0..SEEDS {
        build_formula(&mut fresh, n, seed).expect("uncapped");
    }
    assert!(fresh.num_nodes() <= after_race);
}

#[test]
fn node_cap_is_enforced_at_the_true_global_count() {
    // Regression for the pre-shared-substrate bug where every worker got a
    // private clone with a private cap, so N workers could collectively
    // allocate N× the budget. Here 8 threads hammer one capped substrate
    // with *distinct* functions; the global count must never pass the cap.
    const CAP: usize = 200;
    const THREADS: usize = 8;
    let n = 16;
    let m = BddManager::with_node_limit(n, CAP);
    let trips = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let mut local = m.clone();
            let trips = &trips;
            s.spawn(move || {
                for seed in 0..64u64 {
                    // disjoint seed ranges per thread → mostly distinct
                    // functions → real allocation pressure from each
                    let seed = seed + 1000 * t as u64;
                    if build_formula(&mut local, n, seed).is_err() {
                        trips.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert!(
        m.num_nodes() <= CAP,
        "global count {} exceeds the shared cap {CAP}",
        m.num_nodes()
    );
    assert!(
        trips.load(Ordering::Relaxed) > 0,
        "the workload was sized to trip a {CAP}-node cap"
    );
    // the documented keep-best contract: handles made before the trip are
    // still usable for read-only work
    let mut probe = m.clone();
    let a = probe.try_var(0).expect("var 0 was interned before the cap");
    assert!(probe.eval(a, 0b1));
}

/// Complement-edge canonicity under contention: after 8 threads race the
/// same formula family *and* its negations into one substrate, the stored
/// node set must be in canonical form — no then-edge carries a complement,
/// no node has equal children, every unique-table key round-trips — and
/// `f`/`¬f` must address the same stored node (handles differing only in
/// the complement bit, identical DAG sizes, zero allocation to negate).
#[test]
fn racing_negations_keep_the_stored_node_set_canonical() {
    const THREADS: usize = 8;
    const SEEDS: u64 = 24;
    let n = 12;
    let m = BddManager::new(n);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let mut local = m.clone();
            s.spawn(move || {
                for k in 0..SEEDS {
                    let seed = (k + t as u64) % SEEDS;
                    let f = build_formula(&mut local, n, seed).expect("uncapped");
                    // negate-heavy traffic: half the threads work on ¬f
                    let g = if t % 2 == 0 { f } else { local.not(f) };
                    let h = local.xor(g, local.constant(true));
                    assert_eq!(h, local.not(g), "xor-with-one is negation");
                }
            });
        }
    });
    assert_eq!(
        m.canonical_violations(),
        0,
        "a stored then-edge complement or a redundant node survived the race"
    );
    let mut probe = m.clone();
    let before = m.num_nodes();
    for seed in 0..SEEDS {
        let f = build_formula(&mut probe, n, seed).expect("replay allocates nothing");
        let nf = probe.not(f);
        assert_eq!(nf.index(), f.index() ^ 1, "f and ¬f share one stored node");
        assert_eq!(probe.size(f), probe.size(nf), "shared DAG, equal size");
        assert_eq!(probe.not(nf), f, "double negation is the identity");
    }
    assert_eq!(m.num_nodes(), before, "negation sweeps must not allocate");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Interleaved `try_` operations from several threads — arbitrary op
    /// mixes, with and without a node cap — always terminate (no deadlock:
    /// the substrate holds at most one shard lock at a time) and never
    /// double-insert (same handle ⇔ same function, counted once).
    #[test]
    fn interleaved_try_ops_never_deadlock_or_double_insert(
        seeds in proptest::collection::vec(0u64..1 << 40, 4..12),
        raw_cap in 0usize..400,
        threads in 2usize..6,
    ) {
        let n = 10;
        // raw_cap below 50 means "uncapped"; otherwise it is the cap
        let cap = (raw_cap >= 50).then_some(raw_cap);
        let m = match cap {
            Some(c) => BddManager::with_node_limit(n, c),
            None => BddManager::new(n),
        };
        let results: Vec<Vec<Option<Bdd>>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let mut local = m.clone();
                    let seeds = seeds.clone();
                    s.spawn(move || {
                        seeds
                            .iter()
                            .cycle()
                            .skip(t)
                            .take(seeds.len())
                            .map(|&seed| build_formula(&mut local, n, seed).ok())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panics")).collect()
        });
        // under a cap some builds may fail, but every *successful* build
        // of the same seed must have produced the same canonical handle
        let mut by_seed: std::collections::HashMap<u64, Bdd> = std::collections::HashMap::new();
        for (t, thread_results) in results.iter().enumerate() {
            for (j, maybe) in thread_results.iter().enumerate() {
                let seed = seeds[(j + t) % seeds.len()];
                if let Some(b) = maybe {
                    if let Some(prev) = by_seed.insert(seed, *b) {
                        prop_assert_eq!(prev, *b, "seed {} got two handles", seed);
                    }
                }
            }
        }
        if let Some(c) = cap {
            prop_assert!(m.num_nodes() <= c, "count {} over cap {}", m.num_nodes(), c);
        }
        // replay sequentially: every formula that succeeded above must
        // still resolve to its recorded handle (canonicity survives races)
        let mut replay = m.clone();
        replay.set_node_limit(None);
        for (&seed, &b) in &by_seed {
            let again = build_formula(&mut replay, n, seed).expect("uncapped replay");
            prop_assert_eq!(again, b);
        }
        prop_assert_eq!(m.canonical_violations(), 0);
    }

    /// Boolean identities that exercise every complement-normalization
    /// path — De Morgan, ITE expansion, XOR-as-negation, absorption of
    /// `f · ¬f` — hold as *handle equalities* on randomly built pairs, and
    /// none of them leave a non-canonical node behind.
    #[test]
    fn complement_identities_hold_as_handle_equalities(
        sa in 0u64..1 << 40,
        sb in 0u64..1 << 40,
    ) {
        let n = 10;
        let mut m = BddManager::new(n);
        let f = build_formula(&mut m, n, sa).expect("uncapped");
        let g = build_formula(&mut m, n, sb).expect("uncapped");
        let (nf, ng) = (m.not(f), m.not(g));
        // De Morgan, both directions
        let and_fg = m.and(f, g);
        let or_nf_ng = m.or(nf, ng);
        prop_assert_eq!(m.not(and_fg), or_nf_ng);
        let or_fg = m.or(f, g);
        let and_nf_ng = m.and(nf, ng);
        prop_assert_eq!(m.not(or_fg), and_nf_ng);
        // ITE via its and/or expansion
        let ite = m.ite(f, g, ng);
        let t = m.and(f, g);
        let e = m.and(nf, ng);
        prop_assert_eq!(ite, m.or(t, e));
        // XOR with ONE is negation; XOR with itself annihilates
        prop_assert_eq!(m.xor(f, Bdd::ONE), nf);
        prop_assert_eq!(m.xor(f, f), Bdd::ZERO);
        prop_assert_eq!(m.xor(f, nf), Bdd::ONE);
        // f · ¬f = 0 and f + ¬f = 1 without allocating
        let before = m.num_nodes();
        prop_assert_eq!(m.and(f, nf), Bdd::ZERO);
        prop_assert_eq!(m.or(f, nf), Bdd::ONE);
        prop_assert_eq!(m.num_nodes(), before);
        prop_assert_eq!(m.canonical_violations(), 0);
    }
}
