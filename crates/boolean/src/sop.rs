//! Sum-of-products covers.

use crate::{Cube, TruthTable, VarSet};
use std::fmt;

/// A sum-of-products (OR of cubes) cover of a Boolean function.
///
/// An empty cover is constant zero; a cover containing the universal cube is
/// constant one.
///
/// # Examples
///
/// ```
/// use xsynth_boolean::{Cube, Sop};
///
/// // f = x0·x1 + ¬x2
/// let f = Sop::from_cubes([
///     Cube::new([0, 1], []).unwrap(),
///     Cube::new([], [2]).unwrap(),
/// ]);
/// assert!(f.eval(0b011));
/// assert!(!f.eval(0b100));
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Sop {
    cubes: Vec<Cube>,
}

impl Sop {
    /// The constant-zero cover.
    pub fn zero() -> Self {
        Sop::default()
    }

    /// The constant-one cover.
    pub fn one() -> Self {
        Sop {
            cubes: vec![Cube::universe()],
        }
    }

    /// Builds a cover from cubes.
    pub fn from_cubes<I: IntoIterator<Item = Cube>>(cubes: I) -> Self {
        Sop {
            cubes: cubes.into_iter().collect(),
        }
    }

    /// Builds an irredundant-ish cover from a truth table: collects minterms,
    /// then greedily merges distance-1 cubes and removes contained cubes.
    /// This is not a minimum cover, only a reasonable starting cover.
    pub fn from_table(t: &TruthTable) -> Self {
        let n = t.num_vars();
        let mut cubes: Vec<Cube> = Vec::new();
        for m in 0..(1u64 << n) {
            if t.eval(m) {
                let pos = (0..n).filter(|v| m & (1 << v) != 0).collect::<VarSet>();
                let neg = (0..n).filter(|v| m & (1 << v) == 0).collect::<VarSet>();
                cubes.push(Cube::from_sets(pos, neg).expect("disjoint by construction"));
            }
        }
        let mut s = Sop { cubes };
        s.merge_distance1();
        s.remove_contained();
        s
    }

    /// The cubes of the cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Mutable access to the cubes.
    pub fn cubes_mut(&mut self) -> &mut Vec<Cube> {
        &mut self.cubes
    }

    /// Number of cubes.
    pub fn num_cubes(&self) -> usize {
        self.cubes.len()
    }

    /// Total literal count.
    pub fn num_literals(&self) -> usize {
        self.cubes.iter().map(Cube::num_literals).sum()
    }

    /// Whether the cover is syntactically constant zero (no cubes).
    pub fn is_zero(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Whether the cover syntactically contains the universal cube.
    pub fn has_universe(&self) -> bool {
        self.cubes.iter().any(Cube::is_universe)
    }

    /// Union of all cube supports.
    pub fn support(&self) -> VarSet {
        let mut s = VarSet::new();
        for c in &self.cubes {
            s.union_with(&c.support());
        }
        s
    }

    /// Evaluates on an input assignment.
    pub fn eval(&self, minterm: u64) -> bool {
        self.cubes.iter().any(|c| c.eval(minterm))
    }

    /// Converts to a truth table over `n` variables.
    pub fn to_table(&self, n: usize) -> TruthTable {
        let mut t = TruthTable::zero(n);
        for c in &self.cubes {
            t = t | c.to_table(n);
        }
        t
    }

    /// Cofactor of the cover with respect to literal (`var`, `phase`).
    pub fn cofactor(&self, var: usize, phase: bool) -> Sop {
        let mut out = Vec::new();
        for c in &self.cubes {
            match c.phase(var) {
                Some(p) if p != phase => {}
                _ => {
                    let mut c2 = c.clone();
                    c2.remove_var(var);
                    out.push(c2);
                }
            }
        }
        Sop { cubes: out }
    }

    /// Removes cubes contained in (implying) another cube of the cover.
    pub fn remove_contained(&mut self) {
        let cubes = std::mem::take(&mut self.cubes);
        let mut kept: Vec<Cube> = Vec::new();
        for c in cubes {
            if kept.iter().any(|k| c.implies(k)) {
                continue; // c is covered by an already-kept cube
            }
            kept.retain(|k| !k.implies(&c));
            kept.push(c);
        }
        self.cubes = kept;
    }

    /// Repeatedly merges pairs of cubes that differ in exactly one
    /// variable's phase and agree elsewhere (`a·x + a·¬x = a`).
    pub fn merge_distance1(&mut self) {
        use std::collections::HashMap;
        let mut changed = true;
        while changed {
            changed = false;
            // bucket cubes by support so only same-support pairs are tried
            let mut buckets: HashMap<crate::VarSet, Vec<usize>> = HashMap::new();
            for (i, c) in self.cubes.iter().enumerate() {
                buckets.entry(c.support()).or_default().push(i);
            }
            let mut dead = vec![false; self.cubes.len()];
            // a merged cube leaves its support bucket: freeze it until the
            // next pass rebuilds the buckets
            let mut dirty = vec![false; self.cubes.len()];
            for idxs in buckets.values() {
                for (a_pos, &i) in idxs.iter().enumerate() {
                    if dead[i] || dirty[i] {
                        continue;
                    }
                    for &j in &idxs[a_pos + 1..] {
                        if dead[i] || dirty[i] || dead[j] || dirty[j] {
                            continue;
                        }
                        let (a, b) = (&self.cubes[i], &self.cubes[j]);
                        if a.distance(b) == 1 {
                            let d = a
                                .positive()
                                .intersection(b.negative())
                                .union(&a.negative().intersection(b.positive()));
                            let v = d.min_var().expect("distance 1 has a clash var");
                            let mut m = a.clone();
                            m.remove_var(v);
                            self.cubes[i] = m;
                            dead[j] = true;
                            dirty[i] = true;
                            changed = true;
                        }
                    }
                }
            }
            if changed {
                let mut keep = dead.iter().map(|d| !d);
                self.cubes.retain(|_| keep.next().expect("mask length"));
            }
        }
    }

    /// Exact tautology check (is the cover constant one?) by unate reduction
    /// and Shannon splitting.
    pub fn is_tautology(&self) -> bool {
        if self.has_universe() {
            return true;
        }
        if self.cubes.is_empty() {
            return false;
        }
        // unate test: if some variable appears in only one phase, cubes
        // containing it can never cover the opposite half alone.
        let sup = self.support();
        let mut split_var = None;
        let mut best = usize::MAX;
        for v in sup.iter() {
            let pos = self
                .cubes
                .iter()
                .filter(|c| c.phase(v) == Some(true))
                .count();
            let neg = self
                .cubes
                .iter()
                .filter(|c| c.phase(v) == Some(false))
                .count();
            if pos == 0 || neg == 0 {
                // unate in v: drop all cubes with a literal of v; the cover
                // is a tautology iff the reduced cover is.
                let reduced = Sop {
                    cubes: self
                        .cubes
                        .iter()
                        .filter(|c| c.phase(v).is_none())
                        .cloned()
                        .collect(),
                };
                return reduced.is_tautology();
            }
            let cost = pos.abs_diff(neg);
            if cost < best {
                best = cost;
                split_var = Some(v);
            }
        }
        match split_var {
            None => self.has_universe(),
            Some(v) => {
                self.cofactor(v, false).is_tautology() && self.cofactor(v, true).is_tautology()
            }
        }
    }

    /// Complement of the cover via Shannon expansion. Suitable for the small
    /// node functions handled during synthesis, not for huge covers.
    pub fn complement(&self) -> Sop {
        if self.cubes.is_empty() {
            return Sop::one();
        }
        if self.has_universe() {
            return Sop::zero();
        }
        if self.cubes.len() == 1 {
            // De Morgan on a single cube.
            let c = &self.cubes[0];
            let mut out = Vec::new();
            for v in c.positive().iter() {
                out.push(Cube::literal(v, false));
            }
            for v in c.negative().iter() {
                out.push(Cube::literal(v, true));
            }
            return Sop { cubes: out };
        }
        let v = self
            .most_binate_var()
            .expect("non-constant cover has a variable");
        let c0 = self.cofactor(v, false).complement();
        let c1 = self.cofactor(v, true).complement();
        let mut cubes = Vec::new();
        for c in c0.cubes {
            if let Some(cc) = c.intersect(&Cube::literal(v, false)) {
                cubes.push(cc);
            }
        }
        for c in c1.cubes {
            if let Some(cc) = c.intersect(&Cube::literal(v, true)) {
                cubes.push(cc);
            }
        }
        let mut s = Sop { cubes };
        s.remove_contained();
        s.merge_distance1();
        s
    }

    /// Computes an irredundant sum-of-products cover of `t` with the
    /// Minato-Morreale ISOP algorithm — the workspace's stand-in for a
    /// two-level minimizer (espresso). The cover is irredundant and each
    /// cube is prime with respect to the recursion's bounds; cube counts
    /// are close to espresso's on the benchmark family.
    ///
    /// # Examples
    ///
    /// ```
    /// use xsynth_boolean::{Sop, TruthTable};
    ///
    /// let maj = TruthTable::symmetric(3, &[false, false, true, true]);
    /// let cover = Sop::isop(&maj);
    /// assert_eq!(cover.num_cubes(), 3); // ab + ac + bc
    /// assert_eq!(cover.to_table(3), maj);
    /// ```
    pub fn isop(t: &TruthTable) -> Sop {
        fn rec(lower: &TruthTable, upper: &TruthTable, vars: &[usize]) -> Sop {
            if lower.is_zero() {
                return Sop::zero();
            }
            if upper.is_one() {
                return Sop::one();
            }
            // first variable both bounds depend on
            let Some((pos, &x)) = vars
                .iter()
                .enumerate()
                .find(|&(_, &v)| lower.depends_on(v) || upper.depends_on(v))
            else {
                // bounds are constant: lower != 0 ⇒ cover with the universe
                return Sop::one();
            };
            let rest = &vars[pos + 1..];
            let (l0, l1) = (lower.cofactor0(x), lower.cofactor1(x));
            let (u0, u1) = (upper.cofactor0(x), upper.cofactor1(x));
            // cubes that must contain ¬x / x
            let c0 = rec(&(&l0 & &!&u1), &u0, rest);
            let c1 = rec(&(&l1 & &!&u0), &u1, rest);
            let cov0 = c0.to_table(lower.num_vars());
            let cov1 = c1.to_table(lower.num_vars());
            let d0 = &l0 & &!&cov0;
            let d1 = &l1 & &!&cov1;
            let cstar = rec(&(&d0 | &d1), &(&u0 & &u1), rest);
            let mut cubes = Vec::new();
            for c in c0.cubes() {
                let mut c = c.clone();
                c.add_literal(x, false);
                cubes.push(c);
            }
            for c in c1.cubes() {
                let mut c = c.clone();
                c.add_literal(x, true);
                cubes.push(c);
            }
            cubes.extend(cstar.cubes().iter().cloned());
            Sop::from_cubes(cubes)
        }
        let vars: Vec<usize> = (0..t.num_vars()).collect();
        rec(t, t, &vars)
    }

    /// The variable occurring in the most cubes (ties broken by index).
    pub fn most_binate_var(&self) -> Option<usize> {
        let sup = self.support();
        sup.iter()
            .max_by_key(|&v| self.cubes.iter().filter(|c| c.phase(v).is_some()).count())
    }
}

impl FromIterator<Cube> for Sop {
    fn from_iter<I: IntoIterator<Item = Cube>>(iter: I) -> Self {
        Sop::from_cubes(iter)
    }
}

impl Extend<Cube> for Sop {
    fn extend<I: IntoIterator<Item = Cube>>(&mut self, iter: I) {
        self.cubes.extend(iter);
    }
}

impl fmt::Debug for Sop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sop({self})")
    }
}

impl fmt::Display for Sop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor2() -> Sop {
        Sop::from_cubes([Cube::new([0], [1]).unwrap(), Cube::new([1], [0]).unwrap()])
    }

    #[test]
    fn eval_and_table() {
        let f = xor2();
        let t = f.to_table(2);
        for m in 0..4u64 {
            assert_eq!(t.eval(m), (m & 1 != 0) ^ (m & 2 != 0));
        }
    }

    #[test]
    fn from_table_roundtrip() {
        let t = TruthTable::from_fn(5, |m| m.count_ones() >= 3);
        let s = Sop::from_table(&t);
        assert_eq!(s.to_table(5), t);
        assert!(s.num_cubes() < 16, "merging should compress minterms");
    }

    #[test]
    fn complement_is_complement() {
        let f = Sop::from_cubes([
            Cube::new([0, 1], []).unwrap(),
            Cube::new([2], [0]).unwrap(),
            Cube::new([], [1, 3]).unwrap(),
        ]);
        let g = f.complement();
        let (tf, tg) = (f.to_table(4), g.to_table(4));
        assert_eq!(tg, !tf);
    }

    #[test]
    fn complement_of_constants() {
        assert!(Sop::zero().complement().has_universe());
        assert!(Sop::one().complement().is_zero());
    }

    #[test]
    fn tautology() {
        let t = Sop::from_cubes([Cube::literal(0, true), Cube::literal(0, false)]);
        assert!(t.is_tautology());
        assert!(!xor2().is_tautology());
        assert!(Sop::one().is_tautology());
        assert!(!Sop::zero().is_tautology());
        // x0 + ¬x0·x1 + ¬x1 is a tautology
        let t2 = Sop::from_cubes([
            Cube::new([0], []).unwrap(),
            Cube::new([1], [0]).unwrap(),
            Cube::new([], [1]).unwrap(),
        ]);
        assert!(t2.is_tautology());
    }

    #[test]
    fn contained_cubes_removed() {
        let mut s = Sop::from_cubes([
            Cube::new([0], []).unwrap(),
            Cube::new([0, 1], []).unwrap(),
            Cube::new([0], []).unwrap(),
        ]);
        s.remove_contained();
        assert_eq!(s.num_cubes(), 1);
        assert_eq!(s.cubes()[0], Cube::new([0], []).unwrap());
    }

    #[test]
    fn isop_covers_exactly() {
        for seed in 0..12u64 {
            let mut s = seed;
            let t = TruthTable::from_fn(6, |m| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(m + 99);
                (s >> 33) & 3 == 0
            });
            let cover = Sop::isop(&t);
            assert_eq!(cover.to_table(6), t, "seed {seed}");
        }
    }

    #[test]
    fn isop_beats_minterm_merging_on_adder_carry() {
        // carry-out of a 3-bit adder: ISOP should land near the prime
        // cover, far below merged minterms
        let t = TruthTable::from_fn(6, |m| (m & 7) + ((m >> 3) & 7) > 7);
        let isop = Sop::isop(&t);
        let merged = Sop::from_table(&t);
        assert!(isop.num_literals() <= merged.num_literals());
        assert_eq!(isop.to_table(6), t);
        assert!(isop.num_cubes() <= 10, "got {}", isop.num_cubes());
    }

    #[test]
    fn isop_constants() {
        assert!(Sop::isop(&TruthTable::zero(3)).is_zero());
        assert!(Sop::isop(&TruthTable::one(3)).is_tautology());
    }

    #[test]
    fn cofactor_drops_var() {
        let f = xor2();
        let f0 = f.cofactor(0, false);
        // xor with x0=0 is x1
        assert_eq!(f0.to_table(2), TruthTable::var(2, 1));
    }
}
