//! Compact variable sets used throughout the workspace.
//!
//! A [`VarSet`] is a growable bitset over variable indices. It is the
//! representation of cube supports, FPRM cubes (in literal space) and
//! polarity vectors.

use std::fmt;

/// A set of Boolean variable indices, stored as a bitset.
///
/// # Examples
///
/// ```
/// use xsynth_boolean::VarSet;
///
/// let mut s = VarSet::new();
/// s.insert(3);
/// s.insert(70);
/// assert!(s.contains(3));
/// assert!(!s.contains(4));
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarSet {
    words: Vec<u64>,
}

impl VarSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        VarSet { words: Vec::new() }
    }

    /// Creates a set holding the single variable `var`.
    pub fn singleton(var: usize) -> Self {
        let mut s = VarSet::new();
        s.insert(var);
        s
    }

    /// Creates the set `{0, 1, ..., n-1}`.
    pub fn full(n: usize) -> Self {
        let mut s = VarSet::new();
        for v in 0..n {
            s.insert(v);
        }
        s
    }

    /// Creates a set from an iterator of variable indices.
    pub fn from_vars<I: IntoIterator<Item = usize>>(vars: I) -> Self {
        let mut s = VarSet::new();
        for v in vars {
            s.insert(v);
        }
        s
    }

    fn normalize(&mut self) {
        while let Some(&w) = self.words.last() {
            if w == 0 {
                self.words.pop();
            } else {
                break;
            }
        }
    }

    /// Inserts `var`; returns `true` if it was not already present.
    pub fn insert(&mut self, var: usize) -> bool {
        let (w, b) = (var / 64, var % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `var`; returns `true` if it was present.
    pub fn remove(&mut self, var: usize) -> bool {
        let (w, b) = (var / 64, var % 64);
        if w >= self.words.len() {
            return false;
        }
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        self.normalize();
        had
    }

    /// Tests membership of `var`.
    pub fn contains(&self, var: usize) -> bool {
        let (w, b) = (var / 64, var % 64);
        w < self.words.len() && self.words[w] & (1 << b) != 0
    }

    /// Number of variables in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &VarSet) -> bool {
        if self.words.len() > other.words.len() {
            // normalized: trailing words are nonzero
            return false;
        }
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    /// Whether `self` and `other` share no variable.
    pub fn is_disjoint(&self, other: &VarSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// Set union.
    pub fn union(&self, other: &VarSet) -> VarSet {
        let mut words = vec![0u64; self.words.len().max(other.words.len())];
        for (i, w) in self.words.iter().enumerate() {
            words[i] |= w;
        }
        for (i, w) in other.words.iter().enumerate() {
            words[i] |= w;
        }
        let mut s = VarSet { words };
        s.normalize();
        s
    }

    /// Set intersection.
    pub fn intersection(&self, other: &VarSet) -> VarSet {
        let n = self.words.len().min(other.words.len());
        let words: Vec<u64> = (0..n).map(|i| self.words[i] & other.words[i]).collect();
        let mut s = VarSet { words };
        s.normalize();
        s
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &VarSet) -> VarSet {
        let words: Vec<u64> = self
            .words
            .iter()
            .enumerate()
            .map(|(i, w)| w & !other.words.get(i).copied().unwrap_or(0))
            .collect();
        let mut s = VarSet { words };
        s.normalize();
        s
    }

    /// Symmetric difference (XOR) of the two sets.
    pub fn symmetric_difference(&self, other: &VarSet) -> VarSet {
        let mut words = vec![0u64; self.words.len().max(other.words.len())];
        for (i, w) in self.words.iter().enumerate() {
            words[i] ^= w;
        }
        for (i, w) in other.words.iter().enumerate() {
            words[i] ^= w;
        }
        let mut s = VarSet { words };
        s.normalize();
        s
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &VarSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (i, w) in other.words.iter().enumerate() {
            self.words[i] |= w;
        }
    }

    /// Iterates over the member variables in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The smallest member, if any.
    pub fn min_var(&self) -> Option<usize> {
        self.iter().next()
    }

    /// The largest member, if any.
    pub fn max_var(&self) -> Option<usize> {
        for (i, w) in self.words.iter().enumerate().rev() {
            if *w != 0 {
                return Some(i * 64 + 63 - w.leading_zeros() as usize);
            }
        }
        None
    }
}

impl fmt::Debug for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "x{v}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for VarSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        VarSet::from_vars(iter)
    }
}

impl Extend<usize> for VarSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<'a> IntoIterator for &'a VarSet {
    type Item = usize;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over the variables of a [`VarSet`], produced by [`VarSet::iter`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a VarSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * 64 + b);
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = VarSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn large_indices() {
        let mut s = VarSet::new();
        s.insert(200);
        s.insert(64);
        s.insert(0);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 200]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.max_var(), Some(200));
        assert_eq!(s.min_var(), Some(0));
    }

    #[test]
    fn subset_and_disjoint() {
        let a = VarSet::from_vars([1, 2, 3]);
        let b = VarSet::from_vars([1, 2, 3, 9]);
        let c = VarSet::from_vars([4, 5]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn subset_with_trailing_words() {
        let a = VarSet::from_vars([100]);
        let b = VarSet::from_vars([1]);
        assert!(!a.is_subset(&b));
        assert!(a.is_disjoint(&b));
    }

    #[test]
    fn set_algebra() {
        let a = VarSet::from_vars([0, 1, 2]);
        let b = VarSet::from_vars([2, 3]);
        assert_eq!(a.union(&b), VarSet::from_vars([0, 1, 2, 3]));
        assert_eq!(a.intersection(&b), VarSet::from_vars([2]));
        assert_eq!(a.difference(&b), VarSet::from_vars([0, 1]));
        assert_eq!(a.symmetric_difference(&b), VarSet::from_vars([0, 1, 3]));
    }

    #[test]
    fn normalization_keeps_equality() {
        let mut a = VarSet::from_vars([1, 100]);
        a.remove(100);
        let b = VarSet::from_vars([1]);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn display_names_variables() {
        let s = VarSet::from_vars([0, 3]);
        assert_eq!(s.to_string(), "{x0,x3}");
    }
}
