//! Fixed-Polarity Reed-Muller (FPRM) forms.
//!
//! An FPRM form represents a Boolean function as an XOR-sum of cubes in
//! which every variable appears with a single fixed polarity (Section 2 of
//! the paper). This module provides the form itself, the fast
//! fixed-polarity Reed-Muller transform from truth tables, polarity search,
//! and prime-cube analysis (Csanky et al.).

use crate::{TruthTable, VarSet};
use std::fmt;

/// The polarity assignment of an FPRM form: for each variable, whether it
/// appears positively (`true`) or negatively (`false`) in all cubes.
///
/// # Examples
///
/// ```
/// use xsynth_boolean::Polarity;
///
/// let mut p = Polarity::all_positive(3);
/// p.set(1, false);
/// assert!(p.is_positive(0));
/// assert!(!p.is_positive(1));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Polarity {
    n: usize,
    positive: VarSet,
}

impl Polarity {
    /// All variables positive — the polarity of the classic
    /// positive-polarity Reed-Muller form.
    pub fn all_positive(n: usize) -> Self {
        Polarity {
            n,
            positive: VarSet::full(n),
        }
    }

    /// All variables negative.
    pub fn all_negative(n: usize) -> Self {
        Polarity {
            n,
            positive: VarSet::new(),
        }
    }

    /// Builds a polarity from the paper's vector convention: entry `1`
    /// means positive, `0` negative.
    ///
    /// # Examples
    ///
    /// ```
    /// use xsynth_boolean::Polarity;
    /// // The paper's Figure 1 polarity V = (0 1 1).
    /// let p = Polarity::from_bits(&[false, true, true]);
    /// assert!(!p.is_positive(0));
    /// assert!(p.is_positive(2));
    /// ```
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut p = Polarity::all_negative(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                p.positive.insert(i);
            }
        }
        p
    }

    /// Decodes a polarity from an integer, bit `i` = polarity of variable
    /// `i` (used to enumerate all `2^n` polarities).
    pub fn from_index(n: usize, index: u64) -> Self {
        let mut p = Polarity::all_negative(n);
        for i in 0..n {
            if index & (1 << i) != 0 {
                p.positive.insert(i);
            }
        }
        p
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Encodes the polarity as an integer, the inverse of
    /// [`Polarity::from_index`]: bit `i` is set iff variable `i` is
    /// positive. Used as a compact memo key by the polarity search.
    ///
    /// # Panics
    ///
    /// Panics if the polarity has more than 64 variables.
    pub fn index(&self) -> u64 {
        assert!(self.n <= 64, "polarity index overflows u64");
        let mut idx = 0u64;
        for v in self.positive.iter() {
            idx |= 1 << v;
        }
        idx
    }

    /// Whether variable `var` is positive.
    pub fn is_positive(&self, var: usize) -> bool {
        self.positive.contains(var)
    }

    /// Sets the polarity of `var`.
    pub fn set(&mut self, var: usize, positive: bool) {
        if positive {
            self.positive.insert(var);
        } else {
            self.positive.remove(var);
        }
    }

    /// Flips the polarity of `var`.
    pub fn flip(&mut self, var: usize) {
        if self.is_positive(var) {
            self.positive.remove(var);
        } else {
            self.positive.insert(var);
        }
    }

    /// Translates a *literal-space* assignment (bit = value of the literal)
    /// into a *variable-space* assignment (bit = value of the variable):
    /// a negative-polarity literal at 1 means the variable is 0.
    pub fn literals_to_inputs(&self, literals: u64) -> u64 {
        let mut inputs = 0u64;
        for v in 0..self.n {
            let lit = literals & (1 << v) != 0;
            let val = if self.is_positive(v) { lit } else { !lit };
            if val {
                inputs |= 1 << v;
            }
        }
        inputs
    }
}

impl fmt::Debug for Polarity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Polarity(")?;
        for v in 0..self.n {
            write!(f, "{}", if self.is_positive(v) { 1 } else { 0 })?;
        }
        write!(f, ")")
    }
}

/// A fixed-polarity Reed-Muller form: an XOR-sum of cubes, each cube a set
/// of variables, with the phase of every variable dictated by a shared
/// [`Polarity`].
///
/// # Examples
///
/// ```
/// use xsynth_boolean::{Fprm, TruthTable};
///
/// // x0 XOR x1 has the positive-polarity FPRM x0 ⊕ x1.
/// let t = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
/// let f = Fprm::from_table_positive(&t);
/// assert_eq!(f.num_cubes(), 2);
/// assert_eq!(f.to_table(), t);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Fprm {
    polarity: Polarity,
    cubes: Vec<VarSet>,
}

impl Fprm {
    /// Builds an FPRM form directly from its parts.
    pub fn new(polarity: Polarity, cubes: Vec<VarSet>) -> Self {
        Fprm { polarity, cubes }
    }

    /// The FPRM form of `t` in all-positive polarity (the classic
    /// positive-polarity Reed-Muller form).
    pub fn from_table_positive(t: &TruthTable) -> Self {
        Fprm::from_table(t, &Polarity::all_positive(t.num_vars()))
    }

    /// The FPRM form of `t` under `polarity`, via the fast fixed-polarity
    /// Reed-Muller (Davio) transform, `O(n·2^n)`.
    ///
    /// # Panics
    ///
    /// Panics if `polarity.num_vars() != t.num_vars()`.
    pub fn from_table(t: &TruthTable, polarity: &Polarity) -> Self {
        let n = t.num_vars();
        assert_eq!(polarity.num_vars(), n, "polarity arity mismatch");
        let mut words: Vec<u64> = t.words().to_vec();
        for var in 0..n {
            davio_butterfly(&mut words, var, polarity.is_positive(var));
        }
        // Collect coefficient positions.
        let mut cubes = Vec::new();
        for m in 0..(1u64 << n) {
            if words[(m / 64) as usize] & (1 << (m % 64)) != 0 {
                cubes.push((0..n).filter(|v| m & (1 << v) != 0).collect::<VarSet>());
            }
        }
        Fprm {
            polarity: polarity.clone(),
            cubes,
        }
    }

    /// The polarity vector.
    pub fn polarity(&self) -> &Polarity {
        &self.polarity
    }

    /// The cubes (variable sets; phases come from the polarity).
    pub fn cubes(&self) -> &[VarSet] {
        &self.cubes
    }

    /// Number of cubes.
    pub fn num_cubes(&self) -> usize {
        self.cubes.len()
    }

    /// Number of input variables.
    pub fn num_vars(&self) -> usize {
        self.polarity.num_vars()
    }

    /// Total literal count over all cubes.
    pub fn num_literals(&self) -> usize {
        self.cubes.iter().map(VarSet::len).sum()
    }

    /// Whether the constant-one cube is present.
    pub fn has_constant_cube(&self) -> bool {
        self.cubes.iter().any(VarSet::is_empty)
    }

    /// Evaluates the form on a variable-space assignment.
    pub fn eval(&self, minterm: u64) -> bool {
        let mut acc = false;
        for c in &self.cubes {
            let mut on = true;
            for v in c.iter() {
                let val = minterm & (1 << v) != 0;
                let lit = if self.polarity.is_positive(v) {
                    val
                } else {
                    !val
                };
                if !lit {
                    on = false;
                    break;
                }
            }
            acc ^= on;
        }
        acc
    }

    /// Converts back to a truth table (inverse transform).
    pub fn to_table(&self) -> TruthTable {
        let n = self.num_vars();
        let mut t = TruthTable::zero(n);
        for c in &self.cubes {
            let mut m = 0u64;
            for v in c.iter() {
                m |= 1 << v;
            }
            t.set(m, true);
        }
        let mut words = t.words().to_vec();
        for var in 0..n {
            davio_butterfly_inv(&mut words, var, self.polarity.is_positive(var));
        }
        let mut out = TruthTable::zero(n);
        for m in 0..(1u64 << n) {
            if words[(m / 64) as usize] & (1 << (m % 64)) != 0 {
                out.set(m, true);
            }
        }
        out
    }

    /// The prime cubes of the form: cubes whose support is not properly
    /// contained in the support of any other cube (Csanky et al. — these
    /// occur in every one of the `2^n` FPRM forms of the function).
    pub fn prime_cubes(&self) -> Vec<&VarSet> {
        self.cubes
            .iter()
            .filter(|c| !self.cubes.iter().any(|d| c != &d && c.is_subset(d)))
            .collect()
    }

    /// Searches all `2^n` polarities for the one with the fewest cubes.
    /// Only feasible for small `n`.
    ///
    /// # Panics
    ///
    /// Panics if `t.num_vars() > 16`.
    pub fn best_polarity_exhaustive(t: &TruthTable) -> Self {
        let n = t.num_vars();
        assert!(n <= 16, "exhaustive polarity search infeasible for n={n}");
        let mut best: Option<Fprm> = None;
        for idx in 0..(1u64 << n) {
            let p = Polarity::from_index(n, idx);
            let f = Fprm::from_table(t, &p);
            if best.as_ref().is_none_or(|b| f.num_cubes() < b.num_cubes()) {
                best = Some(f);
            }
        }
        best.expect("at least one polarity")
    }

    /// Greedy polarity search: starting from all-positive, repeatedly flips
    /// the single variable polarity that most reduces the cube count, until
    /// a local minimum. A good practical surrogate for the exhaustive
    /// search on larger functions.
    pub fn best_polarity_greedy(t: &TruthTable) -> Self {
        let n = t.num_vars();
        let mut pol = Polarity::all_positive(n);
        let mut cur = Fprm::from_table(t, &pol);
        loop {
            let mut improved = false;
            for v in 0..n {
                let mut p2 = pol.clone();
                p2.flip(v);
                let f2 = Fprm::from_table(t, &p2);
                if f2.num_cubes() < cur.num_cubes() {
                    pol = p2;
                    cur = f2;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }
}

/// Applies one Davio butterfly stage in place over the packed table.
///
/// Positive polarity maps `(f0, f1)` blocks to `(f0, f0 ^ f1)` — the
/// coefficient blocks of `f = f0 ⊕ x·(f0 ⊕ f1)`. Negative polarity maps
/// them to `(f1, f0 ^ f1)` for `f = f1 ⊕ ¬x·(f0 ⊕ f1)`.
fn davio_butterfly(words: &mut [u64], var: usize, positive: bool) {
    if var >= 6 {
        let stride = 1usize << (var - 6);
        let mut i = 0;
        while i < words.len() {
            for j in 0..stride {
                let lo = words[i + j];
                let hi = words[i + stride + j];
                if positive {
                    words[i + stride + j] = lo ^ hi;
                } else {
                    words[i + j] = hi;
                    words[i + stride + j] = lo ^ hi;
                }
            }
            i += 2 * stride;
        }
    } else {
        let shift = 1u32 << var;
        let mut vpat = 0u64;
        for i in 0..64u64 {
            if i & (1 << var) != 0 {
                vpat |= 1 << i;
            }
        }
        for w in words.iter_mut() {
            let lo = *w & !vpat;
            let hi = *w & vpat;
            if positive {
                *w = lo | (hi ^ (lo << shift));
            } else {
                *w = (hi >> shift) | (hi ^ (lo << shift));
            }
        }
    }
}

/// Inverts one Davio butterfly stage. The positive stage is an involution
/// (`(lo, hi) → (lo, lo ^ hi)` applied twice is the identity); the negative
/// stage `(lo, hi) → (hi, lo ^ hi)` has order three, and its inverse maps
/// `(a, b) → (a ^ b, a)`.
fn davio_butterfly_inv(words: &mut [u64], var: usize, positive: bool) {
    if positive {
        davio_butterfly(words, var, true);
    } else {
        davio_butterfly(words, var, false);
        davio_butterfly(words, var, false);
    }
}

impl fmt::Debug for Fprm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fprm({} cubes, {:?})", self.num_cubes(), self.polarity)
    }
}

impl fmt::Display for Fprm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " ⊕ ")?;
            }
            if c.is_empty() {
                write!(f, "1")?;
            } else {
                for (j, v) in c.iter().enumerate() {
                    if j > 0 {
                        write!(f, "·")?;
                    }
                    if self.polarity.is_positive(v) {
                        write!(f, "x{v}")?;
                    } else {
                        write!(f, "¬x{v}")?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_table(n: usize, seed: u64) -> TruthTable {
        let mut s = seed;
        TruthTable::from_fn(n, |m| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(m ^ 1442695040888963407);
            (s >> 33) & 1 != 0
        })
    }

    #[test]
    fn ppr_of_xor() {
        let t = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
        let f = Fprm::from_table_positive(&t);
        assert_eq!(f.num_cubes(), 2);
        assert!(f.cubes().contains(&VarSet::singleton(0)));
        assert!(f.cubes().contains(&VarSet::singleton(1)));
    }

    #[test]
    fn ppr_of_or() {
        // x0 + x1 = x0 ⊕ x1 ⊕ x0·x1
        let t = TruthTable::var(2, 0) | TruthTable::var(2, 1);
        let f = Fprm::from_table_positive(&t);
        assert_eq!(f.num_cubes(), 3);
    }

    #[test]
    fn transform_roundtrip_all_polarities() {
        let t = random_table(5, 7);
        for idx in 0..32u64 {
            let p = Polarity::from_index(5, idx);
            let f = Fprm::from_table(&t, &p);
            assert_eq!(f.to_table(), t, "polarity {idx}");
            for m in 0..32u64 {
                assert_eq!(f.eval(m), t.eval(m), "polarity {idx} minterm {m}");
            }
        }
    }

    #[test]
    fn transform_roundtrip_large() {
        let t = random_table(9, 21);
        let p = Polarity::from_index(9, 0b101100110);
        let f = Fprm::from_table(&t, &p);
        assert_eq!(f.to_table(), t);
    }

    #[test]
    fn figure1_function() {
        // Paper Figure 1: f = ¬x1 ⊕ ¬x1·x3 ⊕ ¬x1·x2 ⊕ ¬x1·x2·x3 ⊕ x3 ⊕ x2,
        // polarity V = (0 1 1) — variable numbering in the paper is 1-based;
        // here x1,x2,x3 map to variables 0,1,2.
        let p = Polarity::from_bits(&[false, true, true]);
        let cubes = vec![
            VarSet::from_vars([0]),
            VarSet::from_vars([0, 2]),
            VarSet::from_vars([0, 1]),
            VarSet::from_vars([0, 1, 2]),
            VarSet::from_vars([2]),
            VarSet::from_vars([1]),
        ];
        let f = Fprm::new(p.clone(), cubes);
        let t = f.to_table();
        // Re-deriving the FPRM under the same polarity gives the same cubes.
        let f2 = Fprm::from_table(&t, &p);
        assert_eq!(f2.num_cubes(), 6);
        let mut a: Vec<_> = f.cubes().to_vec();
        let mut b: Vec<_> = f2.cubes().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn adder_sum_has_prime_cubes() {
        // Paper: z4ml output x26 = x3 ⊕ x6 ⊕ x1x4 ⊕ x1x7 ⊕ x4x7 — all prime.
        // Model: middle sum bit of a 3-bit adder with carry chain.
        let t = TruthTable::from_fn(5, |m| {
            let a = m & 1;
            let b = (m >> 1) & 1;
            let cin = (m >> 2) & 1;
            let a2 = (m >> 3) & 1;
            let b2 = (m >> 4) & 1;
            let carry = a & b | a & cin | b & cin;
            ((a2 ^ b2 ^ carry) & 1) != 0
        });
        let f = Fprm::from_table_positive(&t);
        assert_eq!(f.num_cubes(), 5);
        assert_eq!(
            f.prime_cubes().len(),
            5,
            "all cubes of an adder sum are prime"
        );
    }

    #[test]
    fn prime_cube_containment() {
        let p = Polarity::all_positive(3);
        let f = Fprm::new(
            p,
            vec![
                VarSet::from_vars([0]),
                VarSet::from_vars([0, 1]),
                VarSet::from_vars([2]),
            ],
        );
        let primes = f.prime_cubes();
        assert_eq!(primes.len(), 2);
        assert!(primes.contains(&&VarSet::from_vars([0, 1])));
        assert!(primes.contains(&&VarSet::from_vars([2])));
    }

    #[test]
    fn exhaustive_beats_or_ties_positive() {
        for seed in 0..6u64 {
            let t = random_table(4, seed);
            let pos = Fprm::from_table_positive(&t);
            let best = Fprm::best_polarity_exhaustive(&t);
            assert!(best.num_cubes() <= pos.num_cubes());
            assert_eq!(best.to_table(), t);
        }
    }

    #[test]
    fn greedy_is_valid_and_not_worse_than_positive() {
        let t = random_table(7, 99);
        let g = Fprm::best_polarity_greedy(&t);
        assert_eq!(g.to_table(), t);
        assert!(g.num_cubes() <= Fprm::from_table_positive(&t).num_cubes());
    }

    #[test]
    fn literal_space_mapping() {
        let p = Polarity::from_bits(&[true, false, true]);
        // literal pattern 0b011: lit0=1, lit1=1, lit2=0
        // var0 positive -> 1; var1 negative, lit=1 -> var=0; var2 positive, lit=0 -> 0
        assert_eq!(p.literals_to_inputs(0b011), 0b001);
        // all literals 0: var1 negative lit 0 -> var 1
        assert_eq!(p.literals_to_inputs(0), 0b010);
    }

    #[test]
    fn constant_cube_detection() {
        let t = !TruthTable::var(1, 0); // ¬x0 = 1 ⊕ x0 in positive polarity
        let f = Fprm::from_table_positive(&t);
        assert!(f.has_constant_cube());
        assert_eq!(f.num_cubes(), 2);
    }
}
