//! Boolean function substrate for the `xsynth` workspace.
//!
//! This crate provides the ground-truth representations used by every other
//! crate in the reproduction of *Multilevel Logic Synthesis for Arithmetic
//! Functions* (Tsai & Marek-Sadowska, DAC 1996):
//!
//! * [`VarSet`] — compact variable sets,
//! * [`TruthTable`] — bit-parallel complete truth tables,
//! * [`Cube`] / [`Sop`] — three-valued cubes and sum-of-products covers,
//! * [`Polarity`] / [`Fprm`] — fixed-polarity Reed-Muller forms with the
//!   fast Davio transform, polarity search, and prime-cube analysis.
//!
//! # Examples
//!
//! Derive the FPRM form of a symmetric function and inspect its cubes:
//!
//! ```
//! use xsynth_boolean::{Fprm, TruthTable};
//!
//! // 3-input majority.
//! let maj = TruthTable::symmetric(3, &[false, false, true, true]);
//! let fprm = Fprm::from_table_positive(&maj);
//! // majority(a,b,c) = ab ⊕ ac ⊕ bc
//! assert_eq!(fprm.num_cubes(), 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cube;
mod fprm;
mod sop;
mod tt;
mod varset;

pub use cube::Cube;
pub use fprm::{Fprm, Polarity};
pub use sop::Sop;
pub use tt::{TruthTable, MAX_TT_VARS};
pub use varset::{Iter as VarSetIter, VarSet};
