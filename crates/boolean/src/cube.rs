//! Three-valued cubes (product terms) for SOP covers.

use crate::{TruthTable, VarSet};
use std::fmt;

/// A product term over Boolean variables.
///
/// Each variable is either absent, present in positive phase, or present in
/// negative phase. Internally two [`VarSet`]s hold the positive and negative
/// literals; the invariant `pos ∩ neg = ∅` is maintained by the constructors
/// (a cube with both phases of a variable would be constant false, which is
/// represented as an empty cover instead).
///
/// # Examples
///
/// ```
/// use xsynth_boolean::Cube;
///
/// // x0 & !x2
/// let c = Cube::new([0], [2]).unwrap();
/// assert!(c.eval(0b001));
/// assert!(!c.eval(0b101));
/// assert!(!c.eval(0b000));
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    pos: VarSet,
    neg: VarSet,
}

impl Cube {
    /// The universal cube (constant one).
    pub fn universe() -> Self {
        Cube::default()
    }

    /// Creates a cube from positive and negative literal sets.
    ///
    /// Returns `None` if a variable appears in both phases (an empty,
    /// contradictory cube).
    pub fn new<P, N>(pos: P, neg: N) -> Option<Self>
    where
        P: IntoIterator<Item = usize>,
        N: IntoIterator<Item = usize>,
    {
        let pos = VarSet::from_vars(pos);
        let neg = VarSet::from_vars(neg);
        Cube::from_sets(pos, neg)
    }

    /// Creates a cube from prebuilt literal sets; `None` on contradiction.
    pub fn from_sets(pos: VarSet, neg: VarSet) -> Option<Self> {
        if pos.is_disjoint(&neg) {
            Some(Cube { pos, neg })
        } else {
            None
        }
    }

    /// A cube with the single literal `var` (positive if `phase`).
    pub fn literal(var: usize, phase: bool) -> Self {
        if phase {
            Cube {
                pos: VarSet::singleton(var),
                neg: VarSet::new(),
            }
        } else {
            Cube {
                pos: VarSet::new(),
                neg: VarSet::singleton(var),
            }
        }
    }

    /// The positive-phase literal set.
    pub fn positive(&self) -> &VarSet {
        &self.pos
    }

    /// The negative-phase literal set.
    pub fn negative(&self) -> &VarSet {
        &self.neg
    }

    /// The support (all variables mentioned).
    pub fn support(&self) -> VarSet {
        self.pos.union(&self.neg)
    }

    /// Number of literals.
    pub fn num_literals(&self) -> usize {
        self.pos.len() + self.neg.len()
    }

    /// Whether this is the universal cube.
    pub fn is_universe(&self) -> bool {
        self.pos.is_empty() && self.neg.is_empty()
    }

    /// The phase of `var` in this cube: `Some(true)` positive,
    /// `Some(false)` negative, `None` absent.
    pub fn phase(&self, var: usize) -> Option<bool> {
        if self.pos.contains(var) {
            Some(true)
        } else if self.neg.contains(var) {
            Some(false)
        } else {
            None
        }
    }

    /// Adds a literal; returns `false` (cube unchanged) if the opposite
    /// phase is already present.
    pub fn add_literal(&mut self, var: usize, phase: bool) -> bool {
        let (mine, other) = if phase {
            (&mut self.pos, &self.neg)
        } else {
            (&mut self.neg, &self.pos)
        };
        if other.contains(var) {
            return false;
        }
        mine.insert(var);
        true
    }

    /// Removes any literal of `var`; returns whether one was present.
    pub fn remove_var(&mut self, var: usize) -> bool {
        self.pos.remove(var) | self.neg.remove(var)
    }

    /// Evaluates the cube on an input assignment (bit `i` = value of
    /// variable `i`).
    pub fn eval(&self, minterm: u64) -> bool {
        for v in self.pos.iter() {
            if minterm & (1 << v) == 0 {
                return false;
            }
        }
        for v in self.neg.iter() {
            if minterm & (1 << v) != 0 {
                return false;
            }
        }
        true
    }

    /// Cube intersection (AND); `None` if contradictory.
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        Cube::from_sets(self.pos.union(&other.pos), self.neg.union(&other.neg))
    }

    /// Whether `self` implies `other` (`self`'s on-set ⊆ `other`'s), i.e.
    /// `other`'s literals ⊆ `self`'s.
    pub fn implies(&self, other: &Cube) -> bool {
        other.pos.is_subset(&self.pos) && other.neg.is_subset(&self.neg)
    }

    /// The number of variables on which the two cubes have opposite phases.
    pub fn distance(&self, other: &Cube) -> usize {
        self.pos.intersection(&other.neg).len() + self.neg.intersection(&other.pos).len()
    }

    /// Algebraic cube division: `self / other`, defined when `other`'s
    /// literals are a subset of `self`'s; the quotient drops them.
    pub fn divide(&self, other: &Cube) -> Option<Cube> {
        if other.pos.is_subset(&self.pos) && other.neg.is_subset(&self.neg) {
            Some(Cube {
                pos: self.pos.difference(&other.pos),
                neg: self.neg.difference(&other.neg),
            })
        } else {
            None
        }
    }

    /// Converts to a truth table over `n` variables.
    ///
    /// # Panics
    ///
    /// Panics if the cube mentions a variable `>= n` or `n` exceeds
    /// [`crate::MAX_TT_VARS`].
    pub fn to_table(&self, n: usize) -> TruthTable {
        let mut t = TruthTable::one(n);
        for v in self.pos.iter() {
            t = t & TruthTable::var(n, v);
        }
        for v in self.neg.iter() {
            t = t & !TruthTable::var(n, v);
        }
        t
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube({self})")
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_universe() {
            return write!(f, "1");
        }
        let mut lits: Vec<(usize, bool)> = self
            .pos
            .iter()
            .map(|v| (v, true))
            .chain(self.neg.iter().map(|v| (v, false)))
            .collect();
        lits.sort_unstable();
        for (i, (v, ph)) in lits.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            if *ph {
                write!(f, "x{v}")?;
            } else {
                write!(f, "¬x{v}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_eval() {
        let c = Cube::literal(2, false);
        assert!(c.eval(0b000));
        assert!(!c.eval(0b100));
    }

    #[test]
    fn contradiction_is_none() {
        assert!(Cube::new([1], [1]).is_none());
        let mut c = Cube::literal(1, true);
        assert!(!c.add_literal(1, false));
        assert_eq!(c, Cube::literal(1, true));
    }

    #[test]
    fn implies_and_distance() {
        let ab = Cube::new([0, 1], []).unwrap();
        let a = Cube::new([0], []).unwrap();
        assert!(ab.implies(&a));
        assert!(!a.implies(&ab));
        let an = Cube::new([], [0]).unwrap();
        assert_eq!(a.distance(&an), 1);
        assert_eq!(ab.distance(&an), 1);
        assert_eq!(a.distance(&ab), 0);
    }

    #[test]
    fn division() {
        let abc = Cube::new([0, 1], [2]).unwrap();
        let b = Cube::new([1], []).unwrap();
        let q = abc.divide(&b).unwrap();
        assert_eq!(q, Cube::new([0], [2]).unwrap());
        assert!(abc.divide(&Cube::new([3], []).unwrap()).is_none());
    }

    #[test]
    fn table_matches_eval() {
        let c = Cube::new([0, 3], [2]).unwrap();
        let t = c.to_table(4);
        for m in 0..16u64 {
            assert_eq!(t.eval(m), c.eval(m));
        }
    }

    #[test]
    fn universe_properties() {
        let u = Cube::universe();
        assert!(u.is_universe());
        assert_eq!(u.num_literals(), 0);
        assert!(u.eval(123 & 0x3f));
        assert_eq!(u.to_string(), "1");
    }
}
