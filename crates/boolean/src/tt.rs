//! Bit-parallel truth tables.
//!
//! A [`TruthTable`] stores the complete function table of an `n`-input
//! Boolean function in `2^n` bits packed into `u64` words. It is the ground
//! truth for all small-function reasoning in the workspace: equivalence
//! checking, Reed-Muller transforms, cofactoring, symmetric-function
//! construction.

use crate::VarSet;
use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// Maximum supported input count. `2^22` bits = 512 KiB per table, which is
/// the largest table the synthesis flow ever materializes.
pub const MAX_TT_VARS: usize = 22;

/// A complete truth table of an `n`-input Boolean function.
///
/// Bit `i` of the table is the function value on the input assignment whose
/// binary encoding is `i` (variable 0 is the least significant bit).
///
/// # Examples
///
/// ```
/// use xsynth_boolean::TruthTable;
///
/// let a = TruthTable::var(3, 0);
/// let b = TruthTable::var(3, 1);
/// let f = &a ^ &b;
/// assert!(f.eval(0b001));
/// assert!(!f.eval(0b011));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    n: usize,
    words: Vec<u64>,
}

fn words_for(n: usize) -> usize {
    if n >= 6 {
        1 << (n - 6)
    } else {
        1
    }
}

/// Mask of the valid bits in the single word of a table with `n < 6` inputs.
fn tail_mask(n: usize) -> u64 {
    if n >= 6 {
        !0
    } else {
        (1u64 << (1 << n)) - 1
    }
}

impl TruthTable {
    /// The constant-zero function of `n` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_TT_VARS`.
    pub fn zero(n: usize) -> Self {
        assert!(n <= MAX_TT_VARS, "truth table too large: {n} inputs");
        TruthTable {
            n,
            words: vec![0; words_for(n)],
        }
    }

    /// The constant-one function of `n` inputs.
    pub fn one(n: usize) -> Self {
        let mut t = TruthTable::zero(n);
        for w in &mut t.words {
            *w = !0;
        }
        t.mask_tail();
        t
    }

    /// The projection function of variable `var` among `n` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `var >= n` or `n > MAX_TT_VARS`.
    pub fn var(n: usize, var: usize) -> Self {
        assert!(var < n, "variable {var} out of range for {n} inputs");
        let mut t = TruthTable::zero(n);
        if var >= 6 {
            let stride = 1usize << (var - 6);
            let mut i = 0;
            while i < t.words.len() {
                for j in 0..stride {
                    t.words[i + stride + j] = !0;
                }
                i += 2 * stride;
            }
        } else {
            // pattern within a word, e.g. var 0 -> 0xAAAA...
            let mut pat = 0u64;
            for i in 0..64u64 {
                if i & (1 << var) != 0 {
                    pat |= 1 << i;
                }
            }
            for w in &mut t.words {
                *w = pat;
            }
        }
        t.mask_tail();
        t
    }

    /// Builds a table by evaluating `f` on every input assignment.
    pub fn from_fn<F: FnMut(u64) -> bool>(n: usize, mut f: F) -> Self {
        let mut t = TruthTable::zero(n);
        for m in 0..(1u64 << n) {
            if f(m) {
                t.set(m, true);
            }
        }
        t
    }

    /// Builds a fully symmetric function: the output depends only on the
    /// input weight (number of ones); `on_weights[w]` gives the value at
    /// weight `w`.
    ///
    /// # Panics
    ///
    /// Panics if `on_weights.len() != n + 1`.
    pub fn symmetric(n: usize, on_weights: &[bool]) -> Self {
        assert_eq!(on_weights.len(), n + 1, "need one value per weight 0..=n");
        TruthTable::from_fn(n, |m| on_weights[m.count_ones() as usize])
    }

    /// Number of input variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Raw words of the table (bit `i` = value on assignment `i`).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    fn mask_tail(&mut self) {
        let m = tail_mask(self.n);
        let last = self.words.len() - 1;
        self.words[last] &= m;
    }

    /// Evaluates the function on the assignment encoded by `minterm`.
    ///
    /// # Panics
    ///
    /// Panics if `minterm >= 2^n`.
    pub fn eval(&self, minterm: u64) -> bool {
        assert!(minterm < (1u64 << self.n), "minterm out of range");
        self.words[(minterm / 64) as usize] & (1 << (minterm % 64)) != 0
    }

    /// Sets the function value on `minterm`.
    pub fn set(&mut self, minterm: u64, value: bool) {
        assert!(minterm < (1u64 << self.n), "minterm out of range");
        let (w, b) = ((minterm / 64) as usize, minterm % 64);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Number of satisfying assignments.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// Whether the function is constant zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether the function is constant one.
    pub fn is_one(&self) -> bool {
        self.count_ones() == 1u64 << self.n
    }

    /// The positive cofactor with respect to `var` (`f` with `var = 1`),
    /// returned as a table over the same `n` variables (independent of
    /// `var`).
    pub fn cofactor1(&self, var: usize) -> Self {
        let v = TruthTable::var(self.n, var);
        let hi = self & &v;
        hi.expand_from(var, true)
    }

    /// The negative cofactor with respect to `var` (`f` with `var = 0`).
    pub fn cofactor0(&self, var: usize) -> Self {
        let v = TruthTable::var(self.n, var);
        let lo = self & &!&v;
        lo.expand_from(var, false)
    }

    /// Duplicates the half of the table where `var == from_half` onto the
    /// other half, making the function independent of `var`.
    fn expand_from(&self, var: usize, from_half: bool) -> Self {
        let mut t = self.clone();
        if var >= 6 {
            let stride = 1usize << (var - 6);
            let mut i = 0;
            while i < t.words.len() {
                for j in 0..stride {
                    if from_half {
                        t.words[i + j] = t.words[i + stride + j];
                    } else {
                        t.words[i + stride + j] = t.words[i + j];
                    }
                }
                i += 2 * stride;
            }
        } else {
            let shift = 1u32 << var;
            let vpat = {
                let mut pat = 0u64;
                for i in 0..64u64 {
                    if i & (1 << var) != 0 {
                        pat |= 1 << i;
                    }
                }
                pat
            };
            for w in &mut t.words {
                if from_half {
                    let hi = *w & vpat;
                    *w = hi | (hi >> shift);
                } else {
                    let lo = *w & !vpat;
                    *w = lo | (lo << shift);
                }
            }
        }
        t.mask_tail();
        t
    }

    /// Whether the function depends on `var`.
    pub fn depends_on(&self, var: usize) -> bool {
        self.cofactor0(var) != self.cofactor1(var)
    }

    /// The set of variables the function actually depends on.
    pub fn support(&self) -> VarSet {
        (0..self.n).filter(|&v| self.depends_on(v)).collect()
    }

    /// Extends the table to `n` inputs (new variables are don't-cares above
    /// the current ones).
    ///
    /// # Panics
    ///
    /// Panics if `n < self.num_vars()` or `n > MAX_TT_VARS`.
    pub fn extend_to(&self, n: usize) -> Self {
        assert!(n >= self.n, "cannot shrink a truth table");
        let mut t = TruthTable::zero(n);
        let period = 1u64 << self.n;
        for m in 0..(1u64 << n) {
            if self.eval(m % period) {
                t.set(m, true);
            }
        }
        t
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} vars, ", self.n)?;
        if self.n <= 6 {
            write!(f, "0x{:x})", self.words[0] & tail_mask(self.n))
        } else {
            write!(f, "{} ones)", self.count_ones())
        }
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for &TruthTable {
            type Output = TruthTable;
            fn $method(self, rhs: &TruthTable) -> TruthTable {
                assert_eq!(self.n, rhs.n, "truth tables over different inputs");
                let words = self
                    .words
                    .iter()
                    .zip(rhs.words.iter())
                    .map(|(a, b)| a $op b)
                    .collect();
                TruthTable { n: self.n, words }
            }
        }
        impl $trait for TruthTable {
            type Output = TruthTable;
            fn $method(self, rhs: TruthTable) -> TruthTable {
                (&self).$method(&rhs)
            }
        }
    };
}

impl_binop!(BitAnd, bitand, &);
impl_binop!(BitOr, bitor, |);
impl_binop!(BitXor, bitxor, ^);

impl Not for &TruthTable {
    type Output = TruthTable;
    fn not(self) -> TruthTable {
        let mut t = TruthTable {
            n: self.n,
            words: self.words.iter().map(|w| !w).collect(),
        };
        t.mask_tail();
        t
    }
}

impl Not for TruthTable {
    type Output = TruthTable;
    fn not(self) -> TruthTable {
        !&self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_projection() {
        for n in 1..=8 {
            for v in 0..n {
                let t = TruthTable::var(n, v);
                for m in 0..(1u64 << n) {
                    assert_eq!(t.eval(m), m & (1 << v) != 0, "n={n} v={v} m={m}");
                }
            }
        }
    }

    #[test]
    fn ops_match_pointwise() {
        let a = TruthTable::var(7, 2);
        let b = TruthTable::var(7, 6);
        let and = &a & &b;
        let or = &a | &b;
        let xor = &a ^ &b;
        let not = !&a;
        for m in 0..(1u64 << 7) {
            let (x, y) = (a.eval(m), b.eval(m));
            assert_eq!(and.eval(m), x && y);
            assert_eq!(or.eval(m), x || y);
            assert_eq!(xor.eval(m), x ^ y);
            assert_eq!(not.eval(m), !x);
        }
    }

    #[test]
    fn cofactors_and_dependence() {
        // f = x0 & x2 | x1
        let f = TruthTable::from_fn(3, |m| (m & 1 != 0 && m & 4 != 0) || m & 2 != 0);
        let f1 = f.cofactor1(0);
        let f0 = f.cofactor0(0);
        for m in 0..8u64 {
            assert_eq!(f1.eval(m), (m & 4 != 0) || m & 2 != 0);
            assert_eq!(f0.eval(m), m & 2 != 0);
        }
        assert!(f.depends_on(0));
        assert!(f.depends_on(1));
        assert!(f.depends_on(2));
        assert_eq!(f0.support(), VarSet::from_vars([1]));
    }

    #[test]
    fn cofactor_high_var() {
        let f = TruthTable::from_fn(8, |m| (m.count_ones() % 3) == 1);
        let f1 = f.cofactor1(7);
        let f0 = f.cofactor0(7);
        for m in 0..(1u64 << 8) {
            assert_eq!(f1.eval(m), f.eval(m | 0x80));
            assert_eq!(f0.eval(m), f.eval(m & !0x80));
        }
    }

    #[test]
    fn symmetric_majority() {
        let maj = TruthTable::symmetric(5, &[false, false, false, true, true, true]);
        assert_eq!(maj.count_ones(), 16);
        assert!(maj.eval(0b00111));
        assert!(!maj.eval(0b00011));
    }

    #[test]
    fn shannon_expansion_identity() {
        let f = TruthTable::from_fn(6, |m| m.wrapping_mul(2654435761) & 32 != 0);
        for v in 0..6 {
            let x = TruthTable::var(6, v);
            let rebuilt = (&x & &f.cofactor1(v)) | (&!&x & &f.cofactor0(v));
            assert_eq!(rebuilt, f);
        }
    }

    #[test]
    fn constants() {
        assert!(TruthTable::zero(5).is_zero());
        assert!(TruthTable::one(5).is_one());
        assert_eq!(TruthTable::one(3).count_ones(), 8);
        assert!(TruthTable::one(3).support().is_empty());
    }

    #[test]
    fn extend_keeps_function() {
        let f = TruthTable::var(3, 1);
        let g = f.extend_to(5);
        for m in 0..(1u64 << 5) {
            assert_eq!(g.eval(m), m & 2 != 0);
        }
    }
}
