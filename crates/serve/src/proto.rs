//! The serve wire protocol: newline-delimited JSON requests and replies.
//!
//! Every message is one JSON object on one line (NDJSON). Requests carry
//! a `protocol_version` field that both sides validate — the daemon
//! rejects messages whose version or shape falls outside the contract
//! with a typed [`Error::Protocol`] *response* (the connection stays
//! open), mirroring the `schema_version` discipline the benchmark
//! telemetry already enforces. Parsing is strict: unknown keys are
//! protocol violations, not silently ignored extensions, so schema drift
//! is caught at the first message rather than by debugging a half-obeyed
//! request.
//!
//! Request shapes (all share `protocol_version` and `op`):
//!
//! ```text
//! {"protocol_version":1,"op":"ping"}
//! {"protocol_version":1,"op":"stats"}
//! {"protocol_version":1,"op":"metrics"}
//! {"protocol_version":1,"op":"health"}
//! {"protocol_version":1,"op":"recent","limit":10}
//! {"protocol_version":1,"op":"shutdown"}
//! {"protocol_version":1,"op":"synth","id":"j1","format":"blif",
//!  "source":".model f\n...","budget":{"bdd_node_cap":100000,
//!  "phase_timeout_ms":2000,"max_patterns":4096},"deadline_ms":5000,
//!  "telemetry":true}
//! ```
//!
//! Every `synth` reply carries an `id`: the caller's when supplied,
//! otherwise a server-assigned `job-N`. The same ID is stamped on the
//! job's trace spans and recorded in the daemon's flight recorder, so
//! `recent` round-trips it end-to-end.
//!
//! Replies are `{"protocol_version":1,"status":"ok",...}` or
//! `{"protocol_version":1,"status":"error","error":{"kind":...,
//! "exit_code":...,"message":...}}` where `exit_code` is the same
//! taxonomy the CLI documents (10 = protocol violation, 11 =
//! overloaded). Overload sheds additionally carry
//! `error.retry_after_ms`, the server's backoff hint in milliseconds.

use std::time::Duration;
use xsynth_core::{Budget, Error};
use xsynth_trace::json::{self, Value};

/// The wire protocol version this build speaks. Bump on any
/// breaking change to request or response shapes; both the daemon and
/// [`crate::Client`] reject other versions with [`Error::Protocol`].
pub const PROTOCOL_VERSION: u64 = 1;

/// The largest `limit` the `recent` op accepts. The flight recorder
/// ring is far smaller, so any larger request is a client bug — it is
/// rejected as a protocol violation rather than silently clamped.
pub const MAX_RECENT_LIMIT: usize = 1024;

/// The longest job `id` (in bytes) accepted on the wire. IDs are echoed
/// into replies, trace spans, and the flight recorder; an unbounded ID
/// would let one client inflate every downstream buffer.
pub const MAX_ID_BYTES: usize = 256;

/// A parsed request message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Synthesize one circuit (`op: "synth"`).
    Synth(JobRequest),
    /// Liveness probe (`op: "ping"`).
    Ping,
    /// Engine cache / job-counter statistics (`op: "stats"`).
    Stats,
    /// Prometheus-style text exposition of the daemon's engine-lifetime
    /// counters, gauges and latency histograms (`op: "metrics"`).
    Metrics,
    /// Lifecycle probe (`op: "health"`): reports `ready`, `shedding`
    /// (queues at capacity), or `draining`, plus queue depth/capacity,
    /// so load balancers and probes can steer traffic without paying
    /// for a synthesis round-trip.
    Health,
    /// The flight recorder's ring of per-job summaries, newest first
    /// (`op: "recent"`), optionally truncated to `limit` entries.
    Recent {
        /// Maximum number of summaries to return (`None` = the whole
        /// ring).
        limit: Option<usize>,
    },
    /// Graceful daemon shutdown (`op: "shutdown"`): queued jobs drain,
    /// listeners close, the process exits 0.
    Shutdown,
}

/// One synthesis job as submitted on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Caller-chosen identifier, echoed verbatim in the reply so
    /// pipelined requests can be matched to responses.
    pub id: Option<String>,
    /// Source text format.
    pub format: JobFormat,
    /// The circuit source (BLIF or PLA text).
    pub source: String,
    /// Per-job resource budget overriding the daemon default.
    pub budget: Option<Budget>,
    /// End-to-end deadline in milliseconds, measured from the moment the
    /// daemon enqueues the job. A job still queued when its deadline
    /// expires is shed with [`Error::Overloaded`] instead of started;
    /// one that starts in time has its phase timeout clamped to the
    /// remaining allowance.
    pub deadline_ms: Option<u64>,
    /// Attach a `BenchRecord`-style telemetry object (mapped size, power,
    /// verification status, counters, gauges) to the reply. Costs a
    /// verification and mapping pass per job; defaults to `false`.
    pub telemetry: bool,
}

/// The circuit text formats a job may carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobFormat {
    /// Berkeley Logic Interchange Format.
    Blif,
    /// Espresso two-level PLA format.
    Pla,
}

impl JobFormat {
    /// The wire name (`"blif"` / `"pla"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            JobFormat::Blif => "blif",
            JobFormat::Pla => "pla",
        }
    }
}

/// Parses and validates one request line.
///
/// # Errors
///
/// Every failure — malformed JSON, a missing or unsupported
/// `protocol_version`, an unknown `op` or key, a wrong-typed field —
/// is [`Error::Protocol`] (exit code 10): the message reached the
/// daemon intact but falls outside the wire contract.
pub fn parse_request(line: &str) -> Result<Request, Error> {
    let v = json::parse(line.trim())
        .map_err(|e| Error::Protocol(format!("request is not valid JSON: {e}")))?;
    let fields = v
        .as_obj()
        .ok_or_else(|| Error::Protocol(format!("request must be an object, got {}", v.kind())))?;

    let version = v
        .get("protocol_version")
        .ok_or_else(|| Error::Protocol("missing protocol_version".into()))?
        .as_u64()
        .ok_or_else(|| Error::Protocol("protocol_version must be an unsigned integer".into()))?;
    if version != PROTOCOL_VERSION {
        return Err(Error::Protocol(format!(
            "unsupported protocol_version {version} (this daemon speaks {PROTOCOL_VERSION})"
        )));
    }

    let op = v
        .get("op")
        .ok_or_else(|| Error::Protocol("missing op".into()))?
        .as_str()
        .ok_or_else(|| Error::Protocol("op must be a string".into()))?;

    let allowed: &[&str] = match op {
        "synth" => &[
            "protocol_version",
            "op",
            "id",
            "format",
            "source",
            "budget",
            "deadline_ms",
            "telemetry",
        ],
        "ping" | "stats" | "metrics" | "health" | "shutdown" => &["protocol_version", "op", "id"],
        "recent" => &["protocol_version", "op", "id", "limit"],
        other => {
            return Err(Error::Protocol(format!(
                "unknown op `{other}` (expected synth, ping, stats, metrics, health, recent, \
                 or shutdown)"
            )))
        }
    };
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(Error::Protocol(format!(
                "unknown key `{key}` for op `{op}`"
            )));
        }
    }

    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "health" => Ok(Request::Health),
        "recent" => {
            let limit =
                match v.get("limit") {
                    None | Some(Value::Null) => None,
                    Some(l) => Some(l.as_u64().ok_or_else(|| {
                        Error::Protocol("limit must be an unsigned integer".into())
                    })? as usize),
                };
            if let Some(l) = limit {
                if l > MAX_RECENT_LIMIT {
                    return Err(Error::Protocol(format!(
                        "limit {l} exceeds the maximum of {MAX_RECENT_LIMIT}"
                    )));
                }
            }
            Ok(Request::Recent { limit })
        }
        "shutdown" => Ok(Request::Shutdown),
        _ => Ok(Request::Synth(parse_job(&v)?)),
    }
}

fn parse_job(v: &Value) -> Result<JobRequest, Error> {
    let id = match v.get("id") {
        None | Some(Value::Null) => None,
        Some(Value::Str(s)) => {
            if s.len() > MAX_ID_BYTES {
                return Err(Error::Protocol(format!(
                    "id is {} bytes, longer than the maximum of {MAX_ID_BYTES}",
                    s.len()
                )));
            }
            Some(s.clone())
        }
        Some(other) => return Err(Error::Protocol(format!("id must be a string, got {other}"))),
    };
    let format = match v.get("format") {
        None => JobFormat::Blif,
        Some(Value::Str(s)) if s == "blif" => JobFormat::Blif,
        Some(Value::Str(s)) if s == "pla" => JobFormat::Pla,
        Some(other) => {
            return Err(Error::Protocol(format!(
                "format must be \"blif\" or \"pla\", got {other}"
            )))
        }
    };
    let source = v
        .get("source")
        .ok_or_else(|| Error::Protocol("synth request missing source".into()))?
        .as_str()
        .ok_or_else(|| Error::Protocol("source must be a string".into()))?
        .to_string();
    let budget = match v.get("budget") {
        None | Some(Value::Null) => None,
        Some(b) => Some(parse_budget(b)?),
    };
    let deadline_ms = match v.get("deadline_ms") {
        None | Some(Value::Null) => None,
        Some(d) => {
            let ms = d
                .as_u64()
                .ok_or_else(|| Error::Protocol("deadline_ms must be an unsigned integer".into()))?;
            if ms == 0 {
                return Err(Error::Protocol("deadline_ms must be positive".into()));
            }
            Some(ms)
        }
    };
    let telemetry = match v.get("telemetry") {
        None => false,
        Some(b) => b
            .as_bool()
            .ok_or_else(|| Error::Protocol("telemetry must be a boolean".into()))?,
    };
    Ok(JobRequest {
        id,
        format,
        source,
        budget,
        deadline_ms,
        telemetry,
    })
}

fn parse_budget(v: &Value) -> Result<Budget, Error> {
    let fields = v
        .as_obj()
        .ok_or_else(|| Error::Protocol(format!("budget must be an object, got {}", v.kind())))?;
    let mut budget = Budget::default();
    for (key, val) in fields {
        let n = val
            .as_u64()
            .ok_or_else(|| Error::Protocol(format!("budget.{key} must be an unsigned integer")))?;
        budget = match key.as_str() {
            "bdd_node_cap" => budget.bdd_node_cap(Some(n as usize)),
            "phase_timeout_ms" => budget.phase_timeout(Some(Duration::from_millis(n))),
            "max_patterns" => budget.max_patterns(Some(n as usize)),
            other => {
                return Err(Error::Protocol(format!("unknown budget key `{other}`")));
            }
        };
    }
    Ok(budget)
}

/// Builds a `synth` request line (no trailing newline) — the encoder
/// [`crate::Client`] and the CLI smoke tests share.
pub fn synth_request(
    source: &str,
    format: JobFormat,
    id: Option<&str>,
    budget: Option<&Budget>,
    deadline_ms: Option<u64>,
    telemetry: bool,
) -> String {
    let mut o = Obj::new();
    o.num("protocol_version", PROTOCOL_VERSION as f64);
    o.str("op", "synth");
    if let Some(id) = id {
        o.str("id", id);
    }
    o.str("format", format.as_str());
    o.str("source", source);
    if let Some(b) = budget {
        let mut bo = Obj::new();
        if let Some(cap) = b.bdd_node_cap {
            bo.num("bdd_node_cap", cap as f64);
        }
        if let Some(t) = b.phase_timeout {
            bo.num("phase_timeout_ms", t.as_millis() as f64);
        }
        if let Some(p) = b.max_patterns {
            bo.num("max_patterns", p as f64);
        }
        o.raw("budget", &bo.finish());
    }
    if let Some(ms) = deadline_ms {
        o.num("deadline_ms", ms as f64);
    }
    if telemetry {
        o.bool("telemetry", true);
    }
    o.finish()
}

/// Builds a bodyless request line (`ping` / `stats` / `shutdown`).
pub fn simple_request(op: &str) -> String {
    let mut o = Obj::new();
    o.num("protocol_version", PROTOCOL_VERSION as f64);
    o.str("op", op);
    o.finish()
}

/// The stable wire name of an error's family (matches the CLI exit-code
/// taxonomy: `"protocol"` is exit 10, `"budget"` exit 8, ...).
pub fn error_kind(e: &Error) -> &'static str {
    match e {
        Error::Net(_) => "net",
        Error::Parse(_) => "parse",
        Error::Io { .. } => "io",
        Error::InputMismatch { .. } => "input_mismatch",
        Error::Verify(_) => "verify",
        Error::Budget(_) => "budget",
        Error::OutputFailed { .. } => "output_failed",
        Error::Protocol(_) => "protocol",
        Error::Overloaded { .. } => "overloaded",
        Error::Msg(_) => "usage",
        _ => "error",
    }
}

/// Builds a one-line `status: "error"` reply carrying the error's wire
/// kind, CLI exit code, and message. The connection stays open — a
/// protocol violation poisons one message, not the session.
pub fn error_response(id: Option<&str>, e: &Error) -> String {
    let mut o = Obj::new();
    o.num("protocol_version", PROTOCOL_VERSION as f64);
    o.str("status", "error");
    if let Some(id) = id {
        o.str("id", id);
    }
    let mut eo = Obj::new();
    eo.str("kind", error_kind(e));
    eo.num("exit_code", e.exit_code() as f64);
    eo.str("message", &e.to_string());
    if let Error::Overloaded { retry_after_ms, .. } = e {
        eo.num("retry_after_ms", *retry_after_ms as f64);
    }
    o.raw("error", &eo.finish());
    o.finish()
}

/// A JSON string literal: [`json::escape`]d body wrapped in quotes.
fn quote(s: &str) -> String {
    format!("\"{}\"", json::escape(s))
}

/// Serializes a parsed [`Value`] back to compact single-line JSON, so
/// multi-line documents (like [`xsynth_bench::BenchSuite::to_json`]
/// output) can be embedded in NDJSON replies.
pub fn compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => out.push_str(&json::number(*n)),
        Value::Str(s) => out.push_str(&quote(s)),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                compact(item, out);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&quote(k));
                out.push(':');
                compact(val, out);
            }
            out.push('}');
        }
    }
}

/// An incremental single-line JSON object builder over the zero-dep
/// [`json`] escaping primitives.
#[derive(Debug)]
pub(crate) struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    pub(crate) fn new() -> Obj {
        Obj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push_str(&quote(k));
        self.buf.push(':');
    }

    pub(crate) fn str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.buf.push_str(&quote(v));
    }

    pub(crate) fn num(&mut self, k: &str, v: f64) {
        self.key(k);
        self.buf.push_str(&json::number(v));
    }

    pub(crate) fn bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
    }

    pub(crate) fn null(&mut self, k: &str) {
        self.key(k);
        self.buf.push_str("null");
    }

    /// Appends a pre-serialized JSON value verbatim.
    pub(crate) fn raw(&mut self, k: &str, json_value: &str) {
        self.key(k);
        self.buf.push_str(json_value);
    }

    pub(crate) fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_synth_request() {
        let line = r#"{"protocol_version":1,"op":"synth","source":".model f\n.end\n"}"#;
        match parse_request(line).expect("valid") {
            Request::Synth(job) => {
                assert_eq!(job.format, JobFormat::Blif);
                assert!(job.id.is_none() && job.budget.is_none() && !job.telemetry);
                assert!(job.source.starts_with(".model"));
            }
            other => panic!("expected synth, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_is_a_protocol_error_with_exit_code_10() {
        let line = r#"{"protocol_version":2,"op":"ping"}"#;
        let err = parse_request(line).expect_err("version 2 rejected");
        assert!(matches!(err, Error::Protocol(_)), "{err}");
        assert_eq!(err.exit_code(), 10);
        let missing = parse_request(r#"{"op":"ping"}"#).expect_err("missing version");
        assert_eq!(missing.exit_code(), 10);
    }

    #[test]
    fn unknown_keys_and_ops_are_rejected() {
        for line in [
            r#"{"protocol_version":1,"op":"ping","source":"x"}"#,
            r#"{"protocol_version":1,"op":"synth","source":"x","cubes":3}"#,
            r#"{"protocol_version":1,"op":"resynthesize"}"#,
            r#"{"protocol_version":1,"op":"synth","source":"x","budget":{"node_cap":1}}"#,
            "not json at all",
            "[1,2,3]",
        ] {
            let err = parse_request(line).expect_err(line);
            assert!(matches!(err, Error::Protocol(_)), "{line}: {err}");
        }
    }

    #[test]
    fn metrics_and_recent_ops_parse() {
        assert_eq!(
            parse_request(r#"{"protocol_version":1,"op":"metrics"}"#).expect("metrics"),
            Request::Metrics
        );
        assert_eq!(
            parse_request(r#"{"protocol_version":1,"op":"recent"}"#).expect("recent"),
            Request::Recent { limit: None }
        );
        assert_eq!(
            parse_request(r#"{"protocol_version":1,"op":"recent","limit":5}"#).expect("limited"),
            Request::Recent { limit: Some(5) }
        );
        for bad in [
            r#"{"protocol_version":1,"op":"recent","limit":"five"}"#,
            r#"{"protocol_version":1,"op":"metrics","limit":5}"#,
        ] {
            let err = parse_request(bad).expect_err(bad);
            assert!(matches!(err, Error::Protocol(_)), "{bad}: {err}");
        }
    }

    #[test]
    fn budget_fields_round_trip() {
        let b = Budget::default()
            .bdd_node_cap(Some(1234))
            .phase_timeout(Some(Duration::from_millis(500)))
            .max_patterns(Some(64));
        let line = synth_request("src", JobFormat::Pla, Some("j7"), Some(&b), Some(750), true);
        match parse_request(&line).expect("round trip") {
            Request::Synth(job) => {
                assert_eq!(job.id.as_deref(), Some("j7"));
                assert_eq!(job.format, JobFormat::Pla);
                assert!(job.telemetry);
                assert_eq!(job.deadline_ms, Some(750));
                let got = job.budget.expect("budget present");
                assert_eq!(got.bdd_node_cap, Some(1234));
                assert_eq!(got.phase_timeout, Some(Duration::from_millis(500)));
                assert_eq!(got.max_patterns, Some(64));
            }
            other => panic!("expected synth, got {other:?}"),
        }
    }

    #[test]
    fn health_op_parses_and_rejects_extra_keys() {
        assert_eq!(
            parse_request(r#"{"protocol_version":1,"op":"health"}"#).expect("health"),
            Request::Health
        );
        let err = parse_request(r#"{"protocol_version":1,"op":"health","limit":3}"#)
            .expect_err("extra key");
        assert!(matches!(err, Error::Protocol(_)), "{err}");
    }

    #[test]
    fn oversized_limit_and_id_are_protocol_errors() {
        let over = format!(
            r#"{{"protocol_version":1,"op":"recent","limit":{}}}"#,
            MAX_RECENT_LIMIT + 1
        );
        let err = parse_request(&over).expect_err("limit over cap");
        assert!(matches!(err, Error::Protocol(_)), "{err}");
        assert!(err.to_string().contains("maximum"), "{err}");
        // The cap itself is accepted.
        let at = format!(r#"{{"protocol_version":1,"op":"recent","limit":{MAX_RECENT_LIMIT}}}"#);
        assert!(parse_request(&at).is_ok());

        let long_id = "x".repeat(MAX_ID_BYTES + 1);
        let line =
            format!(r#"{{"protocol_version":1,"op":"synth","id":"{long_id}","source":"s"}}"#);
        let err = parse_request(&line).expect_err("id over cap");
        assert!(matches!(err, Error::Protocol(_)), "{err}");
    }

    #[test]
    fn non_object_payloads_are_typed_protocol_errors() {
        for line in ["[1,2,3]", "\"synth\"", "42", "true", "null"] {
            let err = parse_request(line).expect_err(line);
            assert!(matches!(err, Error::Protocol(_)), "{line}: {err}");
            assert_eq!(err.exit_code(), 10, "{line}");
            assert!(err.to_string().contains("object"), "{line}: {err}");
        }
    }

    #[test]
    fn bad_deadlines_are_rejected_and_good_ones_parse() {
        for bad in [
            r#"{"protocol_version":1,"op":"synth","source":"s","deadline_ms":0}"#,
            r#"{"protocol_version":1,"op":"synth","source":"s","deadline_ms":-5}"#,
            r#"{"protocol_version":1,"op":"synth","source":"s","deadline_ms":"soon"}"#,
            r#"{"protocol_version":1,"op":"synth","source":"s","deadline_ms":1.5}"#,
        ] {
            let err = parse_request(bad).expect_err(bad);
            assert!(matches!(err, Error::Protocol(_)), "{bad}: {err}");
        }
        let ok = r#"{"protocol_version":1,"op":"synth","source":"s","deadline_ms":1500}"#;
        match parse_request(ok).expect("valid deadline") {
            Request::Synth(job) => assert_eq!(job.deadline_ms, Some(1500)),
            other => panic!("expected synth, got {other:?}"),
        }
    }

    #[test]
    fn overloaded_replies_carry_retry_after_ms() {
        let resp = error_response(None, &Error::overloaded("global queue full", 125));
        let v = json::parse(&resp).expect("valid JSON");
        let e = v.get("error").expect("error object");
        assert_eq!(e.get("kind").and_then(Value::as_str), Some("overloaded"));
        assert_eq!(e.get("exit_code").and_then(Value::as_u64), Some(11));
        assert_eq!(e.get("retry_after_ms").and_then(Value::as_u64), Some(125));
    }

    #[test]
    fn error_response_is_one_parseable_line() {
        let resp = error_response(Some("j1"), &Error::Protocol("bad shape".into()));
        assert!(!resp.contains('\n'));
        let v = json::parse(&resp).expect("valid JSON");
        assert_eq!(v.get("status").and_then(Value::as_str), Some("error"));
        assert_eq!(v.get("id").and_then(Value::as_str), Some("j1"));
        let e = v.get("error").expect("error object");
        assert_eq!(e.get("kind").and_then(Value::as_str), Some("protocol"));
        assert_eq!(e.get("exit_code").and_then(Value::as_u64), Some(10));
    }

    #[test]
    fn compact_round_trips_nested_documents() {
        let src = r#"{"a":[1,2.5,null,true,"x\ny"],"b":{"c":{}}}"#;
        let v = json::parse(src).expect("valid");
        let mut out = String::new();
        compact(&v, &mut out);
        assert_eq!(json::parse(&out).expect("still valid"), v);
        assert!(!out.contains('\n'));
    }
}
