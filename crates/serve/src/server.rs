//! The daemon: listeners, the fair job scheduler, and the worker pool.
//!
//! Architecture — one thread family per concern, all std-only:
//!
//! - an **accept loop** per listener (TCP and/or unix socket) polls a
//!   nonblocking `accept` so shutdown never hangs on a blocked syscall;
//! - a **reader thread** per connection turns the byte stream into
//!   newline-delimited request lines and submits them to the scheduler;
//! - the **scheduler** keeps one FIFO queue per connection and hands jobs
//!   out round-robin across connections, so a client that pipelines a
//!   hundred jobs cannot starve a client that sends one;
//! - a **worker pool** executes jobs against one shared
//!   [`Engine`] — the long-lived substrate pool and content-addressed
//!   result cache are what make resubmitting a job cheap — and writes
//!   each reply under the connection's write lock.
//!
//! Worker panics are contained per job: the connection receives a typed
//! `status: "error"` reply instead of being dropped.
//!
//! **Admission control.** Queues are bounded per connection and
//! daemon-wide; a job that would exceed either bound is *shed* — the
//! reader thread itself answers a typed `overloaded` error (exit code
//! 11) carrying a `retry_after_ms` backoff hint, so a flooded daemon
//! stays responsive instead of buffering without limit. Request lines
//! are capped in bytes (oversized lines are discarded to the next
//! newline and answered with a protocol error), a half-received line
//! must complete within the read timeout (slow-loris protection), and a
//! silent connection is reaped after the idle timeout. When a
//! connection drops, its queued jobs are cancelled before a worker
//! starts them.
//!
//! **Lifecycle.** The daemon runs a three-state machine: *running* →
//! *draining* → *stopped*. A `shutdown` request (or
//! [`Server::shutdown`]) moves to draining: listeners stop accepting,
//! new submissions are shed as `overloaded`, and queued jobs keep
//! answering until the drain timeout, after which the remainder is shed
//! with typed errors and the daemon stops — the exit-0 path never hangs
//! on queued work.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xsynth_bench::{record_from_run, BenchSuite};
use xsynth_blif::{parse_blif, parse_pla, write_blif};
use xsynth_core::{Budget, Engine, Error, SynthOptions};
use xsynth_map::Library;
use xsynth_trace::metrics::Exposition;
use xsynth_trace::{json, Histogram};

use crate::proto::{self, JobFormat, JobRequest, Request};

/// How often the accept loops check the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Socket read-timeout tick: the longest a reader thread blocks in
/// `read` before re-checking lifecycle state (stop flag, line stall,
/// idle deadline). Shed replies also go out within one tick, because
/// the reader answers them itself.
const READ_TICK: Duration = Duration::from_millis(50);

/// How often the drain watchdog re-checks whether the queues emptied.
const DRAIN_POLL: Duration = Duration::from_millis(5);

/// `retry_after_ms` fallback before any job has completed (no latency
/// distribution to base the hint on yet).
const DEFAULT_RETRY_HINT_MS: u64 = 100;

/// Bounds on the `retry_after_ms` hint: never so small that clients
/// hammer a saturated daemon, never so large that they strand capacity.
const MIN_RETRY_HINT_MS: u64 = 25;
const MAX_RETRY_HINT_MS: u64 = 10_000;

/// Lifecycle states (see the module docs): accepting and admitting.
const STATE_RUNNING: u8 = 0;
/// Listeners closed, admissions shed, queued work still answering.
const STATE_DRAINING: u8 = 1;
/// Drain complete (or timed out); every thread family is exiting.
const STATE_STOPPED: u8 = 2;

/// BDD node cap for per-job telemetry verification, matching the
/// benchmark harness's bounded-verify discipline.
const VERIFY_NODE_CAP: usize = 1 << 22;

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// TCP listen address (e.g. `"127.0.0.1:7171"`, port 0 for
    /// ephemeral). `None` skips the TCP listener.
    pub tcp: Option<String>,
    /// Unix-domain socket path. `None` skips the unix listener. A stale
    /// socket file (left by a killed daemon) is removed and rebound; a
    /// *live* one is an [`Error::Io`].
    pub unix: Option<PathBuf>,
    /// Worker pool size; `0` sizes from available parallelism (capped
    /// at 4 — each job may fan out internally).
    pub workers: usize,
    /// Byte budget of the engine's content-addressed result cache.
    pub cache_bytes: usize,
    /// Default synthesis options for jobs that don't override them.
    pub options: SynthOptions,
    /// Per-connection queue bound: a connection pipelining more
    /// unanswered jobs than this has the excess shed as `overloaded`.
    pub per_conn_queue: usize,
    /// Daemon-wide queued-job bound across all connections.
    pub global_queue: usize,
    /// Longest request line accepted, in bytes. Oversized lines are
    /// discarded to the next newline and answered with a typed protocol
    /// error, so one client cannot balloon the daemon's memory.
    pub max_line_bytes: usize,
    /// A partially received request line must complete within this
    /// window or the connection is reaped (slow-loris protection).
    pub read_timeout: Duration,
    /// A connection with no bytes in flight for this long is reaped.
    pub idle_timeout: Duration,
    /// Socket write timeout for replies; a peer that stops reading
    /// cannot pin a worker forever.
    pub write_timeout: Duration,
    /// Grace window for queued jobs after drain begins; whatever is
    /// still queued when it expires is shed with typed errors.
    pub drain_timeout: Duration,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            tcp: None,
            unix: None,
            workers: 0,
            cache_bytes: xsynth_cache::DEFAULT_CACHE_BYTES,
            options: SynthOptions::default(),
            per_conn_queue: 64,
            global_queue: 1024,
            max_line_bytes: 8 << 20,
            read_timeout: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(300),
            write_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// The sanitized admission/lifecycle bounds every thread family reads
/// (from [`ServeOptions`], with zero/degenerate values floored).
#[derive(Debug, Clone)]
struct Limits {
    per_conn_queue: usize,
    global_queue: usize,
    max_line_bytes: usize,
    read_timeout: Duration,
    idle_timeout: Duration,
    write_timeout: Duration,
    drain_timeout: Duration,
}

impl Limits {
    fn from_options(opts: &ServeOptions) -> Limits {
        let floor = Duration::from_millis(10);
        Limits {
            per_conn_queue: opts.per_conn_queue.max(1),
            global_queue: opts.global_queue.max(1),
            max_line_bytes: opts.max_line_bytes.max(64),
            read_timeout: opts.read_timeout.max(floor),
            idle_timeout: opts.idle_timeout.max(floor),
            write_timeout: opts.write_timeout.max(floor),
            // zero is meaningful here: shed everything immediately
            drain_timeout: opts.drain_timeout,
        }
    }
}

/// Flight-recorder capacity: per-job summaries kept for `recent`.
const FLIGHT_RECORDER_CAP: usize = 128;

/// One queued unit of work: a request line plus where to write the reply.
struct Job {
    conn: u64,
    line: String,
    writer: SharedWriter,
    /// Liveness of the submitting connection: a worker skips (cancels)
    /// a job whose peer already hung up.
    conn_state: Arc<ConnState>,
    /// When the reader enqueued the line — the queue-wait histogram
    /// measures from here to worker pickup, and `deadline_ms` is
    /// measured from here.
    enqueued: Instant,
}

/// Per-connection liveness shared between the reader (which clears it on
/// disconnect), the workers (which check it before starting a queued
/// job), and reply writers (which clear it when the peer stops reading).
struct ConnState {
    alive: AtomicBool,
}

impl ConnState {
    fn new() -> ConnState {
        ConnState {
            alive: AtomicBool::new(true),
        }
    }

    fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    fn kill(&self) {
        self.alive.store(false, Ordering::SeqCst);
    }
}

type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// Locks a daemon mutex, ignoring poisoning — same rationale as
/// `xsynth_bdd::lock`. A panic can escape the worker's `catch_unwind`
/// boundary only from code that mutates nothing behind these locks (the
/// scheduler mutates its queues after the failpoint and the stop check;
/// the writer lock guards an `io::Write` whose partial line at worst
/// garbles one reply), so the guarded state is still consistent and one
/// crashed thread must not take the whole daemon down with it: the old
/// `.expect("scheduler lock")` calls turned one poisoned mutex into a
/// cascade that killed every worker and reader.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Round-robin fair scheduler: one FIFO per connection, connections
/// rotate. Submitting N jobs at once costs a connection its place in
/// line once per job, not zero times.
struct Scheduler {
    state: Mutex<SchedState>,
    ready: Condvar,
}

struct SchedState {
    /// Pending jobs per connection.
    queues: HashMap<u64, VecDeque<Job>>,
    /// Rotation of connection ids that currently have pending jobs; each
    /// id appears at most once.
    order: VecDeque<u64>,
    /// Total queued jobs across all connections (the global bound's
    /// denominator and the `xsynth_queue_depth` gauge).
    total: usize,
    /// Draining: admissions shed, queued work still handed out.
    draining: bool,
    stop: bool,
}

/// Why the scheduler refused a job. Every variant is answered on the
/// wire as a typed `overloaded` error with a `retry_after_ms` hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shed {
    /// The submitting connection's FIFO is at its bound.
    PerConnFull(usize),
    /// The daemon-wide queue bound is reached.
    GlobalFull(usize),
    /// The daemon is draining (or stopped) and admits nothing new.
    Draining,
    /// The `serve.admit` failpoint tripped (chaos suite).
    Injected,
}

impl Shed {
    fn into_error(self, retry_after_ms: u64) -> Error {
        let reason = match self {
            Shed::PerConnFull(cap) => {
                format!("per-connection queue full ({cap} jobs already pipelined)")
            }
            Shed::GlobalFull(cap) => format!("global queue full ({cap} jobs pending)"),
            Shed::Draining => "daemon is draining".to_string(),
            Shed::Injected => "injected fault: admission refused".to_string(),
        };
        Error::overloaded(reason, retry_after_ms)
    }
}

/// The `serve.admit` fault-injection site: an `error` action sheds the
/// job as if a queue bound had been hit, a `panic` action dies inside
/// the submitting reader thread.
fn admit_failpoint_tripped() -> bool {
    xsynth_trace::fail_point!("serve.admit", true);
    false
}

impl Scheduler {
    fn new() -> Scheduler {
        Scheduler {
            state: Mutex::new(SchedState {
                queues: HashMap::new(),
                order: VecDeque::new(),
                total: 0,
                draining: false,
                stop: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues a job, enforcing the admission bounds. On `Err` the job
    /// was not queued and the caller must answer the connection itself.
    fn submit(&self, job: Job, limits: &Limits) -> Result<(), Shed> {
        let mut s = lock(&self.state);
        if s.stop || s.draining {
            return Err(Shed::Draining);
        }
        // Fault-injection site for the poison-safety chaos suite: a panic
        // here unwinds through the reader thread with the state lock held
        // (and not yet mutated), poisoning the mutex exactly the way the
        // pre-fix `.expect` calls could not survive.
        xsynth_trace::fail_point!("serve.submit");
        if admit_failpoint_tripped() {
            return Err(Shed::Injected);
        }
        if s.total >= limits.global_queue {
            return Err(Shed::GlobalFull(limits.global_queue));
        }
        let conn = job.conn;
        let queue = s.queues.entry(conn).or_default();
        if queue.len() >= limits.per_conn_queue {
            return Err(Shed::PerConnFull(limits.per_conn_queue));
        }
        queue.push_back(job);
        s.total += 1;
        if !s.order.contains(&conn) {
            s.order.push_back(conn);
        }
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job in round-robin order; `None` once stopped
    /// *and* drained.
    fn next(&self) -> Option<Job> {
        let mut s = lock(&self.state);
        loop {
            if let Some(conn) = s.order.pop_front() {
                let queue = s.queues.get_mut(&conn).expect("queued conn has a queue");
                let job = queue.pop_front().expect("queued conn has a job");
                if queue.is_empty() {
                    s.queues.remove(&conn);
                } else {
                    s.order.push_back(conn);
                }
                s.total -= 1;
                return Some(job);
            }
            if s.stop {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Discards every job still queued for a disconnected connection,
    /// returning how many were cancelled. Workers double-check
    /// [`ConnState`] for the jobs that raced past this.
    fn cancel_conn(&self, conn: u64) -> usize {
        let mut s = lock(&self.state);
        let dropped = s.queues.remove(&conn).map_or(0, |q| q.len());
        s.total -= dropped;
        s.order.retain(|&c| c != conn);
        dropped
    }

    /// Total queued jobs right now.
    fn depth(&self) -> usize {
        lock(&self.state).total
    }

    /// Stops admitting while still handing queued jobs to workers.
    fn set_draining(&self) {
        lock(&self.state).draining = true;
        self.ready.notify_all();
    }

    /// Removes and returns everything still queued, and stops the
    /// scheduler — the drain watchdog answers these with typed errors
    /// outside the lock.
    fn shed_remaining_and_stop(&self) -> Vec<Job> {
        let mut s = lock(&self.state);
        let mut out = Vec::new();
        while let Some(conn) = s.order.pop_front() {
            if let Some(q) = s.queues.remove(&conn) {
                out.extend(q);
            }
        }
        s.queues.clear();
        s.total = 0;
        s.stop = true;
        drop(s);
        self.ready.notify_all();
        out
    }

    /// Hard stop without shedding — only the unit tests use this
    /// directly; the production path goes through
    /// [`Scheduler::shed_remaining_and_stop`].
    #[cfg(test)]
    fn stop(&self) {
        lock(&self.state).stop = true;
        self.ready.notify_all();
    }
}

/// Shared per-daemon state every worker sees.
struct Ctx {
    engine: Engine,
    lib: Library,
    verify_budget: Budget,
    jobs_done: AtomicU64,
    /// Lifecycle state machine: `STATE_RUNNING` → `STATE_DRAINING` →
    /// `STATE_STOPPED`, monotonic.
    state: AtomicU8,
    limits: Limits,
    sched: Scheduler,
    telemetry: Telemetry,
}

impl Ctx {
    fn state(&self) -> u8 {
        self.state.load(Ordering::SeqCst)
    }

    /// The backoff hint stamped on `overloaded` replies: current queue
    /// depth times the median job latency (clamped), i.e. roughly how
    /// long until the backlog ahead of a retry has cleared.
    fn retry_after_hint(&self) -> u64 {
        let depth = self.sched.depth() as u64;
        let p50 = lock(&self.telemetry.hists).job_seconds.quantile(0.50);
        let per_job_ms = if p50.is_finite() && p50 > 0.0 {
            ((p50 * 1000.0) as u64).max(1)
        } else {
            DEFAULT_RETRY_HINT_MS
        };
        (depth + 1)
            .saturating_mul(per_job_ms)
            .clamp(MIN_RETRY_HINT_MS, MAX_RETRY_HINT_MS)
    }
}

/// Moves the daemon from running to draining (idempotent) and spawns
/// the drain watchdog that enforces the drain timeout.
fn begin_drain(ctx: &Arc<Ctx>) {
    if ctx
        .state
        .compare_exchange(
            STATE_RUNNING,
            STATE_DRAINING,
            Ordering::SeqCst,
            Ordering::SeqCst,
        )
        .is_err()
    {
        return; // already draining or stopped
    }
    ctx.sched.set_draining();
    let watchdog = ctx.clone();
    if std::thread::Builder::new()
        .name("xsynth-serve-drain".into())
        .spawn(move || drain_watchdog(&watchdog))
        .is_err()
    {
        // Thread spawn failed (resource exhaustion): drain inline so the
        // daemon still reaches STOPPED instead of wedging in DRAINING.
        drain_watchdog(ctx);
    }
}

/// Waits out the drain grace window, then sheds whatever is still
/// queued with typed `overloaded` replies and stops the scheduler. The
/// `serve.drain` failpoint collapses the grace window to zero (error
/// action) or panics mid-drain (panic action) — either way the shed-
/// and-stop epilogue still runs, so a faulty drain can never hang the
/// daemon or strand queued clients without replies.
fn drain_watchdog(ctx: &Arc<Ctx>) {
    let deadline = Instant::now() + ctx.limits.drain_timeout;
    let skip_grace = catch_unwind(drain_failpoint_tripped).unwrap_or(true);
    if !skip_grace {
        while Instant::now() < deadline && ctx.sched.depth() > 0 {
            std::thread::sleep(DRAIN_POLL);
        }
    }
    for job in ctx.sched.shed_remaining_and_stop() {
        if job.conn_state.is_alive() {
            ctx.telemetry.jobs_shed.fetch_add(1, Ordering::Relaxed);
            let err = Error::overloaded(
                "daemon drained before this job started",
                ctx.retry_after_hint(),
            );
            if !write_reply(&job.writer, &proto::error_response(None, &err)) {
                job.conn_state.kill();
            }
        } else {
            ctx.telemetry.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
        }
    }
    ctx.state.store(STATE_STOPPED, Ordering::SeqCst);
}

/// The `serve.drain` fault-injection site (see [`drain_watchdog`]).
fn drain_failpoint_tripped() -> bool {
    xsynth_trace::fail_point!("serve.drain", true);
    false
}

/// Engine-lifetime observability state behind the `metrics` and `recent`
/// wire ops. Everything here is *daemon-side* aggregation: the wall-clock
/// histograms (latency, queue wait, phase durations) are
/// schedule-dependent by nature, so they live outside the per-job trace
/// that the parallel ≡ sequential determinism suite compares.
struct Telemetry {
    /// Daemon start, for the uptime gauge.
    start: Instant,
    /// Worker pool size (utilization denominator).
    workers: usize,
    /// Workers currently executing a request line.
    busy: AtomicU64,
    /// Synthesis jobs answered `status: "ok"`.
    jobs_ok: AtomicU64,
    /// Synthesis jobs answered with a typed error (panics included).
    jobs_error: AtomicU64,
    /// Jobs refused admission or dropped at the drain deadline, all
    /// answered with typed `overloaded` replies.
    jobs_shed: AtomicU64,
    /// Queued jobs discarded because their connection disconnected
    /// before a worker started them.
    jobs_cancelled: AtomicU64,
    /// Connections reaped by the read (slow-loris) or idle timeout.
    conns_reaped: AtomicU64,
    /// Server-assigned request-ID sequence (`job-N`) for synth requests
    /// that arrive without a client-supplied `id`.
    req_seq: AtomicU64,
    /// Engine-lifetime maximum of the per-job `bdd.peak_nodes` gauge.
    peak_nodes: AtomicU64,
    /// The wall-clock histograms (see [`DaemonHists`]).
    hists: Mutex<DaemonHists>,
    /// Bounded ring of per-job summaries, newest at the back.
    recorder: Mutex<VecDeque<JobSummary>>,
}

impl Telemetry {
    fn new(workers: usize) -> Telemetry {
        Telemetry {
            start: Instant::now(),
            workers,
            busy: AtomicU64::new(0),
            jobs_ok: AtomicU64::new(0),
            jobs_error: AtomicU64::new(0),
            jobs_shed: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            conns_reaped: AtomicU64::new(0),
            req_seq: AtomicU64::new(0),
            peak_nodes: AtomicU64::new(0),
            hists: Mutex::new(DaemonHists::default()),
            recorder: Mutex::new(VecDeque::with_capacity(FLIGHT_RECORDER_CAP)),
        }
    }

    /// Assigns the next server-side request ID.
    fn next_request_id(&self) -> String {
        format!("job-{}", self.req_seq.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Raises the engine-lifetime peak-node gauge to at least `nodes`.
    fn observe_peak_nodes(&self, nodes: u64) {
        self.peak_nodes.fetch_max(nodes, Ordering::Relaxed);
    }

    /// Pushes one summary into the flight recorder, evicting the oldest
    /// entry past capacity.
    fn record(&self, summary: JobSummary) {
        let mut ring = lock(&self.recorder);
        if ring.len() == FLIGHT_RECORDER_CAP {
            ring.pop_front();
        }
        ring.push_back(summary);
    }
}

/// The daemon's engine-lifetime latency/size distributions.
#[derive(Default)]
struct DaemonHists {
    /// End-to-end synthesis seconds per job (parse → reply body built).
    job_seconds: Histogram,
    /// Seconds a request line waited in the scheduler before a worker
    /// picked it up.
    queue_seconds: Histogram,
    /// Final `bdd.nodes` gauge per successful job.
    job_bdd_nodes: Histogram,
    /// Wall-clock seconds per pipeline phase, keyed by phase name.
    phase_seconds: BTreeMap<String, Histogram>,
}

/// One flight-recorder entry: everything needed to reconstruct what a job
/// did after the fact.
#[derive(Debug, Clone)]
struct JobSummary {
    /// Request ID (client-supplied or server-assigned) — round-trips
    /// through `recent`.
    id: String,
    /// Circuit/model name (empty when parsing failed).
    name: String,
    /// `"ok"` or `"error"`.
    outcome: &'static str,
    /// Error kind (wire taxonomy) for failed jobs.
    error_kind: Option<String>,
    /// XOR of the canonical cone hashes of every output, hex.
    cone_hash: String,
    /// Salvage-ladder rungs that fired, comma-joined (empty = clean).
    salvage_rungs: String,
    /// Phases a budget cut short.
    budget_trips: u64,
    /// Result-cache hits (polarity + cubes + factored tiers).
    cache_hits: u64,
    /// Result-cache lookup misses.
    cache_misses: u64,
    /// Peak `bdd.peak_nodes` gauge of the job.
    peak_nodes: u64,
    /// Peak RSS in KiB, when the platform exposes it.
    peak_rss_kb: Option<u64>,
    /// End-to-end synthesis seconds.
    seconds: f64,
    /// Scheduler queue wait in seconds.
    queue_seconds: f64,
}

/// A running daemon. Bind with [`Server::bind`], then either
/// [`Server::wait`] (blocking daemon mode) or drive it from tests via
/// [`Server::tcp_addr`] / [`Server::unix_path`] and stop it with
/// [`Server::shutdown`] (or a `shutdown` request).
pub struct Server {
    ctx: Arc<Ctx>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the configured listeners, spawns the worker pool, and
    /// returns the running server.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when a listener cannot bind (including a unix
    /// socket path owned by a *live* daemon), [`Error::Msg`] when no
    /// listener is configured at all.
    pub fn bind(opts: ServeOptions) -> Result<Server, Error> {
        if opts.tcp.is_none() && opts.unix.is_none() {
            return Err(Error::msg("serve needs at least one of --tcp / --socket"));
        }
        let engine = Engine::with_options(opts.options.clone()).cache_budget(opts.cache_bytes);
        let workers = if opts.workers > 0 {
            opts.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .min(4)
        };
        let ctx = Arc::new(Ctx {
            engine,
            lib: Library::mcnc(),
            verify_budget: Budget::default().bdd_node_cap(Some(VERIFY_NODE_CAP)),
            jobs_done: AtomicU64::new(0),
            state: AtomicU8::new(STATE_RUNNING),
            limits: Limits::from_options(&opts),
            sched: Scheduler::new(),
            telemetry: Telemetry::new(workers),
        });

        let mut handles = Vec::new();
        for w in 0..workers {
            let ctx = ctx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("xsynth-serve-worker-{w}"))
                    .spawn(move || worker_loop(&ctx))
                    .map_err(|e| Error::io("spawn worker", e))?,
            );
        }

        let conn_ids = Arc::new(AtomicU64::new(0));
        let mut tcp_addr = None;
        if let Some(addr) = &opts.tcp {
            let listener = TcpListener::bind(addr).map_err(|e| Error::io(addr.clone(), e))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| Error::io(addr.clone(), e))?;
            tcp_addr = Some(
                listener
                    .local_addr()
                    .map_err(|e| Error::io(addr.clone(), e))?,
            );
            let ctx = ctx.clone();
            let ids = conn_ids.clone();
            handles.push(
                std::thread::Builder::new()
                    .name("xsynth-serve-tcp".into())
                    .spawn(move || accept_tcp(listener, &ctx, &ids))
                    .map_err(|e| Error::io("spawn acceptor", e))?,
            );
        }
        let mut unix_path = None;
        #[cfg(unix)]
        if let Some(path) = &opts.unix {
            let listener = bind_unix(path)?;
            listener
                .set_nonblocking(true)
                .map_err(|e| Error::io(path.display().to_string(), e))?;
            unix_path = Some(path.clone());
            let ctx = ctx.clone();
            let ids = conn_ids.clone();
            let path = path.clone();
            handles.push(
                std::thread::Builder::new()
                    .name("xsynth-serve-unix".into())
                    .spawn(move || accept_unix(listener, path, &ctx, &ids))
                    .map_err(|e| Error::io("spawn acceptor", e))?,
            );
        }
        #[cfg(not(unix))]
        if opts.unix.is_some() {
            return Err(Error::msg(
                "unix sockets are not available on this platform",
            ));
        }

        Ok(Server {
            ctx,
            tcp_addr,
            unix_path,
            handles,
        })
    }

    /// Binds and blocks until shutdown — the CLI daemon entry point.
    pub fn run(opts: ServeOptions) -> Result<(), Error> {
        Server::bind(opts)?.wait();
        Ok(())
    }

    /// The bound TCP address (useful with port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound unix socket path.
    pub fn unix_path(&self) -> Option<&std::path::Path> {
        self.unix_path.as_deref()
    }

    /// The daemon's engine (cache statistics, default options).
    pub fn engine(&self) -> &Engine {
        &self.ctx.engine
    }

    /// Jobs completed (ok or error) since the daemon started.
    pub fn jobs_done(&self) -> u64 {
        self.ctx.jobs_done.load(Ordering::Relaxed)
    }

    /// Requests graceful drain programmatically: equivalent to a
    /// `shutdown` message — listeners close, queued jobs answer until
    /// the drain timeout, the remainder is shed with typed errors.
    pub fn shutdown(&self) {
        begin_drain(&self.ctx);
    }

    /// A cloneable handle that can request graceful drain from another
    /// thread while the owner blocks in [`Server::wait`] — e.g. the
    /// supervised daemon's stdin-EOF watcher.
    pub fn drain_handle(&self) -> DrainHandle {
        DrainHandle {
            ctx: self.ctx.clone(),
        }
    }

    /// Joins the accept loops and worker pool. Returns once shutdown was
    /// requested and all queued jobs have been answered or shed.
    pub fn wait(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// See [`Server::drain_handle`].
#[derive(Clone)]
pub struct DrainHandle {
    ctx: Arc<Ctx>,
}

impl DrainHandle {
    /// Requests graceful drain, exactly like [`Server::shutdown`].
    pub fn shutdown(&self) {
        begin_drain(&self.ctx);
    }
}

#[cfg(unix)]
fn bind_unix(path: &std::path::Path) -> Result<UnixListener, Error> {
    match UnixListener::bind(path) {
        Ok(l) => Ok(l),
        Err(first) if path.exists() => {
            // A socket file exists. If nobody answers it, it's stale
            // (a killed daemon) — reclaim it; if a live daemon answers,
            // surface address-in-use.
            if UnixStream::connect(path).is_ok() {
                return Err(Error::io(path.display().to_string(), first));
            }
            std::fs::remove_file(path).map_err(|e| Error::io(path.display().to_string(), e))?;
            UnixListener::bind(path).map_err(|e| Error::io(path.display().to_string(), e))
        }
        Err(e) => Err(Error::io(path.display().to_string(), e)),
    }
}

fn accept_tcp(listener: TcpListener, ctx: &Arc<Ctx>, ids: &AtomicU64) {
    while ctx.state() == STATE_RUNNING {
        match listener.accept() {
            Ok((stream, _)) => spawn_conn(stream, ctx, ids),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

#[cfg(unix)]
fn accept_unix(listener: UnixListener, path: PathBuf, ctx: &Arc<Ctx>, ids: &AtomicU64) {
    while ctx.state() == STATE_RUNNING {
        match listener.accept() {
            Ok((stream, _)) => spawn_conn(stream, ctx, ids),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    let _ = std::fs::remove_file(&path);
}

/// A bidirectional stream the daemon can split into independently owned
/// read and write halves. The read half ticks every [`READ_TICK`] so
/// the reader thread can enforce lifecycle deadlines; the write half
/// times out so a peer that stops reading cannot pin a worker.
trait Conn: Send + 'static {
    fn split(
        self,
        write_timeout: Duration,
    ) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)>;
}

impl Conn for TcpStream {
    fn split(
        self,
        write_timeout: Duration,
    ) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        self.set_nonblocking(false)?;
        self.set_read_timeout(Some(READ_TICK))?;
        self.set_write_timeout(Some(write_timeout))?;
        let reader = self.try_clone()?;
        Ok((Box::new(reader), Box::new(self)))
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn split(
        self,
        write_timeout: Duration,
    ) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        self.set_nonblocking(false)?;
        self.set_read_timeout(Some(READ_TICK))?;
        self.set_write_timeout(Some(write_timeout))?;
        let reader = self.try_clone()?;
        Ok((Box::new(reader), Box::new(self)))
    }
}

/// Spawns the per-connection reader thread. Reader threads are detached:
/// they exit on EOF/error/timeout (cancelling their queued jobs on the
/// way out), and at process shutdown any remainder exits within one
/// read tick of the state machine reaching `STATE_STOPPED`.
fn spawn_conn(stream: impl Conn, ctx: &Arc<Ctx>, ids: &AtomicU64) {
    let conn = ids.fetch_add(1, Ordering::Relaxed);
    let Ok((read_half, write_half)) = stream.split(ctx.limits.write_timeout) else {
        return;
    };
    let writer: SharedWriter = Arc::new(Mutex::new(write_half));
    let conn_state = Arc::new(ConnState::new());
    let ctx = ctx.clone();
    let _ = std::thread::Builder::new()
        .name(format!("xsynth-serve-conn-{conn}"))
        .spawn(move || {
            read_loop(&ctx, conn, &conn_state, read_half, &writer);
            // Teardown: nothing this connection still has queued will
            // ever be read by the peer — cancel it before a worker
            // burns a synthesis on it.
            conn_state.kill();
            let cancelled = ctx.sched.cancel_conn(conn) as u64;
            ctx.telemetry
                .jobs_cancelled
                .fetch_add(cancelled, Ordering::Relaxed);
        });
}

/// What one `fill_buf` round produced (see [`poll_line`]).
enum LineEvent {
    /// A complete line is in the caller's buffer.
    Line,
    /// The line under construction exceeded the byte cap; the rest of it
    /// is being discarded up to the next newline.
    TooLong,
    /// Bytes arrived but no newline yet.
    Progress,
    /// The socket read timed out with nothing new (lifecycle tick).
    Tick,
    /// EOF or a hard I/O error.
    Closed,
}

/// Pulls one buffered chunk from the socket and advances the line state
/// machine: at most `cap` bytes accumulate in `line`, and an oversized
/// line flips into `discarding` mode (swallow to the next newline)
/// after reporting [`LineEvent::TooLong`] exactly once.
fn poll_line(
    reader: &mut BufReader<Box<dyn Read + Send>>,
    line: &mut Vec<u8>,
    discarding: &mut bool,
    cap: usize,
) -> LineEvent {
    use std::io::ErrorKind;
    let (consumed, event) = {
        let buf = match reader.fill_buf() {
            Ok(b) => b,
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                return LineEvent::Tick;
            }
            Err(_) => return LineEvent::Closed,
        };
        if buf.is_empty() {
            return LineEvent::Closed;
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if *discarding {
                    // tail of an oversized line, already answered
                    *discarding = false;
                    (pos + 1, LineEvent::Progress)
                } else if line.len() + pos > cap {
                    line.clear();
                    (pos + 1, LineEvent::TooLong)
                } else {
                    line.extend_from_slice(&buf[..pos]);
                    (pos + 1, LineEvent::Line)
                }
            }
            None => {
                let n = buf.len();
                if *discarding {
                    (n, LineEvent::Progress)
                } else if line.len() + n > cap {
                    line.clear();
                    *discarding = true;
                    (n, LineEvent::TooLong)
                } else {
                    line.extend_from_slice(buf);
                    (n, LineEvent::Progress)
                }
            }
        }
    };
    reader.consume(consumed);
    event
}

/// The per-connection reader: turns the byte stream into request lines
/// under the admission bounds, answers sheds itself (so a flooded
/// daemon replies within one read tick even with every worker busy),
/// and enforces the read/idle timeouts.
fn read_loop(
    ctx: &Arc<Ctx>,
    conn: u64,
    conn_state: &Arc<ConnState>,
    read_half: Box<dyn Read + Send>,
    writer: &SharedWriter,
) {
    let limits = &ctx.limits;
    let mut reader = BufReader::new(read_half);
    let mut line: Vec<u8> = Vec::new();
    let mut discarding = false;
    let mut last_byte = Instant::now();
    let mut line_started: Option<Instant> = None;
    loop {
        if !conn_state.is_alive() || ctx.state() == STATE_STOPPED {
            return;
        }
        if let Some(t0) = line_started {
            if t0.elapsed() >= limits.read_timeout {
                // Slow loris: a half-sent line may not pin this thread.
                ctx.telemetry.conns_reaped.fetch_add(1, Ordering::Relaxed);
                let err = Error::Protocol(format!(
                    "request line stalled for {} ms (read timeout)",
                    limits.read_timeout.as_millis()
                ));
                let _ = write_reply(writer, &proto::error_response(None, &err));
                return;
            }
        } else if last_byte.elapsed() >= limits.idle_timeout {
            ctx.telemetry.conns_reaped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        match poll_line(
            &mut reader,
            &mut line,
            &mut discarding,
            limits.max_line_bytes,
        ) {
            LineEvent::Line => {
                last_byte = Instant::now();
                line_started = None;
                let text = String::from_utf8_lossy(&line).into_owned();
                line.clear();
                if text.trim().is_empty() {
                    continue;
                }
                let job = Job {
                    conn,
                    line: text,
                    writer: writer.clone(),
                    conn_state: conn_state.clone(),
                    enqueued: Instant::now(),
                };
                if let Err(shed) = ctx.sched.submit(job, limits) {
                    ctx.telemetry.jobs_shed.fetch_add(1, Ordering::Relaxed);
                    let err = shed.into_error(ctx.retry_after_hint());
                    if !write_reply(writer, &proto::error_response(None, &err)) {
                        return;
                    }
                }
            }
            LineEvent::TooLong => {
                last_byte = Instant::now();
                line_started = None;
                let err = Error::Protocol(format!(
                    "request line exceeds {} bytes",
                    limits.max_line_bytes
                ));
                if !write_reply(writer, &proto::error_response(None, &err)) {
                    return;
                }
            }
            LineEvent::Progress => {
                last_byte = Instant::now();
                if line_started.is_none() && (!line.is_empty() || discarding) {
                    line_started = Some(last_byte);
                }
            }
            LineEvent::Tick => {}
            LineEvent::Closed => return,
        }
    }
}

/// Writes one reply line; `false` means the peer is unreachable (EOF,
/// write timeout) and the caller should treat the connection as dead.
fn write_reply(writer: &SharedWriter, line: &str) -> bool {
    let mut w = lock(writer);
    // A dead peer is not a daemon error; the reader side notices EOF.
    w.write_all(line.as_bytes()).is_ok() && w.write_all(b"\n").is_ok() && w.flush().is_ok()
}

fn worker_loop(ctx: &Arc<Ctx>) {
    while let Some(job) = ctx.sched.next() {
        if !job.conn_state.is_alive() {
            // The connection dropped after this job was queued but
            // before cancel_conn ran (or mid-queue): nobody can read
            // the reply, so don't synthesize one.
            ctx.telemetry.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let queued_for = job.enqueued.elapsed();
        lock(&ctx.telemetry.hists)
            .queue_seconds
            .observe(queued_for.as_secs_f64());
        ctx.telemetry.busy.fetch_add(1, Ordering::Relaxed);
        let (reply, shutdown) =
            match catch_unwind(AssertUnwindSafe(|| handle_line(ctx, &job.line, queued_for))) {
                Ok(r) => r,
                Err(panic) => {
                    let cause = panic_message(&panic);
                    let err = Error::OutputFailed {
                        output: "serve.worker".into(),
                        cause,
                    };
                    // the job died outside the typed-error paths, so the
                    // outcome counter is bumped here instead
                    ctx.telemetry.jobs_error.fetch_add(1, Ordering::Relaxed);
                    (proto::error_response(None, &err), false)
                }
            };
        ctx.telemetry.busy.fetch_sub(1, Ordering::Relaxed);
        // Count the job before the reply goes out: a client that has
        // received N replies must never observe `jobs_done` < N via a
        // subsequent `stats` request handled by a sibling worker.
        ctx.jobs_done.fetch_add(1, Ordering::Relaxed);
        if !write_reply(&job.writer, &reply) {
            // The peer stopped reading (write timeout / EOF): mark the
            // connection dead so its remaining queued jobs cancel
            // instead of each burning a synthesis plus a timeout.
            job.conn_state.kill();
        }
        if shutdown {
            begin_drain(ctx);
        }
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".into()
    }
}

/// Dispatches one request line to its handler; the second element
/// reports whether a graceful shutdown was requested.
fn handle_line(ctx: &Ctx, line: &str, queued_for: Duration) -> (String, bool) {
    let req = match proto::parse_request(line) {
        Ok(r) => r,
        Err(e) => return (proto::error_response(None, &e), false),
    };
    match req {
        Request::Ping => {
            let mut o = proto::Obj::new();
            o.num("protocol_version", proto::PROTOCOL_VERSION as f64);
            o.str("status", "ok");
            o.str("op", "ping");
            (o.finish(), false)
        }
        Request::Stats => (stats_response(ctx), false),
        Request::Metrics => match metrics_response(ctx) {
            Ok(resp) => (resp, false),
            Err(e) => (proto::error_response(None, &e), false),
        },
        Request::Health => (health_response(ctx), false),
        Request::Recent { limit } => (recent_response(ctx, limit), false),
        Request::Shutdown => {
            let mut o = proto::Obj::new();
            o.num("protocol_version", proto::PROTOCOL_VERSION as f64);
            o.str("status", "ok");
            o.str("op", "shutdown");
            (o.finish(), true)
        }
        Request::Synth(mut job) => {
            // Every synth job carries a request ID from here on: the
            // client's when supplied, otherwise server-assigned. It is
            // echoed in the reply (ok or error), stamped on the trace
            // spans, and recorded in the flight recorder.
            let id = job
                .id
                .get_or_insert_with(|| ctx.telemetry.next_request_id())
                .clone();
            let started = Instant::now();
            match run_job(ctx, job, queued_for) {
                Ok(resp) => (resp, false),
                Err(e) => {
                    if matches!(e, Error::Overloaded { .. }) {
                        // a deadline expired in the queue: the job was
                        // shed, not merely failed
                        ctx.telemetry.jobs_shed.fetch_add(1, Ordering::Relaxed);
                    }
                    ctx.telemetry.jobs_error.fetch_add(1, Ordering::Relaxed);
                    ctx.telemetry.record(JobSummary {
                        id: id.clone(),
                        name: String::new(),
                        outcome: "error",
                        error_kind: Some(proto::error_kind(&e).to_string()),
                        cone_hash: String::new(),
                        salvage_rungs: String::new(),
                        budget_trips: 0,
                        cache_hits: 0,
                        cache_misses: 0,
                        peak_nodes: 0,
                        peak_rss_kb: None,
                        seconds: started.elapsed().as_secs_f64(),
                        queue_seconds: queued_for.as_secs_f64(),
                    });
                    (proto::error_response(Some(&id), &e), false)
                }
            }
        }
    }
}

fn stats_response(ctx: &Ctx) -> String {
    let stats = ctx.engine.cache_stats();
    let mut cache = proto::Obj::new();
    cache.num("hits", stats.hits as f64);
    cache.num("misses", stats.misses as f64);
    cache.num("evictions", stats.evictions as f64);
    cache.num("insertions", stats.insertions as f64);
    cache.num("entries", stats.entries as f64);
    cache.num("bytes", stats.bytes as f64);
    cache.num("budget", stats.budget as f64);
    let mut o = proto::Obj::new();
    o.num("protocol_version", proto::PROTOCOL_VERSION as f64);
    o.str("status", "ok");
    o.str("op", "stats");
    o.raw("cache", &cache.finish());
    let mut engine = proto::Obj::new();
    engine.num("reclaim_refused", ctx.engine.reclaim_refused() as f64);
    o.raw("engine", &engine.finish());
    o.num("jobs_done", ctx.jobs_done.load(Ordering::Relaxed) as f64);
    o.finish()
}

/// Answers the `health` wire op: the lifecycle state (`ready`,
/// `shedding` when the global queue is at capacity, `draining`, or
/// `stopped`), plus the queue gauges a load balancer needs to steer
/// traffic — all without touching the engine, so the probe stays cheap
/// under load.
fn health_response(ctx: &Ctx) -> String {
    let depth = ctx.sched.depth();
    let state = match ctx.state() {
        STATE_RUNNING if depth >= ctx.limits.global_queue => "shedding",
        STATE_RUNNING => "ready",
        STATE_DRAINING => "draining",
        _ => "stopped",
    };
    let mut o = proto::Obj::new();
    o.num("protocol_version", proto::PROTOCOL_VERSION as f64);
    o.str("status", "ok");
    o.str("op", "health");
    o.str("state", state);
    o.num("queue_depth", depth as f64);
    o.num("queue_capacity", ctx.limits.global_queue as f64);
    o.num(
        "workers_busy",
        ctx.telemetry.busy.load(Ordering::Relaxed) as f64,
    );
    o.num(
        "uptime_seconds",
        ctx.telemetry.start.elapsed().as_secs_f64(),
    );
    o.finish()
}

/// Renders the engine-lifetime Prometheus-style text exposition behind
/// the `metrics` wire op. The `serve.metrics` failpoint injects a typed
/// failure here for the chaos suite: a broken exposition must answer
/// `status: "error"`, never wedge the scheduler or drop the connection.
fn metrics_response(ctx: &Ctx) -> Result<String, Error> {
    xsynth_trace::fail_point!(
        "serve.metrics",
        Err(Error::OutputFailed {
            output: "serve.metrics".into(),
            cause: "injected fault: metrics exposition refused".into(),
        })
    );
    let tel = &ctx.telemetry;
    let mut exp = Exposition::new();
    exp.counter(
        "xsynth_jobs_total",
        &[("outcome", "ok")],
        tel.jobs_ok.load(Ordering::Relaxed),
    );
    exp.counter(
        "xsynth_jobs_total",
        &[("outcome", "error")],
        tel.jobs_error.load(Ordering::Relaxed),
    );
    exp.counter(
        "xsynth_jobs_shed_total",
        &[],
        tel.jobs_shed.load(Ordering::Relaxed),
    );
    exp.counter(
        "xsynth_jobs_cancelled_total",
        &[],
        tel.jobs_cancelled.load(Ordering::Relaxed),
    );
    exp.counter(
        "xsynth_conns_reaped_total",
        &[],
        tel.conns_reaped.load(Ordering::Relaxed),
    );
    exp.counter(
        "xsynth_requests_total",
        &[],
        ctx.jobs_done.load(Ordering::Relaxed),
    );
    exp.gauge("xsynth_queue_depth", &[], ctx.sched.depth() as f64);
    exp.gauge("xsynth_queue_capacity", &[], ctx.limits.global_queue as f64);
    exp.gauge(
        "xsynth_uptime_seconds",
        &[],
        tel.start.elapsed().as_secs_f64(),
    );
    exp.gauge("xsynth_workers", &[], tel.workers as f64);
    // includes the worker currently answering this metrics request
    let busy = tel.busy.load(Ordering::Relaxed) as f64;
    exp.gauge("xsynth_workers_busy", &[], busy);
    exp.gauge(
        "xsynth_worker_utilization",
        &[],
        busy / tel.workers.max(1) as f64,
    );

    let cs = ctx.engine.cache_stats();
    exp.counter("xsynth_cache_hits_total", &[], cs.hits);
    exp.counter("xsynth_cache_misses_total", &[], cs.misses);
    exp.counter("xsynth_cache_evictions_total", &[], cs.evictions);
    exp.counter("xsynth_cache_insertions_total", &[], cs.insertions);
    exp.gauge("xsynth_cache_entries", &[], cs.entries as f64);
    exp.gauge("xsynth_cache_bytes", &[], cs.bytes as f64);
    exp.gauge("xsynth_cache_budget_bytes", &[], cs.budget as f64);
    exp.histogram(
        "xsynth_cache_lookup_seconds",
        &[],
        &ctx.engine.cache_lookup_hist(),
    );
    exp.counter(
        "xsynth_engine_reclaim_refused_total",
        &[],
        ctx.engine.reclaim_refused(),
    );

    for s in ctx.engine.substrate_stats() {
        let arity = s.arity.to_string();
        let l = [("arity", arity.as_str())];
        exp.gauge("xsynth_bdd_nodes", &l, s.nodes as f64);
        exp.counter("xsynth_bdd_apply_hits_total", &l, s.apply_hits);
        exp.counter("xsynth_bdd_apply_misses_total", &l, s.apply_misses);
        let lookups = s.apply_hits + s.apply_misses;
        if lookups > 0 {
            exp.gauge(
                "xsynth_bdd_apply_hit_ratio",
                &l,
                s.apply_hits as f64 / lookups as f64,
            );
        }
        for (shard, occ) in s.shard_occupancy.iter().enumerate() {
            if *occ == 0 {
                continue;
            }
            let shard = shard.to_string();
            exp.gauge(
                "xsynth_bdd_shard_nodes",
                &[("arity", arity.as_str()), ("shard", shard.as_str())],
                *occ as f64,
            );
        }
    }
    exp.gauge(
        "xsynth_bdd_peak_nodes",
        &[],
        tel.peak_nodes.load(Ordering::Relaxed) as f64,
    );

    {
        let h = lock(&tel.hists);
        exp.histogram("xsynth_job_seconds", &[], &h.job_seconds);
        exp.gauge("xsynth_job_seconds_p50", &[], h.job_seconds.quantile(0.50));
        exp.gauge("xsynth_job_seconds_p90", &[], h.job_seconds.quantile(0.90));
        exp.gauge("xsynth_job_seconds_p99", &[], h.job_seconds.quantile(0.99));
        exp.histogram("xsynth_queue_seconds", &[], &h.queue_seconds);
        exp.histogram("xsynth_job_bdd_nodes", &[], &h.job_bdd_nodes);
        for (phase, hist) in &h.phase_seconds {
            exp.histogram("xsynth_phase_seconds", &[("phase", phase)], hist);
        }
    }

    let mut o = proto::Obj::new();
    o.num("protocol_version", proto::PROTOCOL_VERSION as f64);
    o.str("status", "ok");
    o.str("op", "metrics");
    o.str("text", &exp.render());
    Ok(o.finish())
}

/// Answers the `recent` wire op: flight-recorder entries newest-first,
/// truncated to `limit` when given.
fn recent_response(ctx: &Ctx, limit: Option<usize>) -> String {
    let ring = lock(&ctx.telemetry.recorder);
    let take = limit.unwrap_or(ring.len()).min(ring.len());
    let mut jobs = String::from("[");
    for (i, s) in ring.iter().rev().take(take).enumerate() {
        if i > 0 {
            jobs.push(',');
        }
        let mut jo = proto::Obj::new();
        jo.str("id", &s.id);
        jo.str("name", &s.name);
        jo.str("outcome", s.outcome);
        match &s.error_kind {
            Some(kind) => jo.str("error_kind", kind),
            None => jo.null("error_kind"),
        }
        jo.str("cone_hash", &s.cone_hash);
        jo.str("salvage_rungs", &s.salvage_rungs);
        jo.num("budget_trips", s.budget_trips as f64);
        jo.num("cache_hits", s.cache_hits as f64);
        jo.num("cache_misses", s.cache_misses as f64);
        jo.num("peak_nodes", s.peak_nodes as f64);
        match s.peak_rss_kb {
            Some(kb) => jo.num("peak_rss_kb", kb as f64),
            None => jo.null("peak_rss_kb"),
        }
        jo.num("seconds", s.seconds);
        jo.num("queue_seconds", s.queue_seconds);
        jobs.push_str(&jo.finish());
    }
    drop(ring);
    jobs.push(']');
    let mut o = proto::Obj::new();
    o.num("protocol_version", proto::PROTOCOL_VERSION as f64);
    o.str("status", "ok");
    o.str("op", "recent");
    o.num("count", take as f64);
    o.raw("jobs", &jobs);
    o.finish()
}

/// Executes one synthesis job end to end: admission failpoint, parse,
/// synthesize on the shared engine, record flight-recorder and histogram
/// telemetry, reply with the network and cache accounting (plus bench
/// telemetry on request). `job.id` is always set by `handle_line`.
fn run_job(ctx: &Ctx, job: JobRequest, queued_for: Duration) -> Result<String, Error> {
    xsynth_trace::fail_point!(
        "serve.accept",
        Err(Error::OutputFailed {
            output: "serve.accept".into(),
            cause: "injected fault: job admission refused".into(),
        })
    );
    // Deadline discipline: a job whose client-supplied allowance was
    // already consumed by queueing is shed before any parsing or
    // synthesis; one that starts in time runs with its phase timeout
    // clamped to the remaining allowance.
    let mut remaining: Option<Duration> = None;
    if let Some(ms) = job.deadline_ms {
        let deadline = Duration::from_millis(ms);
        if queued_for >= deadline {
            return Err(Error::overloaded(
                format!(
                    "deadline_ms {ms} expired after {} ms in queue",
                    queued_for.as_millis()
                ),
                ctx.retry_after_hint(),
            ));
        }
        remaining = Some(deadline - queued_for);
    }
    // Scope the peak-RSS gauge to this job; overlapping jobs observe
    // shared upper bounds instead of resetting each other (`MemScope`).
    let mem = xsynth_trace::mem::MemScope::begin();
    let spec = match job.format {
        JobFormat::Blif => parse_blif(&job.source).map_err(Error::Parse)?,
        JobFormat::Pla => parse_pla(&job.source)
            .map_err(Error::Parse)?
            .to_network(job.id.as_deref().unwrap_or("pla")),
    };
    let mut opts = ctx.engine.options().clone();
    if let Some(budget) = job.budget {
        opts.budget = budget;
    }
    if let Some(rem) = remaining {
        opts.budget.phase_timeout = Some(match opts.budget.phase_timeout {
            Some(t) => t.min(rem),
            None => rem,
        });
    }
    let t0 = Instant::now();
    let mut outcome = ctx.engine.try_synthesize_with(&spec, &opts)?;
    let seconds = t0.elapsed().as_secs_f64();

    // Stamp the request ID onto the job's trace spans so an exported
    // trace from this multi-tenant daemon stays attributable.
    let id = job.id.clone().unwrap_or_default();
    outcome.report.trace.prefix_labels(&id);

    // Daemon-side observability. The wall-clock histograms are
    // schedule-dependent and therefore live here, never in the per-job
    // trace the determinism suite compares.
    let peak_nodes = outcome
        .report
        .trace
        .gauge_max("bdd.peak_nodes")
        .unwrap_or(0.0) as u64;
    let bdd_nodes = outcome
        .report
        .trace
        .gauge_finals()
        .get("bdd.nodes")
        .copied()
        .unwrap_or(0.0);
    {
        let mut h = lock(&ctx.telemetry.hists);
        h.job_seconds.observe(seconds);
        h.job_bdd_nodes.observe(bdd_nodes);
        for stat in &outcome.report.profile.phases {
            h.phase_seconds
                .entry(stat.name.clone())
                .or_default()
                .observe(stat.duration.as_secs_f64());
        }
    }
    ctx.telemetry.observe_peak_nodes(peak_nodes);
    let cone_hash = {
        let mut h: u128 = 0;
        for (_, sig) in spec.outputs() {
            h ^= xsynth_cache::cone_of(&spec, *sig).key.raw();
        }
        format!("{h:032x}")
    };
    let rungs: Vec<&str> = outcome
        .report
        .salvaged
        .iter()
        .map(|s| s.rung.as_str())
        .collect();
    let use_ = outcome.report.cache;
    ctx.telemetry.jobs_ok.fetch_add(1, Ordering::Relaxed);
    ctx.telemetry.record(JobSummary {
        id: id.clone(),
        name: spec.name().to_string(),
        outcome: "ok",
        error_kind: None,
        cone_hash,
        salvage_rungs: rungs.join(","),
        budget_trips: outcome.report.curtailed.len() as u64,
        cache_hits: use_.polarity_hits + use_.cubes_hits + use_.factored_hits,
        cache_misses: use_.lookup_misses,
        peak_nodes,
        peak_rss_kb: mem.peak_kb(),
        seconds,
        queue_seconds: queued_for.as_secs_f64(),
    });

    let mut cache = proto::Obj::new();
    cache.num("polarity_hits", outcome.report.cache.polarity_hits as f64);
    cache.num("cubes_hits", outcome.report.cache.cubes_hits as f64);
    cache.num("factored_hits", outcome.report.cache.factored_hits as f64);
    cache.num("lookup_misses", outcome.report.cache.lookup_misses as f64);

    let mut o = proto::Obj::new();
    o.num("protocol_version", proto::PROTOCOL_VERSION as f64);
    o.str("status", "ok");
    o.str("op", "synth");
    if let Some(id) = &job.id {
        o.str("id", id);
    }
    o.str("name", spec.name());
    o.str("network_blif", &write_blif(&outcome.network));
    o.num("outputs", outcome.network.outputs().len() as f64);
    o.num("salvaged", outcome.report.salvaged.len() as f64);
    o.raw("cache", &cache.finish());
    o.num("seconds", seconds);
    match mem.peak_kb() {
        Some(kb) => o.num("peak_rss_kb", kb as f64),
        None => o.null("peak_rss_kb"),
    }
    o.bool("mem_exclusive", mem.is_exclusive());
    if job.telemetry {
        let name = job.id.as_deref().unwrap_or_else(|| spec.name()).to_string();
        let measured = record_from_run(
            &name,
            "serve",
            &spec,
            outcome.network,
            Some(outcome.report),
            &[seconds],
            &ctx.lib,
            &ctx.verify_budget,
        );
        let suite = BenchSuite {
            suite: "serve".into(),
            records: vec![measured.record],
        };
        let doc = json::parse(&suite.to_json())
            .map_err(|e| Error::msg(format!("telemetry serialization failed: {e}")))?;
        let mut compacted = String::new();
        proto::compact(&doc, &mut compacted);
        o.raw("telemetry", &compacted);
    }
    Ok(o.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_job(conn: u64, tag: &str, writer: &SharedWriter) -> Job {
        Job {
            conn,
            line: tag.to_string(),
            writer: writer.clone(),
            conn_state: Arc::new(ConnState::new()),
            enqueued: Instant::now(),
        }
    }

    /// Bounds loose enough that only tests targeting them trip them.
    fn loose_limits() -> Limits {
        Limits::from_options(&ServeOptions::default())
    }

    #[test]
    fn scheduler_rotates_across_connections() {
        let sched = Scheduler::new();
        let limits = loose_limits();
        let w: SharedWriter = Arc::new(Mutex::new(Box::new(Vec::<u8>::new())));
        // conn 0 pipelines three jobs before conn 1's single job arrives
        for tag in ["a0", "a1", "a2"] {
            assert!(sched.submit(dummy_job(0, tag, &w), &limits).is_ok());
        }
        assert!(sched.submit(dummy_job(1, "b0", &w), &limits).is_ok());
        assert_eq!(sched.depth(), 4);
        let order: Vec<String> = std::iter::from_fn(|| {
            sched.stop_if_empty();
            sched.next().map(|j| j.line)
        })
        .collect();
        assert_eq!(order, ["a0", "b0", "a1", "a2"]);
        assert_eq!(sched.depth(), 0);
    }

    #[test]
    fn scheduler_sheds_at_the_per_conn_and_global_bounds() {
        let sched = Scheduler::new();
        let mut limits = loose_limits();
        limits.per_conn_queue = 2;
        limits.global_queue = 3;
        let w: SharedWriter = Arc::new(Mutex::new(Box::new(Vec::<u8>::new())));
        assert!(sched.submit(dummy_job(0, "a0", &w), &limits).is_ok());
        assert!(sched.submit(dummy_job(0, "a1", &w), &limits).is_ok());
        // conn 0 is at its own bound while the global bound still has room
        assert_eq!(
            sched.submit(dummy_job(0, "a2", &w), &limits),
            Err(Shed::PerConnFull(2))
        );
        assert!(sched.submit(dummy_job(1, "b0", &w), &limits).is_ok());
        // now the global bound is reached, even for a fresh connection
        assert_eq!(
            sched.submit(dummy_job(2, "c0", &w), &limits),
            Err(Shed::GlobalFull(3))
        );
        // handing out one job frees global capacity again
        assert_eq!(sched.next().expect("a0").line, "a0");
        assert!(sched.submit(dummy_job(2, "c0", &w), &limits).is_ok());
    }

    #[test]
    fn cancel_conn_discards_only_that_connections_jobs() {
        let sched = Scheduler::new();
        let limits = loose_limits();
        let w: SharedWriter = Arc::new(Mutex::new(Box::new(Vec::<u8>::new())));
        for tag in ["a0", "a1"] {
            assert!(sched.submit(dummy_job(7, tag, &w), &limits).is_ok());
        }
        assert!(sched.submit(dummy_job(8, "b0", &w), &limits).is_ok());
        assert_eq!(sched.cancel_conn(7), 2);
        assert_eq!(sched.depth(), 1);
        assert_eq!(sched.next().expect("b0 survives").line, "b0");
        assert_eq!(sched.cancel_conn(99), 0, "unknown conn is a no-op");
    }

    #[test]
    fn draining_sheds_submissions_and_shed_remaining_stops() {
        let sched = Scheduler::new();
        let limits = loose_limits();
        let w: SharedWriter = Arc::new(Mutex::new(Box::new(Vec::<u8>::new())));
        for tag in ["a0", "a1"] {
            assert!(sched.submit(dummy_job(0, tag, &w), &limits).is_ok());
        }
        sched.set_draining();
        assert_eq!(
            sched.submit(dummy_job(1, "late", &w), &limits),
            Err(Shed::Draining)
        );
        // queued work is still handed out while draining
        assert_eq!(sched.next().expect("a0").line, "a0");
        let leftover = sched.shed_remaining_and_stop();
        assert_eq!(leftover.len(), 1);
        assert_eq!(leftover[0].line, "a1");
        assert_eq!(sched.depth(), 0);
        assert!(sched.next().is_none(), "stopped and empty");
    }

    impl Scheduler {
        /// Test helper: stop once drained so `next` terminates.
        fn stop_if_empty(&self) {
            let mut s = lock(&self.state);
            if s.order.is_empty() {
                s.stop = true;
                drop(s);
                self.ready.notify_all();
            }
        }
    }

    #[test]
    fn scheduler_rejects_after_stop() {
        let sched = Scheduler::new();
        let limits = loose_limits();
        sched.stop();
        let w: SharedWriter = Arc::new(Mutex::new(Box::new(Vec::<u8>::new())));
        assert_eq!(
            sched.submit(dummy_job(0, "late", &w), &limits),
            Err(Shed::Draining)
        );
        assert!(sched.next().is_none());
    }

    #[test]
    fn scheduler_survives_a_poisoned_state_mutex() {
        let sched = Arc::new(Scheduler::new());
        let limits = loose_limits();
        // poison the state mutex the way a panicking reader thread would:
        // die while holding the lock, before mutating anything
        let poisoner = sched.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.state.lock().expect("first lock is clean");
            panic!("injected: die holding the scheduler lock");
        })
        .join();
        assert!(sched.state.is_poisoned(), "the panic must have poisoned it");
        // submit, next, and stop all keep working on the poisoned mutex
        let w: SharedWriter = Arc::new(Mutex::new(Box::new(Vec::<u8>::new())));
        assert!(sched
            .submit(dummy_job(0, "after-poison", &w), &limits)
            .is_ok());
        assert_eq!(sched.next().expect("job comes back").line, "after-poison");
        sched.stop();
        assert_eq!(
            sched.submit(dummy_job(0, "late", &w), &limits),
            Err(Shed::Draining)
        );
        assert!(sched.next().is_none());
    }

    #[test]
    fn shed_reasons_map_to_typed_overloaded_errors() {
        for (shed, needle) in [
            (Shed::PerConnFull(4), "per-connection"),
            (Shed::GlobalFull(16), "global queue"),
            (Shed::Draining, "draining"),
            (Shed::Injected, "injected"),
        ] {
            let err = shed.into_error(321);
            assert_eq!(err.exit_code(), 11, "{err}");
            let text = err.to_string();
            assert!(text.contains(needle), "{text}");
            assert!(text.contains("321"), "{text}");
        }
    }

    #[test]
    fn write_reply_survives_a_poisoned_writer_mutex() {
        let w: SharedWriter = Arc::new(Mutex::new(Box::new(Vec::<u8>::new())));
        let poisoner = w.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().expect("first lock is clean");
            panic!("injected: die holding the write lock");
        })
        .join();
        assert!(w.is_poisoned());
        // the reply still goes out instead of a cascading panic
        write_reply(&w, r#"{"status":"ok"}"#);
    }
}
