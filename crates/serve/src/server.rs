//! The daemon: listeners, the fair job scheduler, and the worker pool.
//!
//! Architecture — one thread family per concern, all std-only:
//!
//! - an **accept loop** per listener (TCP and/or unix socket) polls a
//!   nonblocking `accept` so shutdown never hangs on a blocked syscall;
//! - a **reader thread** per connection turns the byte stream into
//!   newline-delimited request lines and submits them to the scheduler;
//! - the **scheduler** keeps one FIFO queue per connection and hands jobs
//!   out round-robin across connections, so a client that pipelines a
//!   hundred jobs cannot starve a client that sends one;
//! - a **worker pool** executes jobs against one shared
//!   [`Engine`] — the long-lived substrate pool and content-addressed
//!   result cache are what make resubmitting a job cheap — and writes
//!   each reply under the connection's write lock.
//!
//! Worker panics are contained per job: the connection receives a typed
//! `status: "error"` reply instead of being dropped. A `shutdown` request
//! answers, then drains queued jobs, closes the listeners, and lets
//! [`Server::wait`] return — the daemon's exit-0 path.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xsynth_bench::{record_from_run, BenchSuite};
use xsynth_blif::{parse_blif, parse_pla, write_blif};
use xsynth_core::{Budget, Engine, Error, SynthOptions};
use xsynth_map::Library;
use xsynth_trace::metrics::Exposition;
use xsynth_trace::{json, Histogram};

use crate::proto::{self, JobFormat, JobRequest, Request};

/// How often the accept loops check the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// BDD node cap for per-job telemetry verification, matching the
/// benchmark harness's bounded-verify discipline.
const VERIFY_NODE_CAP: usize = 1 << 22;

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// TCP listen address (e.g. `"127.0.0.1:7171"`, port 0 for
    /// ephemeral). `None` skips the TCP listener.
    pub tcp: Option<String>,
    /// Unix-domain socket path. `None` skips the unix listener. A stale
    /// socket file (left by a killed daemon) is removed and rebound; a
    /// *live* one is an [`Error::Io`].
    pub unix: Option<PathBuf>,
    /// Worker pool size; `0` sizes from available parallelism (capped
    /// at 4 — each job may fan out internally).
    pub workers: usize,
    /// Byte budget of the engine's content-addressed result cache.
    pub cache_bytes: usize,
    /// Default synthesis options for jobs that don't override them.
    pub options: SynthOptions,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            tcp: None,
            unix: None,
            workers: 0,
            cache_bytes: xsynth_cache::DEFAULT_CACHE_BYTES,
            options: SynthOptions::default(),
        }
    }
}

/// Flight-recorder capacity: per-job summaries kept for `recent`.
const FLIGHT_RECORDER_CAP: usize = 128;

/// One queued unit of work: a request line plus where to write the reply.
struct Job {
    conn: u64,
    line: String,
    writer: SharedWriter,
    /// When the reader enqueued the line — the queue-wait histogram
    /// measures from here to worker pickup.
    enqueued: Instant,
}

type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// Locks a daemon mutex, ignoring poisoning — same rationale as
/// `xsynth_bdd::lock`. A panic can escape the worker's `catch_unwind`
/// boundary only from code that mutates nothing behind these locks (the
/// scheduler mutates its queues after the failpoint and the stop check;
/// the writer lock guards an `io::Write` whose partial line at worst
/// garbles one reply), so the guarded state is still consistent and one
/// crashed thread must not take the whole daemon down with it: the old
/// `.expect("scheduler lock")` calls turned one poisoned mutex into a
/// cascade that killed every worker and reader.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Round-robin fair scheduler: one FIFO per connection, connections
/// rotate. Submitting N jobs at once costs a connection its place in
/// line once per job, not zero times.
struct Scheduler {
    state: Mutex<SchedState>,
    ready: Condvar,
}

struct SchedState {
    /// Pending jobs per connection.
    queues: HashMap<u64, VecDeque<Job>>,
    /// Rotation of connection ids that currently have pending jobs; each
    /// id appears at most once.
    order: VecDeque<u64>,
    stop: bool,
}

impl Scheduler {
    fn new() -> Scheduler {
        Scheduler {
            state: Mutex::new(SchedState {
                queues: HashMap::new(),
                order: VecDeque::new(),
                stop: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues a job; returns `false` if the scheduler has stopped (the
    /// caller should answer the connection itself).
    fn submit(&self, job: Job) -> bool {
        let mut s = lock(&self.state);
        if s.stop {
            return false;
        }
        // Fault-injection site for the poison-safety chaos suite: a panic
        // here unwinds through the reader thread with the state lock held
        // (and not yet mutated), poisoning the mutex exactly the way the
        // pre-fix `.expect` calls could not survive.
        xsynth_trace::fail_point!("serve.submit");
        let conn = job.conn;
        let queue = s.queues.entry(conn).or_default();
        queue.push_back(job);
        if !s.order.contains(&conn) {
            s.order.push_back(conn);
        }
        drop(s);
        self.ready.notify_one();
        true
    }

    /// Blocks for the next job in round-robin order; `None` once stopped
    /// *and* drained.
    fn next(&self) -> Option<Job> {
        let mut s = lock(&self.state);
        loop {
            if let Some(conn) = s.order.pop_front() {
                let queue = s.queues.get_mut(&conn).expect("queued conn has a queue");
                let job = queue.pop_front().expect("queued conn has a job");
                if queue.is_empty() {
                    s.queues.remove(&conn);
                } else {
                    s.order.push_back(conn);
                }
                return Some(job);
            }
            if s.stop {
                return None;
            }
            s = self.ready.wait(s).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn stop(&self) {
        lock(&self.state).stop = true;
        self.ready.notify_all();
    }
}

/// Shared per-daemon state every worker sees.
struct Ctx {
    engine: Engine,
    lib: Library,
    verify_budget: Budget,
    jobs_done: AtomicU64,
    stop: AtomicBool,
    sched: Scheduler,
    telemetry: Telemetry,
}

/// Engine-lifetime observability state behind the `metrics` and `recent`
/// wire ops. Everything here is *daemon-side* aggregation: the wall-clock
/// histograms (latency, queue wait, phase durations) are
/// schedule-dependent by nature, so they live outside the per-job trace
/// that the parallel ≡ sequential determinism suite compares.
struct Telemetry {
    /// Daemon start, for the uptime gauge.
    start: Instant,
    /// Worker pool size (utilization denominator).
    workers: usize,
    /// Workers currently executing a request line.
    busy: AtomicU64,
    /// Synthesis jobs answered `status: "ok"`.
    jobs_ok: AtomicU64,
    /// Synthesis jobs answered with a typed error (panics included).
    jobs_error: AtomicU64,
    /// Server-assigned request-ID sequence (`job-N`) for synth requests
    /// that arrive without a client-supplied `id`.
    req_seq: AtomicU64,
    /// Engine-lifetime maximum of the per-job `bdd.peak_nodes` gauge.
    peak_nodes: AtomicU64,
    /// The wall-clock histograms (see [`DaemonHists`]).
    hists: Mutex<DaemonHists>,
    /// Bounded ring of per-job summaries, newest at the back.
    recorder: Mutex<VecDeque<JobSummary>>,
}

impl Telemetry {
    fn new(workers: usize) -> Telemetry {
        Telemetry {
            start: Instant::now(),
            workers,
            busy: AtomicU64::new(0),
            jobs_ok: AtomicU64::new(0),
            jobs_error: AtomicU64::new(0),
            req_seq: AtomicU64::new(0),
            peak_nodes: AtomicU64::new(0),
            hists: Mutex::new(DaemonHists::default()),
            recorder: Mutex::new(VecDeque::with_capacity(FLIGHT_RECORDER_CAP)),
        }
    }

    /// Assigns the next server-side request ID.
    fn next_request_id(&self) -> String {
        format!("job-{}", self.req_seq.fetch_add(1, Ordering::Relaxed) + 1)
    }

    /// Raises the engine-lifetime peak-node gauge to at least `nodes`.
    fn observe_peak_nodes(&self, nodes: u64) {
        self.peak_nodes.fetch_max(nodes, Ordering::Relaxed);
    }

    /// Pushes one summary into the flight recorder, evicting the oldest
    /// entry past capacity.
    fn record(&self, summary: JobSummary) {
        let mut ring = lock(&self.recorder);
        if ring.len() == FLIGHT_RECORDER_CAP {
            ring.pop_front();
        }
        ring.push_back(summary);
    }
}

/// The daemon's engine-lifetime latency/size distributions.
#[derive(Default)]
struct DaemonHists {
    /// End-to-end synthesis seconds per job (parse → reply body built).
    job_seconds: Histogram,
    /// Seconds a request line waited in the scheduler before a worker
    /// picked it up.
    queue_seconds: Histogram,
    /// Final `bdd.nodes` gauge per successful job.
    job_bdd_nodes: Histogram,
    /// Wall-clock seconds per pipeline phase, keyed by phase name.
    phase_seconds: BTreeMap<String, Histogram>,
}

/// One flight-recorder entry: everything needed to reconstruct what a job
/// did after the fact.
#[derive(Debug, Clone)]
struct JobSummary {
    /// Request ID (client-supplied or server-assigned) — round-trips
    /// through `recent`.
    id: String,
    /// Circuit/model name (empty when parsing failed).
    name: String,
    /// `"ok"` or `"error"`.
    outcome: &'static str,
    /// Error kind (wire taxonomy) for failed jobs.
    error_kind: Option<String>,
    /// XOR of the canonical cone hashes of every output, hex.
    cone_hash: String,
    /// Salvage-ladder rungs that fired, comma-joined (empty = clean).
    salvage_rungs: String,
    /// Phases a budget cut short.
    budget_trips: u64,
    /// Result-cache hits (polarity + cubes + factored tiers).
    cache_hits: u64,
    /// Result-cache lookup misses.
    cache_misses: u64,
    /// Peak `bdd.peak_nodes` gauge of the job.
    peak_nodes: u64,
    /// Peak RSS in KiB, when the platform exposes it.
    peak_rss_kb: Option<u64>,
    /// End-to-end synthesis seconds.
    seconds: f64,
    /// Scheduler queue wait in seconds.
    queue_seconds: f64,
}

/// A running daemon. Bind with [`Server::bind`], then either
/// [`Server::wait`] (blocking daemon mode) or drive it from tests via
/// [`Server::tcp_addr`] / [`Server::unix_path`] and stop it with
/// [`Server::shutdown`] (or a `shutdown` request).
pub struct Server {
    ctx: Arc<Ctx>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the configured listeners, spawns the worker pool, and
    /// returns the running server.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when a listener cannot bind (including a unix
    /// socket path owned by a *live* daemon), [`Error::Msg`] when no
    /// listener is configured at all.
    pub fn bind(opts: ServeOptions) -> Result<Server, Error> {
        if opts.tcp.is_none() && opts.unix.is_none() {
            return Err(Error::msg("serve needs at least one of --tcp / --socket"));
        }
        let engine = Engine::with_options(opts.options.clone()).cache_budget(opts.cache_bytes);
        let workers = if opts.workers > 0 {
            opts.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .min(4)
        };
        let ctx = Arc::new(Ctx {
            engine,
            lib: Library::mcnc(),
            verify_budget: Budget::default().bdd_node_cap(Some(VERIFY_NODE_CAP)),
            jobs_done: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            sched: Scheduler::new(),
            telemetry: Telemetry::new(workers),
        });

        let mut handles = Vec::new();
        for w in 0..workers {
            let ctx = ctx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("xsynth-serve-worker-{w}"))
                    .spawn(move || worker_loop(&ctx))
                    .map_err(|e| Error::io("spawn worker", e))?,
            );
        }

        let conn_ids = Arc::new(AtomicU64::new(0));
        let mut tcp_addr = None;
        if let Some(addr) = &opts.tcp {
            let listener = TcpListener::bind(addr).map_err(|e| Error::io(addr.clone(), e))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| Error::io(addr.clone(), e))?;
            tcp_addr = Some(
                listener
                    .local_addr()
                    .map_err(|e| Error::io(addr.clone(), e))?,
            );
            let ctx = ctx.clone();
            let ids = conn_ids.clone();
            handles.push(
                std::thread::Builder::new()
                    .name("xsynth-serve-tcp".into())
                    .spawn(move || accept_tcp(listener, &ctx, &ids))
                    .map_err(|e| Error::io("spawn acceptor", e))?,
            );
        }
        let mut unix_path = None;
        #[cfg(unix)]
        if let Some(path) = &opts.unix {
            let listener = bind_unix(path)?;
            listener
                .set_nonblocking(true)
                .map_err(|e| Error::io(path.display().to_string(), e))?;
            unix_path = Some(path.clone());
            let ctx = ctx.clone();
            let ids = conn_ids.clone();
            let path = path.clone();
            handles.push(
                std::thread::Builder::new()
                    .name("xsynth-serve-unix".into())
                    .spawn(move || accept_unix(listener, path, &ctx, &ids))
                    .map_err(|e| Error::io("spawn acceptor", e))?,
            );
        }
        #[cfg(not(unix))]
        if opts.unix.is_some() {
            return Err(Error::msg(
                "unix sockets are not available on this platform",
            ));
        }

        Ok(Server {
            ctx,
            tcp_addr,
            unix_path,
            handles,
        })
    }

    /// Binds and blocks until shutdown — the CLI daemon entry point.
    pub fn run(opts: ServeOptions) -> Result<(), Error> {
        Server::bind(opts)?.wait();
        Ok(())
    }

    /// The bound TCP address (useful with port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound unix socket path.
    pub fn unix_path(&self) -> Option<&std::path::Path> {
        self.unix_path.as_deref()
    }

    /// The daemon's engine (cache statistics, default options).
    pub fn engine(&self) -> &Engine {
        &self.ctx.engine
    }

    /// Jobs completed (ok or error) since the daemon started.
    pub fn jobs_done(&self) -> u64 {
        self.ctx.jobs_done.load(Ordering::Relaxed)
    }

    /// Requests shutdown programmatically: equivalent to a `shutdown`
    /// message — queued jobs drain, listeners close.
    pub fn shutdown(&self) {
        self.ctx.stop.store(true, Ordering::SeqCst);
        self.ctx.sched.stop();
    }

    /// Joins the accept loops and worker pool. Returns once shutdown was
    /// requested and all queued jobs have been answered.
    pub fn wait(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }
}

#[cfg(unix)]
fn bind_unix(path: &std::path::Path) -> Result<UnixListener, Error> {
    match UnixListener::bind(path) {
        Ok(l) => Ok(l),
        Err(first) if path.exists() => {
            // A socket file exists. If nobody answers it, it's stale
            // (a killed daemon) — reclaim it; if a live daemon answers,
            // surface address-in-use.
            if UnixStream::connect(path).is_ok() {
                return Err(Error::io(path.display().to_string(), first));
            }
            std::fs::remove_file(path).map_err(|e| Error::io(path.display().to_string(), e))?;
            UnixListener::bind(path).map_err(|e| Error::io(path.display().to_string(), e))
        }
        Err(e) => Err(Error::io(path.display().to_string(), e)),
    }
}

fn accept_tcp(listener: TcpListener, ctx: &Arc<Ctx>, ids: &AtomicU64) {
    while !ctx.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => spawn_conn(stream, ctx, ids),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

#[cfg(unix)]
fn accept_unix(listener: UnixListener, path: PathBuf, ctx: &Arc<Ctx>, ids: &AtomicU64) {
    while !ctx.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => spawn_conn(stream, ctx, ids),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    let _ = std::fs::remove_file(&path);
}

/// A bidirectional stream the daemon can split into independently owned
/// read and write halves.
trait Conn: Send + 'static {
    fn split(self) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)>;
}

impl Conn for TcpStream {
    fn split(self) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        self.set_nonblocking(false)?;
        let reader = self.try_clone()?;
        Ok((Box::new(reader), Box::new(self)))
    }
}

#[cfg(unix)]
impl Conn for UnixStream {
    fn split(self) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        self.set_nonblocking(false)?;
        let reader = self.try_clone()?;
        Ok((Box::new(reader), Box::new(self)))
    }
}

/// Spawns the per-connection reader thread. Reader threads are detached:
/// they exit on EOF/error, and at process shutdown any still blocked in
/// `read` die with the process.
fn spawn_conn(stream: impl Conn, ctx: &Arc<Ctx>, ids: &AtomicU64) {
    let conn = ids.fetch_add(1, Ordering::Relaxed);
    let Ok((read_half, write_half)) = stream.split() else {
        return;
    };
    let writer: SharedWriter = Arc::new(Mutex::new(write_half));
    let ctx = ctx.clone();
    let _ = std::thread::Builder::new()
        .name(format!("xsynth-serve-conn-{conn}"))
        .spawn(move || {
            let mut reader = BufReader::new(read_half);
            let mut line = String::new();
            loop {
                line.clear();
                match reader.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
                if line.trim().is_empty() {
                    continue;
                }
                let job = Job {
                    conn,
                    line: line.clone(),
                    writer: writer.clone(),
                    enqueued: Instant::now(),
                };
                if !ctx.sched.submit(job) {
                    let resp = proto::error_response(None, &Error::msg("daemon is shutting down"));
                    write_reply(&writer, &resp);
                    break;
                }
            }
        });
}

fn write_reply(writer: &SharedWriter, line: &str) {
    let mut w = lock(writer);
    // A dead peer is not a daemon error; the reader side notices EOF.
    let _ = w.write_all(line.as_bytes());
    let _ = w.write_all(b"\n");
    let _ = w.flush();
}

fn worker_loop(ctx: &Arc<Ctx>) {
    while let Some(job) = ctx.sched.next() {
        let queued_for = job.enqueued.elapsed();
        lock(&ctx.telemetry.hists)
            .queue_seconds
            .observe(queued_for.as_secs_f64());
        ctx.telemetry.busy.fetch_add(1, Ordering::Relaxed);
        let (reply, shutdown) =
            match catch_unwind(AssertUnwindSafe(|| handle_line(ctx, &job.line, queued_for))) {
                Ok(r) => r,
                Err(panic) => {
                    let cause = panic_message(&panic);
                    let err = Error::OutputFailed {
                        output: "serve.worker".into(),
                        cause,
                    };
                    // the job died outside the typed-error paths, so the
                    // outcome counter is bumped here instead
                    ctx.telemetry.jobs_error.fetch_add(1, Ordering::Relaxed);
                    (proto::error_response(None, &err), false)
                }
            };
        ctx.telemetry.busy.fetch_sub(1, Ordering::Relaxed);
        // Count the job before the reply goes out: a client that has
        // received N replies must never observe `jobs_done` < N via a
        // subsequent `stats` request handled by a sibling worker.
        ctx.jobs_done.fetch_add(1, Ordering::Relaxed);
        write_reply(&job.writer, &reply);
        if shutdown {
            ctx.stop.store(true, Ordering::SeqCst);
            ctx.sched.stop();
        }
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".into()
    }
}

/// Dispatches one request line to its handler; the second element
/// reports whether a graceful shutdown was requested.
fn handle_line(ctx: &Ctx, line: &str, queued_for: Duration) -> (String, bool) {
    let req = match proto::parse_request(line) {
        Ok(r) => r,
        Err(e) => return (proto::error_response(None, &e), false),
    };
    match req {
        Request::Ping => {
            let mut o = proto::Obj::new();
            o.num("protocol_version", proto::PROTOCOL_VERSION as f64);
            o.str("status", "ok");
            o.str("op", "ping");
            (o.finish(), false)
        }
        Request::Stats => (stats_response(ctx), false),
        Request::Metrics => match metrics_response(ctx) {
            Ok(resp) => (resp, false),
            Err(e) => (proto::error_response(None, &e), false),
        },
        Request::Recent { limit } => (recent_response(ctx, limit), false),
        Request::Shutdown => {
            let mut o = proto::Obj::new();
            o.num("protocol_version", proto::PROTOCOL_VERSION as f64);
            o.str("status", "ok");
            o.str("op", "shutdown");
            (o.finish(), true)
        }
        Request::Synth(mut job) => {
            // Every synth job carries a request ID from here on: the
            // client's when supplied, otherwise server-assigned. It is
            // echoed in the reply (ok or error), stamped on the trace
            // spans, and recorded in the flight recorder.
            let id = job
                .id
                .get_or_insert_with(|| ctx.telemetry.next_request_id())
                .clone();
            let started = Instant::now();
            match run_job(ctx, job, queued_for) {
                Ok(resp) => (resp, false),
                Err(e) => {
                    ctx.telemetry.jobs_error.fetch_add(1, Ordering::Relaxed);
                    ctx.telemetry.record(JobSummary {
                        id: id.clone(),
                        name: String::new(),
                        outcome: "error",
                        error_kind: Some(proto::error_kind(&e).to_string()),
                        cone_hash: String::new(),
                        salvage_rungs: String::new(),
                        budget_trips: 0,
                        cache_hits: 0,
                        cache_misses: 0,
                        peak_nodes: 0,
                        peak_rss_kb: None,
                        seconds: started.elapsed().as_secs_f64(),
                        queue_seconds: queued_for.as_secs_f64(),
                    });
                    (proto::error_response(Some(&id), &e), false)
                }
            }
        }
    }
}

fn stats_response(ctx: &Ctx) -> String {
    let stats = ctx.engine.cache_stats();
    let mut cache = proto::Obj::new();
    cache.num("hits", stats.hits as f64);
    cache.num("misses", stats.misses as f64);
    cache.num("evictions", stats.evictions as f64);
    cache.num("insertions", stats.insertions as f64);
    cache.num("entries", stats.entries as f64);
    cache.num("bytes", stats.bytes as f64);
    cache.num("budget", stats.budget as f64);
    let mut o = proto::Obj::new();
    o.num("protocol_version", proto::PROTOCOL_VERSION as f64);
    o.str("status", "ok");
    o.str("op", "stats");
    o.raw("cache", &cache.finish());
    let mut engine = proto::Obj::new();
    engine.num("reclaim_refused", ctx.engine.reclaim_refused() as f64);
    o.raw("engine", &engine.finish());
    o.num("jobs_done", ctx.jobs_done.load(Ordering::Relaxed) as f64);
    o.finish()
}

/// Renders the engine-lifetime Prometheus-style text exposition behind
/// the `metrics` wire op. The `serve.metrics` failpoint injects a typed
/// failure here for the chaos suite: a broken exposition must answer
/// `status: "error"`, never wedge the scheduler or drop the connection.
fn metrics_response(ctx: &Ctx) -> Result<String, Error> {
    xsynth_trace::fail_point!(
        "serve.metrics",
        Err(Error::OutputFailed {
            output: "serve.metrics".into(),
            cause: "injected fault: metrics exposition refused".into(),
        })
    );
    let tel = &ctx.telemetry;
    let mut exp = Exposition::new();
    exp.counter(
        "xsynth_jobs_total",
        &[("outcome", "ok")],
        tel.jobs_ok.load(Ordering::Relaxed),
    );
    exp.counter(
        "xsynth_jobs_total",
        &[("outcome", "error")],
        tel.jobs_error.load(Ordering::Relaxed),
    );
    exp.counter(
        "xsynth_requests_total",
        &[],
        ctx.jobs_done.load(Ordering::Relaxed),
    );
    exp.gauge(
        "xsynth_uptime_seconds",
        &[],
        tel.start.elapsed().as_secs_f64(),
    );
    exp.gauge("xsynth_workers", &[], tel.workers as f64);
    // includes the worker currently answering this metrics request
    let busy = tel.busy.load(Ordering::Relaxed) as f64;
    exp.gauge("xsynth_workers_busy", &[], busy);
    exp.gauge(
        "xsynth_worker_utilization",
        &[],
        busy / tel.workers.max(1) as f64,
    );

    let cs = ctx.engine.cache_stats();
    exp.counter("xsynth_cache_hits_total", &[], cs.hits);
    exp.counter("xsynth_cache_misses_total", &[], cs.misses);
    exp.counter("xsynth_cache_evictions_total", &[], cs.evictions);
    exp.counter("xsynth_cache_insertions_total", &[], cs.insertions);
    exp.gauge("xsynth_cache_entries", &[], cs.entries as f64);
    exp.gauge("xsynth_cache_bytes", &[], cs.bytes as f64);
    exp.gauge("xsynth_cache_budget_bytes", &[], cs.budget as f64);
    exp.histogram(
        "xsynth_cache_lookup_seconds",
        &[],
        &ctx.engine.cache_lookup_hist(),
    );
    exp.counter(
        "xsynth_engine_reclaim_refused_total",
        &[],
        ctx.engine.reclaim_refused(),
    );

    for s in ctx.engine.substrate_stats() {
        let arity = s.arity.to_string();
        let l = [("arity", arity.as_str())];
        exp.gauge("xsynth_bdd_nodes", &l, s.nodes as f64);
        exp.counter("xsynth_bdd_apply_hits_total", &l, s.apply_hits);
        exp.counter("xsynth_bdd_apply_misses_total", &l, s.apply_misses);
        let lookups = s.apply_hits + s.apply_misses;
        if lookups > 0 {
            exp.gauge(
                "xsynth_bdd_apply_hit_ratio",
                &l,
                s.apply_hits as f64 / lookups as f64,
            );
        }
        for (shard, occ) in s.shard_occupancy.iter().enumerate() {
            if *occ == 0 {
                continue;
            }
            let shard = shard.to_string();
            exp.gauge(
                "xsynth_bdd_shard_nodes",
                &[("arity", arity.as_str()), ("shard", shard.as_str())],
                *occ as f64,
            );
        }
    }
    exp.gauge(
        "xsynth_bdd_peak_nodes",
        &[],
        tel.peak_nodes.load(Ordering::Relaxed) as f64,
    );

    {
        let h = lock(&tel.hists);
        exp.histogram("xsynth_job_seconds", &[], &h.job_seconds);
        exp.gauge("xsynth_job_seconds_p50", &[], h.job_seconds.quantile(0.50));
        exp.gauge("xsynth_job_seconds_p90", &[], h.job_seconds.quantile(0.90));
        exp.gauge("xsynth_job_seconds_p99", &[], h.job_seconds.quantile(0.99));
        exp.histogram("xsynth_queue_seconds", &[], &h.queue_seconds);
        exp.histogram("xsynth_job_bdd_nodes", &[], &h.job_bdd_nodes);
        for (phase, hist) in &h.phase_seconds {
            exp.histogram("xsynth_phase_seconds", &[("phase", phase)], hist);
        }
    }

    let mut o = proto::Obj::new();
    o.num("protocol_version", proto::PROTOCOL_VERSION as f64);
    o.str("status", "ok");
    o.str("op", "metrics");
    o.str("text", &exp.render());
    Ok(o.finish())
}

/// Answers the `recent` wire op: flight-recorder entries newest-first,
/// truncated to `limit` when given.
fn recent_response(ctx: &Ctx, limit: Option<usize>) -> String {
    let ring = lock(&ctx.telemetry.recorder);
    let take = limit.unwrap_or(ring.len()).min(ring.len());
    let mut jobs = String::from("[");
    for (i, s) in ring.iter().rev().take(take).enumerate() {
        if i > 0 {
            jobs.push(',');
        }
        let mut jo = proto::Obj::new();
        jo.str("id", &s.id);
        jo.str("name", &s.name);
        jo.str("outcome", s.outcome);
        match &s.error_kind {
            Some(kind) => jo.str("error_kind", kind),
            None => jo.null("error_kind"),
        }
        jo.str("cone_hash", &s.cone_hash);
        jo.str("salvage_rungs", &s.salvage_rungs);
        jo.num("budget_trips", s.budget_trips as f64);
        jo.num("cache_hits", s.cache_hits as f64);
        jo.num("cache_misses", s.cache_misses as f64);
        jo.num("peak_nodes", s.peak_nodes as f64);
        match s.peak_rss_kb {
            Some(kb) => jo.num("peak_rss_kb", kb as f64),
            None => jo.null("peak_rss_kb"),
        }
        jo.num("seconds", s.seconds);
        jo.num("queue_seconds", s.queue_seconds);
        jobs.push_str(&jo.finish());
    }
    drop(ring);
    jobs.push(']');
    let mut o = proto::Obj::new();
    o.num("protocol_version", proto::PROTOCOL_VERSION as f64);
    o.str("status", "ok");
    o.str("op", "recent");
    o.num("count", take as f64);
    o.raw("jobs", &jobs);
    o.finish()
}

/// Executes one synthesis job end to end: admission failpoint, parse,
/// synthesize on the shared engine, record flight-recorder and histogram
/// telemetry, reply with the network and cache accounting (plus bench
/// telemetry on request). `job.id` is always set by `handle_line`.
fn run_job(ctx: &Ctx, job: JobRequest, queued_for: Duration) -> Result<String, Error> {
    xsynth_trace::fail_point!(
        "serve.accept",
        Err(Error::OutputFailed {
            output: "serve.accept".into(),
            cause: "injected fault: job admission refused".into(),
        })
    );
    // Scope the peak-RSS gauge to this job; overlapping jobs observe
    // shared upper bounds instead of resetting each other (`MemScope`).
    let mem = xsynth_trace::mem::MemScope::begin();
    let spec = match job.format {
        JobFormat::Blif => parse_blif(&job.source).map_err(Error::Parse)?,
        JobFormat::Pla => parse_pla(&job.source)
            .map_err(Error::Parse)?
            .to_network(job.id.as_deref().unwrap_or("pla")),
    };
    let mut opts = ctx.engine.options().clone();
    if let Some(budget) = job.budget {
        opts.budget = budget;
    }
    let t0 = Instant::now();
    let mut outcome = ctx.engine.try_synthesize_with(&spec, &opts)?;
    let seconds = t0.elapsed().as_secs_f64();

    // Stamp the request ID onto the job's trace spans so an exported
    // trace from this multi-tenant daemon stays attributable.
    let id = job.id.clone().unwrap_or_default();
    outcome.report.trace.prefix_labels(&id);

    // Daemon-side observability. The wall-clock histograms are
    // schedule-dependent and therefore live here, never in the per-job
    // trace the determinism suite compares.
    let peak_nodes = outcome
        .report
        .trace
        .gauge_max("bdd.peak_nodes")
        .unwrap_or(0.0) as u64;
    let bdd_nodes = outcome
        .report
        .trace
        .gauge_finals()
        .get("bdd.nodes")
        .copied()
        .unwrap_or(0.0);
    {
        let mut h = lock(&ctx.telemetry.hists);
        h.job_seconds.observe(seconds);
        h.job_bdd_nodes.observe(bdd_nodes);
        for stat in &outcome.report.profile.phases {
            h.phase_seconds
                .entry(stat.name.clone())
                .or_default()
                .observe(stat.duration.as_secs_f64());
        }
    }
    ctx.telemetry.observe_peak_nodes(peak_nodes);
    let cone_hash = {
        let mut h: u128 = 0;
        for (_, sig) in spec.outputs() {
            h ^= xsynth_cache::cone_of(&spec, *sig).key.raw();
        }
        format!("{h:032x}")
    };
    let rungs: Vec<&str> = outcome
        .report
        .salvaged
        .iter()
        .map(|s| s.rung.as_str())
        .collect();
    let use_ = outcome.report.cache;
    ctx.telemetry.jobs_ok.fetch_add(1, Ordering::Relaxed);
    ctx.telemetry.record(JobSummary {
        id: id.clone(),
        name: spec.name().to_string(),
        outcome: "ok",
        error_kind: None,
        cone_hash,
        salvage_rungs: rungs.join(","),
        budget_trips: outcome.report.curtailed.len() as u64,
        cache_hits: use_.polarity_hits + use_.cubes_hits + use_.factored_hits,
        cache_misses: use_.lookup_misses,
        peak_nodes,
        peak_rss_kb: mem.peak_kb(),
        seconds,
        queue_seconds: queued_for.as_secs_f64(),
    });

    let mut cache = proto::Obj::new();
    cache.num("polarity_hits", outcome.report.cache.polarity_hits as f64);
    cache.num("cubes_hits", outcome.report.cache.cubes_hits as f64);
    cache.num("factored_hits", outcome.report.cache.factored_hits as f64);
    cache.num("lookup_misses", outcome.report.cache.lookup_misses as f64);

    let mut o = proto::Obj::new();
    o.num("protocol_version", proto::PROTOCOL_VERSION as f64);
    o.str("status", "ok");
    o.str("op", "synth");
    if let Some(id) = &job.id {
        o.str("id", id);
    }
    o.str("name", spec.name());
    o.str("network_blif", &write_blif(&outcome.network));
    o.num("outputs", outcome.network.outputs().len() as f64);
    o.num("salvaged", outcome.report.salvaged.len() as f64);
    o.raw("cache", &cache.finish());
    o.num("seconds", seconds);
    match mem.peak_kb() {
        Some(kb) => o.num("peak_rss_kb", kb as f64),
        None => o.null("peak_rss_kb"),
    }
    o.bool("mem_exclusive", mem.is_exclusive());
    if job.telemetry {
        let name = job.id.as_deref().unwrap_or_else(|| spec.name()).to_string();
        let measured = record_from_run(
            &name,
            "serve",
            &spec,
            outcome.network,
            Some(outcome.report),
            &[seconds],
            &ctx.lib,
            &ctx.verify_budget,
        );
        let suite = BenchSuite {
            suite: "serve".into(),
            records: vec![measured.record],
        };
        let doc = json::parse(&suite.to_json())
            .map_err(|e| Error::msg(format!("telemetry serialization failed: {e}")))?;
        let mut compacted = String::new();
        proto::compact(&doc, &mut compacted);
        o.raw("telemetry", &compacted);
    }
    Ok(o.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_job(conn: u64, tag: &str, writer: &SharedWriter) -> Job {
        Job {
            conn,
            line: tag.to_string(),
            writer: writer.clone(),
            enqueued: Instant::now(),
        }
    }

    #[test]
    fn scheduler_rotates_across_connections() {
        let sched = Scheduler::new();
        let w: SharedWriter = Arc::new(Mutex::new(Box::new(Vec::<u8>::new())));
        // conn 0 pipelines three jobs before conn 1's single job arrives
        for tag in ["a0", "a1", "a2"] {
            assert!(sched.submit(dummy_job(0, tag, &w)));
        }
        assert!(sched.submit(dummy_job(1, "b0", &w)));
        let order: Vec<String> = std::iter::from_fn(|| {
            sched.stop_if_empty();
            sched.next().map(|j| j.line)
        })
        .collect();
        assert_eq!(order, ["a0", "b0", "a1", "a2"]);
    }

    impl Scheduler {
        /// Test helper: stop once drained so `next` terminates.
        fn stop_if_empty(&self) {
            let mut s = lock(&self.state);
            if s.order.is_empty() {
                s.stop = true;
                drop(s);
                self.ready.notify_all();
            }
        }
    }

    #[test]
    fn scheduler_rejects_after_stop() {
        let sched = Scheduler::new();
        sched.stop();
        let w: SharedWriter = Arc::new(Mutex::new(Box::new(Vec::<u8>::new())));
        assert!(!sched.submit(dummy_job(0, "late", &w)));
        assert!(sched.next().is_none());
    }

    #[test]
    fn scheduler_survives_a_poisoned_state_mutex() {
        let sched = Arc::new(Scheduler::new());
        // poison the state mutex the way a panicking reader thread would:
        // die while holding the lock, before mutating anything
        let poisoner = sched.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.state.lock().expect("first lock is clean");
            panic!("injected: die holding the scheduler lock");
        })
        .join();
        assert!(sched.state.is_poisoned(), "the panic must have poisoned it");
        // submit, next, and stop all keep working on the poisoned mutex
        let w: SharedWriter = Arc::new(Mutex::new(Box::new(Vec::<u8>::new())));
        assert!(sched.submit(dummy_job(0, "after-poison", &w)));
        assert_eq!(sched.next().expect("job comes back").line, "after-poison");
        sched.stop();
        assert!(!sched.submit(dummy_job(0, "late", &w)));
        assert!(sched.next().is_none());
    }

    #[test]
    fn write_reply_survives_a_poisoned_writer_mutex() {
        let w: SharedWriter = Arc::new(Mutex::new(Box::new(Vec::<u8>::new())));
        let poisoner = w.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().expect("first lock is clean");
            panic!("injected: die holding the write lock");
        })
        .join();
        assert!(w.is_poisoned());
        // the reply still goes out instead of a cascading panic
        write_reply(&w, r#"{"status":"ok"}"#);
    }
}
