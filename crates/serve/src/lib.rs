//! `xsynth serve` — a long-lived synthesis daemon.
//!
//! The one-shot CLI pays the full pipeline cost on every invocation:
//! substrate allocation, polarity descent, factoring. Interactive use —
//! an editor plugin resynthesizing on save, a design-space sweep
//! resubmitting near-identical cones — repeats almost all of that work.
//! This crate keeps a single [`xsynth_core::Engine`] alive behind TCP
//! and/or unix-socket listeners: the engine's content-addressed result
//! cache answers resubmitted cones without rerunning the polarity
//! search, and its substrate pool skips per-job BDD re-allocation.
//!
//! The wire protocol is newline-delimited JSON (see [`proto`]), framed
//! with the same zero-dependency [`xsynth_trace::json`] parser the
//! benchmark telemetry uses, and versioned with a `protocol_version`
//! field both sides validate ([`PROTOCOL_VERSION`]). Shape or version
//! violations produce a typed error *reply* (CLI exit-code family 10,
//! [`xsynth_core::Error::Protocol`]) and leave the connection open.
//!
//! # Examples
//!
//! ```
//! use xsynth_serve::{Client, ServeOptions, Server};
//!
//! let server = Server::bind(ServeOptions {
//!     tcp: Some("127.0.0.1:0".into()),
//!     workers: 1,
//!     ..ServeOptions::default()
//! })
//! .expect("bind");
//! let addr = server.tcp_addr().expect("tcp bound").to_string();
//! let mut client = Client::connect_tcp(&addr).expect("connect");
//! let pong = client.ping().expect("ping");
//! assert_eq!(pong.get("status").and_then(|v| v.as_str()), Some("ok"));
//! client.shutdown().expect("shutdown ack");
//! server.wait();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod client;
pub mod proto;
mod server;

pub use client::Client;
pub use proto::{JobFormat, JobRequest, Request, PROTOCOL_VERSION};
pub use server::{ServeOptions, Server};
