//! `xsynth serve` — a long-lived synthesis daemon.
//!
//! The one-shot CLI pays the full pipeline cost on every invocation:
//! substrate allocation, polarity descent, factoring. Interactive use —
//! an editor plugin resynthesizing on save, a design-space sweep
//! resubmitting near-identical cones — repeats almost all of that work.
//! This crate keeps a single [`xsynth_core::Engine`] alive behind TCP
//! and/or unix-socket listeners: the engine's content-addressed result
//! cache answers resubmitted cones without rerunning the polarity
//! search, and its substrate pool skips per-job BDD re-allocation.
//!
//! The wire protocol is newline-delimited JSON (see [`proto`]), framed
//! with the same zero-dependency [`xsynth_trace::json`] parser the
//! benchmark telemetry uses, and versioned with a `protocol_version`
//! field both sides validate ([`PROTOCOL_VERSION`]). Shape or version
//! violations produce a typed error *reply* (CLI exit-code family 10,
//! [`xsynth_core::Error::Protocol`]) and leave the connection open.
//!
//! The daemon is overload-protected: queues are bounded per connection
//! and daemon-wide, request lines are byte-capped, slow-loris and idle
//! connections are reaped, queued jobs for dropped connections are
//! cancelled, and graceful drain answers or sheds everything queued
//! within a drain timeout. Sheds are typed
//! [`xsynth_core::Error::Overloaded`] replies (CLI exit-code family 11)
//! carrying a `retry_after_ms` hint, which [`RetryPolicy`] and
//! [`Client::synth_with_retry`] honor with decorrelated-jitter backoff.
//! The `health` wire op reports `ready` / `shedding` / `draining` for
//! probes.
//!
//! # Examples
//!
//! ```
//! use xsynth_serve::{Client, ServeOptions, Server};
//!
//! let server = Server::bind(ServeOptions {
//!     tcp: Some("127.0.0.1:0".into()),
//!     workers: 1,
//!     ..ServeOptions::default()
//! })
//! .expect("bind");
//! let addr = server.tcp_addr().expect("tcp bound").to_string();
//! let mut client = Client::connect_tcp(&addr).expect("connect");
//! let pong = client.ping().expect("ping");
//! assert_eq!(pong.get("status").and_then(|v| v.as_str()), Some("ok"));
//! client.shutdown().expect("shutdown ack");
//! server.wait();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod client;
pub mod proto;
mod server;

pub use client::{is_overloaded, retry_after_hint, Client, RetryPolicy};
pub use proto::{JobFormat, JobRequest, Request, PROTOCOL_VERSION};
pub use server::{DrainHandle, ServeOptions, Server};
