//! A small blocking client for the serve protocol, used by the
//! integration tests, the chaos suite, and CI smoke scripts.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;

use xsynth_core::{Budget, Error};
use xsynth_trace::json::{self, Value};

use crate::proto::{self, JobFormat, PROTOCOL_VERSION};

/// One connection to a running daemon. Requests are synchronous: each
/// call writes one line and blocks for the matching reply line.
#[derive(Debug)]
pub struct Client<S: Read + Write> {
    stream: BufReader<S>,
}

impl Client<TcpStream> {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the connection cannot be established.
    pub fn connect_tcp(addr: &str) -> Result<Client<TcpStream>, Error> {
        let stream = TcpStream::connect(addr).map_err(|e| Error::io(addr, e))?;
        Ok(Client::from_stream(stream))
    }
}

#[cfg(unix)]
impl Client<UnixStream> {
    /// Connects over a unix-domain socket.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the connection cannot be established.
    pub fn connect_unix(path: impl AsRef<std::path::Path>) -> Result<Client<UnixStream>, Error> {
        let path = path.as_ref();
        let stream =
            UnixStream::connect(path).map_err(|e| Error::io(path.display().to_string(), e))?;
        Ok(Client::from_stream(stream))
    }
}

impl<S: Read + Write> Client<S> {
    /// Wraps an already-connected bidirectional stream.
    pub fn from_stream(stream: S) -> Client<S> {
        Client {
            stream: BufReader::new(stream),
        }
    }

    /// Sends one raw request line and returns the parsed reply.
    ///
    /// The reply is returned whether its `status` is `"ok"` or
    /// `"error"` — a typed error *reply* is a successful protocol
    /// exchange. Only transport failures (closed connection, bad reply
    /// JSON, version skew) are `Err`.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on transport failure, [`Error::Protocol`] when the
    /// reply is not a valid protocol message.
    pub fn request_line(&mut self, line: &str) -> Result<Value, Error> {
        let w = self.stream.get_mut();
        w.write_all(line.as_bytes())
            .and_then(|_| w.write_all(b"\n"))
            .and_then(|_| w.flush())
            .map_err(|e| Error::io("serve connection", e))?;
        let mut reply = String::new();
        self.stream
            .read_line(&mut reply)
            .map_err(|e| Error::io("serve connection", e))?;
        if reply.is_empty() {
            return Err(Error::io(
                "serve connection",
                std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before reply",
                ),
            ));
        }
        let v = json::parse(reply.trim())
            .map_err(|e| Error::Protocol(format!("reply is not valid JSON: {e}")))?;
        match v.get("protocol_version").and_then(Value::as_u64) {
            Some(PROTOCOL_VERSION) => Ok(v),
            Some(other) => Err(Error::Protocol(format!(
                "daemon speaks protocol_version {other}, this client speaks {PROTOCOL_VERSION}"
            ))),
            None => Err(Error::Protocol("reply missing protocol_version".into())),
        }
    }

    /// Submits one synthesis job.
    ///
    /// # Errors
    ///
    /// Transport or reply-framing failures (see [`Client::request_line`]).
    pub fn synth(
        &mut self,
        source: &str,
        format: JobFormat,
        id: Option<&str>,
        budget: Option<&Budget>,
        telemetry: bool,
    ) -> Result<Value, Error> {
        let line = proto::synth_request(source, format, id, budget, telemetry);
        self.request_line(&line)
    }

    /// Submits a BLIF job with default budget and no telemetry.
    ///
    /// # Errors
    ///
    /// Transport or reply-framing failures (see [`Client::request_line`]).
    pub fn synth_blif(&mut self, source: &str, id: Option<&str>) -> Result<Value, Error> {
        self.synth(source, JobFormat::Blif, id, None, false)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport or reply-framing failures (see [`Client::request_line`]).
    pub fn ping(&mut self) -> Result<Value, Error> {
        self.request_line(&proto::simple_request("ping"))
    }

    /// Fetches engine cache / job-counter statistics.
    ///
    /// # Errors
    ///
    /// Transport or reply-framing failures (see [`Client::request_line`]).
    pub fn stats(&mut self) -> Result<Value, Error> {
        self.request_line(&proto::simple_request("stats"))
    }

    /// Fetches the Prometheus-style metrics exposition (the reply's
    /// `text` field; parse it with [`xsynth_trace::metrics::parse`]).
    ///
    /// # Errors
    ///
    /// Transport or reply-framing failures (see [`Client::request_line`]).
    pub fn metrics(&mut self) -> Result<Value, Error> {
        self.request_line(&proto::simple_request("metrics"))
    }

    /// Fetches the flight recorder's most recent job summaries,
    /// newest-first, truncated to `limit` when given.
    ///
    /// # Errors
    ///
    /// Transport or reply-framing failures (see [`Client::request_line`]).
    pub fn recent(&mut self, limit: Option<usize>) -> Result<Value, Error> {
        let mut o = proto::Obj::new();
        o.num("protocol_version", PROTOCOL_VERSION as f64);
        o.str("op", "recent");
        if let Some(n) = limit {
            o.num("limit", n as f64);
        }
        let line = o.finish();
        self.request_line(&line)
    }

    /// Requests graceful daemon shutdown and returns its acknowledgment.
    ///
    /// # Errors
    ///
    /// Transport or reply-framing failures (see [`Client::request_line`]).
    pub fn shutdown(&mut self) -> Result<Value, Error> {
        self.request_line(&proto::simple_request("shutdown"))
    }
}
