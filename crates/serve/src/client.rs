//! A small blocking client for the serve protocol, used by the
//! integration tests, the chaos suite, and CI smoke scripts.
//!
//! The client understands the daemon's overload contract: an
//! `overloaded` reply (exit code 11) means the job was never started
//! and is always safe to retry. [`RetryPolicy`] implements the
//! recommended backoff — exponential with decorrelated jitter, floored
//! at the server's `retry_after_ms` hint, bounded in attempts — and
//! [`Client::synth_with_retry`] applies it.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::{Duration, SystemTime};

use xsynth_core::{Budget, Error};
use xsynth_trace::json::{self, Value};

use crate::proto::{self, JobFormat, PROTOCOL_VERSION};

/// Client-side backoff for retrying `overloaded` sheds: decorrelated
/// jitter (each delay is drawn uniformly from `[base, 3 × previous]`,
/// capped), floored at the server's `retry_after_ms` hint when one is
/// present, for a bounded number of attempts.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` never retries).
    pub max_attempts: u32,
    /// Smallest delay between attempts.
    pub base: Duration,
    /// Largest delay between attempts.
    pub cap: Duration,
    /// xorshift64* state for the jitter.
    rng: u64,
    /// The previous delay (decorrelated jitter's memory).
    prev: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        let seed = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        RetryPolicy::seeded(seed)
    }
}

impl RetryPolicy {
    /// A policy with the default shape (5 attempts, 25 ms base, 2 s
    /// cap) and a fixed jitter seed — deterministic, for tests.
    pub fn seeded(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(2),
            rng: seed | 1,
            prev: Duration::ZERO,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64* — enough for jitter, no dependency.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// The delay to sleep before the next retry, honoring the server's
    /// `retry_after_ms` hint as a floor.
    pub fn backoff(&mut self, retry_after_ms: Option<u64>) -> Duration {
        let lo = self.base;
        let hi = (self.prev * 3).max(lo);
        let span = hi.saturating_sub(lo);
        let mut delay = if span.is_zero() {
            lo
        } else {
            let frac = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            lo + span.mul_f64(frac)
        };
        if let Some(ms) = retry_after_ms {
            delay = delay.max(Duration::from_millis(ms));
        }
        delay = delay.min(self.cap);
        self.prev = delay;
        delay
    }
}

/// The `retry_after_ms` hint of an `overloaded` reply, `None` for any
/// other reply shape.
pub fn retry_after_hint(reply: &Value) -> Option<u64> {
    let err = reply.get("error")?;
    if err.get("kind").and_then(Value::as_str) != Some("overloaded") {
        return None;
    }
    err.get("retry_after_ms").and_then(Value::as_u64)
}

/// Whether a reply is a typed `overloaded` shed (retrying is safe).
pub fn is_overloaded(reply: &Value) -> bool {
    reply
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Value::as_str)
        == Some("overloaded")
}

/// One connection to a running daemon. Requests are synchronous: each
/// call writes one line and blocks for the matching reply line.
#[derive(Debug)]
pub struct Client<S: Read + Write> {
    stream: BufReader<S>,
}

impl Client<TcpStream> {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the connection cannot be established.
    pub fn connect_tcp(addr: &str) -> Result<Client<TcpStream>, Error> {
        let stream = TcpStream::connect(addr).map_err(|e| Error::io(addr, e))?;
        Ok(Client::from_stream(stream))
    }
}

#[cfg(unix)]
impl Client<UnixStream> {
    /// Connects over a unix-domain socket.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the connection cannot be established.
    pub fn connect_unix(path: impl AsRef<std::path::Path>) -> Result<Client<UnixStream>, Error> {
        let path = path.as_ref();
        let stream =
            UnixStream::connect(path).map_err(|e| Error::io(path.display().to_string(), e))?;
        Ok(Client::from_stream(stream))
    }
}

impl<S: Read + Write> Client<S> {
    /// Wraps an already-connected bidirectional stream.
    pub fn from_stream(stream: S) -> Client<S> {
        Client {
            stream: BufReader::new(stream),
        }
    }

    /// Sends one raw request line and returns the parsed reply.
    ///
    /// The reply is returned whether its `status` is `"ok"` or
    /// `"error"` — a typed error *reply* is a successful protocol
    /// exchange. Only transport failures (closed connection, bad reply
    /// JSON, version skew) are `Err`.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on transport failure, [`Error::Protocol`] when the
    /// reply is not a valid protocol message.
    pub fn request_line(&mut self, line: &str) -> Result<Value, Error> {
        let w = self.stream.get_mut();
        w.write_all(line.as_bytes())
            .and_then(|_| w.write_all(b"\n"))
            .and_then(|_| w.flush())
            .map_err(|e| Error::io("serve connection", e))?;
        let mut reply = String::new();
        self.stream
            .read_line(&mut reply)
            .map_err(|e| Error::io("serve connection", e))?;
        if reply.is_empty() {
            return Err(Error::io(
                "serve connection",
                std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed before reply",
                ),
            ));
        }
        let v = json::parse(reply.trim())
            .map_err(|e| Error::Protocol(format!("reply is not valid JSON: {e}")))?;
        match v.get("protocol_version").and_then(Value::as_u64) {
            Some(PROTOCOL_VERSION) => Ok(v),
            Some(other) => Err(Error::Protocol(format!(
                "daemon speaks protocol_version {other}, this client speaks {PROTOCOL_VERSION}"
            ))),
            None => Err(Error::Protocol("reply missing protocol_version".into())),
        }
    }

    /// Submits one synthesis job.
    ///
    /// # Errors
    ///
    /// Transport or reply-framing failures (see [`Client::request_line`]).
    pub fn synth(
        &mut self,
        source: &str,
        format: JobFormat,
        id: Option<&str>,
        budget: Option<&Budget>,
        telemetry: bool,
    ) -> Result<Value, Error> {
        let line = proto::synth_request(source, format, id, budget, None, telemetry);
        self.request_line(&line)
    }

    /// Submits one synthesis job with an end-to-end `deadline_ms`: the
    /// daemon sheds it if it cannot start in time and clamps its phase
    /// timeout to the remaining allowance once started.
    ///
    /// # Errors
    ///
    /// Transport or reply-framing failures (see [`Client::request_line`]).
    pub fn synth_with_deadline(
        &mut self,
        source: &str,
        format: JobFormat,
        id: Option<&str>,
        budget: Option<&Budget>,
        deadline_ms: u64,
        telemetry: bool,
    ) -> Result<Value, Error> {
        let line = proto::synth_request(source, format, id, budget, Some(deadline_ms), telemetry);
        self.request_line(&line)
    }

    /// Submits one synthesis job, retrying `overloaded` sheds under
    /// `policy`. Returns the first non-overloaded reply, or the final
    /// overloaded reply once attempts are exhausted — inspect it with
    /// [`is_overloaded`].
    ///
    /// # Errors
    ///
    /// Transport or reply-framing failures (see [`Client::request_line`]);
    /// a shed answered within `max_attempts` is never an `Err`.
    pub fn synth_with_retry(
        &mut self,
        source: &str,
        format: JobFormat,
        id: Option<&str>,
        budget: Option<&Budget>,
        telemetry: bool,
        policy: &mut RetryPolicy,
    ) -> Result<Value, Error> {
        let attempts = policy.max_attempts.max(1);
        let mut reply = self.synth(source, format, id, budget, telemetry)?;
        for _ in 1..attempts {
            if !is_overloaded(&reply) {
                return Ok(reply);
            }
            std::thread::sleep(policy.backoff(retry_after_hint(&reply)));
            reply = self.synth(source, format, id, budget, telemetry)?;
        }
        Ok(reply)
    }

    /// Submits a BLIF job with default budget and no telemetry.
    ///
    /// # Errors
    ///
    /// Transport or reply-framing failures (see [`Client::request_line`]).
    pub fn synth_blif(&mut self, source: &str, id: Option<&str>) -> Result<Value, Error> {
        self.synth(source, JobFormat::Blif, id, None, false)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport or reply-framing failures (see [`Client::request_line`]).
    pub fn ping(&mut self) -> Result<Value, Error> {
        self.request_line(&proto::simple_request("ping"))
    }

    /// Fetches engine cache / job-counter statistics.
    ///
    /// # Errors
    ///
    /// Transport or reply-framing failures (see [`Client::request_line`]).
    pub fn stats(&mut self) -> Result<Value, Error> {
        self.request_line(&proto::simple_request("stats"))
    }

    /// Fetches the Prometheus-style metrics exposition (the reply's
    /// `text` field; parse it with [`xsynth_trace::metrics::parse`]).
    ///
    /// # Errors
    ///
    /// Transport or reply-framing failures (see [`Client::request_line`]).
    pub fn metrics(&mut self) -> Result<Value, Error> {
        self.request_line(&proto::simple_request("metrics"))
    }

    /// Probes the daemon's lifecycle state (`ready` / `shedding` /
    /// `draining`) and queue gauges.
    ///
    /// # Errors
    ///
    /// Transport or reply-framing failures (see [`Client::request_line`]).
    pub fn health(&mut self) -> Result<Value, Error> {
        self.request_line(&proto::simple_request("health"))
    }

    /// Fetches the flight recorder's most recent job summaries,
    /// newest-first, truncated to `limit` when given.
    ///
    /// # Errors
    ///
    /// Transport or reply-framing failures (see [`Client::request_line`]).
    pub fn recent(&mut self, limit: Option<usize>) -> Result<Value, Error> {
        let mut o = proto::Obj::new();
        o.num("protocol_version", PROTOCOL_VERSION as f64);
        o.str("op", "recent");
        if let Some(n) = limit {
            o.num("limit", n as f64);
        }
        let line = o.finish();
        self.request_line(&line)
    }

    /// Requests graceful daemon shutdown and returns its acknowledgment.
    ///
    /// # Errors
    ///
    /// Transport or reply-framing failures (see [`Client::request_line`]).
    pub fn shutdown(&mut self) -> Result<Value, Error> {
        self.request_line(&proto::simple_request("shutdown"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_and_honors_the_server_hint() {
        let mut p = RetryPolicy::seeded(42);
        let mut prev = Duration::ZERO;
        for _ in 0..50 {
            let d = p.backoff(None);
            assert!(d >= p.base, "{d:?} below base");
            assert!(d <= p.cap, "{d:?} above cap");
            // decorrelated jitter: bounded by 3× the previous delay
            assert!(d <= (prev * 3).max(p.base), "{d:?} vs prev {prev:?}");
            prev = d;
        }
        // the hint floors the delay even when jitter would go lower
        let mut p = RetryPolicy::seeded(42);
        let d = p.backoff(Some(500));
        assert!(d >= Duration::from_millis(500), "{d:?}");
        // but the cap still wins over an absurd hint
        let d = p.backoff(Some(3_600_000));
        assert_eq!(d, p.cap);
    }

    #[test]
    fn backoff_is_deterministic_under_a_fixed_seed() {
        let mut a = RetryPolicy::seeded(7);
        let mut b = RetryPolicy::seeded(7);
        for _ in 0..10 {
            assert_eq!(a.backoff(None), b.backoff(None));
        }
    }

    #[test]
    fn overload_reply_helpers_parse_the_wire_shape() {
        let shed = json::parse(
            r#"{"protocol_version":1,"status":"error",
                "error":{"kind":"overloaded","exit_code":11,
                         "message":"overloaded: global queue full (retry after 250 ms)",
                         "retry_after_ms":250}}"#,
        )
        .expect("valid");
        assert!(is_overloaded(&shed));
        assert_eq!(retry_after_hint(&shed), Some(250));
        let ok = json::parse(r#"{"protocol_version":1,"status":"ok","op":"ping"}"#).expect("ok");
        assert!(!is_overloaded(&ok));
        assert_eq!(retry_after_hint(&ok), None);
        let other = json::parse(
            r#"{"protocol_version":1,"status":"error",
                "error":{"kind":"budget","exit_code":8,"message":"m"}}"#,
        )
        .expect("valid");
        assert!(!is_overloaded(&other));
        assert_eq!(retry_after_hint(&other), None);
    }
}
