//! Prometheus-style text exposition: a serde-free writer and a strict
//! parser.
//!
//! The serve daemon's `metrics` wire op renders its engine-lifetime
//! counters, gauges and [`Histogram`]s with [`Exposition`]; `xsynth top`
//! and the test suite read the text back with [`parse`], which enforces
//! the invariants the writer guarantees: one `# TYPE` line per family,
//! unique family names, sorted unique labels per sample, and histogram
//! samples restricted to the `_bucket`/`_sum`/`_count` suffixes with
//! cumulative `le` buckets ending in `+Inf`.
//!
//! # Examples
//!
//! ```
//! use xsynth_trace::metrics::Exposition;
//!
//! let mut exp = Exposition::new();
//! exp.counter("xsynth_jobs_total", &[("outcome", "ok")], 3);
//! exp.gauge("xsynth_uptime_seconds", &[], 12.5);
//! let text = exp.render();
//! assert!(text.contains("# TYPE xsynth_jobs_total counter"));
//! xsynth_trace::metrics::parse(&text).unwrap();
//! ```

use crate::{bucket_upper_bound, Histogram, NUM_BUCKETS};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Metric family kinds supported by the exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonically increasing total.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Fixed-bucket distribution (`_bucket`/`_sum`/`_count` samples).
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }

    fn from_str(s: &str) -> Option<Kind> {
        match s {
            "counter" => Some(Kind::Counter),
            "gauge" => Some(Kind::Gauge),
            "histogram" => Some(Kind::Histogram),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct Family {
    kind: Kind,
    /// Rendered sample lines, in insertion order.
    lines: Vec<String>,
}

/// A serde-free Prometheus text-exposition writer.
///
/// Families render sorted by name; each gets exactly one `# TYPE` line.
/// Labels are sorted by key and values escaped per the exposition format.
/// Registering the same family under two different kinds panics — that is
/// a programming error in the caller, never input-dependent.
#[derive(Debug, Default)]
pub struct Exposition {
    families: BTreeMap<String, Family>,
}

impl Exposition {
    /// An empty exposition.
    pub fn new() -> Self {
        Exposition::default()
    }

    fn family(&mut self, name: &str, kind: Kind) -> &mut Family {
        debug_assert!(valid_name(name), "invalid metric name `{name}`");
        let fam = self.families.entry(name.to_string()).or_insert(Family {
            kind,
            lines: Vec::new(),
        });
        assert!(
            fam.kind == kind,
            "metric `{name}` registered as both {} and {}",
            fam.kind.as_str(),
            kind.as_str()
        );
        fam
    }

    /// Adds one counter sample.
    pub fn counter(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        let line = sample_line(name, "", labels, None, &format_u64(value));
        self.family(name, Kind::Counter).lines.push(line);
    }

    /// Adds one gauge sample.
    pub fn gauge(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        let line = sample_line(name, "", labels, None, &format_f64(value));
        self.family(name, Kind::Gauge).lines.push(line);
    }

    /// Adds one histogram series: cumulative `_bucket` samples for every
    /// non-empty bucket boundary plus the mandatory `+Inf` bucket, then
    /// `_sum` and `_count`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], hist: &Histogram) {
        let mut lines = Vec::new();
        let mut cumulative = 0u64;
        for (b, &n) in hist.buckets().iter().enumerate() {
            cumulative += n;
            // sparse exposition: skip boundaries no sample has reached yet,
            // but always close with +Inf below
            if n == 0 {
                continue;
            }
            if b < NUM_BUCKETS - 1 {
                lines.push(sample_line(
                    name,
                    "_bucket",
                    labels,
                    Some(&format_f64(bucket_upper_bound(b))),
                    &format_u64(cumulative),
                ));
            }
        }
        lines.push(sample_line(
            name,
            "_bucket",
            labels,
            Some("+Inf"),
            &format_u64(hist.count()),
        ));
        lines.push(sample_line(
            name,
            "_sum",
            labels,
            None,
            &format_f64(hist.sum()),
        ));
        lines.push(sample_line(
            name,
            "_count",
            labels,
            None,
            &format_u64(hist.count()),
        ));
        self.family(name, Kind::Histogram).lines.extend(lines);
    }

    /// Renders the full exposition text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, fam) in &self.families {
            let _ = writeln!(out, "# TYPE {name} {}", fam.kind.as_str());
            for line in &fam.lines {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

fn format_u64(v: u64) -> String {
    v.to_string()
}

fn format_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders `name{a="x",le="2"} value`, with labels sorted by key and `le`
/// (when given) merged into the sort.
fn sample_line(
    name: &str,
    suffix: &str,
    labels: &[(&str, &str)],
    le: Option<&str>,
    value: &str,
) -> String {
    let mut all: Vec<(&str, String)> = labels.iter().map(|(k, v)| (*k, escape_label(v))).collect();
    if let Some(le) = le {
        all.push(("le", escape_label(le)));
    }
    all.sort_by(|a, b| a.0.cmp(b.0));
    debug_assert!(all.iter().all(|(k, _)| valid_name(k) && *k != "__name__"));
    debug_assert!(all.windows(2).all(|w| w[0].0 != w[1].0), "duplicate label");
    if all.is_empty() {
        format!("{name}{suffix} {value}")
    } else {
        let body: Vec<String> = all.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        format!("{name}{suffix}{{{}}} {value}", body.join(","))
    }
}

/// One parsed sample: full sample name (with any histogram suffix), sorted
/// labels, and the value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name as written (e.g. `xsynth_job_seconds_bucket`).
    pub name: String,
    /// Label pairs, in the order written (sorted by key).
    pub labels: Vec<(String, String)>,
    /// Parsed value (`+Inf`/`-Inf`/`NaN` accepted).
    pub value: f64,
}

impl Sample {
    /// The value of one label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One parsed metric family: its kind and samples in exposition order.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedFamily {
    /// Family kind from the `# TYPE` line.
    pub kind: Kind,
    /// Samples belonging to the family.
    pub samples: Vec<Sample>,
}

/// Strictly parses a text exposition produced by [`Exposition::render`].
///
/// Rejects: duplicate `# TYPE` lines, samples before any `# TYPE`, sample
/// names that do not match the current family (histograms may append
/// `_bucket`/`_sum`/`_count`), unsorted or duplicate labels, malformed
/// label syntax, unparsable values, histogram bucket series whose
/// cumulative counts decrease or that lack a closing `+Inf` bucket.
pub fn parse(text: &str) -> Result<BTreeMap<String, ParsedFamily>, String> {
    let mut families: BTreeMap<String, ParsedFamily> = BTreeMap::new();
    let mut current: Option<String> = None;
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_ascii_whitespace();
            let name = parts
                .next()
                .ok_or(format!("line {ln}: TYPE without name"))?;
            let kind = parts
                .next()
                .and_then(Kind::from_str)
                .ok_or(format!("line {ln}: bad TYPE kind"))?;
            if parts.next().is_some() {
                return Err(format!("line {ln}: trailing tokens on TYPE line"));
            }
            if !valid_name(name) {
                return Err(format!("line {ln}: invalid metric name `{name}`"));
            }
            if families.contains_key(name) {
                return Err(format!("line {ln}: duplicate TYPE for `{name}`"));
            }
            families.insert(
                name.to_string(),
                ParsedFamily {
                    kind,
                    samples: Vec::new(),
                },
            );
            current = Some(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {ln}: only `# TYPE` comments are allowed"));
        }
        let fam_name = current
            .clone()
            .ok_or(format!("line {ln}: sample before any TYPE line"))?;
        let sample = parse_sample(line).map_err(|e| format!("line {ln}: {e}"))?;
        let fam = families.get_mut(&fam_name).expect("current family exists");
        let ok_name = match fam.kind {
            Kind::Histogram => {
                sample.name == format!("{fam_name}_bucket")
                    || sample.name == format!("{fam_name}_sum")
                    || sample.name == format!("{fam_name}_count")
            }
            _ => sample.name == fam_name,
        };
        if !ok_name {
            return Err(format!(
                "line {ln}: sample `{}` does not belong to family `{fam_name}`",
                sample.name
            ));
        }
        fam.samples.push(sample);
    }
    for (name, fam) in &families {
        if fam.samples.is_empty() {
            return Err(format!("family `{name}` has no samples"));
        }
        if fam.kind == Kind::Histogram {
            check_histogram(name, fam)?;
        }
    }
    Ok(families)
}

/// Validates one histogram family's bucket series: per label-set, `le`
/// values strictly increase, cumulative counts never decrease, and the
/// series closes with `+Inf`.
fn check_histogram(name: &str, fam: &ParsedFamily) -> Result<(), String> {
    let bucket = format!("{name}_bucket");
    // group buckets by their non-`le` labels
    let mut series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for s in fam.samples.iter().filter(|s| s.name == bucket) {
        let le = s
            .label("le")
            .ok_or(format!("`{bucket}` sample without an `le` label"))?;
        let bound = parse_value(le).map_err(|e| format!("`{bucket}`: {e}"))?;
        let key: Vec<String> = s
            .labels
            .iter()
            .filter(|(k, _)| k != "le")
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        series
            .entry(key.join(","))
            .or_default()
            .push((bound, s.value));
    }
    for (key, buckets) in &series {
        let mut prev_bound = f64::NEG_INFINITY;
        let mut prev_count = -1.0;
        for &(bound, count) in buckets {
            if bound <= prev_bound {
                return Err(format!("`{bucket}{{{key}}}`: le bounds not increasing"));
            }
            if count < prev_count {
                return Err(format!("`{bucket}{{{key}}}`: cumulative counts decrease"));
            }
            prev_bound = bound;
            prev_count = count;
        }
        if prev_bound != f64::INFINITY {
            return Err(format!("`{bucket}{{{key}}}`: missing +Inf bucket"));
        }
    }
    Ok(())
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let name_end = line.find(['{', ' ']).ok_or("missing value")?;
    let name = &line[..name_end];
    if !valid_name(name) {
        return Err(format!("invalid sample name `{name}`"));
    }
    let rest = &line[name_end..];
    let (labels, value_str) = if let Some(body) = rest.strip_prefix('{') {
        let close = body.find('}').ok_or("unterminated label set")?;
        let (label_body, after) = body.split_at(close);
        let value = after[1..].strip_prefix(' ').ok_or("missing value")?;
        (parse_labels(label_body)?, value)
    } else {
        (Vec::new(), rest.strip_prefix(' ').ok_or("missing value")?)
    };
    if value_str.is_empty() || value_str.contains(' ') {
        return Err("malformed value".to_string());
    }
    let value = parse_value(value_str)?;
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without `=`")?;
        let key = &rest[..eq];
        if !valid_name(key) {
            return Err(format!("invalid label name `{key}`"));
        }
        let after = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or("label value must be quoted")?;
        // scan to the closing unescaped quote
        let mut value = String::new();
        let mut chars = after.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    _ => return Err("bad escape in label value".to_string()),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or("unterminated label value")?;
        labels.push((key.to_string(), value));
        rest = &after[end + 1..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
            if rest.is_empty() {
                return Err("trailing comma in label set".to_string());
            }
        } else if !rest.is_empty() {
            return Err("labels must be comma-separated".to_string());
        }
    }
    for w in labels.windows(2) {
        if w[0].0 >= w[1].0 {
            return Err(format!(
                "labels not sorted/unique: `{}` then `{}`",
                w[0].0, w[1].0
            ));
        }
    }
    Ok(labels)
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        s => s.parse::<f64>().map_err(|_| format!("bad value `{s}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_output_parses_back() {
        let mut hist = Histogram::new();
        for v in [0.001, 0.004, 0.004, 0.3] {
            hist.observe(v);
        }
        let mut exp = Exposition::new();
        exp.counter("xsynth_jobs_total", &[("outcome", "ok")], 7);
        exp.counter("xsynth_jobs_total", &[("outcome", "error")], 1);
        exp.gauge("xsynth_uptime_seconds", &[], 42.5);
        exp.gauge("xsynth_bdd_nodes", &[("arity", "8")], 120.0);
        exp.histogram("xsynth_job_seconds", &[], &hist);
        let text = exp.render();
        let fams = parse(&text).expect("round trip");
        assert_eq!(fams["xsynth_jobs_total"].kind, Kind::Counter);
        assert_eq!(fams["xsynth_jobs_total"].samples.len(), 2);
        assert_eq!(fams["xsynth_uptime_seconds"].samples[0].value, 42.5);
        let h = &fams["xsynth_job_seconds"];
        assert_eq!(h.kind, Kind::Histogram);
        let count = h
            .samples
            .iter()
            .find(|s| s.name == "xsynth_job_seconds_count")
            .unwrap();
        assert_eq!(count.value, 4.0);
        let inf = h
            .samples
            .iter()
            .find(|s| s.name == "xsynth_job_seconds_bucket" && s.label("le") == Some("+Inf"))
            .unwrap();
        assert_eq!(inf.value, 4.0);
    }

    #[test]
    fn labels_render_sorted_and_escaped() {
        let mut exp = Exposition::new();
        exp.gauge("m", &[("zeta", "a\"b\\c\nd"), ("alpha", "x")], 1.0);
        let text = exp.render();
        assert!(
            text.contains(r#"m{alpha="x",zeta="a\"b\\c\nd"} 1"#),
            "{text}"
        );
        parse(&text).expect("escaped labels parse back");
    }

    #[test]
    fn parser_rejects_malformed_expositions() {
        for (bad, why) in [
            ("m 1\n", "sample before TYPE"),
            ("# TYPE m gauge\n# TYPE m gauge\nm 1\n", "duplicate TYPE"),
            ("# TYPE m gauge\nn 1\n", "wrong family"),
            ("# TYPE m gauge\nm{b=\"1\",a=\"2\"} 1\n", "unsorted labels"),
            ("# TYPE m gauge\nm{a=\"1\",a=\"2\"} 1\n", "duplicate labels"),
            ("# TYPE m gauge\nm{a=1} 1\n", "unquoted label value"),
            ("# TYPE m gauge\nm xyz\n", "bad value"),
            ("# TYPE m gauge\n", "family without samples"),
            ("# TYPE m histogram\nm_bucket{le=\"1\"} 1\nm_sum 1\nm_count 1\n", "no +Inf"),
            (
                "# TYPE m histogram\nm_bucket{le=\"2\"} 3\nm_bucket{le=\"4\"} 1\nm_bucket{le=\"+Inf\"} 3\nm_sum 1\nm_count 3\n",
                "decreasing cumulative counts",
            ),
            ("# HELP m help text\n# TYPE m gauge\nm 1\n", "HELP not allowed"),
        ] {
            assert!(parse(bad).is_err(), "should reject: {why}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_sparse() {
        let mut hist = Histogram::new();
        hist.observe(1.0);
        hist.observe(1.5);
        hist.observe(1000.0);
        let mut exp = Exposition::new();
        exp.histogram("h", &[("phase", "fprm")], &hist);
        let text = exp.render();
        let fams = parse(&text).expect("valid");
        let buckets: Vec<_> = fams["h"]
            .samples
            .iter()
            .filter(|s| s.name == "h_bucket")
            .collect();
        // two occupied boundaries + the +Inf closer; empty buckets skipped
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].value, 2.0);
        assert_eq!(buckets[1].value, 3.0);
        assert_eq!(buckets[2].label("le"), Some("+Inf"));
        assert_eq!(buckets[2].label("phase"), Some("fprm"));
    }
}
