//! Structured tracing and metrics for the synthesis pipeline.
//!
//! The paper's evaluation is entirely about *where* literals, XOR gates and
//! CPU time go across the FPRM pipeline phases, so every phase needs to be
//! observable and comparable across runs. This crate provides the
//! substrate:
//!
//! * **hierarchical spans** with wall-clock timing (`begin`/`end` or the
//!   closure-scoped [`TraceBuffer::span`]),
//! * **counters** — monotonically accumulated event counts
//!   ([`TraceBuffer::count`]),
//! * **gauges** — point-in-time measurements such as live DD node counts
//!   or memo hit rates ([`TraceBuffer::gauge`]).
//!
//! Recording is contention-free: each worker owns a plain [`TraceBuffer`]
//! (a `Vec` of events, no locks) and submits it to the shared
//! [`TraceSink`] once, when the buffer drops. Buffers carry an explicit
//! ordering key, so the merged [`Trace`] is identical regardless of thread
//! scheduling — the same discipline the parallel synthesis fan-out uses
//! for the networks themselves.
//!
//! Two exporters ship with the crate: a human-readable tree
//! ([`Trace::render_tree`]) and Chrome `trace_event` JSON
//! ([`Trace::to_chrome_json`]) loadable in `chrome://tracing` or Perfetto.
//!
//! # Examples
//!
//! ```
//! use xsynth_trace::TraceSink;
//!
//! let sink = TraceSink::new();
//! {
//!     let mut buf = sink.buffer(0, "main");
//!     buf.span("work", |b| {
//!         b.count("items", 3);
//!         b.gauge("queue.depth", 1.0);
//!     });
//! } // buffer submits on drop
//! let trace = sink.take();
//! assert_eq!(trace.counter_totals()["items"], 3);
//! assert!(trace.span_names().contains("work"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod chrome;
#[cfg(feature = "failpoints")]
pub mod failpoint;
pub mod json;
pub mod mem;
pub mod metrics;

/// Marks a named fault-injection site (see [`failpoint`]).
///
/// With the `failpoints` feature off the macro expands to nothing.
/// Feature resolution happens in the *invoking* crate, so every crate
/// placing failpoints forwards its own `failpoints` feature to
/// `xsynth-trace/failpoints`.
///
/// Two forms:
///
/// - `fail_point!("name")` — a *bare* site: an armed `error` action is
///   reported by `failpoint::hit` but otherwise ignored here (panic and
///   delay actions still apply). Use where there is no error channel.
/// - `fail_point!("name", expr)` — an *error* site: when an armed `error`
///   action trips, the enclosing function returns `expr`.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {
        let _ = $crate::failpoint::hit($name);
    };
    ($name:expr, $on_err:expr) => {
        if $crate::failpoint::hit($name) {
            return $on_err;
        }
    };
}

/// Marks a named fault-injection site (see the `failpoint` module, built
/// under the `failpoints` feature). Compiled out: this build has the
/// feature off, so the macro expands to nothing.
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! fail_point {
    ($name:expr) => {};
    ($name:expr, $on_err:expr) => {};
}

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One recorded trace event, timestamped relative to the sink's epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A span opens.
    Begin {
        /// Span name (phase names are shared constants in the pipeline).
        name: String,
        /// Time since the sink epoch.
        at: Duration,
    },
    /// The innermost open span closes.
    End {
        /// Time since the sink epoch.
        at: Duration,
    },
    /// A counter increments (counters only ever grow).
    Count {
        /// Counter name.
        name: String,
        /// Increment to add to the running total.
        delta: u64,
    },
    /// A gauge sample (point-in-time value; the last sample wins).
    Gauge {
        /// Gauge name.
        name: String,
        /// Sampled value.
        value: f64,
    },
    /// One histogram observation. Samples carry the raw value; bucketing
    /// happens at aggregation time ([`Trace::hist_totals`]) with the fixed
    /// log-scale layout of [`bucket_of`], so merged bucket counts are pure
    /// sums — independent of submission order and thread scheduling, like
    /// counters.
    Hist {
        /// Histogram name.
        name: String,
        /// Observed sample value.
        value: f64,
    },
}

/// Number of fixed log-scale buckets every [`Histogram`] uses.
pub const NUM_BUCKETS: usize = 64;

/// Power-of-two offset: bucket `b` covers `[2^(b-32), 2^(b-31))`.
const BUCKET_BIAS: i64 = 32;

/// The fixed log-scale bucket index for a sample.
///
/// Bucket `b` covers `[2^(b-32), 2^(b-31))`; values at or below zero (and
/// non-finite samples) land in bucket 0, values ≥ `2^31` in bucket 63.
/// The index is derived from the sample's IEEE-754 exponent bits rather
/// than a floating `log2`, so bucketing is exact and bit-for-bit
/// deterministic across platforms.
pub fn bucket_of(value: f64) -> usize {
    if !value.is_finite() || value <= 0.0 {
        return 0;
    }
    // biased exponent → floor(log2(v)) for normal numbers; subnormals
    // decode as -1023 and clamp into bucket 0.
    let exp = ((value.to_bits() >> 52) & 0x7ff) as i64 - 1023;
    (exp + BUCKET_BIAS).clamp(0, NUM_BUCKETS as i64 - 1) as usize
}

/// The exclusive upper bound of a bucket: `2^(b-31)`. The last bucket is
/// open-ended; its nominal bound is returned for labelling.
pub fn bucket_upper_bound(bucket: usize) -> f64 {
    let b = bucket.min(NUM_BUCKETS - 1) as i32;
    2f64.powi(b - (BUCKET_BIAS as i32) + 1)
}

/// A fixed-bucket log-scale histogram: 64 power-of-two buckets spanning
/// `2^-32 .. 2^31` (seconds, node counts and cube counts all fit), plus a
/// running sample count and sum. Merging is a per-bucket sum, so merged
/// totals are independent of observation interleaving.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0.0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn observe(&mut self, value: f64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        if value.is_finite() && value > 0.0 {
            self.sum += value;
        }
    }

    /// Adds every bucket of `other` into `self` (bucket-wise sum).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all (finite, positive) sample values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw per-bucket counts (see [`bucket_upper_bound`] for bounds).
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }

    /// The value below which a fraction `q` of samples fall, resolved to
    /// the upper bound of the bucket containing that rank (the
    /// conventional Prometheus-style histogram estimate). `q` is clamped
    /// to `[0, 1]`; an empty histogram reports 0.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(b);
            }
        }
        bucket_upper_bound(NUM_BUCKETS - 1)
    }
}

/// One buffer's worth of events after submission: an ordered event list
/// plus the merge metadata.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Track {
    /// Deterministic merge key: tracks are sorted by `(key, label)` in the
    /// final [`Trace`], independent of submission (i.e. scheduling) order.
    pub key: u64,
    /// Human-readable label (becomes the thread name in Chrome exports).
    pub label: String,
    /// Optional span name on an earlier track under which this track's
    /// spans nest in the rendered tree (e.g. per-output planning tracks
    /// nest under the `fprm` phase).
    pub parent: Option<String>,
    /// The recorded events, in recording order.
    pub events: Vec<Event>,
}

/// A merged, immutable trace: all submitted tracks in deterministic order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// Tracks sorted by `(key, label)`.
    pub tracks: Vec<Track>,
}

/// One node of the reconstructed span tree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Start time relative to the trace epoch.
    pub start: Duration,
    /// Wall-clock duration of the span.
    pub duration: Duration,
    /// Counters recorded directly inside this span (not descendants).
    pub counts: BTreeMap<String, u64>,
    /// Gauges recorded directly inside this span (last sample wins).
    pub gauges: BTreeMap<String, f64>,
    /// Child spans, in recording order.
    pub children: Vec<SpanNode>,
}

#[derive(Debug)]
struct Shared {
    epoch: Instant,
    tracks: Mutex<Vec<Track>>,
}

/// A thread-safe collector of [`Track`]s.
///
/// The sink itself is a cheap-to-clone handle (`Arc` inside); workers
/// never contend on it while recording — they write into private
/// [`TraceBuffer`]s and take the sink lock exactly once, at submission.
#[derive(Debug, Clone)]
pub struct TraceSink {
    shared: Arc<Shared>,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

impl TraceSink {
    /// Creates an empty sink whose epoch is *now*.
    pub fn new() -> Self {
        TraceSink {
            shared: Arc::new(Shared {
                epoch: Instant::now(),
                tracks: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Time elapsed since the sink's epoch.
    pub fn elapsed(&self) -> Duration {
        self.shared.epoch.elapsed()
    }

    /// Opens a recording buffer that will merge at position `key`.
    ///
    /// Keys should be unique per buffer (ties are broken by label); the
    /// pipeline uses key 0 for the main thread and `1 + output_index` for
    /// the per-output planning buffers, which makes the merged trace
    /// independent of which worker planned which output.
    pub fn buffer(&self, key: u64, label: impl Into<String>) -> TraceBuffer {
        TraceBuffer {
            sink: self.clone(),
            track: Track {
                key,
                label: label.into(),
                parent: None,
                events: Vec::new(),
            },
            depth: 0,
        }
    }

    /// Like [`TraceSink::buffer`], with the track's rendered spans nested
    /// under the named span of an earlier track.
    pub fn buffer_under(
        &self,
        key: u64,
        label: impl Into<String>,
        parent: impl Into<String>,
    ) -> TraceBuffer {
        let mut b = self.buffer(key, label);
        b.track.parent = Some(parent.into());
        b
    }

    /// Appends every track of an already-merged trace, shifted `offset`
    /// into this sink's timeline and with labels prefixed `prefix/`. Used
    /// to aggregate several pipeline runs (benchmark sweeps, CLI batches)
    /// into one exportable trace; keys are offset so separate appends
    /// never interleave.
    pub fn append(&self, trace: Trace, prefix: &str, offset: Duration) {
        let mut tracks = self.shared.tracks.lock().expect("trace sink poisoned");
        let base = tracks.iter().map(|t| t.key >> 32).max().unwrap_or(0) + 1;
        for mut t in trace.tracks {
            t.key = (base << 32) | (t.key & 0xffff_ffff);
            if !prefix.is_empty() {
                t.label = format!("{prefix}/{}", t.label);
            }
            for e in &mut t.events {
                match e {
                    Event::Begin { at, .. } | Event::End { at } => *at += offset,
                    _ => {}
                }
            }
            tracks.push(t);
        }
    }

    fn submit(&self, track: Track) {
        if track.events.is_empty() {
            return;
        }
        self.shared
            .tracks
            .lock()
            .expect("trace sink poisoned")
            .push(track);
    }

    /// A deterministic snapshot of everything submitted so far.
    pub fn snapshot(&self) -> Trace {
        let tracks = self.shared.tracks.lock().expect("trace sink poisoned");
        Trace::from_tracks(tracks.clone())
    }

    /// Drains the sink, returning the merged trace.
    pub fn take(&self) -> Trace {
        let mut tracks = self.shared.tracks.lock().expect("trace sink poisoned");
        Trace::from_tracks(std::mem::take(&mut *tracks))
    }
}

/// A private, lock-free event recorder for one worker (or one unit of
/// deterministic work, like one output's planning). Submits its track to
/// the sink when dropped; open spans are closed first.
#[derive(Debug)]
pub struct TraceBuffer {
    sink: TraceSink,
    track: Track,
    depth: usize,
}

impl TraceBuffer {
    /// Opens a span. Spans nest: every `begin` must be matched by an
    /// [`TraceBuffer::end`] (drop closes any that remain open).
    pub fn begin(&mut self, name: impl Into<String>) {
        let at = self.sink.elapsed();
        self.track.events.push(Event::Begin {
            name: name.into(),
            at,
        });
        self.depth += 1;
    }

    /// Closes the innermost open span. A stray `end` with no open span is
    /// ignored rather than corrupting the stream.
    pub fn end(&mut self) {
        if self.depth == 0 {
            return;
        }
        let at = self.sink.elapsed();
        self.track.events.push(Event::End { at });
        self.depth -= 1;
    }

    /// Runs `f` inside a span named `name`.
    pub fn span<R>(&mut self, name: &str, f: impl FnOnce(&mut TraceBuffer) -> R) -> R {
        self.begin(name);
        let r = f(self);
        self.end();
        r
    }

    /// Adds `delta` to the named monotonic counter. Zero deltas are
    /// dropped so counter *sets* stay comparable across runs that take
    /// the same path.
    pub fn count(&mut self, name: &str, delta: u64) {
        if delta == 0 {
            return;
        }
        self.track.events.push(Event::Count {
            name: name.to_string(),
            delta,
        });
    }

    /// Records a gauge sample.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.track.events.push(Event::Gauge {
            name: name.to_string(),
            value,
        });
    }

    /// Records one observation into the named histogram. Observations are
    /// bucketed at aggregation time with the fixed log-scale layout of
    /// [`bucket_of`]; like counters, merged bucket totals are independent
    /// of scheduling, so only schedule-independent values (cube counts,
    /// support sizes — not wall-clock durations) belong in a trace that is
    /// checked by the parallel≡sequential determinism suite.
    pub fn observe(&mut self, name: &str, value: f64) {
        self.track.events.push(Event::Hist {
            name: name.to_string(),
            value,
        });
    }

    /// The sink this buffer submits to.
    pub fn sink(&self) -> &TraceSink {
        &self.sink
    }

    /// Discards the buffer without submitting anything.
    pub fn discard(mut self) {
        self.track.events.clear();
    }
}

impl Drop for TraceBuffer {
    fn drop(&mut self) {
        while self.depth > 0 {
            self.end();
        }
        self.sink.submit(std::mem::take(&mut self.track));
    }
}

impl Trace {
    fn from_tracks(mut tracks: Vec<Track>) -> Trace {
        tracks.sort_by(|a, b| (a.key, &a.label).cmp(&(b.key, &b.label)));
        Trace { tracks }
    }

    /// Total of every counter, summed across all tracks. Because counters
    /// are commutative sums over deterministic per-track streams, the
    /// totals are independent of submission order and of how work was
    /// scheduled across threads.
    pub fn counter_totals(&self) -> BTreeMap<String, u64> {
        let mut totals = BTreeMap::new();
        for t in &self.tracks {
            for e in &t.events {
                if let Event::Count { name, delta } = e {
                    *totals.entry(name.clone()).or_insert(0) += delta;
                }
            }
        }
        totals
    }

    /// Last recorded value of every gauge, in track order.
    pub fn gauge_finals(&self) -> BTreeMap<String, f64> {
        let mut finals = BTreeMap::new();
        for t in &self.tracks {
            for e in &t.events {
                if let Event::Gauge { name, value } = e {
                    finals.insert(name.clone(), *value);
                }
            }
        }
        finals
    }

    /// Maximum recorded sample of every gauge across all tracks — the peak
    /// of the measurement rather than its last value. Budget enforcement
    /// asserts against this (e.g. `bdd.peak_nodes` under a node cap).
    pub fn gauge_maxima(&self) -> BTreeMap<String, f64> {
        let mut maxima: BTreeMap<String, f64> = BTreeMap::new();
        for t in &self.tracks {
            for e in &t.events {
                if let Event::Gauge { name, value } = e {
                    maxima
                        .entry(name.clone())
                        .and_modify(|m| *m = m.max(*value))
                        .or_insert(*value);
                }
            }
        }
        maxima
    }

    /// Maximum recorded sample of one gauge, if it was ever sampled.
    pub fn gauge_max(&self, name: &str) -> Option<f64> {
        let mut max: Option<f64> = None;
        for t in &self.tracks {
            for e in &t.events {
                if let Event::Gauge { name: n, value } = e {
                    if n == name {
                        max = Some(max.map_or(*value, |m: f64| m.max(*value)));
                    }
                }
            }
        }
        max
    }

    /// Merged histogram per name: every [`Event::Hist`] observation on
    /// every track, bucketed with the fixed log-scale layout and summed
    /// per bucket. Tracks are already in deterministic `(key, label)`
    /// order and bucket counts are commutative sums, so the totals are
    /// schedule-independent.
    pub fn hist_totals(&self) -> BTreeMap<String, Histogram> {
        let mut totals: BTreeMap<String, Histogram> = BTreeMap::new();
        for t in &self.tracks {
            for e in &t.events {
                if let Event::Hist { name, value } = e {
                    totals.entry(name.clone()).or_default().observe(*value);
                }
            }
        }
        totals
    }

    /// Prefixes every track label with `prefix/`, in place. The serve
    /// daemon stamps each job's request ID onto its spans this way, so a
    /// trace exported from a multi-tenant run stays attributable
    /// end-to-end.
    pub fn prefix_labels(&mut self, prefix: &str) {
        if prefix.is_empty() {
            return;
        }
        for t in &mut self.tracks {
            t.label = format!("{prefix}/{}", t.label);
        }
    }

    /// The set of span names appearing anywhere in the trace.
    pub fn span_names(&self) -> BTreeSet<String> {
        let mut names = BTreeSet::new();
        for t in &self.tracks {
            for e in &t.events {
                if let Event::Begin { name, .. } = e {
                    names.insert(name.clone());
                }
            }
        }
        names
    }

    /// Total duration per span name, summed over every span instance on
    /// every track (nested instances each contribute).
    pub fn duration_by_name(&self) -> BTreeMap<String, Duration> {
        let mut out: BTreeMap<String, Duration> = BTreeMap::new();
        fn walk(nodes: &[SpanNode], out: &mut BTreeMap<String, Duration>) {
            for n in nodes {
                *out.entry(n.name.clone()).or_default() += n.duration;
                walk(&n.children, out);
            }
        }
        walk(&self.forest(), &mut out);
        out
    }

    /// Reconstructs the span forest: each track's `Begin`/`End` stream
    /// becomes a tree, and tracks with a `parent` label are grafted under
    /// the first span of that name on an earlier track (or kept at top
    /// level when no such span exists).
    pub fn forest(&self) -> Vec<SpanNode> {
        let mut roots: Vec<SpanNode> = Vec::new();
        for t in &self.tracks {
            let track_roots = build_track(t);
            match &t.parent {
                Some(p) => match find_first_mut(&mut roots, p) {
                    Some(host) => host.children.extend(track_roots),
                    None => roots.extend(track_roots),
                },
                None => roots.extend(track_roots),
            }
        }
        roots
    }

    /// Renders the span forest as an indented, human-readable tree with
    /// per-span durations, inline counters/gauges, and a counter-total
    /// footer.
    pub fn render_tree(&self) -> String {
        let mut s = String::new();
        fn emit(s: &mut String, n: &SpanNode, depth: usize) {
            let ms = n.duration.as_secs_f64() * 1e3;
            s.push_str(&format!(
                "{:indent$}{} {ms:.2}ms",
                "",
                n.name,
                indent = depth * 2
            ));
            for (k, v) in &n.counts {
                s.push_str(&format!(" {k}={v}"));
            }
            for (k, v) in &n.gauges {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    s.push_str(&format!(" {k}={v:.0}"));
                } else {
                    s.push_str(&format!(" {k}={v:.3}"));
                }
            }
            s.push('\n');
            for c in &n.children {
                emit(s, c, depth + 1);
            }
        }
        for root in self.forest() {
            emit(&mut s, &root, 0);
        }
        let totals = self.counter_totals();
        if !totals.is_empty() {
            s.push_str("counters:\n");
            for (k, v) in &totals {
                s.push_str(&format!("  {k} = {v}\n"));
            }
        }
        s
    }

    /// Exports the trace as Chrome `trace_event` JSON (the "JSON Array
    /// with metadata" flavour), loadable in `chrome://tracing` and
    /// [Perfetto](https://ui.perfetto.dev). No serde: the writer is
    /// self-contained and escapes strings itself.
    pub fn to_chrome_json(&self) -> String {
        chrome::to_chrome_json(self)
    }
}

/// Parses one track's event stream into its root spans.
fn build_track(t: &Track) -> Vec<SpanNode> {
    let mut roots: Vec<SpanNode> = Vec::new();
    let mut stack: Vec<SpanNode> = Vec::new();
    let mut last_at = Duration::ZERO;
    for e in &t.events {
        match e {
            Event::Begin { name, at } => {
                last_at = *at;
                stack.push(SpanNode {
                    name: name.clone(),
                    start: *at,
                    ..SpanNode::default()
                });
            }
            Event::End { at } => {
                last_at = *at;
                if let Some(mut n) = stack.pop() {
                    n.duration = at.saturating_sub(n.start);
                    match stack.last_mut() {
                        Some(p) => p.children.push(n),
                        None => roots.push(n),
                    }
                }
            }
            Event::Count { name, delta } => {
                if let Some(top) = stack.last_mut() {
                    *top.counts.entry(name.clone()).or_insert(0) += delta;
                } else if let Some(last) = roots.last_mut() {
                    *last.counts.entry(name.clone()).or_insert(0) += delta;
                }
            }
            Event::Gauge { name, value } => {
                if let Some(top) = stack.last_mut() {
                    top.gauges.insert(name.clone(), *value);
                } else if let Some(last) = roots.last_mut() {
                    last.gauges.insert(name.clone(), *value);
                }
            }
            // histogram observations are aggregate-level data; they are
            // surfaced via `hist_totals`, not the span tree
            Event::Hist { .. } => {}
        }
    }
    // close anything the recorder left open at the last seen timestamp
    while let Some(mut n) = stack.pop() {
        n.duration = last_at.saturating_sub(n.start);
        match stack.last_mut() {
            Some(p) => p.children.push(n),
            None => roots.push(n),
        }
    }
    roots
}

/// Depth-first search for the first span named `name`.
fn find_first_mut<'a>(nodes: &'a mut [SpanNode], name: &str) -> Option<&'a mut SpanNode> {
    for n in nodes {
        if n.name == name {
            return Some(n);
        }
        if let Some(hit) = find_first_mut(&mut n.children, name) {
            return Some(hit);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_maxima_track_peaks_not_finals() {
        let sink = TraceSink::new();
        {
            let mut b = sink.buffer(0, "main");
            b.gauge("nodes", 10.0);
            b.gauge("nodes", 70.0);
            b.gauge("nodes", 40.0);
        }
        {
            let mut b = sink.buffer(1, "worker");
            b.gauge("nodes", 55.0);
        }
        let t = sink.take();
        assert_eq!(t.gauge_finals()["nodes"], 55.0);
        assert_eq!(t.gauge_maxima()["nodes"], 70.0);
        assert_eq!(t.gauge_max("nodes"), Some(70.0));
        assert_eq!(t.gauge_max("missing"), None);
    }

    #[test]
    fn spans_nest_and_time() {
        let sink = TraceSink::new();
        {
            let mut b = sink.buffer(0, "main");
            b.span("outer", |b| {
                b.span("inner", |b| b.count("steps", 2));
                b.count("steps", 1);
            });
        }
        let t = sink.take();
        let forest = t.forest();
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].name, "outer");
        assert_eq!(forest[0].children[0].name, "inner");
        assert_eq!(forest[0].counts["steps"], 1);
        assert_eq!(forest[0].children[0].counts["steps"], 2);
        assert_eq!(t.counter_totals()["steps"], 3);
        assert!(forest[0].duration >= forest[0].children[0].duration);
    }

    #[test]
    fn merge_order_follows_keys_not_submission() {
        let sink = TraceSink::new();
        let mut b2 = sink.buffer(2, "late");
        b2.count("x", 1);
        let mut b1 = sink.buffer(1, "early");
        b1.count("x", 1);
        drop(b2); // submitted first
        drop(b1);
        let t = sink.take();
        assert_eq!(t.tracks[0].label, "early");
        assert_eq!(t.tracks[1].label, "late");
    }

    #[test]
    fn parallel_buffers_merge_deterministically() {
        let collect = |shuffle: bool| {
            let sink = TraceSink::new();
            std::thread::scope(|s| {
                let order: Vec<u64> = if shuffle {
                    vec![3, 1, 2]
                } else {
                    vec![1, 2, 3]
                };
                for k in order {
                    let sink = sink.clone();
                    s.spawn(move || {
                        let mut b = sink.buffer(k, format!("worker{k}"));
                        b.span("work", |b| b.count("units", k));
                    });
                }
            });
            let t = sink.take();
            (
                t.tracks.iter().map(|t| t.label.clone()).collect::<Vec<_>>(),
                t.counter_totals(),
            )
        };
        assert_eq!(collect(false), collect(true));
    }

    #[test]
    fn parented_tracks_graft_under_named_span() {
        let sink = TraceSink::new();
        {
            let mut main = sink.buffer(0, "main");
            main.begin("phase");
            {
                let mut child = sink.buffer_under(1, "plan:0", "phase");
                child.span("plan", |b| b.gauge("cubes", 7.0));
            }
            main.end();
        }
        let t = sink.take();
        let forest = t.forest();
        assert_eq!(forest[0].name, "phase");
        assert_eq!(forest[0].children[0].name, "plan");
        assert_eq!(forest[0].children[0].gauges["cubes"], 7.0);
    }

    #[test]
    fn unbalanced_spans_close_on_drop() {
        let sink = TraceSink::new();
        {
            let mut b = sink.buffer(0, "main");
            b.begin("open");
            b.begin("deeper");
            b.count("c", 1);
            // no end() calls
        }
        let t = sink.take();
        let forest = t.forest();
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].children.len(), 1);
        // a stray end is harmless
        let sink2 = TraceSink::new();
        let mut b = sink2.buffer(0, "m");
        b.end();
        b.count("x", 1);
        drop(b);
        assert_eq!(sink2.take().counter_totals()["x"], 1);
    }

    #[test]
    fn append_shifts_and_prefixes() {
        let inner = TraceSink::new();
        {
            let mut b = inner.buffer(0, "main");
            b.span("run", |b| b.count("n", 1));
        }
        let outer = TraceSink::new();
        outer.append(inner.take(), "z4ml", Duration::from_millis(5));
        outer.append(
            {
                let s = TraceSink::new();
                s.buffer(0, "main").span("run", |b| b.count("n", 2));
                s.take()
            },
            "t481",
            Duration::from_millis(9),
        );
        let t = outer.snapshot();
        assert_eq!(t.tracks.len(), 2);
        assert_eq!(t.tracks[0].label, "z4ml/main");
        assert_eq!(t.tracks[1].label, "t481/main");
        assert_eq!(t.counter_totals()["n"], 3);
        let forest = t.forest();
        assert!(forest[0].start >= Duration::from_millis(5));
    }

    #[test]
    fn render_tree_shows_spans_and_counters() {
        let sink = TraceSink::new();
        sink.buffer(0, "main").span("synthesize", |b| {
            b.span("fprm", |b| b.count("polarity.evaluated", 12));
        });
        let text = sink.take().render_tree();
        assert!(text.contains("synthesize"), "{text}");
        assert!(text.contains("  fprm"), "{text}");
        assert!(text.contains("polarity.evaluated=12"), "{text}");
        assert!(text.contains("counters:"), "{text}");
    }

    #[test]
    fn empty_buffers_are_not_submitted() {
        let sink = TraceSink::new();
        drop(sink.buffer(0, "empty"));
        assert!(sink.take().tracks.is_empty());
    }

    #[test]
    fn buckets_follow_the_powers_of_two() {
        assert_eq!(bucket_of(0.0), 0);
        assert_eq!(bucket_of(-3.0), 0);
        assert_eq!(bucket_of(f64::NAN), 0);
        assert_eq!(bucket_of(f64::INFINITY), 0);
        assert_eq!(bucket_of(1.0), 32);
        assert_eq!(bucket_of(1.5), 32);
        assert_eq!(bucket_of(2.0), 33);
        assert_eq!(bucket_of(0.5), 31);
        // exact powers of two open a new bucket; just-below stays behind
        assert_eq!(bucket_of(8.0), 35);
        assert_eq!(bucket_of(7.999_999), 34);
        // extremes clamp into the end buckets
        assert_eq!(bucket_of(1e-300), 0);
        assert_eq!(bucket_of(1e300), NUM_BUCKETS - 1);
        // the bound of bucket b is the lower edge of bucket b+1
        assert_eq!(bucket_upper_bound(32), 2.0);
        assert_eq!(bucket_of(bucket_upper_bound(32)), 33);
    }

    #[test]
    fn histogram_quantiles_resolve_to_bucket_bounds() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        for _ in 0..90 {
            h.observe(1.0); // bucket 32, bound 2.0
        }
        for _ in 0..10 {
            h.observe(100.0); // bucket 38, bound 128.0
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.5), 2.0);
        assert_eq!(h.quantile(0.9), 2.0);
        assert_eq!(h.quantile(0.99), 128.0);
        assert_eq!(h.quantile(1.0), 128.0);
        assert!((h.sum() - 1090.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge_is_a_bucketwise_sum() {
        let mut a = Histogram::new();
        a.observe(1.0);
        a.observe(3.0);
        let mut b = Histogram::new();
        b.observe(3.5);
        b.observe(0.25);
        let mut merged = a.clone();
        merged.merge(&b);
        let mut flat = Histogram::new();
        for v in [1.0, 3.0, 3.5, 0.25] {
            flat.observe(v);
        }
        assert_eq!(merged, flat);
    }

    #[test]
    fn hist_totals_merge_across_tracks() {
        let sink = TraceSink::new();
        {
            let mut b = sink.buffer(1, "w1");
            b.observe("cubes", 4.0);
            b.observe("cubes", 9.0);
        }
        {
            let mut b = sink.buffer(2, "w2");
            b.observe("cubes", 5.0);
            b.observe("support", 3.0);
        }
        let t = sink.take();
        let totals = t.hist_totals();
        assert_eq!(totals["cubes"].count(), 3);
        assert_eq!(totals["support"].count(), 1);
        let expected: u64 = totals["cubes"].buckets().iter().sum();
        assert_eq!(expected, 3);
    }

    #[test]
    fn prefix_labels_stamps_every_track() {
        let sink = TraceSink::new();
        sink.buffer(0, "main").count("x", 1);
        sink.buffer(1, "plan:0").count("x", 1);
        let mut t = sink.take();
        t.prefix_labels("job-7");
        let labels: Vec<_> = t.tracks.iter().map(|t| t.label.as_str()).collect();
        assert_eq!(labels, ["job-7/main", "job-7/plan:0"]);
        t.prefix_labels("");
        assert_eq!(t.tracks[0].label, "job-7/main");
    }

    #[test]
    fn zero_count_deltas_are_dropped() {
        let sink = TraceSink::new();
        let mut b = sink.buffer(0, "m");
        b.count("never", 0);
        b.count("once", 1);
        drop(b);
        let totals = sink.take().counter_totals();
        assert!(!totals.contains_key("never"));
        assert_eq!(totals["once"], 1);
    }
}
