//! A minimal, dependency-free strict JSON parser and validity checker.
//!
//! The CI smoke job and the trace tests need to assert that the Chrome
//! `trace_event` export *parses*, and the benchmark telemetry layer needs
//! to *read* its own `BENCH_*.json` suites back — all without pulling
//! serde into the build (the container has no crates.io access). This is
//! a strict RFC 8259 recursive-descent parser: it accepts exactly
//! well-formed JSON documents, reports the byte offset of the first
//! violation, and (via [`parse`]) builds a [`Value`] tree with decoded
//! strings. Objects keep their key order and duplicate keys are rejected,
//! which the strict schema readers rely on.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order (duplicate keys are a parse error).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object's fields, or `None` for non-objects.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array's elements, or `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, or `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, or `None` for non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as an exact unsigned integer (rejects fractions,
    /// negatives, and values beyond 2^53), or `None`.
    pub fn as_u64(&self) -> Option<u64> {
        let v = self.as_f64()?;
        if v >= 0.0 && v.fract() == 0.0 && v <= 9_007_199_254_740_992.0 {
            Some(v as u64)
        } else {
            None
        }
    }

    /// The boolean, or `None` for non-booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Looks up an object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// A short name for the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.kind())
    }
}

/// Parses one well-formed JSON document into a [`Value`].
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error (or
/// the offending duplicate object key).
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

/// Validates that `src` is one well-formed JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn validate(src: &str) -> Result<(), String> {
    parse(src).map(|_| ())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            ))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.literal("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.literal("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a JSON value at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut fields: Vec<(String, Value)> = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let at = self.pos;
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate object key {key:?} at byte {at}"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(fields)),
                _ => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos.saturating_sub(1)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos.saturating_sub(1)
                    ))
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let mut u: u16 = 0;
        for _ in 0..4 {
            match self.bump() {
                Some(c) if c.is_ascii_hexdigit() => {
                    u = u << 4 | (c as char).to_digit(16).expect("hex digit") as u16;
                }
                _ => {
                    return Err(format!(
                        "bad \\u escape at byte {}",
                        self.pos.saturating_sub(1)
                    ))
                }
            }
        }
        Ok(u)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        // combine surrogate pairs; an unpaired surrogate is
                        // syntactically legal JSON and decodes to U+FFFD
                        if (0xd800..0xdc00).contains(&hi)
                            && self.bytes[self.pos..].starts_with(b"\\u")
                        {
                            let mark = self.pos;
                            self.pos += 2;
                            let lo = self.hex4()?;
                            if (0xdc00..0xe000).contains(&lo) {
                                let c =
                                    0x10000 + ((hi as u32 - 0xd800) << 10) + (lo as u32 - 0xdc00);
                                out.push(char::from_u32(c).unwrap_or('\u{fffd}'));
                            } else {
                                out.push('\u{fffd}');
                                out.push(char::from_u32(lo as u32).unwrap_or('\u{fffd}'));
                            }
                            let _ = mark;
                        } else {
                            out.push(char::from_u32(hi as u32).unwrap_or('\u{fffd}'));
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", self.pos.saturating_sub(1))),
                },
                Some(c) if c < 0x20 => {
                    return Err(format!(
                        "raw control character at byte {}",
                        self.pos.saturating_sub(1)
                    ))
                }
                Some(c) => {
                    // re-assemble the UTF-8 sequence starting at c
                    let start = self.pos - 1;
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    self.pos = (start + len).min(self.bytes.len());
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(format!("invalid UTF-8 at byte {start}")),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(format!("bad number at byte {}", self.pos)),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(format!("bad fraction at byte {}", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(format!("bad exponent at byte {}", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

/// Escapes a string for embedding in a JSON string literal (shared by the
/// Chrome-trace and benchmark-telemetry writers).
pub fn escape(s: &str) -> String {
    crate::chrome::escape(s)
}

/// Formats an `f64` as a valid JSON number. JSON has no NaN/Infinity, so
/// non-finite values are written as `0`; finite values use Rust's shortest
/// round-trippable decimal form, so write → parse is exact.
pub fn number(v: f64) -> String {
    if v.is_finite() {
        if v.fract() == 0.0 && v.abs() < 1e15 {
            format!("{v:.0}")
        } else {
            format!("{v}")
        }
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::{parse, validate, Value};

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e3",
            r#""a\nbé""#,
            r#"{"a":[1,2,{"b":null}],"c":"x"}"#,
            "  [ 1 , 2 ]  ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.e3",
            "\"unterminated",
            "\"bad\\q\"",
            "nulll",
            "[1] [2]",
            "{'a':1}",
            "{\"a\":1,\"a\":2}",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn parse_builds_the_value_tree() {
        let v = parse(r#"{"a":[1,-2.5,true],"b":"x\ny","c":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(-2.5)
        );
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_bool(),
            Some(true)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("c"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn strings_decode_escapes_and_surrogates() {
        assert_eq!(parse(r#""é\t\"\\""#).unwrap(), Value::Str("é\t\"\\".into()));
        // surrogate pair for 💡 (U+1F4A1)
        assert_eq!(parse(r#""💡""#).unwrap(), Value::Str("💡".into()));
        // lone surrogate decodes to the replacement character
        assert_eq!(
            parse(r#""\ud83dx""#).unwrap(),
            Value::Str("\u{fffd}x".into())
        );
        // raw multi-byte UTF-8 passes through
        assert_eq!(parse("\"héllo💡\"").unwrap(), Value::Str("héllo💡".into()));
    }

    #[test]
    fn as_u64_is_exact() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("42.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1e30").unwrap().as_u64(), None);
    }

    #[test]
    fn number_formatting_round_trips() {
        for v in [0.0, 1.5, -2.25, 1e-9, 12345678.901, 3.0, 1e300] {
            let s = super::number(v);
            assert_eq!(parse(&s).unwrap().as_f64(), Some(v), "{s}");
        }
        assert_eq!(super::number(f64::NAN), "0");
        assert_eq!(super::number(f64::INFINITY), "0");
    }
}
