//! A minimal, dependency-free JSON validity checker.
//!
//! The CI smoke job and the trace tests need to assert that the Chrome
//! `trace_event` export *parses* without pulling serde into the build
//! (the container has no crates.io access). This is a strict RFC 8259
//! recursive-descent recognizer: it accepts exactly well-formed JSON
//! documents and reports the byte offset of the first violation.

/// Validates that `src` is one well-formed JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn validate(src: &str) -> Result<(), String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            ))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a JSON value at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos.saturating_sub(1)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos.saturating_sub(1)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(()),
                Some(b'\\') => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(c) if c.is_ascii_hexdigit() => {}
                                _ => {
                                    return Err(format!(
                                        "bad \\u escape at byte {}",
                                        self.pos.saturating_sub(1)
                                    ))
                                }
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", self.pos.saturating_sub(1))),
                },
                Some(c) if c < 0x20 => {
                    return Err(format!(
                        "raw control character at byte {}",
                        self.pos.saturating_sub(1)
                    ))
                }
                Some(_) => {}
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(format!("bad number at byte {}", self.pos)),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(format!("bad fraction at byte {}", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(format!("bad exponent at byte {}", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e3",
            r#""a\nbé""#,
            r#"{"a":[1,2,{"b":null}],"c":"x"}"#,
            "  [ 1 , 2 ]  ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.e3",
            "\"unterminated",
            "\"bad\\q\"",
            "nulll",
            "[1] [2]",
            "{'a':1}",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
