//! Deterministic fault injection: named failpoints compiled in only under
//! the `failpoints` cargo feature and armed at runtime via a [`FailPlan`].
//!
//! A failpoint is a named site in the pipeline (`bdd.alloc`,
//! `core.factor`, …) marked with the [`fail_point!`](crate::fail_point)
//! macro. With the feature off the macro expands to nothing — zero
//! overhead, zero behavior change. With the feature on, every execution
//! of the site *registers* its name (so a chaos harness can enumerate
//! every reachable site) and consults the armed plan:
//!
//! - not armed → no effect;
//! - armed with [`Action::Error`] → the macro's error arm runs (the site
//!   returns its typed error), or `hit` returns `true` for bare sites;
//! - armed with [`Action::Panic`] → the site panics with a recognizable
//!   `"failpoint <name> tripped"` message;
//! - armed with [`Action::Delay`] → the site sleeps, then continues.
//!
//! Trips are deterministic: a plan entry fires on the Nth *hit* of the
//! site (1-based) and keeps firing for a configurable number of
//! consecutive hits (default: every hit from the Nth on). Hit counts are
//! process-global, so deterministic trip ordering requires a
//! single-threaded pipeline (`SynthOptions.parallel = false` in the chaos
//! suites).
//!
//! The environment syntax accepted by [`FailPlan::parse`] /
//! [`arm_from_env`] (variable `XSYNTH_FAILPOINTS`):
//!
//! ```text
//! point=action[@nth[xcount]] [; point=action[@nth[xcount]] ...]
//!
//! bdd.alloc=error            trip every hit, starting at the first
//! core.factor=panic@3        panic on the 3rd hit and every later one
//! sim.block=delay(5)@2x4     sleep 5ms on hits 2,3,4,5 only
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;
use std::time::Duration;

/// What an armed failpoint does when it trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// The site takes its typed-error arm (bare sites report `true`).
    Error,
    /// The site panics with `"failpoint <name> tripped"`.
    Panic,
    /// The site sleeps for the duration, then proceeds normally.
    Delay(Duration),
}

/// One armed entry: the action plus the deterministic trip window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    action: Action,
    /// First hit (1-based) that trips.
    nth: u64,
    /// How many consecutive hits trip from `nth` on (`u64::MAX` = all).
    count: u64,
}

/// A set of failpoints to arm, built with [`FailPlan::point`] or parsed
/// from the `XSYNTH_FAILPOINTS` environment syntax.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailPlan {
    entries: BTreeMap<String, Entry>,
}

impl FailPlan {
    /// An empty plan (arming it disarms everything).
    pub fn new() -> FailPlan {
        FailPlan::default()
    }

    /// Adds a failpoint tripping on every hit from the `nth` (1-based) on.
    #[must_use]
    pub fn point(self, name: &str, action: Action, nth: u64) -> FailPlan {
        self.point_for(name, action, nth, u64::MAX)
    }

    /// Adds a failpoint tripping on `count` consecutive hits starting at
    /// the `nth` (1-based).
    #[must_use]
    pub fn point_for(mut self, name: &str, action: Action, nth: u64, count: u64) -> FailPlan {
        self.entries.insert(
            name.to_string(),
            Entry {
                action,
                nth: nth.max(1),
                count,
            },
        );
        self
    }

    /// Parses the environment syntax (see the module docs).
    ///
    /// # Errors
    ///
    /// Reports the offending clause on malformed input.
    pub fn parse(spec: &str) -> Result<FailPlan, String> {
        let mut plan = FailPlan::new();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (name, rest) = clause
                .split_once('=')
                .ok_or_else(|| format!("failpoint clause {clause:?}: missing '='"))?;
            let name = name.trim();
            if name.is_empty() {
                return Err(format!("failpoint clause {clause:?}: empty point name"));
            }
            let (action_s, window) = match rest.split_once('@') {
                Some((a, w)) => (a.trim(), Some(w.trim())),
                None => (rest.trim(), None),
            };
            let action = if action_s == "error" {
                Action::Error
            } else if action_s == "panic" {
                Action::Panic
            } else if let Some(ms) = action_s
                .strip_prefix("delay(")
                .and_then(|s| s.strip_suffix(')'))
            {
                let ms: u64 = ms
                    .trim()
                    .parse()
                    .map_err(|_| format!("failpoint clause {clause:?}: bad delay millis"))?;
                Action::Delay(Duration::from_millis(ms))
            } else {
                return Err(format!(
                    "failpoint clause {clause:?}: unknown action {action_s:?} \
                     (want error, panic, or delay(ms))"
                ));
            };
            let (nth, count) = match window {
                None => (1, u64::MAX),
                Some(w) => match w.split_once('x') {
                    None => (
                        w.parse()
                            .map_err(|_| format!("failpoint clause {clause:?}: bad hit index"))?,
                        u64::MAX,
                    ),
                    Some((n, c)) => (
                        n.trim()
                            .parse()
                            .map_err(|_| format!("failpoint clause {clause:?}: bad hit index"))?,
                        c.trim()
                            .parse()
                            .map_err(|_| format!("failpoint clause {clause:?}: bad trip count"))?,
                    ),
                },
            };
            plan = plan.point_for(name, action, nth, count);
        }
        Ok(plan)
    }
}

#[derive(Debug, Default)]
struct State {
    armed: BTreeMap<String, Entry>,
    hits: BTreeMap<String, u64>,
    seen: BTreeSet<String>,
}

fn state() -> &'static Mutex<State> {
    static STATE: Mutex<State> = Mutex::new(State {
        armed: BTreeMap::new(),
        hits: BTreeMap::new(),
        seen: BTreeSet::new(),
    });
    &STATE
}

fn lock() -> std::sync::MutexGuard<'static, State> {
    // a panic action unwinding through `hit` never holds the lock, but a
    // test harness catching that panic elsewhere may still poison it
    state().lock().unwrap_or_else(|e| e.into_inner())
}

/// Arms `plan`, replacing whatever was armed, and resets all hit counts.
/// The registry of seen site names is preserved.
pub fn arm(plan: &FailPlan) {
    let mut s = lock();
    s.armed = plan.entries.clone();
    s.hits.clear();
}

/// Disarms every failpoint and resets all hit counts.
pub fn disarm() {
    arm(&FailPlan::new());
}

/// Arms the plan in `XSYNTH_FAILPOINTS`, if set.
///
/// # Errors
///
/// Reports a malformed plan (nothing is armed then).
pub fn arm_from_env() -> Result<(), String> {
    match std::env::var("XSYNTH_FAILPOINTS") {
        Ok(spec) => {
            let plan = FailPlan::parse(&spec).map_err(|e| format!("XSYNTH_FAILPOINTS: {e}"))?;
            arm(&plan);
            Ok(())
        }
        Err(_) => Ok(()),
    }
}

/// Every failpoint name any `fail_point!` site has registered by
/// executing — the enumeration a chaos harness sweeps over.
pub fn registered() -> Vec<String> {
    lock().seen.iter().cloned().collect()
}

/// One execution of the named site: registers the name, bumps the hit
/// count, and applies the armed action if the hit falls in the trip
/// window. Returns `true` when an [`Action::Error`] trip fired (the site
/// must take its error arm).
///
/// # Panics
///
/// Panics (by design) when the site is armed with [`Action::Panic`] and
/// the hit trips.
pub fn hit(name: &str) -> bool {
    let action = {
        let mut s = lock();
        if !s.seen.contains(name) {
            s.seen.insert(name.to_string());
        }
        let n = s.hits.entry(name.to_string()).or_insert(0);
        *n += 1;
        let n = *n;
        match s.armed.get(name) {
            Some(e) if n >= e.nth && n - e.nth < e.count => Some(e.action),
            _ => None,
        }
    };
    match action {
        None => false,
        Some(Action::Error) => true,
        Some(Action::Panic) => panic!("failpoint {name} tripped"),
        Some(Action::Delay(d)) => {
            std::thread::sleep(d);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The armed plan and hit counts are process-global, so every test
    // serializes on this lock and re-arms from scratch.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn unarmed_hits_register_but_do_nothing() {
        let _g = exclusive();
        disarm();
        assert!(!hit("test.alpha"));
        assert!(registered().contains(&"test.alpha".to_string()));
    }

    #[test]
    fn error_trips_on_nth_hit_and_after() {
        let _g = exclusive();
        arm(&FailPlan::new().point("test.beta", Action::Error, 3));
        assert!(!hit("test.beta"));
        assert!(!hit("test.beta"));
        assert!(hit("test.beta"));
        assert!(hit("test.beta"));
        disarm();
        assert!(!hit("test.beta"));
    }

    #[test]
    fn trip_window_is_bounded_by_count() {
        let _g = exclusive();
        arm(&FailPlan::new().point_for("test.gamma", Action::Error, 2, 2));
        let fired: Vec<bool> = (0..5).map(|_| hit("test.gamma")).collect();
        assert_eq!(fired, [false, true, true, false, false]);
        disarm();
    }

    #[test]
    fn panic_action_panics_with_site_name() {
        let _g = exclusive();
        arm(&FailPlan::new().point("test.delta", Action::Panic, 1));
        let err = std::panic::catch_unwind(|| hit("test.delta")).unwrap_err();
        disarm();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("failpoint test.delta tripped"));
    }

    #[test]
    fn rearming_resets_hit_counts() {
        let _g = exclusive();
        let plan = FailPlan::new().point("test.eps", Action::Error, 2);
        arm(&plan);
        assert!(!hit("test.eps"));
        assert!(hit("test.eps"));
        arm(&plan); // counts reset: first hit is hit #1 again
        assert!(!hit("test.eps"));
        assert!(hit("test.eps"));
        disarm();
    }

    #[test]
    fn parse_round_trips_the_documented_syntax() {
        let plan = FailPlan::parse("bdd.alloc=error; core.factor=panic@3 ;sim.block=delay(5)@2x4;")
            .expect("valid spec");
        let want = FailPlan::new()
            .point("bdd.alloc", Action::Error, 1)
            .point("core.factor", Action::Panic, 3)
            .point_for("sim.block", Action::Delay(Duration::from_millis(5)), 2, 4);
        assert_eq!(plan, want);
        assert_eq!(FailPlan::parse("  "), Ok(FailPlan::new()));
    }

    #[test]
    fn parse_rejects_malformed_clauses() {
        for bad in [
            "noequals",
            "=error",
            "p=explode",
            "p=delay(x)",
            "p=error@zero",
            "p=error@1xq",
        ] {
            assert!(FailPlan::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn delay_action_sleeps_then_continues() {
        let _g = exclusive();
        arm(&FailPlan::new().point("test.zeta", Action::Delay(Duration::from_millis(5)), 1));
        let t0 = std::time::Instant::now();
        assert!(!hit("test.zeta"));
        assert!(t0.elapsed() >= Duration::from_millis(5));
        disarm();
    }
}
