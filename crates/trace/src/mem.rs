//! Process memory gauges read from `/proc/self/status`.
//!
//! The benchmark telemetry layer records `mem.peak_rss_kb` alongside the
//! wall-clock numbers so memory regressions are as visible as time
//! regressions. Linux exposes the high-water mark (`VmHWM`) and current
//! resident set (`VmRSS`) as text in `/proc/self/status`, so the readers
//! here are zero-dependency and contain no `unsafe`. On platforms without
//! procfs they return `None` and callers simply omit the gauge.

/// Peak resident set size of this process in kilobytes (`VmHWM`), or
/// `None` when `/proc/self/status` is unavailable.
pub fn peak_rss_kb() -> Option<u64> {
    status_kb("VmHWM:")
}

/// Current resident set size of this process in kilobytes (`VmRSS`), or
/// `None` when `/proc/self/status` is unavailable.
pub fn current_rss_kb() -> Option<u64> {
    status_kb("VmRSS:")
}

/// Resets the peak-RSS high-water mark to the current RSS by writing `5`
/// to `/proc/self/clear_refs`, so a subsequent [`peak_rss_kb`] reading
/// reflects only the work since the reset rather than the whole process
/// lifetime. Best-effort: returns `false` where procfs doesn't allow it.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

fn status_kb(key: &str) -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_status_kb(&text, key)
}

fn parse_status_kb(text: &str, key: &str) -> Option<u64> {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_lines() {
        let text = "Name:\txsynth\nVmHWM:\t  123456 kB\nVmRSS:\t   98765 kB\n";
        assert_eq!(parse_status_kb(text, "VmHWM:"), Some(123_456));
        assert_eq!(parse_status_kb(text, "VmRSS:"), Some(98_765));
        assert_eq!(parse_status_kb(text, "VmSwap:"), None);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reads_live_values_on_linux() {
        let peak = peak_rss_kb().expect("VmHWM available");
        let cur = current_rss_kb().expect("VmRSS available");
        assert!(peak > 0 && cur > 0 && peak >= cur / 2);
    }
}
