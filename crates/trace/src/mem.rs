//! Process memory gauges read from `/proc/self/status`.
//!
//! The benchmark telemetry layer records `mem.peak_rss_kb` alongside the
//! wall-clock numbers so memory regressions are as visible as time
//! regressions. Linux exposes the high-water mark (`VmHWM`) and current
//! resident set (`VmRSS`) as text in `/proc/self/status`, so the readers
//! here are zero-dependency and contain no `unsafe`. On platforms without
//! procfs they return `None` and callers simply omit the gauge.

/// Peak resident set size of this process in kilobytes (`VmHWM`), or
/// `None` when `/proc/self/status` is unavailable.
pub fn peak_rss_kb() -> Option<u64> {
    status_kb("VmHWM:")
}

/// Current resident set size of this process in kilobytes (`VmRSS`), or
/// `None` when `/proc/self/status` is unavailable.
pub fn current_rss_kb() -> Option<u64> {
    status_kb("VmRSS:")
}

/// Resets the peak-RSS high-water mark to the current RSS by writing `5`
/// to `/proc/self/clear_refs`, so a subsequent [`peak_rss_kb`] reading
/// reflects only the work since the reset rather than the whole process
/// lifetime. Best-effort: returns `false` where procfs doesn't allow it.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of live [`MemScope`]s in this process.
static ACTIVE_SCOPES: AtomicUsize = AtomicUsize::new(0);

/// A per-job peak-RSS measurement scope for long-lived processes.
///
/// The `VmHWM` high-water mark and its `clear_refs` reset are inherently
/// process-wide, which is fine for a one-shot CLI but wrong for a daemon:
/// one job's reset would silently truncate another in-flight job's
/// measurement. `MemScope` makes the one-shot assumption explicit and
/// safe: the *outermost* scope resets the high-water mark when it opens;
/// scopes opened while others are live skip the reset (their readings are
/// upper bounds over the overlapping work, never truncated ones). Reading
/// [`MemScope::peak_kb`] at the end of a job gives the per-job gauge the
/// telemetry layer records.
///
/// # Examples
///
/// ```
/// let scope = xsynth_trace::mem::MemScope::begin();
/// let work: Vec<u64> = (0..100_000).collect();
/// assert!(work.len() == 100_000);
/// if let Some(kb) = scope.peak_kb() {
///     assert!(kb > 0);
/// }
/// ```
#[derive(Debug)]
pub struct MemScope {
    /// Whether this scope actually reset the high-water mark (it was the
    /// outermost live scope and procfs allowed the write).
    exclusive: bool,
}

impl MemScope {
    /// Opens a measurement scope. The outermost live scope resets the
    /// process high-water mark so its reading covers only its own span;
    /// nested/overlapping scopes observe shared, non-reset readings.
    pub fn begin() -> MemScope {
        let first = ACTIVE_SCOPES.fetch_add(1, Ordering::SeqCst) == 0;
        let exclusive = first && reset_peak_rss();
        MemScope { exclusive }
    }

    /// Whether the reading is scoped to this span alone (`true`), or an
    /// upper bound shared with overlapping scopes / earlier process
    /// history (`false`).
    pub fn is_exclusive(&self) -> bool {
        self.exclusive
    }

    /// The peak resident set in kilobytes observed since this scope
    /// opened (exactly, when [`MemScope::is_exclusive`]; as an upper
    /// bound otherwise).
    pub fn peak_kb(&self) -> Option<u64> {
        peak_rss_kb()
    }
}

impl Drop for MemScope {
    fn drop(&mut self) {
        ACTIVE_SCOPES.fetch_sub(1, Ordering::SeqCst);
    }
}

fn status_kb(key: &str) -> Option<u64> {
    let text = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_status_kb(&text, key)
}

fn parse_status_kb(text: &str, key: &str) -> Option<u64> {
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix(key) {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_lines() {
        let text = "Name:\txsynth\nVmHWM:\t  123456 kB\nVmRSS:\t   98765 kB\n";
        assert_eq!(parse_status_kb(text, "VmHWM:"), Some(123_456));
        assert_eq!(parse_status_kb(text, "VmRSS:"), Some(98_765));
        assert_eq!(parse_status_kb(text, "VmSwap:"), None);
    }

    #[test]
    fn scopes_nest_without_stealing_the_reset() {
        // serialize against other tests in this binary that open scopes
        let outer = MemScope::begin();
        let inner = MemScope::begin();
        assert!(
            !inner.is_exclusive(),
            "a nested scope must never reset the shared high-water mark"
        );
        drop(inner);
        drop(outer);
        // with all scopes closed, a fresh one is outermost again; whether
        // it is exclusive depends only on procfs permitting the reset
        let fresh = MemScope::begin();
        assert_eq!(fresh.is_exclusive(), reset_peak_rss());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn reads_live_values_on_linux() {
        let peak = peak_rss_kb().expect("VmHWM available");
        let cur = current_rss_kb().expect("VmRSS available");
        assert!(peak > 0 && cur > 0 && peak >= cur / 2);
    }
}
