//! Chrome `trace_event` JSON export (serde-free).
//!
//! Emits the "JSON Object" flavour of the [trace event format]: a
//! `traceEvents` array of `B`/`E` duration events, `C` counter events and
//! `M` metadata events naming each track, all under one process. The
//! output loads directly in `chrome://tracing` and Perfetto.
//!
//! [trace event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::{Event, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Microsecond timestamp with sub-µs precision, as Chrome expects.
fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn to_chrome_json(trace: &Trace) -> String {
    let mut events: Vec<String> = Vec::new();
    // track keys may be sparse (append() offsets them); renumber to small
    // consecutive tids in merged (deterministic) order
    let tid_of: BTreeMap<u64, usize> = trace
        .tracks
        .iter()
        .enumerate()
        .map(|(i, t)| (t.key, i))
        .collect();
    for t in &trace.tracks {
        let tid = tid_of[&t.key];
        events.push(format!(
            r#"{{"name":"thread_name","ph":"M","pid":1,"tid":{tid},"args":{{"name":"{}"}}}}"#,
            escape(&t.label)
        ));
        // Chrome counter tracks plot absolute values, so emit the running
        // total of each counter, stamped at the time of the last span edge
        let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
        let mut now = Duration::ZERO;
        for e in &t.events {
            match e {
                Event::Begin { name, at } => {
                    now = *at;
                    events.push(format!(
                        r#"{{"name":"{}","cat":"xsynth","ph":"B","ts":{:.3},"pid":1,"tid":{tid}}}"#,
                        escape(name),
                        us(*at)
                    ));
                }
                Event::End { at } => {
                    now = *at;
                    events.push(format!(
                        r#"{{"ph":"E","ts":{:.3},"pid":1,"tid":{tid}}}"#,
                        us(*at)
                    ));
                }
                Event::Count { name, delta } => {
                    let total = totals.entry(name.as_str()).or_insert(0);
                    *total += delta;
                    events.push(format!(
                        r#"{{"name":"{}","cat":"xsynth","ph":"C","ts":{:.3},"pid":1,"tid":{tid},"args":{{"value":{}}}}}"#,
                        escape(name),
                        us(now),
                        total
                    ));
                }
                Event::Gauge { name, value } => {
                    events.push(format!(
                        r#"{{"name":"{}","cat":"xsynth","ph":"C","ts":{:.3},"pid":1,"tid":{tid},"args":{{"value":{}}}}}"#,
                        escape(name),
                        us(now),
                        json_number(*value)
                    ));
                }
                // histogram samples surface as instant events carrying the
                // raw value plus the bucket they land in, stamped at the
                // last span edge (observations carry no timestamp)
                Event::Hist { name, value } => {
                    events.push(format!(
                        r#"{{"name":"hist:{}","cat":"xsynth","ph":"i","s":"t","ts":{:.3},"pid":1,"tid":{tid},"args":{{"value":{},"bucket":{}}}}}"#,
                        escape(name),
                        us(now),
                        json_number(*value),
                        crate::bucket_of(*value)
                    ));
                }
            }
        }
    }
    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"program\":\"xsynth\"}}}}\n",
        events.join(",\n")
    )
}

/// Formats an f64 as a valid JSON number (JSON has no NaN/Infinity).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        if v.fract() == 0.0 && v.abs() < 1e15 {
            format!("{v:.0}")
        } else {
            format!("{v}")
        }
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use crate::TraceSink;

    #[test]
    fn export_is_valid_json_with_all_event_kinds() {
        let sink = TraceSink::new();
        {
            let mut b = sink.buffer(0, "main \"quoted\"\n");
            b.span("phase", |b| {
                b.count("items", 3);
                b.gauge("rate", 0.5);
                b.gauge("nodes", 42.0);
                b.observe("cubes", 6.0);
            });
        }
        let json = sink.take().to_chrome_json();
        crate::json::validate(&json).expect("emitted JSON must parse");
        assert!(json.contains(r#""ph":"B""#));
        assert!(json.contains(r#""ph":"E""#));
        assert!(json.contains(r#""ph":"C""#));
        assert!(json.contains(r#""ph":"M""#));
        assert!(json.contains(r#""ph":"i""#));
        assert!(json.contains(r#"\"quoted\""#));
    }

    #[test]
    fn hist_samples_export_value_and_bucket() {
        let sink = TraceSink::new();
        {
            let mut b = sink.buffer(0, "m");
            b.span("s", |b| b.observe("fprm.cubes", 6.0));
        }
        let json = sink.take().to_chrome_json();
        crate::json::validate(&json).expect("emitted JSON must parse");
        assert!(json.contains(r#""name":"hist:fprm.cubes""#), "{json}");
        assert!(
            json.contains(&format!(
                r#""args":{{"value":6,"bucket":{}}}"#,
                crate::bucket_of(6.0)
            )),
            "{json}"
        );
    }

    #[test]
    fn counters_export_running_totals() {
        let sink = TraceSink::new();
        {
            let mut b = sink.buffer(0, "m");
            b.span("s", |b| {
                b.count("n", 2);
                b.count("n", 3);
            });
        }
        let json = sink.take().to_chrome_json();
        assert!(json.contains(r#""args":{"value":2}"#), "{json}");
        assert!(json.contains(r#""args":{"value":5}"#), "{json}");
    }
}
