//! GF(2) common-divisor extraction across FPRM cube sets.
//!
//! Section 3 of the paper closes by observing that a full algebraic
//! factorization for AND/XOR forms "following the methods in \[2\]"
//! (Brayton–McMullen) is possible; its experimental flow approximates it
//! by factoring each output and merging the per-output networks with SIS
//! `resub`. This module implements the GF(2)-ring analog of fast-extract
//! directly on the cube sets: an XOR-subsum `d` that divides several
//! functions (under possibly different monomial co-kernels) is pulled out
//! as a new node `y = ⊕d`, and every occurrence `c·d` is rewritten to the
//! single cube `c∪{y}`. Because GF(2) is a ring, `c·(q₁ ⊕ q₂) = c·q₁ ⊕
//! c·q₂` holds exactly and every rewrite is algebraic (no Boolean
//! reasoning needed).
//!
//! On ripple-carry arithmetic this recovers the carry chain across output
//! bits: `sᵢ = aᵢ ⊕ bᵢ ⊕ y` and `cout = aᵢbᵢ ⊕ aᵢy ⊕ bᵢy` share the
//! extracted carry `y`, which is how the paper's z4ml/add6 results get
//! their size.
//!
//! Cubes here live in *literal space*: a cube is a set of literal ids, and
//! the caller owns the mapping from ids to polarity-adjusted variables or
//! previously-extracted divisor nodes.

use std::collections::HashMap;
use xsynth_boolean::VarSet;

/// The result of running [`extract`]: the extracted divisor definitions
/// (in extraction order) and the rewritten functions.
#[derive(Debug, Clone)]
pub struct Extraction {
    /// `(literal id, cube set)` per extracted divisor — the divisor node
    /// computes the XOR-sum of its cubes. Divisor cube sets may reference
    /// other divisors' literal ids (in either direction); consumers should
    /// emit them in dependency order.
    pub divisors: Vec<(usize, Vec<VarSet>)>,
    /// The input functions rewritten over the extended literal space.
    pub functions: Vec<Vec<VarSet>>,
}

/// Options bounding the extraction loop.
#[derive(Debug, Clone)]
pub struct ExtractOptions {
    /// Stop after this many divisors.
    pub max_divisors: usize,
    /// Candidate divisors examined per round.
    pub max_candidates: usize,
    /// Minimum literal saving to accept a divisor.
    pub min_saving: i64,
}

impl Default for ExtractOptions {
    fn default() -> Self {
        ExtractOptions {
            max_divisors: 200,
            max_candidates: 600,
            min_saving: 2,
        }
    }
}

/// Greedily extracts common XOR-subsum divisors across `functions`
/// (cube sets in literal space). New divisors get literal ids starting at
/// `next_literal`.
pub fn extract(
    functions: Vec<Vec<VarSet>>,
    mut next_literal: usize,
    opts: &ExtractOptions,
) -> Extraction {
    let mut funcs = functions;
    let mut divisors: Vec<(usize, Vec<VarSet>)> = Vec::new();

    for _round in 0..opts.max_divisors {
        let candidates = collect_candidates(&funcs, &divisors, opts.max_candidates);
        let mut best: Option<(Vec<VarSet>, i64)> = None;
        for cand in candidates {
            let saving = total_saving(&funcs, &divisors, &cand);
            if saving >= opts.min_saving && best.as_ref().is_none_or(|(_, s)| saving > *s) {
                best = Some((cand, saving));
            }
        }
        let Some((divisor, _)) = best else { break };
        let y = next_literal;
        next_literal += 1;
        for f in funcs.iter_mut() {
            rewrite(f, &divisor, y);
        }
        for (_, d) in divisors.iter_mut() {
            rewrite(d, &divisor, y);
        }
        divisors.push((y, divisor));
    }

    Extraction {
        divisors,
        functions: funcs,
    }
}

/// Canonical form of a cube set (sorted, deduplicated in XOR semantics —
/// duplicate cubes cancel, but inputs here never carry duplicates).
fn canon(mut cubes: Vec<VarSet>) -> Vec<VarSet> {
    cubes.sort();
    cubes
}

/// The quotient `f / ℓ`: cubes containing literal `ℓ`, with `ℓ` removed.
fn quotient(f: &[VarSet], lit: usize) -> Vec<VarSet> {
    f.iter()
        .filter(|c| c.contains(lit))
        .map(|c| {
            let mut q = c.clone();
            q.remove(lit);
            q
        })
        .collect()
}

/// Candidate divisors: whole literal-quotients and pairwise intersections
/// of quotients, each with ≥ 2 cubes.
fn collect_candidates(
    funcs: &[Vec<VarSet>],
    divisors: &[(usize, Vec<VarSet>)],
    cap: usize,
) -> Vec<Vec<VarSet>> {
    let mut quotients: Vec<Vec<VarSet>> = Vec::new();
    let push_quotients = |f: &[VarSet], quotients: &mut Vec<Vec<VarSet>>| {
        let mut lits = VarSet::new();
        for c in f {
            lits.union_with(c);
        }
        for l in lits.iter() {
            let q = quotient(f, l);
            if q.len() >= 2 {
                quotients.push(canon(q));
            }
        }
    };
    for f in funcs {
        push_quotients(f, &mut quotients);
    }
    for (_, d) in divisors {
        push_quotients(d, &mut quotients);
    }

    let mut seen: HashMap<Vec<VarSet>, ()> = HashMap::new();
    let mut out: Vec<Vec<VarSet>> = Vec::new();
    let push =
        |cand: Vec<VarSet>, out: &mut Vec<Vec<VarSet>>, seen: &mut HashMap<Vec<VarSet>, ()>| {
            if cand.len() >= 2 && !seen.contains_key(&cand) {
                seen.insert(cand.clone(), ());
                out.push(cand);
            }
        };
    for q in &quotients {
        push(q.clone(), &mut out, &mut seen);
    }
    'outer: for i in 0..quotients.len() {
        for j in (i + 1)..quotients.len() {
            if out.len() >= cap {
                break 'outer;
            }
            let inter: Vec<VarSet> = quotients[i]
                .iter()
                .filter(|c| quotients[j].contains(c))
                .cloned()
                .collect();
            push(canon(inter), &mut out, &mut seen);
        }
    }
    out.truncate(cap);
    out
}

/// All co-kernel cubes under which `d` divides `f`: cubes `c` (including
/// the universe) with `{c ∪ dc : dc ∈ d}` ⊆ `f`. Candidate co-kernels are
/// derived from the cubes of `f` themselves.
fn cokernels(f: &[VarSet], d: &[VarSet]) -> Vec<VarSet> {
    let mut out = Vec::new();
    let mut seen: Vec<VarSet> = Vec::new();
    // candidate co-kernels: for each cube of f, try c = cube \ (first
    // divisor cube) — a valid occurrence must produce one of f's cubes
    // from d[0]
    let d0 = &d[0];
    for c in f {
        if !d0.is_subset(c) {
            continue;
        }
        let co = c.difference(d0);
        if seen.contains(&co) {
            continue;
        }
        seen.push(co.clone());
        // verify the full occurrence, requiring disjointness so the
        // product c·dc does not collapse literals (stays algebraic)
        let ok = d.iter().all(|dc| {
            co.is_disjoint(dc) && {
                let prod = co.union(dc);
                f.contains(&prod)
            }
        });
        if ok {
            out.push(co);
        }
    }
    out
}

/// Total literal saving of extracting `d` across all functions, minus the
/// cost of the divisor node itself.
fn total_saving(funcs: &[Vec<VarSet>], divisors: &[(usize, Vec<VarSet>)], d: &[VarSet]) -> i64 {
    let d_lits: i64 = d.iter().map(|c| c.len() as i64).sum();
    let d_cubes = d.len() as i64;
    let mut occurrences = 0i64;
    let mut saving = 0i64;
    let count = |f: &[VarSet], occurrences: &mut i64, saving: &mut i64| {
        if covers_equal(f, d) {
            return; // extracting a function as its own divisor is a no-op
        }
        for co in cokernels(f, d) {
            *occurrences += 1;
            let c_len = co.len() as i64;
            // removed: |d| cubes of (|c| + cube lits); added: one cube of
            // |c| + 1 literals
            *saving += d_lits + d_cubes * c_len - (c_len + 1);
        }
    };
    for f in funcs {
        count(f, &mut occurrences, &mut saving);
    }
    for (_, f) in divisors {
        count(f, &mut occurrences, &mut saving);
    }
    if occurrences < 2 {
        return i64::MIN;
    }
    saving - d_lits
}

fn covers_equal(a: &[VarSet], b: &[VarSet]) -> bool {
    a.len() == b.len() && a.iter().all(|c| b.contains(c))
}

/// Rewrites every occurrence of `d` in `f` as a single cube `co ∪ {y}`.
fn rewrite(f: &mut Vec<VarSet>, d: &[VarSet], y: usize) {
    if covers_equal(f, d) {
        return;
    }
    loop {
        let cos = cokernels(f, d);
        let Some(co) = cos.first() else { break };
        // remove the occurrence's cubes
        for dc in d {
            let prod = co.union(dc);
            let pos = f
                .iter()
                .position(|c| *c == prod)
                .expect("verified occurrence");
            f.remove(pos);
        }
        let mut nc = co.clone();
        nc.insert(y);
        f.push(nc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(v: &[usize]) -> VarSet {
        VarSet::from_vars(v.iter().copied())
    }

    /// Evaluates a literal-space cube set given divisor definitions.
    fn eval(f: &[VarSet], divisors: &[(usize, Vec<VarSet>)], inputs: u64, n: usize) -> bool {
        let mut env: HashMap<usize, bool> = HashMap::new();
        for v in 0..n {
            env.insert(v, inputs & (1 << v) != 0);
        }
        // resolve divisors by fixpoint (dependencies may go both ways)
        let mut remaining: Vec<(usize, &Vec<VarSet>)> =
            divisors.iter().map(|(y, d)| (*y, d)).collect();
        while !remaining.is_empty() {
            let before = remaining.len();
            remaining.retain(|(y, d)| {
                let ready = d.iter().all(|c| c.iter().all(|l| env.contains_key(&l)));
                if ready {
                    let val = d
                        .iter()
                        .fold(false, |acc, c| acc ^ c.iter().all(|l| env[&l]));
                    env.insert(*y, val);
                    false
                } else {
                    true
                }
            });
            assert!(remaining.len() < before, "cyclic divisor dependency");
        }
        f.iter()
            .fold(false, |acc, c| acc ^ c.iter().all(|l| env[&l]))
    }

    #[test]
    fn quotient_and_cokernels() {
        // f = ab ⊕ ac ⊕ d
        let f = vec![vs(&[0, 1]), vs(&[0, 2]), vs(&[3])];
        let q = quotient(&f, 0);
        assert_eq!(canon(q), vec![vs(&[1]), vs(&[2])]);
        let d = vec![vs(&[1]), vs(&[2])];
        let cos = cokernels(&f, &d);
        assert_eq!(cos, vec![vs(&[0])]);
    }

    #[test]
    fn universe_cokernel() {
        // d ⊆ f directly
        let f = vec![vs(&[1]), vs(&[2]), vs(&[5])];
        let d = vec![vs(&[1]), vs(&[2])];
        let cos = cokernels(&f, &d);
        assert!(cos.contains(&VarSet::new()));
    }

    #[test]
    fn extracts_shared_carry_structure() {
        // the 2-bit adder pattern:
        //   s1   = a1 ⊕ b1 ⊕ C          (C = a0b0 in cube form)
        //   cout = a1b1 ⊕ a1·C ⊕ b1·C
        // with C a 3-cube carry: C = {a0b0, a0cin, b0cin} (vars 0,1,4=cin)
        let carry: Vec<VarSet> = vec![vs(&[0, 1]), vs(&[0, 4]), vs(&[1, 4])];
        let mut s1 = vec![vs(&[2]), vs(&[3])];
        s1.extend(carry.iter().cloned());
        let mut cout = vec![vs(&[2, 3])];
        for c in &carry {
            cout.push(c.union(&vs(&[2])));
            cout.push(c.union(&vs(&[3])));
        }
        let funcs = vec![s1.clone(), cout.clone()];
        let ext = extract(funcs, 5, &ExtractOptions::default());
        assert!(!ext.divisors.is_empty(), "carry must be extracted");
        // functions preserved
        for m in 0..32u64 {
            assert_eq!(
                eval(&ext.functions[0], &ext.divisors, m, 5),
                eval(&s1, &[], m, 5),
                "s1 at {m}"
            );
            assert_eq!(
                eval(&ext.functions[1], &ext.divisors, m, 5),
                eval(&cout, &[], m, 5),
                "cout at {m}"
            );
        }
        // s1 should now be 3 cubes: a1 ⊕ b1 ⊕ y
        assert_eq!(ext.functions[0].len(), 3);
        // cout should be 3 cubes: a1b1 ⊕ a1y ⊕ b1y
        assert_eq!(ext.functions[1].len(), 3);
    }

    #[test]
    fn no_extraction_when_nothing_shared() {
        let f1 = vec![vs(&[0]), vs(&[1])];
        let f2 = vec![vs(&[2]), vs(&[3])];
        let ext = extract(vec![f1, f2], 4, &ExtractOptions::default());
        assert!(ext.divisors.is_empty());
    }

    #[test]
    fn nested_extraction() {
        // a 2-bit ripple adder tail: C1 = carry from bit 0 (vars 0,1,2),
        // C2 = carry from bit 1 (vars 3,4 + C1), shared by s2 and cout
        let c1: Vec<VarSet> = vec![vs(&[0, 1]), vs(&[0, 2]), vs(&[1, 2])];
        let mut c2: Vec<VarSet> = vec![vs(&[3, 4])];
        for c in &c1 {
            c2.push(c.union(&vs(&[3])));
            c2.push(c.union(&vs(&[4])));
        }
        let mut s1 = vec![vs(&[3]), vs(&[4])];
        s1.extend(c1.iter().cloned());
        let mut s2 = vec![vs(&[5]), vs(&[6])];
        s2.extend(c2.iter().cloned());
        let mut cout = vec![vs(&[5, 6])];
        for c in &c2 {
            cout.push(c.union(&vs(&[5])));
            cout.push(c.union(&vs(&[6])));
        }
        let funcs = vec![s1.clone(), s2.clone(), cout.clone()];
        let ext = extract(funcs, 7, &ExtractOptions::default());
        assert!(
            ext.divisors.len() >= 2,
            "expected nested divisors, got {}",
            ext.divisors.len()
        );
        for m in 0..128u64 {
            assert_eq!(
                eval(&ext.functions[0], &ext.divisors, m, 7),
                eval(&s1, &[], m, 7)
            );
            assert_eq!(
                eval(&ext.functions[1], &ext.divisors, m, 7),
                eval(&s2, &[], m, 7)
            );
            assert_eq!(
                eval(&ext.functions[2], &ext.divisors, m, 7),
                eval(&cout, &[], m, 7)
            );
        }
        // the rewritten s2 should be the 3-cube ripple form
        assert!(ext.functions[1].len() <= 3, "s2 = a ⊕ b ⊕ carry expected");
    }

    #[test]
    fn divisor_limit_respected() {
        // many shareable pairs, but only one divisor allowed
        let mut funcs = Vec::new();
        for k in 0..4 {
            let base = 10 * k;
            funcs.push(vec![
                vs(&[base, 1]),
                vs(&[base, 2]),
                vs(&[base + 1, 1]),
                vs(&[base + 1, 2]),
            ]);
        }
        let opts = ExtractOptions {
            max_divisors: 1,
            ..ExtractOptions::default()
        };
        let ext = extract(funcs, 100, &opts);
        assert_eq!(ext.divisors.len(), 1);
    }

    #[test]
    fn rewrite_is_idempotent_per_occurrence() {
        // f = a·(b ⊕ c) appears once under each of two cokernels
        let d = vec![vs(&[1]), vs(&[2])];
        let mut f = vec![vs(&[0, 1]), vs(&[0, 2]), vs(&[3, 1]), vs(&[3, 2])];
        rewrite(&mut f, &d, 9);
        assert_eq!(f.len(), 2, "both occurrences rewritten: {f:?}");
        assert!(f.contains(&vs(&[0, 9])));
        assert!(f.contains(&vs(&[3, 9])));
        // nothing more to rewrite
        let snapshot = f.clone();
        rewrite(&mut f, &d, 9);
        assert_eq!(f, snapshot);
    }

    #[test]
    fn saving_rejects_single_use() {
        let f = vec![vs(&[0, 1]), vs(&[0, 2])];
        let d = vec![vs(&[1]), vs(&[2])];
        // only one occurrence (cokernel a) → rejected
        assert_eq!(total_saving(&[f], &[], &d), i64::MIN);
    }
}
