//! Exact switching-activity power estimation via ROBDDs.
//!
//! [`xsynth_sim::power_estimate`] measures signal probabilities by
//! simulation (exhaustive up to 16 inputs, Monte-Carlo beyond); this
//! module computes them *exactly* for any input count whose BDDs fit, by
//! building the global function of every node and reading the
//! satisfying fraction off the diagram — the textbook zero-delay power
//! model at full precision, useful for the paper's `improve%power` column
//! on the wide circuits.

use std::collections::HashMap;
use xsynth_bdd::{Bdd, BddManager};
use xsynth_net::{GateKind, Network, NodeKind, SignalId};

/// Exact per-node switching power, same model and units as
/// [`xsynth_sim::power_estimate`]: activity `2·p·(1−p)` weighted by fanout
/// load (plus one per primary output driven); constants are free.
pub fn power_estimate_exact(net: &Network) -> f64 {
    let n = net.inputs().len();
    let mut bm = BddManager::new(n);
    let mut val: HashMap<SignalId, Bdd> = HashMap::new();
    for (i, &id) in net.inputs().iter().enumerate() {
        let v = bm.var(i);
        val.insert(id, v);
    }
    for id in net.topo_order() {
        let NodeKind::Gate(kind) = net.kind(id) else {
            continue;
        };
        use GateKind::*;
        let fan: Vec<Bdd> = net.fanins(id).iter().map(|f| val[f]).collect();
        let b = match kind {
            Const0 => Bdd::ZERO,
            Const1 => Bdd::ONE,
            Buf => fan[0],
            Not => bm.not(fan[0]),
            And => fan.iter().fold(Bdd::ONE, |a, &x| bm.and(a, x)),
            Nand => {
                let t = fan.iter().fold(Bdd::ONE, |a, &x| bm.and(a, x));
                bm.not(t)
            }
            Or => fan.iter().fold(Bdd::ZERO, |a, &x| bm.or(a, x)),
            Nor => {
                let t = fan.iter().fold(Bdd::ZERO, |a, &x| bm.or(a, x));
                bm.not(t)
            }
            Xor => fan.iter().fold(Bdd::ZERO, |a, &x| bm.xor(a, x)),
            Xnor => {
                let t = fan.iter().fold(Bdd::ZERO, |a, &x| bm.xor(a, x));
                bm.not(t)
            }
        };
        val.insert(id, b);
    }

    let fanouts = net.fanouts();
    let mut drives_po = vec![0usize; net.num_nodes()];
    for (_, s) in net.outputs() {
        drives_po[s.index()] += 1;
    }
    let mut total = 0.0;
    for id in net.topo_order() {
        let load = fanouts[id.index()].len() + drives_po[id.index()];
        if load == 0 {
            continue;
        }
        if matches!(
            net.kind(id),
            NodeKind::Gate(GateKind::Const0) | NodeKind::Gate(GateKind::Const1)
        ) {
            continue;
        }
        let p = bm.sat_fraction(val[&id]);
        total += 2.0 * p * (1.0 - p) * load as f64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsynth_sim::power_estimate;

    #[test]
    fn exact_matches_exhaustive_simulation() {
        // the simulation path is exhaustive ≤ 16 inputs, so both must agree
        // to float precision on a small network
        let mut net = Network::new("p");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let ab = net.add_gate(GateKind::And, vec![a, b]);
        let x = net.add_gate(GateKind::Xor, vec![ab, c]);
        let o = net.add_gate(GateKind::Nor, vec![x, a]);
        net.add_output("y", o);
        let exact = power_estimate_exact(&net);
        let sim = power_estimate(&net).total;
        assert!((exact - sim).abs() < 1e-9, "exact {exact} vs sim {sim}");
    }

    #[test]
    fn wide_network_exact_value() {
        // 40-input AND chain: p of stage k is 2^-(k+1); the Monte-Carlo
        // simulator can only approximate this, the BDD version is exact
        let mut net = Network::new("wide");
        let ins: Vec<_> = (0..40).map(|i| net.add_input(format!("x{i}"))).collect();
        let mut s = ins[0];
        let mut expected = 40.0 * 0.5; // each input, activity .5, load 1
        let mut p = 0.5;
        for &i in &ins[1..] {
            s = net.add_gate(GateKind::And, vec![s, i]);
            p *= 0.5;
            expected += 2.0 * p * (1.0 - p);
        }
        net.add_output("y", s);
        let exact = power_estimate_exact(&net);
        assert!((exact - expected).abs() < 1e-9, "{exact} vs {expected}");
    }
}
