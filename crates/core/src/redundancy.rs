//! XOR redundancy analysis and removal (Section 4 of the paper).
//!
//! A network freshly factored from an FPRM form is XOR-rich, and XOR gates
//! are expensive in AND/OR cell libraries. The paper's observation (after
//! Hayes) is that the internal single-stuck-at faults of a two-input XOR
//! gate partition into four classes, one per input pattern; when the whole
//! class of some pattern is untestable — uncontrollable or unobservable —
//! the XOR gate collapses:
//!
//! * `(1,1)` untestable → `f = g + h` (Property 3),
//! * `(0,1)` untestable → `f = g·¬h`, `(1,0)` untestable → `f = ¬g·h`
//!   (Property 4),
//!
//! and each reduction propagates observability redundancies toward the
//! primary inputs (Properties 5–7, the "domino effect"), finally exposing
//! stuck-at-redundant fanins on the first-level AND gates (tested by the
//! OC and SA1 pattern sets).
//!
//! This implementation drives all of those decisions with one uniform
//! criterion, exactly the fault-class framing the paper uses: an input
//! class of a gate is *testable under the pattern set* if some pattern
//! produces the class at the gate **and** flipping the gate output on that
//! pattern reaches a primary output. Classes the paper's pattern family
//! leaves untestable trigger the reduction. Because the decidable pattern
//! family is enumerated with caps (see [`crate::patterns`]), every accepted
//! rewrite is additionally verified against the reference function and
//! reverted if the truncated family was too optimistic — the
//! [`RedundancyStats`] report how often that safety net fired (on the
//! paper's benchmark family: essentially never).

use crate::patterns::Pattern;
use crate::verify::EquivChecker;
use std::time::Instant;
use xsynth_net::{GateKind, Network, NodeKind, SignalId};
use xsynth_sim::{pack_patterns, PatternBlock};
use xsynth_trace::{TraceBuffer, TraceSink};

/// Counters describing what the redundancy pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RedundancyStats {
    /// XOR gates rewritten to OR (Property 3).
    pub xor_to_or: usize,
    /// XOR gates rewritten to AND-with-complement (Property 4).
    pub xor_to_and: usize,
    /// AND/OR fanin wires removed as stuck-at redundant.
    pub fanin_removed: usize,
    /// Gates replaced by constants.
    pub const_replaced: usize,
    /// Total rewrites attempted.
    pub attempted: usize,
    /// Rewrites the equivalence check rejected (pattern family was too
    /// small to witness testability).
    pub reverted: usize,
    /// Whether a phase deadline stopped the sweeps early (the network
    /// returned is still verified — only further reductions were skipped).
    pub curtailed: bool,
}

/// One 64-lane simulation block.
struct Block {
    lane_mask: u64,
    values: Vec<u64>,
}

struct SimState {
    order: Vec<SignalId>,
    /// position of each node in `order` (usize::MAX if unreachable)
    pos: Vec<usize>,
    blocks: Vec<Block>,
}

fn build_sim(net: &Network, pattern_blocks: &[PatternBlock]) -> SimState {
    let order = net.topo_order();
    let mut pos = vec![usize::MAX; net.num_nodes()];
    for (i, &id) in order.iter().enumerate() {
        pos[id.index()] = i;
    }
    let n_in = net.inputs().len();
    let mut blocks = Vec::new();
    for pb in pattern_blocks {
        assert_eq!(pb.words.len(), n_in, "pattern block arity mismatch");
        let values = simulate(net, &order, &pb.words);
        blocks.push(Block {
            lane_mask: pb.lane_mask(),
            values,
        });
    }
    SimState { order, pos, blocks }
}

fn simulate(net: &Network, order: &[SignalId], input_words: &[u64]) -> Vec<u64> {
    let mut val = vec![0u64; net.num_nodes()];
    for (i, &id) in net.inputs().iter().enumerate() {
        val[id.index()] = input_words[i];
    }
    for &id in order {
        if let NodeKind::Gate(k) = net.kind(id) {
            val[id.index()] = eval_words(*k, net.fanins(id), &val);
        }
    }
    val
}

fn eval_words(kind: GateKind, fanins: &[SignalId], val: &[u64]) -> u64 {
    use GateKind::*;
    let mut it = fanins.iter().map(|f| val[f.index()]);
    match kind {
        Const0 => 0,
        Const1 => !0,
        Buf => it.next().expect("buf fanin"),
        Not => !it.next().expect("not fanin"),
        And => it.fold(!0u64, |a, b| a & b),
        Nand => !it.fold(!0u64, |a, b| a & b),
        Or => it.fold(0u64, |a, b| a | b),
        Nor => !it.fold(0u64, |a, b| a | b),
        Xor => it.fold(0u64, |a, b| a ^ b),
        Xnor => !it.fold(0u64, |a, b| a ^ b),
    }
}

/// Whether flipping `node`'s value on `flip_mask` lanes of `block` changes
/// any primary output.
fn flip_propagates(
    net: &Network,
    state: &SimState,
    block: &Block,
    node: SignalId,
    flip_mask: u64,
) -> bool {
    if flip_mask == 0 {
        return false;
    }
    let start = state.pos[node.index()];
    if start == usize::MAX {
        // the node became unreachable after an earlier rewrite this pass
        return false;
    }
    let mut val = block.values.clone();
    val[node.index()] ^= flip_mask;
    for &id in &state.order[start + 1..] {
        if let NodeKind::Gate(k) = net.kind(id) {
            val[id.index()] = eval_words(*k, net.fanins(id), &val);
        }
    }
    net.outputs()
        .iter()
        .any(|&(_, s)| (val[s.index()] ^ block.values[s.index()]) & block.lane_mask != 0)
}

/// Whether flipping the `idx`-th *fanin wire* of `gate` (a branch fault —
/// the driver keeps its value elsewhere) on `flip_mask` lanes changes any
/// primary output.
fn wire_flip_propagates(
    net: &Network,
    state: &SimState,
    block: &Block,
    gate: SignalId,
    idx: usize,
    flip_mask: u64,
) -> bool {
    if flip_mask == 0 {
        return false;
    }
    let NodeKind::Gate(kind) = net.kind(gate) else {
        return false;
    };
    let fanins = net.fanins(gate);
    let mut vals: Vec<u64> = fanins.iter().map(|f| block.values[f.index()]).collect();
    vals[idx] ^= flip_mask;
    let mut it = vals.iter().copied();
    use GateKind::*;
    let new_gate_val = match kind {
        Const0 => 0,
        Const1 => !0,
        Buf => it.next().expect("fanin"),
        Not => !it.next().expect("fanin"),
        And => it.fold(!0u64, |a, b| a & b),
        Nand => !it.fold(!0u64, |a, b| a & b),
        Or => it.fold(0u64, |a, b| a | b),
        Nor => !it.fold(0u64, |a, b| a | b),
        Xor => it.fold(0u64, |a, b| a ^ b),
        Xnor => !it.fold(0u64, |a, b| a ^ b),
    };
    let diff = new_gate_val ^ block.values[gate.index()];
    flip_propagates(net, state, block, gate, diff)
}

/// Whether the `(a, b)` input class of two-input gate `gate` is testable
/// under the simulated pattern set: some pattern exhibits the class and
/// the gate's output fault effect reaches a primary output there.
fn class_testable(net: &Network, state: &SimState, gate: SignalId, a: bool, b: bool) -> bool {
    let f = net.fanins(gate);
    let (g, h) = (f[0], f[1]);
    for block in &state.blocks {
        let wg = block.values[g.index()];
        let wh = block.values[h.index()];
        let class = (if a { wg } else { !wg }) & (if b { wh } else { !wh }) & block.lane_mask;
        if class != 0 && flip_propagates(net, state, block, gate, class) {
            return true;
        }
    }
    false
}

/// Whether the stuck-at-`stuck` fault on the `idx`-th fanin wire of `gate`
/// is testable under the pattern set.
fn wire_fault_testable(
    net: &Network,
    state: &SimState,
    gate: SignalId,
    idx: usize,
    stuck: bool,
) -> bool {
    let wire = net.fanins(gate)[idx];
    for block in &state.blocks {
        let w = block.values[wire.index()];
        // the fault is excited on lanes where the wire differs from `stuck`
        let excited = (if stuck { !w } else { w }) & block.lane_mask;
        if wire_flip_propagates(net, state, block, gate, idx, excited) {
            return true;
        }
    }
    false
}

/// Runs the full redundancy-removal pass over `net`, driving decisions
/// with the supplied pattern set and guarding every rewrite with
/// `checker`. Returns the cleaned network and the pass statistics.
///
/// # Panics
///
/// Panics if `patterns` is empty (at least the AZ/AO pair is required).
pub fn remove_redundancy(
    net: &Network,
    patterns: &[Pattern],
    checker: &mut EquivChecker,
    max_passes: usize,
) -> (Network, RedundancyStats) {
    let sink = TraceSink::new();
    let mut buf = sink.buffer(0, "redundancy");
    let result = remove_redundancy_traced(net, patterns, checker, max_passes, &mut buf);
    buf.discard();
    result
}

/// [`remove_redundancy`] recording into a trace buffer: each sweep runs in
/// a `pass` span carrying the rewrite counters it contributed
/// (`redundancy.xor_to_or`, `redundancy.xor_to_and`,
/// `redundancy.fanin_removed`, `redundancy.const_replaced`,
/// `redundancy.reverted`).
///
/// # Panics
///
/// Panics if `patterns` is empty (at least the AZ/AO pair is required).
pub fn remove_redundancy_traced(
    net: &Network,
    patterns: &[Pattern],
    checker: &mut EquivChecker,
    max_passes: usize,
    buf: &mut TraceBuffer,
) -> (Network, RedundancyStats) {
    assert!(!patterns.is_empty(), "need at least one pattern (AZ/AO)");
    let blocks = pack_patterns(net.inputs().len(), patterns);
    remove_redundancy_governed(net, &blocks, checker, max_passes, None, buf)
}

/// The governed core of the pass: consumes the pattern set in word-packed
/// form (one simulation word per 64 patterns, never a `Vec<bool>` per
/// pattern) and stops sweeping when `deadline` passes — the network
/// already rewritten and verified is kept, and
/// [`RedundancyStats::curtailed`] plus a `redundancy.curtailed` trace
/// counter record the early stop.
///
/// # Panics
///
/// Panics if `blocks` is empty (at least the AZ/AO pair is required).
pub fn remove_redundancy_governed(
    net: &Network,
    blocks: &[PatternBlock],
    checker: &mut EquivChecker,
    max_passes: usize,
    deadline: Option<Instant>,
    buf: &mut TraceBuffer,
) -> (Network, RedundancyStats) {
    assert!(!blocks.is_empty(), "need at least one pattern (AZ/AO)");
    xsynth_trace::fail_point!("core.redundancy");
    // Every rewrite is accepted only if the equivalence checker still
    // passes; the `core.redundancy.accept` failpoint forces a rejection to
    // exercise the rollback path deterministically.
    fn accept(checker: &mut EquivChecker, cur: &Network) -> bool {
        xsynth_trace::fail_point!("core.redundancy.accept", false);
        checker.check(cur)
    }
    let past_deadline = || deadline.is_some_and(|d| Instant::now() >= d);
    let mut cur = net.clone();
    let mut stats = RedundancyStats::default();

    for _pass in 0..max_passes {
        if past_deadline() {
            stats.curtailed = true;
            break;
        }
        buf.begin("pass");
        let before = stats.clone();
        let mut changed = false;
        let mut state = build_sim(&cur, blocks);
        // POs first (reverse topological), per the paper's step 1; the
        // backward domino of Properties 6–7 emerges from re-simulating
        // after each accepted rewrite.
        let mut order_rev = state.order.clone();
        order_rev.reverse();
        for id in order_rev {
            if past_deadline() {
                stats.curtailed = true;
                break;
            }
            let Some(kind) = cur.gate_kind(id) else {
                continue;
            };
            if state.pos[id.index()] == usize::MAX {
                continue; // unreachable after an earlier rewrite this pass
            }
            match kind {
                GateKind::Xor if cur.fanins(id).len() == 2 => {
                    let f = cur.fanins(id).to_vec();
                    let (g, h) = (f[0], f[1]);
                    let t11 = class_testable(&cur, &state, id, true, true);
                    let proposal: Option<(GateKind, Vec<SignalId>, bool)> = if !t11 {
                        Some((GateKind::Or, vec![g, h], true))
                    } else if !class_testable(&cur, &state, id, false, true) {
                        // f = g·¬h ... class (0,1) missing means the XOR
                        // only ever sees (0,0),(1,0),(1,1) → f = g·¬h
                        Some((GateKind::And, vec![g, h], false))
                    } else if !class_testable(&cur, &state, id, true, false) {
                        Some((GateKind::And, vec![h, g], false))
                    } else {
                        None
                    };
                    if let Some((nk, fanins, is_or)) = proposal {
                        stats.attempted += 1;
                        let snapshot = cur.clone();
                        if is_or {
                            cur.replace_gate(id, nk, fanins);
                        } else {
                            // And(keep, ¬drop)
                            let keep = fanins[0];
                            let drop = fanins[1];
                            let nd = cur.add_gate(GateKind::Not, vec![drop]);
                            cur.replace_gate(id, GateKind::And, vec![keep, nd]);
                        }
                        if accept(checker, &cur) {
                            if is_or {
                                stats.xor_to_or += 1;
                            } else {
                                stats.xor_to_and += 1;
                            }
                            changed = true;
                            state = build_sim(&cur, blocks);
                        } else {
                            stats.reverted += 1;
                            cur = snapshot;
                            state = build_sim(&cur, blocks);
                        }
                    }
                }
                GateKind::And | GateKind::Or => {
                    let mut idx = 0;
                    while idx < cur.fanins(id).len() && cur.fanins(id).len() > 1 {
                        // For AND: s-a-1 redundant fanin → drop the wire;
                        // s-a-0 redundant → the whole gate is constant 0.
                        // For OR the dual.
                        let (drop_stuck, const_stuck) = match kind {
                            GateKind::And => (true, false),
                            _ => (false, true),
                        };
                        if !wire_fault_testable(&cur, &state, id, idx, drop_stuck) {
                            stats.attempted += 1;
                            let snapshot = cur.clone();
                            let mut fanins = cur.fanins(id).to_vec();
                            fanins.remove(idx);
                            if fanins.len() == 1 {
                                cur.replace_gate(id, GateKind::Buf, fanins);
                            } else {
                                cur.replace_gate(id, kind, fanins);
                            }
                            if accept(checker, &cur) {
                                stats.fanin_removed += 1;
                                changed = true;
                                state = build_sim(&cur, blocks);
                                if cur.gate_kind(id) == Some(GateKind::Buf) {
                                    break;
                                }
                                continue; // same idx now holds next fanin
                            } else {
                                stats.reverted += 1;
                                cur = snapshot;
                                state = build_sim(&cur, blocks);
                            }
                        } else if !wire_fault_testable(&cur, &state, id, idx, const_stuck) {
                            stats.attempted += 1;
                            let snapshot = cur.clone();
                            let ck = if kind == GateKind::And {
                                GateKind::Const0
                            } else {
                                GateKind::Const1
                            };
                            cur.replace_gate(id, ck, vec![]);
                            if accept(checker, &cur) {
                                stats.const_replaced += 1;
                                changed = true;
                                state = build_sim(&cur, blocks);
                                break;
                            } else {
                                stats.reverted += 1;
                                cur = snapshot;
                                state = build_sim(&cur, blocks);
                            }
                        }
                        idx += 1;
                    }
                }
                _ => {}
            }
        }
        buf.count(
            "redundancy.xor_to_or",
            (stats.xor_to_or - before.xor_to_or) as u64,
        );
        buf.count(
            "redundancy.xor_to_and",
            (stats.xor_to_and - before.xor_to_and) as u64,
        );
        buf.count(
            "redundancy.fanin_removed",
            (stats.fanin_removed - before.fanin_removed) as u64,
        );
        buf.count(
            "redundancy.const_replaced",
            (stats.const_replaced - before.const_replaced) as u64,
        );
        buf.count(
            "redundancy.reverted",
            (stats.reverted - before.reverted) as u64,
        );
        // the cross-phase self-checking-rewrite counter (shared with the
        // emission self-check in synth.rs): every reverted rewrite is a
        // rollback
        buf.count(
            "rewrite.rolled_back",
            (stats.reverted - before.reverted) as u64,
        );
        buf.end();
        if stats.curtailed || !changed {
            break;
        }
    }
    if stats.curtailed {
        buf.count("redundancy.curtailed", 1);
    }
    (cur.sweep(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{paper_patterns, PatternOptions};
    use xsynth_boolean::{Polarity, VarSet};
    use xsynth_sim::exhaustive_patterns;

    /// Builds the network for cube list in positive polarity via the cube
    /// method without rules, plus its paper pattern family.
    fn setup(n: usize, cubes: &[VarSet]) -> (Network, Vec<Pattern>) {
        let e = crate::factor::factor_cubes(cubes, false);
        let mut net = Network::new("t");
        let inputs: Vec<SignalId> = (0..n).map(|i| net.add_input(format!("x{i}"))).collect();
        let pol = Polarity::all_positive(n);
        let mut lits = crate::factor::literal_supplier(&pol, &inputs);
        let s = e.emit(&mut net, &mut lits);
        net.add_output("f", s);
        let pats = paper_patterns(n, &pol, cubes, &PatternOptions::default());
        (net, pats)
    }

    fn xor_count(net: &Network) -> usize {
        net.topo_order()
            .iter()
            .filter(|&&id| net.gate_kind(id) == Some(GateKind::Xor))
            .count()
    }

    #[test]
    fn or_reduction_on_disjoint_products() {
        // f = x0x1 ⊕ x2x3 ... (1,1) IS controllable (set all four), so no
        // reduction; but f = x0x1 ⊕ x0x1x2 reduces by rule (a) → here the
        // XOR sees (1,1) only when... x0x1=1, x0x1x2=1 possible → (1,1)
        // controllable; f = ab ⊕ (a⊕b)c carry: ab=1 forces a⊕b=0.
        let mut net = Network::new("carry");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let ab = net.add_gate(GateKind::And, vec![a, b]);
        let axb = net.add_gate(GateKind::Xor, vec![a, b]);
        let t = net.add_gate(GateKind::And, vec![axb, c]);
        let carry = net.add_gate(GateKind::Xor, vec![ab, t]);
        net.add_output("cout", carry);
        let pats = exhaustive_patterns(3);
        let mut checker = EquivChecker::new(&net);
        let (out, stats) = remove_redundancy(&net, &pats, &mut checker, 8);
        // The outer carry XOR reduces by controllability (ab = 1 forces
        // (a⊕b)·c = 0), and Property 6's domino then makes the a⊕b gate's
        // (1,1) class unobservable (ab = 1 dominates the OR), so BOTH
        // gates become OR: cout = ab + (a+b)·c — the classic carry form.
        assert_eq!(stats.xor_to_or, 2, "{stats:?}");
        assert_eq!(stats.reverted, 0);
        assert_eq!(xor_count(&out), 0);
        for m in 0..8u64 {
            assert_eq!(out.eval_u64(m), net.eval_u64(m));
        }
    }

    #[test]
    fn parity_is_never_reduced() {
        let cubes: Vec<VarSet> = (0..4).map(VarSet::singleton).collect();
        let (net, pats) = setup(4, &cubes);
        let mut checker = EquivChecker::new(&net);
        let (out, stats) = remove_redundancy(&net, &pats, &mut checker, 8);
        assert_eq!(stats.xor_to_or + stats.xor_to_and, 0, "{stats:?}");
        assert_eq!(xor_count(&out), 3);
    }

    #[test]
    fn rule_a_pattern_via_simulation() {
        // f = x0 ⊕ x0·x1 = x0·¬x1: the (0,1) class of the XOR is
        // uncontrollable (x0 = 0 forces x0·x1 = 0). Built by hand because
        // the cube-method factoring already absorbs this into ¬x1.
        let mut net = Network::new("rule_a");
        let x0 = net.add_input("x0");
        let x1 = net.add_input("x1");
        let and = net.add_gate(GateKind::And, vec![x0, x1]);
        let f = net.add_gate(GateKind::Xor, vec![x0, and]);
        net.add_output("f", f);
        let pol = Polarity::all_positive(2);
        let cubes = vec![VarSet::from_vars([0]), VarSet::from_vars([0, 1])];
        let pats = paper_patterns(2, &pol, &cubes, &PatternOptions::default());
        let mut checker = EquivChecker::new(&net);
        let (out, stats) = remove_redundancy(&net, &pats, &mut checker, 8);
        assert_eq!(stats.xor_to_and, 1, "{stats:?}");
        assert_eq!(xor_count(&out), 0);
        for m in 0..4u64 {
            assert_eq!(out.eval_u64(m)[0], (m & 1 != 0) && (m & 2 == 0));
        }
    }

    #[test]
    fn rule_b_pattern_via_simulation() {
        // f = x0 ⊕ x1 ⊕ x0x1 = x0 + x1: needs two reductions (domino)
        let cubes = vec![
            VarSet::singleton(0),
            VarSet::singleton(1),
            VarSet::from_vars([0, 1]),
        ];
        let (net, pats) = setup(2, &cubes);
        let mut checker = EquivChecker::new(&net);
        let (out, stats) = remove_redundancy(&net, &pats, &mut checker, 8);
        assert_eq!(xor_count(&out), 0, "{stats:?}");
        for m in 0..4u64 {
            assert_eq!(out.eval_u64(m)[0], m != 0);
        }
    }

    #[test]
    fn redundant_and_fanin_removed() {
        // g = a·b, f = g ⊕ a·b·c ... simpler: direct AND with duplicated
        // logic: f = (a·a)·b — sweep alone fixes that; instead craft
        // or-gate with covered fanin: f = a + a·b: the a·b fanin wire
        // s-a-0 is untestable → removed.
        let mut net = Network::new("cov");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let ab = net.add_gate(GateKind::And, vec![a, b]);
        let o = net.add_gate(GateKind::Or, vec![a, ab]);
        net.add_output("f", o);
        let pats = exhaustive_patterns(2);
        let mut checker = EquivChecker::new(&net);
        let (out, stats) = remove_redundancy(&net, &pats, &mut checker, 8);
        assert!(stats.fanin_removed >= 1, "{stats:?}");
        assert_eq!(out.num_gates(), 0, "f collapses to the wire a");
        for m in 0..4u64 {
            assert_eq!(out.eval_u64(m)[0], m & 1 != 0);
        }
    }

    #[test]
    fn paper_example_chain() {
        // Section 4's closing identity: (B ⊕ C) ⊕ BC = B + C
        let mut net = Network::new("chain");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let bxc = net.add_gate(GateKind::Xor, vec![b, c]);
        let bc = net.add_gate(GateKind::And, vec![b, c]);
        let f = net.add_gate(GateKind::Xor, vec![bxc, bc]);
        net.add_output("f", f);
        let pats = exhaustive_patterns(2);
        let mut checker = EquivChecker::new(&net);
        let (out, stats) = remove_redundancy(&net, &pats, &mut checker, 8);
        assert_eq!(xor_count(&out), 0, "{stats:?}");
        // final: single OR gate
        assert_eq!(out.num_gates(), 1);
        for m in 0..4u64 {
            assert_eq!(out.eval_u64(m)[0], m != 0);
        }
    }

    #[test]
    fn insufficient_patterns_trigger_revert_not_corruption() {
        // With only the AZ pattern, everything looks untestable; the
        // checker must veto wrong rewrites and keep the function intact.
        let cubes = vec![VarSet::singleton(0), VarSet::singleton(1)];
        let (net, _) = setup(2, &cubes);
        let az = vec![vec![false, false]];
        let mut checker = EquivChecker::new(&net);
        let (out, stats) = remove_redundancy(&net, &az, &mut checker, 4);
        assert!(stats.reverted > 0, "{stats:?}");
        for m in 0..4u64 {
            assert_eq!(out.eval_u64(m), net.eval_u64(m));
        }
    }

    #[test]
    fn expired_deadline_curtails_but_preserves_function() {
        // the classic carry (normally reduced to 2 ORs) under an
        // already-expired deadline: nothing rewritten, function intact
        let mut net = Network::new("carry");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let ab = net.add_gate(GateKind::And, vec![a, b]);
        let axb = net.add_gate(GateKind::Xor, vec![a, b]);
        let t = net.add_gate(GateKind::And, vec![axb, c]);
        let carry = net.add_gate(GateKind::Xor, vec![ab, t]);
        net.add_output("cout", carry);
        let pats = exhaustive_patterns(3);
        let blocks = xsynth_sim::pack_patterns(3, &pats);
        let mut checker = EquivChecker::new(&net);
        let sink = TraceSink::new();
        let (out, stats) = {
            let mut buf = sink.buffer(0, "redundancy");
            remove_redundancy_governed(
                &net,
                &blocks,
                &mut checker,
                8,
                Some(std::time::Instant::now()),
                &mut buf,
            )
        };
        assert!(stats.curtailed, "{stats:?}");
        assert_eq!(stats.xor_to_or + stats.xor_to_and, 0);
        for m in 0..8u64 {
            assert_eq!(out.eval_u64(m), net.eval_u64(m));
        }
        assert_eq!(sink.take().counter_totals()["redundancy.curtailed"], 1);
    }

    #[test]
    fn t481_style_reduction() {
        // f = x0 ⊕ x1 ⊕ x0x1 ⊕ x2. Whether the OR reduction fires depends
        // on how the balanced XOR tree pairs the operands: the cube-method
        // emit pairs (x1 ⊕ x2) first (sorted order), which is irreducible,
        // so the automatic flow keeps 2 XOR gates here...
        let cubes = vec![
            VarSet::singleton(0),
            VarSet::singleton(1),
            VarSet::from_vars([0, 1]),
            VarSet::singleton(2),
        ];
        let (net, pats) = setup(3, &cubes);
        let mut checker = EquivChecker::new(&net);
        let (out, _stats) = remove_redundancy(&net, &pats, &mut checker, 8);
        assert_eq!(xor_count(&out), 2);
        for m in 0..8u64 {
            assert_eq!(out.eval_u64(m), net.eval_u64(m));
        }

        // ...while the pairing ((x0·¬x1) ⊕ x1) ⊕ x2 exposes the Property 3
        // reduction: x0·¬x1 = 1 forces x1 = 0, so the inner (1,1) class is
        // uncontrollable and the inner XOR becomes OR.
        let mut net2 = Network::new("paired");
        let x0 = net2.add_input("x0");
        let x1 = net2.add_input("x1");
        let x2 = net2.add_input("x2");
        let n1 = net2.add_gate(GateKind::Not, vec![x1]);
        let t0 = net2.add_gate(GateKind::And, vec![x0, n1]);
        let inner = net2.add_gate(GateKind::Xor, vec![t0, x1]);
        let outer = net2.add_gate(GateKind::Xor, vec![inner, x2]);
        net2.add_output("f", outer);
        let mut checker2 = EquivChecker::new(&net2);
        let pol = Polarity::all_positive(3);
        let pats2 = paper_patterns(3, &pol, &cubes, &PatternOptions::default());
        let (out2, stats2) = remove_redundancy(&net2, &pats2, &mut checker2, 8);
        assert_eq!(stats2.xor_to_or, 1, "{stats2:?}");
        assert_eq!(xor_count(&out2), 1);
        for m in 0..8u64 {
            assert_eq!(out2.eval_u64(m), net2.eval_u64(m));
        }
    }
}
