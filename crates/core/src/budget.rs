//! Resource budgets for the synthesis pipeline.
//!
//! A [`Budget`] carried in [`SynthOptions`](crate::SynthOptions) bounds the
//! three resources the FPRM flow can otherwise consume without limit: BDD
//! nodes (polarity search and verification both grow the shared manager),
//! wall-clock time per phase, and simulation pattern counts. Phases that
//! can degrade gracefully do — the polarity search keeps its best
//! polarity so far, redundancy removal stops sweeping, verification falls
//! back to fixed-seed simulation — and phases that cannot report a typed
//! [`BudgetExceeded`] through [`Error::Budget`](crate::Error::Budget)
//! instead of panicking or growing unboundedly.

use std::fmt;
use std::time::{Duration, Instant};

/// Resource limits for one synthesis run. The default is unlimited.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use xsynth_core::Budget;
///
/// let b = Budget::default()
///     .bdd_node_cap(Some(5000))
///     .phase_timeout(Some(Duration::from_millis(200)));
/// assert!(!b.is_unlimited());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct Budget {
    /// Cap on nodes any one BDD manager in the pipeline may allocate.
    pub bdd_node_cap: Option<usize>,
    /// Wall-clock budget for each pipeline phase.
    pub phase_timeout: Option<Duration>,
    /// Cap on the number of patterns in any one simulation pattern set.
    pub max_patterns: Option<usize>,
}

impl Budget {
    /// An explicitly unlimited budget (the default).
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Whether no limit is set at all.
    pub fn is_unlimited(&self) -> bool {
        self.bdd_node_cap.is_none() && self.phase_timeout.is_none() && self.max_patterns.is_none()
    }

    /// Sets the BDD node cap.
    pub fn bdd_node_cap(mut self, cap: Option<usize>) -> Budget {
        self.bdd_node_cap = cap;
        self
    }

    /// Sets the per-phase wall-clock budget.
    pub fn phase_timeout(mut self, timeout: Option<Duration>) -> Budget {
        self.phase_timeout = timeout;
        self
    }

    /// Sets the simulation-pattern cap.
    pub fn max_patterns(mut self, cap: Option<usize>) -> Budget {
        self.max_patterns = cap;
        self
    }

    /// The deadline of a phase starting now, if a phase timeout is set.
    pub fn phase_deadline(&self) -> Option<Instant> {
        self.phase_timeout.map(|t| Instant::now() + t)
    }

    /// Caps a pattern count: `min(count, max_patterns)`, but at least one
    /// pattern so governed paths still exercise the candidate.
    pub fn cap_patterns(&self, count: usize) -> usize {
        match self.max_patterns {
            Some(cap) => count.min(cap).max(1),
            None => count,
        }
    }
}

/// The resource a [`BudgetExceeded`] trip exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// The BDD node cap ([`Budget::bdd_node_cap`]).
    BddNodes,
    /// The per-phase wall clock ([`Budget::phase_timeout`]).
    PhaseTime,
    /// The simulation-pattern cap ([`Budget::max_patterns`]).
    Patterns,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Resource::BddNodes => "BDD node cap",
            Resource::PhaseTime => "phase time budget",
            Resource::Patterns => "pattern cap",
        })
    }
}

/// A typed report that a pipeline phase ran out of budget where no
/// degraded result was possible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The pipeline phase that tripped (e.g. `bdd`, `fprm`, `verify`).
    pub phase: String,
    /// Which resource ran out.
    pub resource: Resource,
    /// The configured limit (nodes, milliseconds, or patterns).
    pub limit: u64,
}

impl BudgetExceeded {
    /// Builds a trip report for `phase`.
    pub fn new(phase: impl Into<String>, resource: Resource, limit: u64) -> BudgetExceeded {
        BudgetExceeded {
            phase: phase.into(),
            resource,
            limit,
        }
    }
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let unit = match self.resource {
            Resource::BddNodes => "nodes",
            Resource::PhaseTime => "ms",
            Resource::Patterns => "patterns",
        };
        write!(
            f,
            "phase `{}` exceeded its {} ({} {unit})",
            self.phase, self.resource, self.limit
        )
    }
}

impl std::error::Error for BudgetExceeded {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited() {
        let b = Budget::default();
        assert!(b.is_unlimited());
        assert!(b.phase_deadline().is_none());
        assert_eq!(b.cap_patterns(4096), 4096);
    }

    #[test]
    fn setters_and_caps() {
        let b = Budget::unlimited()
            .bdd_node_cap(Some(100))
            .max_patterns(Some(16));
        assert!(!b.is_unlimited());
        assert_eq!(b.cap_patterns(4096), 16);
        assert_eq!(b.cap_patterns(0), 1, "governed paths keep one pattern");
        let t = Budget::default().phase_timeout(Some(Duration::from_millis(5)));
        let d = t.phase_deadline().expect("deadline");
        assert!(d > Instant::now());
    }

    #[test]
    fn exceeded_display_names_phase_and_resource() {
        let e = BudgetExceeded::new("fprm", Resource::BddNodes, 5000);
        let s = e.to_string();
        assert!(s.contains("fprm") && s.contains("BDD node cap") && s.contains("5000"));
    }
}
