//! Deterministic single-stuck-at test generation (the "conventional test
//! generation" the paper's flow makes unnecessary).
//!
//! The paper claims its networks come with a complete test set read off
//! the FPRM cubes, with no ATPG run. To *quantify* that claim we need an
//! actual ATPG to compare against; this module provides a complete one
//! built on the workspace's ROBDD package: a fault is testable iff the
//! XOR of the good and faulty output functions is satisfiable, and any
//! satisfying assignment is a test. Unsatisfiability is a proof of
//! redundancy — exact, no aborts (within the BDD size limits of the
//! benchmark family).

use crate::verify::network_bdds;
use xsynth_bdd::{Bdd, BddManager};
use xsynth_net::{GateKind, Network, NodeKind};
use xsynth_sim::fault::{Fault, FaultSite};
use xsynth_sim::{fault_simulate, Pattern};

/// The outcome of a test-generation run.
#[derive(Debug, Clone)]
pub struct AtpgResult {
    /// A compacted test set detecting every testable target fault.
    pub tests: Vec<Pattern>,
    /// Faults proven untestable (redundant wires).
    pub redundant: Vec<Fault>,
}

impl AtpgResult {
    /// Fault coverage over the targeted faults.
    pub fn coverage(&self, total: usize) -> f64 {
        if total == 0 {
            1.0
        } else {
            (total - self.redundant.len()) as f64 / total as f64
        }
    }
}

/// Builds the output BDDs of `net` with `fault` injected.
fn faulty_bdds(net: &Network, bm: &mut BddManager, fault: Fault) -> Vec<Bdd> {
    let stuck = bm.constant(fault.stuck_at);
    let mut val: Vec<Option<Bdd>> = vec![None; net.num_nodes()];
    for (i, &id) in net.inputs().iter().enumerate() {
        let v = bm.var(i);
        val[id.index()] = Some(v);
    }
    if let FaultSite::Output(s) = fault.site {
        if matches!(net.kind(s), NodeKind::Input) {
            val[s.index()] = Some(stuck);
        }
    }
    for id in net.topo_order() {
        let NodeKind::Gate(kind) = net.kind(id) else {
            continue;
        };
        let fan: Vec<Bdd> = net
            .fanins(id)
            .iter()
            .enumerate()
            .map(|(k, f)| {
                if fault.site == FaultSite::Fanin(id, k) {
                    stuck
                } else {
                    val[f.index()].expect("topological order")
                }
            })
            .collect();
        let b = eval_gate_bdd(bm, *kind, &fan);
        val[id.index()] = Some(if fault.site == FaultSite::Output(id) {
            stuck
        } else {
            b
        });
    }
    net.outputs()
        .iter()
        .map(|&(_, s)| val[s.index()].expect("outputs reachable"))
        .collect()
}

fn eval_gate_bdd(bm: &mut BddManager, kind: GateKind, fan: &[Bdd]) -> Bdd {
    use GateKind::*;
    match kind {
        Const0 => Bdd::ZERO,
        Const1 => Bdd::ONE,
        Buf => fan[0],
        Not => bm.not(fan[0]),
        And => fan.iter().fold(Bdd::ONE, |a, &x| bm.and(a, x)),
        Nand => {
            let t = fan.iter().fold(Bdd::ONE, |a, &x| bm.and(a, x));
            bm.not(t)
        }
        Or => fan.iter().fold(Bdd::ZERO, |a, &x| bm.or(a, x)),
        Nor => {
            let t = fan.iter().fold(Bdd::ZERO, |a, &x| bm.or(a, x));
            bm.not(t)
        }
        Xor => fan.iter().fold(Bdd::ZERO, |a, &x| bm.xor(a, x)),
        Xnor => {
            let t = fan.iter().fold(Bdd::ZERO, |a, &x| bm.xor(a, x));
            bm.not(t)
        }
    }
}

/// Generates a test for one fault: any input assignment on which some
/// output of the faulty network differs from the good one, or `None` when
/// the fault is provably redundant.
pub fn generate_test(net: &Network, fault: Fault) -> Option<Pattern> {
    let n = net.inputs().len();
    let mut bm = BddManager::new(n);
    let good = network_bdds(net, &mut bm);
    let bad = faulty_bdds(net, &mut bm, fault);
    let mut diff = Bdd::ZERO;
    for (&g, &b) in good.iter().zip(bad.iter()) {
        let x = bm.xor(g, b);
        diff = bm.or(diff, x);
    }
    bm.any_sat(diff)
}

/// Complete test generation for a fault list: fault-simulates the
/// accumulated test set first (so easy faults ride along for free), runs
/// the BDD ATPG on the survivors, and returns the compacted set plus the
/// proven-redundant faults.
pub fn generate_tests(net: &Network, faults: &[Fault]) -> AtpgResult {
    let mut tests: Vec<Pattern> = Vec::new();
    let mut redundant = Vec::new();
    let mut remaining: Vec<Fault> = faults.to_vec();
    while !remaining.is_empty() {
        // drop everything the current set already detects
        if !tests.is_empty() {
            let rep = fault_simulate(net, &tests, &remaining);
            remaining = rep.undetected;
        }
        let Some(&target) = remaining.first() else {
            break;
        };
        match generate_test(net, target) {
            Some(p) => tests.push(p),
            None => {
                redundant.push(target);
                remaining.remove(0);
            }
        }
    }
    AtpgResult { tests, redundant }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsynth_sim::{enumerate_faults, exhaustive_patterns};

    fn xor_as_aoi() -> Network {
        let mut n = Network::new("xor_aoi");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let na = n.add_gate(GateKind::Not, vec![a]);
        let nb = n.add_gate(GateKind::Not, vec![b]);
        let l = n.add_gate(GateKind::And, vec![a, nb]);
        let r = n.add_gate(GateKind::And, vec![na, b]);
        let o = n.add_gate(GateKind::Or, vec![l, r]);
        n.add_output("y", o);
        n
    }

    #[test]
    fn complete_set_for_irredundant_circuit() {
        let net = xor_as_aoi();
        let faults = enumerate_faults(&net);
        let result = generate_tests(&net, &faults);
        assert!(result.redundant.is_empty(), "{:?}", result.redundant);
        // the generated set must detect every fault
        let rep = fault_simulate(&net, &result.tests, &faults);
        assert_eq!(rep.undetected, vec![]);
        // Hayes: a two-input XOR needs all four patterns
        assert_eq!(result.tests.len(), 4);
    }

    #[test]
    fn redundancy_is_proven() {
        // y = a·b + a·b: the duplicate's wire is untestable
        let mut net = Network::new("red");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let g1 = net.add_gate(GateKind::And, vec![a, b]);
        let g2 = net.add_gate(GateKind::And, vec![a, b]);
        let o = net.add_gate(GateKind::Or, vec![g1, g2]);
        net.add_output("y", o);
        let f = Fault {
            site: FaultSite::Fanin(o, 1),
            stuck_at: false,
        };
        assert_eq!(generate_test(&net, f), None, "provably redundant");
        // but the OR output itself is testable
        let f2 = Fault {
            site: FaultSite::Output(o),
            stuck_at: false,
        };
        let p = generate_test(&net, f2).expect("testable");
        assert_eq!(p, vec![true, true]);
        let _ = g2;
    }

    #[test]
    fn atpg_matches_exhaustive_verdicts() {
        // every fault ATPG calls testable must be detected exhaustively,
        // and vice versa
        let net = xor_as_aoi();
        let faults = enumerate_faults(&net);
        let exhaustive = fault_simulate(&net, &exhaustive_patterns(2), &faults);
        for &f in &faults {
            let atpg_testable = generate_test(&net, f).is_some();
            let sim_testable = !exhaustive.undetected.contains(&f);
            assert_eq!(atpg_testable, sim_testable, "{f}");
        }
    }

    #[test]
    fn input_stuck_faults_handled() {
        let mut net = Network::new("w");
        let a = net.add_input("a");
        net.add_output("y", a);
        let f = Fault {
            site: FaultSite::Output(a),
            stuck_at: true,
        };
        let p = generate_test(&net, f).expect("input stuck-at-1 testable");
        assert_eq!(p, vec![false]);
    }

    #[test]
    fn synthesized_benchmark_gets_compact_complete_set() {
        let spec = xsynth_circuits_stub();
        let out = crate::synthesize(&spec, &crate::SynthOptions::default()).network;
        let faults = enumerate_faults(&out);
        let result = generate_tests(&out, &faults);
        let rep = fault_simulate(&out, &result.tests, &faults);
        assert_eq!(
            rep.undetected.len(),
            result.redundant.len(),
            "exactly the proven-redundant faults stay undetected"
        );
        assert!(result.tests.len() <= faults.len() / 2, "compaction works");
    }

    /// A small arithmetic spec without depending on the circuits crate
    /// (cycle avoidance): a 2-bit adder.
    fn xsynth_circuits_stub() -> Network {
        let mut net = Network::new("add2");
        let a0 = net.add_input("a0");
        let b0 = net.add_input("b0");
        let a1 = net.add_input("a1");
        let b1 = net.add_input("b1");
        let s0 = net.add_gate(GateKind::Xor, vec![a0, b0]);
        let c0 = net.add_gate(GateKind::And, vec![a0, b0]);
        let s1 = net.add_gate(GateKind::Xor, vec![a1, b1, c0]);
        let t1 = net.add_gate(GateKind::And, vec![a1, b1]);
        let x1 = net.add_gate(GateKind::Xor, vec![a1, b1]);
        let t2 = net.add_gate(GateKind::And, vec![x1, c0]);
        let c1 = net.add_gate(GateKind::Or, vec![t1, t2]);
        net.add_output("s0", s0);
        net.add_output("s1", s1);
        net.add_output("cout", c1);
        net
    }
}
