//! Combinational equivalence checking (the role `verify` plays in the
//! paper's experimental procedure).

use crate::budget::{Budget, BudgetExceeded, Resource};
use crate::error::Error;
use std::collections::HashMap;
use xsynth_bdd::{Bdd, BddManager};
use xsynth_net::{Network, NodeKind, SignalId};
use xsynth_sim::{equivalent_on_blocks, pack_patterns, random_patterns, PatternBlock};
use xsynth_trace::TraceBuffer;

/// Input count above which the checker switches from exact BDD comparison
/// to high-confidence random simulation.
const BDD_INPUT_LIMIT: usize = 40;

/// Fixed-seed pattern budget of the simulation backend (before any
/// [`Budget::max_patterns`] cap).
const SIM_PATTERNS: usize = 4096;

/// Seed of the simulation backend's fixed random pattern set.
const SIM_SEED: u64 = 0xec;

/// An equivalence checker pinned to a reference network.
///
/// Comparison is exact (canonical ROBDD equality) up to 40 primary
/// inputs and falls back to fixed-seed random
/// simulation beyond that. Under a [`Budget`] with a BDD node cap, a
/// checker that trips the cap mid-check downgrades itself to the
/// simulation backend instead of failing — [`EquivChecker::downgraded`]
/// reports when that happened. Candidate networks must have the same
/// primary inputs (same names, same order) and the same outputs.
///
/// # Examples
///
/// ```
/// use xsynth_core::EquivChecker;
/// use xsynth_net::{GateKind, Network};
///
/// let mut a = Network::new("a");
/// let x = a.add_input("x");
/// let y = a.add_input("y");
/// let g = a.add_gate(GateKind::Xor, vec![x, y]);
/// a.add_output("f", g);
/// let mut checker = EquivChecker::new(&a);
/// assert!(checker.check(&a));
/// ```
#[derive(Debug)]
pub struct EquivChecker {
    reference: Network,
    reference_outputs: Vec<Bdd>,
    manager: Option<BddManager>,
    input_names: Vec<String>,
    sim_patterns: Option<Vec<PatternBlock>>,
    n_sim_patterns: usize,
    budget: Budget,
    downgraded: bool,
}

impl EquivChecker {
    /// Builds the checker, computing the reference output BDDs (or the
    /// simulation signature for very wide networks), with no resource
    /// budget.
    pub fn new(reference: &Network) -> Self {
        Self::with_budget(reference, &Budget::default())
    }

    /// Builds the checker under a resource budget: the BDD backend runs in
    /// a node-capped manager (falling back to simulation if even the
    /// reference trips the cap), and the simulation backend's pattern set
    /// respects [`Budget::max_patterns`].
    pub fn with_budget(reference: &Network, budget: &Budget) -> Self {
        let input_names: Vec<String> = reference
            .inputs()
            .iter()
            .map(|&i| reference.node_name(i).unwrap_or("in").to_string())
            .collect();
        let n = input_names.len();
        let mut checker = EquivChecker {
            reference: reference.clone(),
            reference_outputs: Vec::new(),
            manager: None,
            input_names,
            sim_patterns: None,
            n_sim_patterns: 0,
            budget: budget.clone(),
            downgraded: false,
        };
        if n <= BDD_INPUT_LIMIT {
            let mut bm = match budget.bdd_node_cap {
                Some(cap) => BddManager::with_node_limit(n, cap),
                None => BddManager::new(n),
            };
            match try_network_bdds_compact(reference, &mut bm) {
                Ok(outs) => {
                    checker.reference_outputs = outs;
                    checker.manager = Some(bm);
                    return checker;
                }
                Err(_) => checker.downgraded = true,
            }
        }
        checker.build_sim_backend();
        checker
    }

    fn build_sim_backend(&mut self) {
        let n = self.input_names.len();
        let count = self.budget.cap_patterns(SIM_PATTERNS);
        let patterns = random_patterns(n, count, SIM_SEED);
        self.n_sim_patterns = patterns.len();
        self.sim_patterns = Some(pack_patterns(n, &patterns));
    }

    /// Whether the checker is exact (BDD) or statistical (simulation).
    pub fn is_exact(&self) -> bool {
        self.manager.is_some()
    }

    /// Whether a budget trip forced this checker down from exact BDD
    /// comparison to fixed-seed simulation.
    pub fn downgraded(&self) -> bool {
        self.downgraded
    }

    /// Checks a candidate network against the reference.
    ///
    /// # Panics
    ///
    /// Panics if the candidate's inputs differ from the reference's.
    pub fn check(&mut self, candidate: &Network) -> bool {
        self.try_check(candidate).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checks a candidate network against the reference, reporting input
    /// mismatches as [`Error::InputMismatch`] instead of panicking.
    ///
    /// On the BDD backend, tripping the node cap does not fail the check:
    /// the checker downgrades itself to fixed-seed simulation (recorded by
    /// [`EquivChecker::downgraded`]) and re-runs the comparison there.
    pub fn try_check(&mut self, candidate: &Network) -> Result<bool, Error> {
        xsynth_trace::fail_point!(
            "core.verify",
            Err(Error::Verify("injected fault: core.verify tripped".into()))
        );
        let cand_names: Vec<&str> = candidate
            .inputs()
            .iter()
            .map(|&i| candidate.node_name(i).unwrap_or("in"))
            .collect();
        if cand_names != self.input_names {
            return Err(Error::InputMismatch {
                expected: self.input_names.clone(),
                found: cand_names.iter().map(|s| s.to_string()).collect(),
            });
        }
        if self.manager.is_some() {
            let result = {
                let bm = self.manager.as_mut().expect("checked above");
                // Compact build: an equivalent candidate hash-conses onto
                // the reference cones and interns zero new nodes, so the
                // checker's manager stays near live-reference size across
                // arbitrarily many redundancy-removal checks.
                try_network_bdds_compact(candidate, bm)
            };
            match result {
                Ok(outs) => return Ok(outs == self.reference_outputs),
                Err(Error::Budget(_)) => {
                    // The candidate's BDD blew the node cap; keep going
                    // with the statistical backend rather than rejecting a
                    // possibly fine network.
                    self.manager = None;
                    self.reference_outputs.clear();
                    self.downgraded = true;
                    self.build_sim_backend();
                }
                Err(e) => return Err(e),
            }
        }
        let blocks = self
            .sim_patterns
            .as_ref()
            .expect("checker always has one backend");
        Ok(equivalent_on_blocks(
            &self.reference,
            candidate,
            blocks.iter().cloned(),
        ))
    }

    /// [`EquivChecker::check`] recording into a trace buffer: runs inside a
    /// `check` span, counts `verify.checks`, and (on the simulation
    /// backend) counts the patterns simulated as `verify.sim_patterns`.
    pub fn check_traced(&mut self, candidate: &Network, buf: &mut TraceBuffer) -> bool {
        self.try_check_traced(candidate, buf)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`EquivChecker::try_check`] recording into a trace buffer. The
    /// `check` span is closed on every path, including errors; a mid-check
    /// downgrade is counted as `verify.downgraded`.
    pub fn try_check_traced(
        &mut self,
        candidate: &Network,
        buf: &mut TraceBuffer,
    ) -> Result<bool, Error> {
        buf.begin("check");
        buf.count("verify.checks", 1);
        let was_downgraded = self.downgraded;
        let result = self.try_check(candidate);
        if self.downgraded && !was_downgraded {
            buf.count("verify.downgraded", 1);
        }
        if let Some(bm) = &self.manager {
            buf.gauge("bdd.peak_nodes", bm.num_nodes() as f64);
        }
        if self.sim_patterns.is_some() {
            buf.count("verify.sim_patterns", self.n_sim_patterns as u64);
        }
        buf.end();
        result
    }
}

/// Builds the BDD of every output of `net` in `bm` (whose arity must match
/// the input count), by structural traversal.
///
/// # Panics
///
/// Panics on arity mismatch, a combinational cycle, or when `bm` runs out
/// of its node cap; use [`try_network_bdds`] for the fallible form.
pub fn network_bdds(net: &Network, bm: &mut BddManager) -> Vec<Bdd> {
    try_network_bdds(net, bm).unwrap_or_else(|e| panic!("{e}"))
}

/// Garbage-collected form of [`try_network_bdds`]: builds every gate's
/// BDD in a throwaway scratch manager (inheriting `bm`'s node cap), then
/// copies only the DAGs reachable from the output roots into `bm`.
///
/// A structural traversal allocates a node for every internal gate, most
/// of which are dead the moment their fanouts are folded — but a plain
/// build leaves them in `bm`'s unique tables forever (the substrate has
/// no reference counts). Routing the build through a scratch manager
/// means `bm` — which may be a long-lived pooled or shared substrate —
/// only ever holds live cones. The copy is a sequential DFS in output
/// order, so the set of nodes it interns is schedule-independent and the
/// parallel≡sequential `bdd.nodes` contract is preserved.
pub fn try_network_bdds_compact(net: &Network, bm: &mut BddManager) -> Result<Vec<Bdd>, Error> {
    let n = net.inputs().len();
    if bm.num_vars() != n {
        return Err(Error::msg(format!(
            "BDD arity mismatch: manager has {} vars, network has {} inputs",
            bm.num_vars(),
            n
        )));
    }
    let mut scratch = match bm.node_limit() {
        Some(cap) => BddManager::with_node_limit(n, cap),
        None => BddManager::new(n),
    };
    let outs = try_network_bdds(net, &mut scratch)?;
    scratch.try_copy_roots(&outs, bm).map_err(|_| {
        Error::Budget(BudgetExceeded::new(
            "bdd",
            Resource::BddNodes,
            bm.node_limit().unwrap_or(0) as u64,
        ))
    })
}

/// Fallible form of [`network_bdds`]: reports arity mismatches and
/// combinational cycles as errors, and maps the manager's node cap to
/// [`Error::Budget`] so governed callers can degrade instead of dying.
pub fn try_network_bdds(net: &Network, bm: &mut BddManager) -> Result<Vec<Bdd>, Error> {
    if bm.num_vars() != net.inputs().len() {
        return Err(Error::msg(format!(
            "BDD arity mismatch: manager has {} vars, network has {} inputs",
            bm.num_vars(),
            net.inputs().len()
        )));
    }
    let budget_err = |bm: &BddManager| {
        Error::Budget(BudgetExceeded::new(
            "bdd",
            Resource::BddNodes,
            bm.node_limit().unwrap_or(0) as u64,
        ))
    };
    let mut val: HashMap<SignalId, Bdd> = HashMap::new();
    for (i, &id) in net.inputs().iter().enumerate() {
        let v = bm.try_var(i).map_err(|_| budget_err(bm))?;
        val.insert(id, v);
    }
    for id in net.try_topo_order()? {
        let NodeKind::Gate(kind) = net.kind(id) else {
            continue;
        };
        use xsynth_net::GateKind::*;
        let fan: Vec<Bdd> = net.fanins(id).iter().map(|f| val[f]).collect();
        let b = (|| {
            Ok(match kind {
                Const0 => Bdd::ZERO,
                Const1 => Bdd::ONE,
                Buf => fan[0],
                Not => bm.try_not(fan[0])?,
                And => {
                    let mut a = Bdd::ONE;
                    for &x in &fan {
                        a = bm.try_and(a, x)?;
                    }
                    a
                }
                Nand => {
                    let mut a = Bdd::ONE;
                    for &x in &fan {
                        a = bm.try_and(a, x)?;
                    }
                    bm.try_not(a)?
                }
                Or => {
                    let mut a = Bdd::ZERO;
                    for &x in &fan {
                        a = bm.try_or(a, x)?;
                    }
                    a
                }
                Nor => {
                    let mut a = Bdd::ZERO;
                    for &x in &fan {
                        a = bm.try_or(a, x)?;
                    }
                    bm.try_not(a)?
                }
                Xor => {
                    let mut a = Bdd::ZERO;
                    for &x in &fan {
                        a = bm.try_xor(a, x)?;
                    }
                    a
                }
                Xnor => {
                    let mut a = Bdd::ZERO;
                    for &x in &fan {
                        a = bm.try_xor(a, x)?;
                    }
                    bm.try_not(a)?
                }
            })
        })()
        .map_err(|_: xsynth_bdd::NodeLimitExceeded| budget_err(bm))?;
        val.insert(id, b);
    }
    Ok(net.outputs().iter().map(|&(_, s)| val[&s]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsynth_net::GateKind;
    use xsynth_trace::TraceSink;

    fn xor_net(style: u8) -> Network {
        let mut n = Network::new("x");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let o = match style {
            0 => n.add_gate(GateKind::Xor, vec![a, b]),
            _ => {
                let na = n.add_gate(GateKind::Not, vec![a]);
                let nb = n.add_gate(GateKind::Not, vec![b]);
                let l = n.add_gate(GateKind::And, vec![a, nb]);
                let r = n.add_gate(GateKind::And, vec![na, b]);
                n.add_gate(GateKind::Or, vec![l, r])
            }
        };
        n.add_output("f", o);
        n
    }

    #[test]
    fn structurally_different_equivalent_networks_pass() {
        let mut c = EquivChecker::new(&xor_net(0));
        assert!(c.is_exact());
        assert!(!c.downgraded());
        assert!(c.check(&xor_net(1)));
    }

    #[test]
    fn inequivalent_networks_fail() {
        let mut c = EquivChecker::new(&xor_net(0));
        let mut bad = Network::new("x");
        let a = bad.add_input("a");
        let b = bad.add_input("b");
        let o = bad.add_gate(GateKind::Or, vec![a, b]);
        bad.add_output("f", o);
        assert!(!c.check(&bad));
    }

    #[test]
    fn wide_networks_use_simulation() {
        let build = |kind: GateKind| {
            let mut n = Network::new("wide");
            let ins: Vec<_> = (0..48).map(|i| n.add_input(format!("x{i}"))).collect();
            let g = n.add_gate(kind, ins);
            n.add_output("f", g);
            n
        };
        let mut c = EquivChecker::new(&build(GateKind::And));
        assert!(!c.is_exact());
        assert!(c.check(&build(GateKind::And)));
        // AND vs NAND of 48 inputs differ almost everywhere under random
        // patterns? they differ only where all inputs are 1, which random
        // patterns will never hit — use OR vs AND instead, which differ on
        // nearly every pattern.
        assert!(!c.check(&build(GateKind::Or)));
    }

    #[test]
    fn multi_output_order_matters() {
        let mut a = Network::new("a");
        let x = a.add_input("x");
        let y = a.add_input("y");
        let g1 = a.add_gate(GateKind::And, vec![x, y]);
        let g2 = a.add_gate(GateKind::Or, vec![x, y]);
        a.add_output("p", g1);
        a.add_output("q", g2);
        let mut b = Network::new("b");
        let x = b.add_input("x");
        let y = b.add_input("y");
        let g1 = b.add_gate(GateKind::Or, vec![x, y]);
        let g2 = b.add_gate(GateKind::And, vec![x, y]);
        b.add_output("p", g1);
        b.add_output("q", g2);
        let mut c = EquivChecker::new(&a);
        assert!(!c.check(&b), "swapped outputs are not equivalent");
    }

    #[test]
    fn input_mismatch_is_an_error_not_a_panic() {
        let mut c = EquivChecker::new(&xor_net(0));
        let mut other = Network::new("y");
        let p = other.add_input("p");
        let q = other.add_input("q");
        let o = other.add_gate(GateKind::Xor, vec![p, q]);
        other.add_output("f", o);
        let err = c.try_check(&other).unwrap_err();
        match &err {
            Error::InputMismatch { expected, found } => {
                assert_eq!(expected, &["a", "b"]);
                assert_eq!(found, &["p", "q"]);
            }
            other => panic!("expected InputMismatch, got {other:?}"),
        }
        assert_eq!(err.exit_code(), 6);
    }

    #[test]
    fn traced_error_path_closes_the_span() {
        let mut c = EquivChecker::new(&xor_net(0));
        let mut other = Network::new("y");
        let p = other.add_input("p");
        other.add_output("f", p);
        let sink = TraceSink::new();
        {
            let mut buf = sink.buffer(0, "main");
            assert!(c.try_check_traced(&other, &mut buf).is_err());
            assert!(c.try_check_traced(&xor_net(1), &mut buf).unwrap());
        }
        let t = sink.take();
        assert_eq!(t.counter_totals()["verify.checks"], 2);
        // The error path closed its span: both checks are siblings at the
        // top level, not the second nested inside a dangling first.
        let roots = t.forest();
        assert_eq!(roots.len(), 2);
        assert!(roots
            .iter()
            .all(|r| r.name == "check" && r.children.is_empty()));
    }

    #[test]
    fn capped_checker_downgrades_to_simulation_and_still_verifies() {
        // A 12-input XOR chain needs well over 16 BDD nodes; the capped
        // checker must fall back to simulation at construction time and
        // still distinguish equivalent from inequivalent candidates.
        let build = |flip: bool| {
            let mut n = Network::new("chain");
            let ins: Vec<_> = (0..12).map(|i| n.add_input(format!("x{i}"))).collect();
            let mut acc = ins[0];
            for &i in &ins[1..] {
                acc = n.add_gate(GateKind::Xor, vec![acc, i]);
            }
            if flip {
                acc = n.add_gate(GateKind::Not, vec![acc]);
            }
            n.add_output("f", acc);
            n
        };
        let budget = Budget::default().bdd_node_cap(Some(16));
        let mut c = EquivChecker::with_budget(&build(false), &budget);
        assert!(!c.is_exact());
        assert!(c.downgraded());
        assert!(c.try_check(&build(false)).unwrap());
        assert!(!c.try_check(&build(true)).unwrap());
    }

    #[test]
    fn mid_check_downgrade_keeps_checking() {
        // The reference (a single AND) fits in a tight manager, but a
        // candidate with a wide XOR layer blows the cap mid-check. The
        // checker must downgrade and still return a verdict.
        let mut reference = Network::new("r");
        let ins: Vec<_> = (0..10)
            .map(|i| reference.add_input(format!("x{i}")))
            .collect();
        let g = reference.add_gate(GateKind::And, ins.clone());
        reference.add_output("f", g);

        let mut candidate = Network::new("c");
        let cins: Vec<_> = (0..10)
            .map(|i| candidate.add_input(format!("x{i}")))
            .collect();
        let mut acc = candidate.add_gate(GateKind::Xor, cins.clone());
        for &i in &cins {
            acc = candidate.add_gate(GateKind::Xor, vec![acc, i]);
        }
        let h = candidate.add_gate(GateKind::And, cins);
        let o = candidate.add_gate(GateKind::Or, vec![acc, h]);
        candidate.add_output("f", o);

        let budget = Budget::default().bdd_node_cap(Some(80));
        let mut c = EquivChecker::with_budget(&reference, &budget);
        assert!(c.is_exact(), "reference fits under the cap");
        let sink = TraceSink::new();
        {
            let mut buf = sink.buffer(0, "main");
            // XOR-of-everything XORed again with each input cancels to 0,
            // so the candidate reduces to the same AND — equivalent.
            assert!(c.try_check_traced(&candidate, &mut buf).unwrap());
        }
        assert!(c.downgraded());
        assert!(!c.is_exact());
        let t = sink.take();
        assert_eq!(t.counter_totals()["verify.downgraded"], 1);
    }

    #[test]
    fn try_network_bdds_reports_arity_and_budget() {
        let net = xor_net(0);
        let mut wrong = BddManager::new(3);
        assert!(matches!(
            try_network_bdds(&net, &mut wrong),
            Err(Error::Msg(_))
        ));
        let mut capped = BddManager::with_node_limit(2, 2);
        match try_network_bdds(&net, &mut capped) {
            Err(Error::Budget(b)) => assert_eq!(b.resource, Resource::BddNodes),
            other => panic!("expected budget error, got {other:?}"),
        }
    }
}
