//! Combinational equivalence checking (the role `verify` plays in the
//! paper's experimental procedure).

use std::collections::HashMap;
use xsynth_bdd::{Bdd, BddManager};
use xsynth_net::{Network, NodeKind, SignalId};
use xsynth_sim::{equivalent_on, random_patterns, Pattern};
use xsynth_trace::TraceBuffer;

/// Input count above which the checker switches from exact BDD comparison
/// to high-confidence random simulation.
const BDD_INPUT_LIMIT: usize = 40;

/// An equivalence checker pinned to a reference network.
///
/// Comparison is exact (canonical ROBDD equality) up to 40 primary
/// inputs and falls back to fixed-seed random
/// simulation beyond that. Candidate networks must have the same primary
/// inputs (same names, same order) and the same outputs.
///
/// # Examples
///
/// ```
/// use xsynth_core::EquivChecker;
/// use xsynth_net::{GateKind, Network};
///
/// let mut a = Network::new("a");
/// let x = a.add_input("x");
/// let y = a.add_input("y");
/// let g = a.add_gate(GateKind::Xor, vec![x, y]);
/// a.add_output("f", g);
/// let mut checker = EquivChecker::new(&a);
/// assert!(checker.check(&a));
/// ```
#[derive(Debug)]
pub struct EquivChecker {
    reference_outputs: Vec<Bdd>,
    manager: Option<BddManager>,
    input_names: Vec<String>,
    sim_reference: Option<(Network, Vec<Pattern>)>,
}

impl EquivChecker {
    /// Builds the checker, computing the reference output BDDs (or the
    /// simulation signature for very wide networks).
    pub fn new(reference: &Network) -> Self {
        let input_names: Vec<String> = reference
            .inputs()
            .iter()
            .map(|&i| reference.node_name(i).unwrap_or("in").to_string())
            .collect();
        let n = input_names.len();
        if n <= BDD_INPUT_LIMIT {
            let mut bm = BddManager::new(n);
            let outs = network_bdds(reference, &mut bm);
            EquivChecker {
                reference_outputs: outs,
                manager: Some(bm),
                input_names,
                sim_reference: None,
            }
        } else {
            let patterns = random_patterns(n, 4096, 0xec);
            EquivChecker {
                reference_outputs: Vec::new(),
                manager: None,
                input_names,
                sim_reference: Some((reference.clone(), patterns)),
            }
        }
    }

    /// Whether the checker is exact (BDD) or statistical (simulation).
    pub fn is_exact(&self) -> bool {
        self.manager.is_some()
    }

    /// Checks a candidate network against the reference.
    ///
    /// # Panics
    ///
    /// Panics if the candidate's inputs differ from the reference's.
    pub fn check(&mut self, candidate: &Network) -> bool {
        let cand_names: Vec<&str> = candidate
            .inputs()
            .iter()
            .map(|&i| candidate.node_name(i).unwrap_or("in"))
            .collect();
        assert_eq!(
            cand_names,
            self.input_names
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>(),
            "candidate inputs differ from reference"
        );
        match (&mut self.manager, &self.sim_reference) {
            (Some(bm), _) => {
                let outs = network_bdds(candidate, bm);
                outs == self.reference_outputs
            }
            (None, Some((reference, patterns))) => equivalent_on(reference, candidate, patterns),
            (None, None) => unreachable!("checker always has one backend"),
        }
    }

    /// [`EquivChecker::check`] recording into a trace buffer: runs inside a
    /// `check` span, counts `verify.checks`, and (on the simulation
    /// backend) counts the patterns simulated as `verify.sim_patterns`.
    pub fn check_traced(&mut self, candidate: &Network, buf: &mut TraceBuffer) -> bool {
        buf.begin("check");
        buf.count("verify.checks", 1);
        if let Some((_, patterns)) = &self.sim_reference {
            buf.count("verify.sim_patterns", patterns.len() as u64);
        }
        let ok = self.check(candidate);
        buf.end();
        ok
    }
}

/// Builds the BDD of every output of `net` in `bm` (whose arity must match
/// the input count), by structural traversal.
pub fn network_bdds(net: &Network, bm: &mut BddManager) -> Vec<Bdd> {
    assert_eq!(bm.num_vars(), net.inputs().len(), "BDD arity mismatch");
    let mut val: HashMap<SignalId, Bdd> = HashMap::new();
    for (i, &id) in net.inputs().iter().enumerate() {
        let v = bm.var(i);
        val.insert(id, v);
    }
    for id in net.topo_order() {
        let NodeKind::Gate(kind) = net.kind(id) else {
            continue;
        };
        use xsynth_net::GateKind::*;
        let fan: Vec<Bdd> = net.fanins(id).iter().map(|f| val[f]).collect();
        let b = match kind {
            Const0 => Bdd::ZERO,
            Const1 => Bdd::ONE,
            Buf => fan[0],
            Not => bm.not(fan[0]),
            And => fan.iter().fold(Bdd::ONE, |a, &x| bm.and(a, x)),
            Nand => {
                let t = fan.iter().fold(Bdd::ONE, |a, &x| bm.and(a, x));
                bm.not(t)
            }
            Or => fan.iter().fold(Bdd::ZERO, |a, &x| bm.or(a, x)),
            Nor => {
                let t = fan.iter().fold(Bdd::ZERO, |a, &x| bm.or(a, x));
                bm.not(t)
            }
            Xor => fan.iter().fold(Bdd::ZERO, |a, &x| bm.xor(a, x)),
            Xnor => {
                let t = fan.iter().fold(Bdd::ZERO, |a, &x| bm.xor(a, x));
                bm.not(t)
            }
        };
        val.insert(id, b);
    }
    net.outputs().iter().map(|&(_, s)| val[&s]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsynth_net::GateKind;

    fn xor_net(style: u8) -> Network {
        let mut n = Network::new("x");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let o = match style {
            0 => n.add_gate(GateKind::Xor, vec![a, b]),
            _ => {
                let na = n.add_gate(GateKind::Not, vec![a]);
                let nb = n.add_gate(GateKind::Not, vec![b]);
                let l = n.add_gate(GateKind::And, vec![a, nb]);
                let r = n.add_gate(GateKind::And, vec![na, b]);
                n.add_gate(GateKind::Or, vec![l, r])
            }
        };
        n.add_output("f", o);
        n
    }

    #[test]
    fn structurally_different_equivalent_networks_pass() {
        let mut c = EquivChecker::new(&xor_net(0));
        assert!(c.is_exact());
        assert!(c.check(&xor_net(1)));
    }

    #[test]
    fn inequivalent_networks_fail() {
        let mut c = EquivChecker::new(&xor_net(0));
        let mut bad = Network::new("x");
        let a = bad.add_input("a");
        let b = bad.add_input("b");
        let o = bad.add_gate(GateKind::Or, vec![a, b]);
        bad.add_output("f", o);
        assert!(!c.check(&bad));
    }

    #[test]
    fn wide_networks_use_simulation() {
        let build = |kind: GateKind| {
            let mut n = Network::new("wide");
            let ins: Vec<_> = (0..48).map(|i| n.add_input(format!("x{i}"))).collect();
            let g = n.add_gate(kind, ins);
            n.add_output("f", g);
            n
        };
        let mut c = EquivChecker::new(&build(GateKind::And));
        assert!(!c.is_exact());
        assert!(c.check(&build(GateKind::And)));
        // AND vs NAND of 48 inputs differ almost everywhere under random
        // patterns? they differ only where all inputs are 1, which random
        // patterns will never hit — use OR vs AND instead, which differ on
        // nearly every pattern.
        assert!(!c.check(&build(GateKind::Or)));
    }

    #[test]
    fn multi_output_order_matters() {
        let mut a = Network::new("a");
        let x = a.add_input("x");
        let y = a.add_input("y");
        let g1 = a.add_gate(GateKind::And, vec![x, y]);
        let g2 = a.add_gate(GateKind::Or, vec![x, y]);
        a.add_output("p", g1);
        a.add_output("q", g2);
        let mut b = Network::new("b");
        let x = b.add_input("x");
        let y = b.add_input("y");
        let g1 = b.add_gate(GateKind::Or, vec![x, y]);
        let g2 = b.add_gate(GateKind::And, vec![x, y]);
        b.add_output("p", g1);
        b.add_output("q", g2);
        let mut c = EquivChecker::new(&a);
        assert!(!c.check(&b), "swapped outputs are not equivalent");
    }
}
