//! The end-to-end FPRM synthesis pipeline (Sections 2–4 of the paper).
//!
//! ```text
//! spec network ──BDD──► per-output ROBDD ──Davio──► OFDD + polarity vector
//!        │                                             │
//!        │                     cube method (1) ◄───────┤───► OFDD method (2)
//!        │                           │                          │
//!        │                           ▼                          ▼
//!        │                   Gexpr + rules (a)–(e)      AND/XOR network
//!        │                           └──────── merge + strash ──┘
//!        │                                             │
//!        └────────── equivalence reference ──► redundancy removal (OC/AZ/AO/SA1)
//!                                                      │
//!                                                   sweep ──► result
//! ```
//!
//! Every run is traced: the pipeline records hierarchical spans, counters
//! and gauges into a [`TraceSink`] (per-output planning gets its own
//! deterministic per-thread buffers under the parallel fan-out), the
//! resulting [`Trace`] rides back in the [`SynthReport`], and the
//! [`PhaseProfile`] is derived from it.

use crate::budget::{Budget, BudgetExceeded, Resource};
use crate::engine::{Engine, PlanSeed};
use crate::error::Error;
use crate::factor::{factor_cubes, factor_cubes_traced, ofdd_to_network};
use crate::gfx;
use crate::patterns::{merge_patterns, paper_patterns, Pattern, PatternOptions};
use crate::redundancy::{remove_redundancy_governed, RedundancyStats};
use crate::verify::{try_network_bdds_compact, EquivChecker};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use xsynth_bdd::BddManager;
use xsynth_boolean::{Polarity, VarSet};
use xsynth_net::{GateKind, Network, SignalId};
use xsynth_ofdd::{OfddManager, PolaritySearch, PolaritySearchStats};
use xsynth_sim::{exhaustive_patterns, pack_patterns, random_patterns, Simulator};
use xsynth_sop::SopNet;
use xsynth_trace::{Trace, TraceBuffer, TraceSink};

pub use xsynth_ofdd::PolarityMode;

/// The span names of the pipeline phases, shared by the tracer, the
/// profile, the exporters and the tests.
pub mod phase {
    /// The root span of one [`super::synthesize`] call.
    pub const SYNTHESIZE: &str = "synthesize";
    /// BDD construction, polarity search and OFDD/FPRM generation.
    pub const FPRM: &str = "fprm";
    /// Factorization and network emission (both methods), plus strash.
    pub const FACTORING: &str = "factoring";
    /// The multi-output sharing pass.
    pub const SHARING: &str = "sharing";
    /// The Section 4 redundancy-removal pass.
    pub const REDUNDANCY: &str = "redundancy";
    /// Equivalence checking against the specification.
    pub const VERIFY: &str = "verify";
}

/// Which factorization method to run (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorMethod {
    /// Method 1: factor the explicit FPRM cube list (falls back to the
    /// OFDD method when the cube count exceeds the cap).
    Cube,
    /// Method 2: translate the OFDD node-by-node.
    Ofdd,
    /// Per output, run both methods and keep the cheaper result — the
    /// paper reports the two methods as comparable with method 2 ahead on
    /// a few cases, so best-of matches its evaluation posture.
    Best,
    /// Extension (the paper's refs \[1\]/\[16\]): ordered Kronecker FDDs with
    /// a greedy per-variable choice of Shannon / positive-Davio /
    /// negative-Davio expansion, lowered node-by-node.
    Kfdd,
}

/// How much of the network each FPRM factorization call sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// Collapse every primary output to its global function (the paper's
    /// path for the two-level benchmarks).
    Output,
    /// Keep the specification's multilevel macro blocks (after a SIS-style
    /// `eliminate`) and FPRM-synthesize each block — the scalable path for
    /// wide structural circuits like the 16-bit `my_adder`.
    Block,
    /// `Output` unless some output's FPRM cube count exceeds the block
    /// threshold, then `Block` for the whole circuit.
    Auto,
}

/// Options for [`synthesize`].
///
/// The struct is `#[non_exhaustive]`: construct it with
/// [`SynthOptions::default`] or the fluent [`SynthOptions::builder`], so
/// future option additions are not breaking changes.
///
/// # Examples
///
/// ```
/// use xsynth_core::{FactorMethod, SynthOptions};
///
/// let opts = SynthOptions::builder()
///     .method(FactorMethod::Cube)
///     .parallel(false)
///     .build();
/// assert_eq!(opts.method, FactorMethod::Cube);
/// assert!(!opts.parallel);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SynthOptions {
    /// Factorization method.
    pub method: FactorMethod,
    /// Polarity search mode.
    pub polarity: PolarityMode,
    /// Apply the Reduction rules (a)–(c) during cube-method factoring.
    pub apply_rules: bool,
    /// Run the Section 4 redundancy-removal pass.
    pub redundancy_removal: bool,
    /// Run the multi-output sharing pass (the paper's `resub` merge step).
    pub share: bool,
    /// Collapse outputs or keep macro blocks.
    pub granularity: Granularity,
    /// `Auto` switches to block granularity when some output has more
    /// FPRM cubes than this.
    pub block_threshold: u64,
    /// Cube-count cap for the cube method (beyond it the OFDD method is
    /// used for that output).
    pub cube_cap: u64,
    /// Pattern-generation bounds.
    pub pattern_opts: PatternOptions,
    /// Maximum redundancy-removal sweeps.
    pub max_passes: usize,
    /// Fan the per-output planning (and, for single-output circuits, the
    /// polarity-candidate evaluation) out across threads. The result is
    /// bit-identical to the sequential path; disable only to benchmark or
    /// to pin the flow to one core.
    pub parallel: bool,
    /// Resource budget governing the run (BDD node cap, per-phase
    /// wall-clock, simulation-pattern cap). Unlimited by default. Phases
    /// that can degrade gracefully do (polarity search keeps its best so
    /// far, redundancy removal stops sweeping, verification falls back to
    /// fixed-seed simulation); the run only fails — as
    /// [`Error::Budget`] from [`try_synthesize`] — when a phase cannot
    /// produce any result under the cap.
    pub budget: Budget,
    /// When an output's planning fails (a contained panic or a typed
    /// error), retry it down the salvage ladder — skip factorization, then
    /// a direct all-positive FPRM translation — before failing just that
    /// output as [`Error::OutputFailed`]. Salvaged outputs are recorded in
    /// [`SynthReport::salvaged`] and the result is still verified against
    /// the specification. Disable to make the first fault fatal.
    pub salvage: bool,
    /// Optional external sink the run's trace is also appended to, for
    /// aggregating several calls (a benchmark sweep, a CLI batch) into
    /// one exportable timeline. The per-call trace is always available in
    /// [`SynthReport::trace`] regardless.
    pub trace: Option<TraceSink>,
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            method: FactorMethod::Best,
            polarity: PolarityMode::Exhaustive,
            apply_rules: true,
            redundancy_removal: true,
            share: true,
            granularity: Granularity::Auto,
            block_threshold: 512,
            cube_cap: 512,
            pattern_opts: PatternOptions::default(),
            max_passes: 6,
            parallel: true,
            budget: Budget::default(),
            salvage: true,
            trace: None,
        }
    }
}

impl SynthOptions {
    /// Starts a fluent builder from the default options.
    pub fn builder() -> SynthOptionsBuilder {
        SynthOptionsBuilder {
            opts: SynthOptions::default(),
        }
    }
}

/// Fluent builder for [`SynthOptions`] (see [`SynthOptions::builder`]).
#[derive(Debug, Clone)]
pub struct SynthOptionsBuilder {
    opts: SynthOptions,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            #[must_use]
            pub fn $name(mut self, value: $ty) -> Self {
                self.opts.$name = value;
                self
            }
        )*
    };
}

impl SynthOptionsBuilder {
    builder_setters! {
        /// Sets the factorization method.
        method: FactorMethod,
        /// Sets the polarity search mode.
        polarity: PolarityMode,
        /// Enables or disables the Reduction rules (a)–(c).
        apply_rules: bool,
        /// Enables or disables the Section 4 redundancy-removal pass.
        redundancy_removal: bool,
        /// Enables or disables the multi-output sharing pass.
        share: bool,
        /// Sets the factorization granularity.
        granularity: Granularity,
        /// Sets the `Auto`-granularity cube threshold.
        block_threshold: u64,
        /// Sets the cube-method cube-count cap.
        cube_cap: u64,
        /// Sets the pattern-generation bounds.
        pattern_opts: PatternOptions,
        /// Sets the maximum number of redundancy-removal sweeps.
        max_passes: usize,
        /// Enables or disables the thread fan-out.
        parallel: bool,
        /// Sets the resource budget.
        budget: Budget,
        /// Enables or disables the per-output salvage ladder.
        salvage: bool,
    }

    /// Aggregates this run's trace into an external [`TraceSink`].
    #[must_use]
    pub fn trace(mut self, sink: TraceSink) -> Self {
        self.opts.trace = Some(sink);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> SynthOptions {
        self.opts
    }
}

/// Time and span count of one pipeline phase, derived from the trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase span name (one of the [`phase`] constants).
    pub name: String,
    /// Total wall-clock time across this phase's top-level spans.
    pub duration: Duration,
    /// How many top-level spans carried this name.
    pub spans: usize,
}

/// Per-phase wall-clock breakdown of one [`synthesize`] call, derived from
/// the recorded [`Trace`] (the direct children of the root
/// [`phase::SYNTHESIZE`] span, grouped by name in first-seen order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// The phases, in first-seen pipeline order.
    pub phases: Vec<PhaseStat>,
    /// End-to-end wall clock of the root span (including slack the
    /// phases don't claim).
    pub total: Duration,
}

impl PhaseProfile {
    /// Derives the profile from a pipeline trace.
    pub fn from_trace(trace: &Trace) -> PhaseProfile {
        let forest = trace.forest();
        let Some(root) = forest.iter().find(|n| n.name == phase::SYNTHESIZE) else {
            return PhaseProfile::default();
        };
        let mut profile = PhaseProfile {
            phases: Vec::new(),
            total: root.duration,
        };
        for child in &root.children {
            match profile.phases.iter_mut().find(|p| p.name == child.name) {
                Some(p) => {
                    p.duration += child.duration;
                    p.spans += 1;
                }
                None => profile.phases.push(PhaseStat {
                    name: child.name.clone(),
                    duration: child.duration,
                    spans: 1,
                }),
            }
        }
        profile
    }

    /// Total duration of the named phase (zero when absent).
    pub fn duration(&self, name: &str) -> Duration {
        self.phases
            .iter()
            .filter(|p| p.name == name)
            .map(|p| p.duration)
            .sum()
    }
}

/// A rung of the per-output salvage ladder, in descending order of
/// ambition. Rung 0 — the full pipeline — is not listed: reaching it means
/// nothing was salvaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SalvageRung {
    /// The full plan failed; the output was replanned with the OFDD
    /// method (its searched polarity kept, factorization skipped).
    SkipFactor,
    /// Skipping factorization also failed; the output fell back to a
    /// direct all-positive FPRM translation.
    DirectFprm,
    /// Emitting the shared GF(2) divisors failed; every cube-method
    /// output was rolled back to its unshared pre-extraction cover.
    SkipSharing,
}

impl SalvageRung {
    /// Human-readable rung name for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            SalvageRung::SkipFactor => "skip-factor",
            SalvageRung::DirectFprm => "direct-fprm",
            SalvageRung::SkipSharing => "skip-sharing",
        }
    }
}

/// One output the pipeline recovered on a lower salvage rung instead of
/// failing the whole run. The final network — salvaged outputs included —
/// is still verified against the specification.
#[derive(Debug, Clone)]
pub struct SalvageRecord {
    /// The primary output that was salvaged.
    pub output: String,
    /// The rung that produced the kept implementation.
    pub rung: SalvageRung,
    /// What the original attempt died of (panic message or typed error).
    pub cause: String,
}

/// Per-job content-cache interaction summary. Deterministic given the
/// engine's cache state when the job started (lookups happen in a
/// sequential pre-pass, stores post-merge), so the same job replayed
/// against the same cache reports the same numbers; one-shot calls
/// through a throwaway [`Engine`] always report zero hits on the
/// polarity/cube tiers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheUse {
    /// Outputs whose winning polarity was seeded from the cache (each
    /// skips its polarity descent entirely).
    pub polarity_hits: u64,
    /// Outputs whose FPRM cube list was seeded from the cache.
    pub cubes_hits: u64,
    /// Factoring calls answered from the factored-expression memo.
    pub factored_hits: u64,
    /// Cache lookups that found nothing.
    pub lookup_misses: u64,
}

impl CacheUse {
    /// Total hits across the three tiers.
    pub fn hits(&self) -> u64 {
        self.polarity_hits + self.cubes_hits + self.factored_hits
    }

    /// Total lookups that missed.
    pub fn misses(&self) -> u64 {
        self.lookup_misses
    }
}

/// What the pipeline did, per output and overall.
#[derive(Debug, Clone, Default)]
pub struct SynthReport {
    /// `(output name, FPRM cube count, polarity)` per output.
    pub outputs: Vec<(String, u64, Polarity)>,
    /// Redundancy-removal counters.
    pub redundancy: RedundancyStats,
    /// Outputs that overflowed the cube cap and used the OFDD method.
    pub cube_cap_fallbacks: usize,
    /// Number of macro blocks synthesized (0 in output granularity).
    pub blocks: usize,
    /// Number of shared GF(2) divisors extracted across outputs.
    pub divisors: usize,
    /// Polarity-search counters summed over all outputs.
    pub polarity_search: PolaritySearchStats,
    /// Phases a resource budget cut short. Each entry names a phase (a
    /// [`phase`] constant) whose best-so-far partial result was kept —
    /// the network is still verified, just less optimized.
    pub curtailed: Vec<String>,
    /// Whether equivalence checking downgraded from exact BDD comparison
    /// to fixed-seed simulation because the node cap tripped.
    pub verify_downgraded: bool,
    /// Outputs recovered by the salvage ladder (or an emission rollback)
    /// instead of failing the run. Empty on a clean pass.
    pub salvaged: Vec<SalvageRecord>,
    /// Content-cache hits/misses for this job (see [`CacheUse`]).
    pub cache: CacheUse,
    /// Per-phase wall-clock breakdown, derived from `trace`.
    pub profile: PhaseProfile,
    /// The full structured trace of the run (spans, counters, gauges).
    pub trace: Trace,
}

/// The result of one [`synthesize`] call: the optimized network and the
/// report describing how it was produced.
#[derive(Debug, Clone)]
pub struct SynthOutcome {
    /// The synthesized (and verified) network.
    pub network: Network,
    /// What the pipeline did, including the structured trace.
    pub report: SynthReport,
}

/// Synthesizes `spec` with the paper's FPRM flow and returns the optimized
/// network plus a report. The result is verified equivalent to `spec`
/// (exactly via BDDs up to 40 inputs, statistically beyond).
///
/// # Examples
///
/// ```
/// use xsynth_core::{synthesize, SynthOptions};
/// use xsynth_net::{GateKind, Network};
///
/// // full adder sum: a ⊕ b ⊕ cin
/// let mut spec = Network::new("sum");
/// let a = spec.add_input("a");
/// let b = spec.add_input("b");
/// let c = spec.add_input("cin");
/// let s = spec.add_gate(GateKind::Xor, vec![a, b, c]);
/// spec.add_output("s", s);
/// let outcome = synthesize(&spec, &SynthOptions::default());
/// assert_eq!(outcome.report.outputs[0].1, 3, "3 FPRM cubes");
/// for m in 0..8 {
///     assert_eq!(outcome.network.eval_u64(m), spec.eval_u64(m));
/// }
/// ```
///
/// # Panics
///
/// Panics if an internal factoring step produces a non-equivalent network
/// (an invariant violation, not an input condition), or if a configured
/// [`Budget`] trips where no degraded result is possible — use
/// [`try_synthesize`] when running under a budget.
pub fn synthesize(spec: &Network, opts: &SynthOptions) -> SynthOutcome {
    try_synthesize(spec, opts).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`synthesize`]: a tripped [`Budget`] surfaces as
/// [`Error::Budget`] (when no degraded result was possible) and a failed
/// final verification as [`Error::Verify`], instead of panicking. Phases
/// that degraded gracefully under the budget are listed in
/// [`SynthReport::curtailed`]; the returned network is always verified
/// against the specification.
///
/// This is a one-shot convenience over a throwaway [`Engine`]: the
/// content cache and substrate pool start empty and are dropped with the
/// call, so repeated invocations behave identically. Long-lived callers
/// should hold an [`Engine`] and use [`Engine::try_synthesize`], which
/// keeps both warm across jobs.
pub fn try_synthesize(spec: &Network, opts: &SynthOptions) -> Result<SynthOutcome, Error> {
    Engine::with_options(opts.clone()).try_synthesize(spec)
}

/// The traced, fault-contained synthesis entry shared by the free
/// functions (throwaway engine) and [`Engine::try_synthesize`]
/// (long-lived engine).
pub(crate) fn try_synthesize_on(
    engine: &Engine,
    spec: &Network,
    opts: &SynthOptions,
) -> Result<SynthOutcome, Error> {
    let sink = TraceSink::new();
    // remember where this call starts on the external sink's timeline, so
    // aggregated runs line up end-to-end in the exported view
    let external_offset = opts.trace.as_ref().map(TraceSink::elapsed);
    let mut report = SynthReport::default();
    // Fault containment: a panic anywhere in the pipeline (an invariant
    // violation, or an armed failpoint) becomes a typed error instead of
    // unwinding into the caller. Buffers dropped during the unwind still
    // submit, so the partial trace survives for diagnosis.
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_pipeline(engine, spec, opts, &sink, &mut report)
    }))
    .unwrap_or_else(|p| {
        Err(Error::OutputFailed {
            output: "pipeline".to_string(),
            cause: panic_message(p.as_ref()),
        })
    });
    let trace = sink.take();
    report.profile = PhaseProfile::from_trace(&trace);
    if let (Some(external), Some(offset)) = (&opts.trace, external_offset) {
        external.append(trace.clone(), spec.name(), offset);
    }
    report.trace = trace;
    Ok(SynthOutcome {
        network: result?,
        report,
    })
}

/// Records `phase` as budget-curtailed (once).
fn curtail(report: &mut SynthReport, name: &str) {
    if !report.curtailed.iter().any(|p| p == name) {
        report.curtailed.push(name.to_string());
    }
}

/// The traced pipeline body of [`try_synthesize`].
fn run_pipeline(
    engine: &Engine,
    spec: &Network,
    opts: &SynthOptions,
    sink: &TraceSink,
    report: &mut SynthReport,
) -> Result<Network, Error> {
    let mut main = sink.buffer(0, "pipeline");
    main.begin(phase::SYNTHESIZE);
    let spec = spec.sweep();
    let n = spec.inputs().len();

    main.begin(phase::FPRM);
    let fprm_deadline = opts.budget.phase_deadline();
    main.begin("bdd");
    let mut bm = engine.checkout(n, &opts.budget);
    // Compact build: gate-level intermediates live and die in a scratch
    // manager, so the (possibly pooled, possibly shared) job substrate
    // only ever holds the live output cones.
    let out_bdds = try_network_bdds_compact(&spec, &mut bm);
    main.end();
    main.gauge("bdd.nodes", bm.num_nodes() as f64);
    main.gauge("bdd.peak_nodes", bm.num_nodes() as f64);
    let out_bdds = match out_bdds {
        Ok(b) => b,
        Err(e) => {
            main.end(); // fprm
            main.end(); // synthesize
            return Err(e);
        }
    };

    // granularity decision: block mode when some output's FPRM would be
    // unreasonably wide (cube counts are cheap to read off the OFDD); a
    // node-cap trip while probing counts as "too wide" and degrades to
    // block mode rather than failing
    let use_blocks = match opts.granularity {
        Granularity::Output => false,
        Granularity::Block => true,
        Granularity::Auto => out_bdds.iter().any(|&f| {
            let mut om = OfddManager::new(Polarity::all_positive(n));
            match om.try_from_bdd(&mut bm, f) {
                Ok(root) => om.num_cubes(root) > opts.block_threshold,
                Err(_) => {
                    curtail(report, phase::FPRM);
                    true
                }
            }
        }),
    };
    main.gauge("bdd.peak_nodes", bm.num_nodes() as f64);
    main.end();

    let mut pattern_lists: Vec<Vec<Pattern>> = Vec::new();
    let net = if use_blocks {
        pattern_lists.push(paper_patterns(
            n,
            &Polarity::all_positive(n),
            &[],
            &opts.pattern_opts,
        ));
        main.begin(phase::FACTORING);
        let net = synthesize_blocks(&spec, opts, report, &mut main);
        main.end();
        net
    } else {
        let net = synthesize_outputs(
            engine,
            &spec,
            opts,
            &mut bm,
            &out_bdds,
            report,
            &mut pattern_lists,
            fprm_deadline,
            sink,
            &mut main,
        );
        match net {
            Ok(net) => net,
            Err(e) => {
                main.end(); // synthesize (phase spans were closed by callee)
                return Err(e);
            }
        }
    };
    if report.polarity_search.budget_trips > 0 {
        curtail(report, phase::FPRM);
    }

    // cross-output sharing (the role `resub` plays in the paper)
    main.begin(phase::FACTORING);
    let mut result = net.strash().sweep();
    main.gauge("net.gates", result.num_gates() as f64);
    main.end();
    main.begin(phase::VERIFY);
    let mut checker = EquivChecker::with_budget(&spec, &opts.budget);
    let factored_ok = checker.try_check_traced(&result, &mut main);
    main.end();
    if !matches!(factored_ok, Ok(true)) {
        main.end(); // synthesize
        report.verify_downgraded = checker.downgraded();
        return match factored_ok {
            Ok(_) => Err(Error::Verify(
                "factored network is not equivalent to the spec".into(),
            )),
            Err(e) => Err(e),
        };
    }
    if opts.share {
        main.begin(phase::SHARING);
        let shared = share_pass(&result);
        if matches!(checker.try_check_traced(&shared, &mut main), Ok(true)) {
            result = shared;
        }
        main.gauge("net.gates", result.num_gates() as f64);
        main.end();
    }

    if opts.redundancy_removal {
        // a small random booster keeps testability decisions honest on
        // outputs whose cube sets were too large to enumerate
        main.begin(phase::REDUNDANCY);
        let deadline = opts.budget.phase_deadline();
        pattern_lists.push(random_patterns(n, opts.budget.cap_patterns(64), 0x0c));
        let mut patterns = merge_patterns(pattern_lists);
        patterns.truncate(opts.budget.cap_patterns(patterns.len()));
        main.gauge("redundancy.patterns", patterns.len() as f64);
        let blocks = pack_patterns(n, &patterns);
        let (reduced, stats) = remove_redundancy_governed(
            &result,
            &blocks,
            &mut checker,
            opts.max_passes,
            deadline,
            &mut main,
        );
        if stats.curtailed {
            curtail(report, phase::REDUNDANCY);
        }
        report.redundancy = stats;
        result = reduced;
        main.gauge("net.gates", result.num_gates() as f64);
        main.end();
    }
    report.verify_downgraded = checker.downgraded();
    if report.verify_downgraded {
        curtail(report, phase::VERIFY);
    }

    // Apply-cache effectiveness over the whole shared substrate. The
    // hit/miss split is schedule-dependent under parallel planning (which
    // thread warms an entry decides who hits it), so these are gauges —
    // the determinism contract only covers counters.
    let (apply_hits, apply_misses) = bm.apply_cache_stats();
    main.gauge("bdd.apply_hits", apply_hits as f64);
    main.gauge("bdd.apply_misses", apply_misses as f64);
    main.gauge("bdd.nodes", bm.num_nodes() as f64);
    main.gauge("bdd.peak_nodes", bm.num_nodes() as f64);

    // Content-cache effectiveness. The per-job hit/miss split depends on
    // what earlier jobs populated — engine state, not this job's inputs —
    // so like the apply-cache stats these are gauges, never counters.
    let cache = engine.cache_stats();
    main.gauge("cache.hits", report.cache.hits() as f64);
    main.gauge("cache.misses", report.cache.misses() as f64);
    main.gauge("cache.evictions", cache.evictions as f64);
    main.gauge("cache.bytes", cache.bytes as f64);
    main.gauge("cache.entries", cache.entries as f64);

    let result = result.sweep();
    main.gauge("net.gates", result.num_gates() as f64);
    main.end();
    engine.checkin(bm);
    Ok(result)
}

/// Stable per-mode code used to salt cone cache keys, so a polarity found
/// under one search mode is never served to a job running another.
fn polarity_mode_salt(mode: PolarityMode) -> u64 {
    match mode {
        PolarityMode::AllPositive => 1,
        PolarityMode::Greedy => 2,
        PolarityMode::Exhaustive => 3,
    }
}

/// One output's Phase 1 result: polarity, OFDD, method decision, patterns.
struct OutputPlan {
    name: String,
    pol: Polarity,
    om: OfddManager,
    root: xsynth_ofdd::Ofdd,
    bdd: xsynth_bdd::Bdd,
    /// literal-space cubes (id = 2v for positive, 2v+1 for negative)
    lit_cubes: Option<Vec<VarSet>>,
    /// variable-space FPRM cubes (empty when not enumerated), kept so the
    /// post-merge pass can populate the content cache
    fprm_cubes: Vec<VarSet>,
    cube_count: u64,
    cube_cap_fallback: bool,
    patterns: Vec<Pattern>,
    search: PolaritySearchStats,
}

/// Phase 1 for one output: polarity search, OFDD construction, method
/// decision, and pattern generation. Pure in `(bm contents, f, opts)` —
/// callers may run it on a clone of the manager in a worker thread and the
/// result is identical to a sequential run. Trace events land in `buf`,
/// the output's own deterministic-order buffer.
///
/// Under a budget: the polarity search keeps its best polarity so far
/// when the node cap or `deadline` trips, and only the final OFDD build
/// being unaffordable is a hard [`Error::Budget`].
#[allow(clippy::too_many_arguments)]
fn plan_output(
    name: &str,
    f: xsynth_bdd::Bdd,
    bm: &mut BddManager,
    n: usize,
    num_outputs: usize,
    opts: &SynthOptions,
    candidate_parallel: bool,
    deadline: Option<Instant>,
    seed: Option<&PlanSeed>,
    buf: &mut TraceBuffer,
) -> Result<OutputPlan, Error> {
    xsynth_trace::fail_point!(
        "core.plan",
        Err(Error::OutputFailed {
            output: name.to_string(),
            cause: "injected fault: core.plan tripped".to_string(),
        })
    );
    buf.begin("plan");
    let support: Vec<usize> = bm.support(f).iter().collect();
    let (pol, stats) = match seed {
        // A cache seed replaces the whole polarity descent: the seeded
        // vector is the winner a search under these options found before
        // (every mode starts from all-positive and flips support vars
        // only, which is exactly how the seed is reconstructed), so the
        // search stats stay at their zero defaults.
        Some(s) => {
            buf.count("cache.seeded", 1);
            (s.pol.clone(), PolaritySearchStats::default())
        }
        None => {
            let mut search = PolaritySearch::new(bm, f)
                .parallel(candidate_parallel)
                .deadline(deadline)
                .trace(buf);
            let (pol, _) = search.run(opts.polarity, &support);
            (pol, search.stats)
        }
    };
    buf.begin("ofdd");
    let mut om = OfddManager::new(pol.clone());
    let root = match om.try_from_bdd(bm, f) {
        Ok(root) => root,
        Err(e) => {
            buf.gauge("bdd.peak_nodes", bm.num_nodes() as f64);
            buf.end(); // ofdd
            buf.end(); // plan
            return Err(Error::Budget(BudgetExceeded::new(
                phase::FPRM,
                Resource::BddNodes,
                e.limit as u64,
            )));
        }
    };
    let count = om.num_cubes(root);
    buf.end();
    buf.gauge("ofdd.nodes", om.num_nodes() as f64);
    buf.gauge("fprm.cubes", count as f64);
    buf.gauge("bdd.peak_nodes", bm.num_nodes() as f64);
    // per-output distribution samples: both are pure functions of the
    // spec (cube count under the winning polarity, structural support
    // width), so the merged bucket totals stay schedule-independent and
    // the parallel ≡ sequential suite checks them like counters
    buf.observe("fprm.cubes", count as f64);
    buf.observe("plan.support", support.len() as f64);

    let cubes: Vec<VarSet> = if count <= opts.pattern_opts.max_cubes as u64 {
        // a seeded cube list is exactly what enumeration would produce
        // (same cone, same polarity, OFDD enumeration order is canonical);
        // the count guard is a defensive consistency check
        match seed.and_then(|s| s.cubes.as_ref()) {
            Some((c, list)) if *c == count => list.clone(),
            _ => om.cubes(root),
        }
    } else {
        Vec::new()
    };
    buf.begin("patterns");
    let mut patterns = paper_patterns(n, &pol, &cubes, &opts.pattern_opts);
    patterns.truncate(opts.budget.cap_patterns(patterns.len()));
    buf.end();
    buf.count("patterns.generated", patterns.len() as u64);

    let cube_feasible = count <= opts.cube_cap;
    let use_cubes = match opts.method {
        FactorMethod::Cube => cube_feasible,
        FactorMethod::Ofdd | FactorMethod::Kfdd => false,
        FactorMethod::Best => {
            cube_feasible
                && (
                    // multi-output circuits keep cube-feasible outputs
                    // on the cube path so the cross-output divisor
                    // extraction can merge them; single-output
                    // functions pick the cheaper method directly
                    (opts.share && num_outputs > 1) || {
                        buf.span("method_select", |buf| {
                            let cube_list = if cubes.is_empty() {
                                om.cubes(root)
                            } else {
                                cubes.clone()
                            };
                            let expr = factor_cubes(&cube_list, opts.apply_rules);
                            let cube_cost = scratch_cost(n, &pol, |net, lits| expr.emit(net, lits));
                            let ofdd_cost = scratch_cost(n, &pol, |net, lits| {
                                ofdd_to_network(&om, root, net, lits)
                            });
                            buf.gauge("method.cube_cost", cube_cost as f64);
                            buf.gauge("method.ofdd_cost", ofdd_cost as f64);
                            cube_cost <= ofdd_cost
                        })
                    }
                )
        }
    };
    let lit_cubes = use_cubes.then(|| {
        let list = if cubes.is_empty() {
            om.cubes(root)
        } else {
            cubes.clone()
        };
        list.iter()
            .map(|c| {
                c.iter()
                    .map(|v| 2 * v + usize::from(!pol.is_positive(v)))
                    .collect::<VarSet>()
            })
            .collect::<Vec<VarSet>>()
    });
    let cube_cap_fallback = opts.method == FactorMethod::Cube && !cube_feasible;
    if cube_cap_fallback {
        buf.count("fprm.cube_cap_fallbacks", 1);
    }
    buf.end();
    Ok(OutputPlan {
        name: name.to_string(),
        pol,
        om,
        root,
        bdd: f,
        lit_cubes,
        fprm_cubes: cubes,
        cube_count: count,
        cube_cap_fallback,
        patterns,
        search: stats,
    })
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic of unknown type".to_string()
    }
}

/// [`plan_output`] behind the per-output salvage ladder. A panic in the
/// attempt is contained with `catch_unwind` and — like a typed error —
/// retried down the rungs when [`SynthOptions::salvage`] is on:
///
/// 1. the full plan (`opts` as given),
/// 2. [`SalvageRung::SkipFactor`]: the OFDD method, factorization skipped,
/// 3. [`SalvageRung::DirectFprm`]: all-positive polarity, OFDD method —
///    the least ambitious translation the paper admits.
///
/// Each retry counts `salvage.attempts` in its own fresh trace buffer;
/// failed attempts' buffers are discarded so the merged trace only shows
/// the kept attempt. When every rung fails, the *first* attempt's typed
/// error propagates (preserving the [`Error::Budget`] taxonomy), or
/// [`Error::OutputFailed`] if the first failure was a panic.
#[allow(clippy::too_many_arguments)]
fn plan_with_salvage(
    name: &str,
    f: xsynth_bdd::Bdd,
    bm: &mut BddManager,
    n: usize,
    num_outputs: usize,
    opts: &SynthOptions,
    candidate_parallel: bool,
    deadline: Option<Instant>,
    seed: Option<&PlanSeed>,
    mut make_buf: impl FnMut() -> TraceBuffer,
) -> Result<(OutputPlan, Option<SalvageRecord>), Error> {
    let mut buf = make_buf();
    let first = catch_unwind(AssertUnwindSafe(|| {
        plan_output(
            name,
            f,
            bm,
            n,
            num_outputs,
            opts,
            candidate_parallel,
            deadline,
            seed,
            &mut buf,
        )
    }));
    let (cause, first_typed) = match first {
        Ok(Ok(plan)) => return Ok((plan, None)),
        Ok(Err(e)) => {
            buf.discard();
            (e.to_string(), Some(e))
        }
        Err(p) => {
            buf.discard();
            (panic_message(p.as_ref()), None)
        }
    };
    let fail = |typed: Option<Error>, cause: String| {
        typed.unwrap_or_else(|| Error::OutputFailed {
            output: name.to_string(),
            cause,
        })
    };
    if !opts.salvage {
        return Err(fail(first_typed, cause));
    }
    for rung in [SalvageRung::SkipFactor, SalvageRung::DirectFprm] {
        let mut ropts = opts.clone();
        ropts.method = FactorMethod::Ofdd;
        if rung == SalvageRung::DirectFprm {
            ropts.polarity = PolarityMode::AllPositive;
        }
        let mut buf = make_buf();
        buf.count("salvage.attempts", 1);
        // salvage rungs never reuse the seed: if the seeded attempt died,
        // the cached entry is a suspect and the rung re-derives from scratch
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            plan_output(
                name,
                f,
                bm,
                n,
                num_outputs,
                &ropts,
                candidate_parallel,
                deadline,
                None,
                &mut buf,
            )
        }));
        match attempt {
            Ok(Ok(plan)) => {
                let record = SalvageRecord {
                    output: name.to_string(),
                    rung,
                    cause: cause.clone(),
                };
                return Ok((plan, Some(record)));
            }
            Ok(Err(_)) | Err(_) => buf.discard(),
        }
    }
    Err(fail(first_typed, cause))
}

/// Word-packed simulation check that the cone rooted at `sig` in `net`
/// computes `f`. Exhaustive up to 11 inputs, otherwise 128 fixed-seed
/// random patterns; past 64 inputs the packed minterm encoding runs out,
/// so the cone is trusted and the full verification pass is the backstop.
fn emitted_cone_matches(net: &Network, sig: SignalId, bm: &BddManager, f: xsynth_bdd::Bdd) -> bool {
    let n = net.inputs().len();
    if n > 64 {
        return true;
    }
    let patterns = if n <= 11 {
        exhaustive_patterns(n)
    } else {
        random_patterns(n, 128, 0x5eed_fa11)
    };
    let sim = Simulator::for_cone(net, sig);
    for (block, chunk) in pack_patterns(n, &patterns).iter().zip(patterns.chunks(64)) {
        let vals = sim.simulate_block(&block.words);
        let got = vals[sig.index()];
        let mut want = 0u64;
        for (lane, pattern) in chunk.iter().enumerate() {
            let minterm = pattern
                .iter()
                .enumerate()
                .fold(0u64, |m, (v, &bit)| m | (u64::from(bit) << v));
            if bm.eval(f, minterm) {
                want |= 1 << lane;
            }
        }
        if (got ^ want) & block.lane_mask() != 0 {
            return false;
        }
    }
    true
}

/// The per-output (collapsed) synthesis path. On a hard budget trip the
/// phase spans opened here are closed before the error propagates.
#[allow(clippy::too_many_arguments)]
fn synthesize_outputs(
    engine: &Engine,
    spec: &Network,
    opts: &SynthOptions,
    bm: &mut BddManager,
    out_bdds: &[xsynth_bdd::Bdd],
    report: &mut SynthReport,
    pattern_lists: &mut Vec<Vec<Pattern>>,
    deadline: Option<Instant>,
    sink: &TraceSink,
    main: &mut TraceBuffer,
) -> Result<Network, Error> {
    let n = spec.inputs().len();
    let mut net = Network::new(spec.name().to_string());
    let inputs: Vec<SignalId> = spec
        .inputs()
        .iter()
        .map(|&i| net.add_input(spec.node_name(i).unwrap_or("in").to_string()))
        .collect();

    // Phase 1: per-output polarity + FPRM cubes; decide the method. With
    // multiple outputs the planning fans out across worker threads, each
    // holding a cheap clone handle onto the one shared BDD substrate, so
    // every worker hash-conses into the same DAG (and the node budget is
    // one global cap, not a per-worker one); with a single output the
    // parallelism moves inside the polarity search instead, so the
    // machine is never oversubscribed. Plans are merged back by output
    // index — and each output records into its own trace buffer keyed by
    // that index — which makes both the result and the trace independent
    // of thread scheduling.
    main.begin(phase::FPRM);
    let num_outputs = spec.outputs().len();
    let parallel_outputs = opts.parallel && num_outputs > 1;
    let candidate_parallel = opts.parallel && !parallel_outputs;
    // Cache pre-pass (sequential, before the fan-out): hash each output
    // cone and pull whatever seeds the engine's cache holds for it. The
    // seed set is fixed here, and stores happen post-merge in output-index
    // order, so worker threads never touch the cache and the
    // parallel ≡ sequential determinism contract is preserved.
    let mode_salt = polarity_mode_salt(opts.polarity);
    let cones: Vec<xsynth_cache::Cone> = spec
        .outputs()
        .iter()
        .map(|(_, sig)| xsynth_cache::cone_of(spec, *sig))
        .collect();
    // A disabled cache (zero byte budget) bypasses the lookup entirely:
    // no seeds, and no per-job miss accounting for lookups never made.
    let seeds: Vec<Option<PlanSeed>> = if engine.cache_enabled() {
        cones
            .iter()
            .map(|cone| engine.lookup_seed(cone, n, mode_salt))
            .collect()
    } else {
        cones.iter().map(|_| None).collect()
    };
    if engine.cache_enabled() {
        for seed in &seeds {
            match seed {
                Some(s) => {
                    report.cache.polarity_hits += 1;
                    if s.cubes.is_some() {
                        report.cache.cubes_hits += 1;
                    } else {
                        report.cache.lookup_misses += 1;
                    }
                }
                None => report.cache.lookup_misses += 2, // polarity + cubes tiers
            }
        }
    }
    let plan_buffer =
        |i: usize, name: &str| sink.buffer_under(1 + i as u64, format!("plan:{name}"), phase::FPRM);
    type Planned = (OutputPlan, Option<SalvageRecord>);
    type PlanSlots = (Vec<(usize, Result<Planned, Error>)>, Vec<String>);
    let plans: Result<Vec<Planned>, Error> = if parallel_outputs {
        let workers = xsynth_bdd::worker_threads(num_outputs);
        let next = AtomicUsize::new(0);
        let bm_ref = &*bm;
        let outs = spec.outputs();
        // Workers are panic-isolated twice over: plan_with_salvage
        // contains panics inside each attempt, and a worker that still
        // dies (a panic outside the contained region) is recorded here
        // instead of aborting the process — its unplanned outputs become
        // typed errors below.
        let (done, worker_deaths): PlanSlots = std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut local = bm_ref.clone();
                        let mut mine = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= num_outputs {
                                break;
                            }
                            let plan = plan_with_salvage(
                                &outs[i].0,
                                out_bdds[i],
                                &mut local,
                                n,
                                num_outputs,
                                opts,
                                false,
                                deadline,
                                seeds[i].as_ref(),
                                || plan_buffer(i, &outs[i].0),
                            );
                            mine.push((i, plan));
                        }
                        mine
                    })
                })
                .collect();
            let mut done = Vec::new();
            let mut deaths = Vec::new();
            for h in handles {
                match h.join() {
                    Ok(mine) => done.extend(mine),
                    Err(p) => deaths.push(panic_message(p.as_ref())),
                }
            }
            (done, deaths)
        });
        let mut slots: Vec<Option<Result<Planned, Error>>> =
            (0..num_outputs).map(|_| None).collect();
        for (i, plan) in done {
            slots[i] = Some(plan);
        }
        // errors propagate in output-index order, so the reported trip is
        // deterministic regardless of thread scheduling; an output whose
        // worker died before planning it carries the worker's panic
        slots
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                p.unwrap_or_else(|| {
                    Err(Error::OutputFailed {
                        output: outs[i].0.clone(),
                        cause: worker_deaths.first().cloned().unwrap_or_else(|| {
                            "planner worker terminated before planning this output".to_string()
                        }),
                    })
                })
            })
            .collect()
    } else {
        spec.outputs()
            .iter()
            .zip(out_bdds.iter())
            .enumerate()
            .map(|(i, ((name, _), &f))| {
                plan_with_salvage(
                    name,
                    f,
                    bm,
                    n,
                    num_outputs,
                    opts,
                    candidate_parallel,
                    deadline,
                    seeds[i].as_ref(),
                    || plan_buffer(i, name),
                )
            })
            .collect()
    };
    let plans = match plans {
        Ok(plans) => plans,
        Err(e) => {
            main.end(); // fprm
            return Err(e);
        }
    };
    let mut plans: Vec<OutputPlan> = plans
        .into_iter()
        .enumerate()
        .map(|(i, (plan, salvage))| {
            match salvage {
                Some(record) => report.salvaged.push(record),
                // populate the cache from clean plans only: a salvaged
                // plan's polarity/cubes reflect a degraded rung, not the
                // winner these options would find on a healthy run
                None => engine.store_plan(
                    &cones[i],
                    mode_salt,
                    &plan.pol,
                    plan.cube_count,
                    &plan.fprm_cubes,
                ),
            }
            plan
        })
        .collect();
    for plan in &mut plans {
        report
            .outputs
            .push((plan.name.clone(), plan.cube_count, plan.pol.clone()));
        report.polarity_search.absorb(&plan.search);
        if plan.cube_cap_fallback {
            report.cube_cap_fallbacks += 1;
        }
        pattern_lists.push(std::mem::take(&mut plan.patterns));
    }
    main.end();
    main.begin(phase::FACTORING);

    // Phase 2: GF(2) common-divisor extraction across the cube-method
    // outputs (the cross-output merge the paper delegates to resub).
    let cube_outputs: Vec<usize> = plans
        .iter()
        .enumerate()
        .filter_map(|(i, p)| p.lit_cubes.is_some().then_some(i))
        .collect();
    let (extraction, saved_cubes) = if opts.share && !cube_outputs.is_empty() {
        // the covers are pulled from the plans by presence (the same
        // predicate that built `cube_outputs`), so no indexed unwrap can
        // ever observe a cube-less plan
        let funcs: Vec<Vec<VarSet>> = plans.iter().filter_map(|p| p.lit_cubes.clone()).collect();
        // pre-extraction covers, kept so a failed divisor emission can
        // roll the outputs back to their unshared forms
        let saved: Vec<(usize, Vec<VarSet>)> = cube_outputs
            .iter()
            .copied()
            .zip(funcs.iter().cloned())
            .collect();
        // The extraction is a pure cover rewrite: a fault inside it is
        // contained by skipping cross-output sharing for this run — the
        // plans still hold their unshared covers, so nothing needs
        // rolling back. With salvage off the fault is fatal and keeps its
        // typed identity where it has one.
        let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<gfx::Extraction, Error> {
            xsynth_trace::fail_point!(
                "core.share",
                Err(Error::OutputFailed {
                    output: "shared-divisors".to_string(),
                    cause: "injected fault: core.share tripped".to_string(),
                })
            );
            Ok(main.span("gfx_extract", |_| {
                gfx::extract(funcs, 2 * n, &gfx::ExtractOptions::default())
            }))
        }));
        let attempt: Result<gfx::Extraction, (String, Option<Error>)> = match attempt {
            Ok(Ok(ext)) => Ok(ext),
            Ok(Err(e)) => Err((e.to_string(), Some(e))),
            Err(p) => Err((panic_message(p.as_ref()), None)),
        };
        match attempt {
            Ok(ext) => {
                main.count("share.divisors", ext.divisors.len() as u64);
                report.divisors = ext.divisors.len();
                for (&i, rewritten) in cube_outputs.iter().zip(ext.functions.iter()) {
                    plans[i].lit_cubes = Some(rewritten.clone());
                }
                (ext.divisors, saved)
            }
            Err((cause, typed)) => {
                if !opts.salvage {
                    main.end(); // factoring
                    return Err(typed.unwrap_or_else(|| Error::OutputFailed {
                        output: "shared-divisors".to_string(),
                        cause,
                    }));
                }
                main.count("salvage.attempts", 1);
                report.salvaged.push(SalvageRecord {
                    output: "shared-divisors".to_string(),
                    rung: SalvageRung::SkipSharing,
                    cause,
                });
                (Vec::new(), Vec::new())
            }
        }
    } else {
        (Vec::new(), Vec::new())
    };

    // Phase 3: emit divisors (dependency order), then outputs.
    let mut not_cache: HashMap<usize, SignalId> = HashMap::new();
    let mut divisor_sig: HashMap<usize, SignalId> = HashMap::new();
    // dependency order over divisor literal references
    let emit_order = {
        let mut order: Vec<usize> = Vec::new();
        let mut emitted: Vec<bool> = vec![false; extraction.len()];
        let index_of: HashMap<usize, usize> = extraction
            .iter()
            .enumerate()
            .map(|(k, (y, _))| (*y, k))
            .collect();
        while order.len() < extraction.len() {
            let before = order.len();
            for (k, (_, cubes)) in extraction.iter().enumerate() {
                if emitted[k] {
                    continue;
                }
                let ready = cubes.iter().all(|c| {
                    c.iter()
                        .all(|l| l < 2 * n || index_of.get(&l).is_none_or(|&dk| emitted[dk]))
                });
                if ready {
                    emitted[k] = true;
                    order.push(k);
                }
            }
            assert!(order.len() > before, "cyclic divisor dependency");
        }
        order
    };
    // literal resolver shared by divisors and outputs
    macro_rules! resolve_lits {
        () => {
            |net: &mut Network, id: usize| -> SignalId {
                if id < 2 * n {
                    let v = id / 2;
                    if id % 2 == 0 {
                        inputs[v]
                    } else {
                        *not_cache
                            .entry(v)
                            .or_insert_with(|| net.add_gate(GateKind::Not, vec![inputs[v]]))
                    }
                } else {
                    divisor_sig[&id]
                }
            }
        };
    }
    // The divisors are shared structure: a fault emitting any of them is
    // contained by un-sharing — every cube output rolls back to its saved
    // pre-extraction cover (which references no divisor literals) and the
    // abandoned attempt's gates are dead, swept by the later strash pass.
    let (mut factored_hits, mut factored_misses) = (0u64, 0u64);
    let divisors_attempt = catch_unwind(AssertUnwindSafe(|| {
        for k in emit_order {
            let (y, cubes) = &extraction[k];
            let expr = engine.factor_cubes_cached(
                cubes,
                opts.apply_rules,
                main,
                &mut factored_hits,
                &mut factored_misses,
            );
            let mut lits = resolve_lits!();
            let sig = expr.emit(&mut net, &mut lits);
            divisor_sig.insert(*y, sig);
        }
    }));
    if let Err(p) = divisors_attempt {
        let cause = panic_message(p.as_ref());
        if !opts.salvage {
            main.end(); // factoring
            return Err(Error::OutputFailed {
                output: "shared-divisors".to_string(),
                cause,
            });
        }
        main.count("salvage.attempts", 1);
        main.count("rewrite.rolled_back", 1);
        report.salvaged.push(SalvageRecord {
            output: "shared-divisors".to_string(),
            rung: SalvageRung::SkipSharing,
            cause,
        });
        report.divisors = 0;
        divisor_sig.clear();
        for (i, cubes) in saved_cubes {
            plans[i].lit_cubes = Some(cubes);
        }
    }
    for plan in plans {
        let sig = match &plan.lit_cubes {
            Some(cubes) => {
                // Self-checking rewrite: the factored emission is
                // re-simulated against the output's BDD and rolled back
                // to the direct OFDD translation when it diverges (or
                // panics mid-emit). Gates emitted by an abandoned
                // attempt are dead and swept by the later strash pass.
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    let expr = engine.factor_cubes_cached(
                        cubes,
                        opts.apply_rules,
                        main,
                        &mut factored_hits,
                        &mut factored_misses,
                    );
                    let mut lits = resolve_lits!();
                    let sig = expr.emit(&mut net, &mut lits);
                    let ok = emitted_cone_matches(&net, sig, bm, plan.bdd);
                    #[cfg(feature = "failpoints")]
                    let ok = ok && !xsynth_trace::failpoint::hit("core.emit_check");
                    (sig, ok)
                }));
                match attempt {
                    Ok((sig, true)) => sig,
                    other => {
                        let cause = match &other {
                            Ok(_) => {
                                "factored emission diverged from its FPRM reference".to_string()
                            }
                            Err(p) => panic_message(p.as_ref()),
                        };
                        if other.is_err() && !opts.salvage {
                            main.end(); // factoring
                            return Err(Error::OutputFailed {
                                output: plan.name.clone(),
                                cause,
                            });
                        }
                        main.count("rewrite.rolled_back", 1);
                        if other.is_err() {
                            main.count("salvage.attempts", 1);
                        }
                        report.salvaged.push(SalvageRecord {
                            output: plan.name.clone(),
                            rung: SalvageRung::SkipFactor,
                            cause,
                        });
                        let pol = plan.pol.clone();
                        let mut lits = |net: &mut Network, v: usize| -> SignalId {
                            if pol.is_positive(v) {
                                inputs[v]
                            } else {
                                *not_cache
                                    .entry(v)
                                    .or_insert_with(|| net.add_gate(GateKind::Not, vec![inputs[v]]))
                            }
                        };
                        main.count("factor.ofdd_lowered", 1);
                        ofdd_to_network(&plan.om, plan.root, &mut net, &mut lits)
                    }
                }
            }
            None if opts.method == FactorMethod::Kfdd => {
                match xsynth_ofdd::kfdd::try_optimize_decomposition(bm, plan.bdd) {
                    Ok((km, kroot)) => km.to_network(kroot, &mut net, &inputs),
                    Err(e) => {
                        main.end(); // factoring
                        return Err(Error::Budget(BudgetExceeded::new(
                            phase::FACTORING,
                            Resource::BddNodes,
                            e.limit as u64,
                        )));
                    }
                }
            }
            None => {
                let pol = plan.pol.clone();
                let mut lits = |net: &mut Network, v: usize| -> SignalId {
                    if pol.is_positive(v) {
                        inputs[v]
                    } else {
                        *not_cache
                            .entry(v)
                            .or_insert_with(|| net.add_gate(GateKind::Not, vec![inputs[v]]))
                    }
                };
                main.count("factor.ofdd_lowered", 1);
                ofdd_to_network(&plan.om, plan.root, &mut net, &mut lits)
            }
        };
        net.add_output(plan.name.clone(), sig);
    }
    report.cache.factored_hits += factored_hits;
    report.cache.lookup_misses += factored_misses;
    main.end();
    Ok(net)
}

/// The macro-block synthesis path: rebuild SIS-style blocks with
/// `eliminate`, then FPRM-synthesize each block function locally.
fn synthesize_blocks(
    spec: &Network,
    opts: &SynthOptions,
    report: &mut SynthReport,
    buf: &mut TraceBuffer,
) -> Network {
    use xsynth_boolean::{Fprm, TruthTable};
    let s = buf.span("eliminate", |_| {
        let mut s = SopNet::from_network(spec);
        s.eliminate(8, 64);
        s.simplify();
        s
    });

    let mut net = Network::new(spec.name().to_string());
    let mut map: HashMap<usize, SignalId> = HashMap::new();
    for (i, &pi) in spec.inputs().iter().enumerate() {
        let sid = net.add_input(spec.node_name(pi).unwrap_or("in").to_string());
        map.insert(i, sid);
    }
    let mut not_cache: HashMap<SignalId, SignalId> = HashMap::new();

    for sig in s.topo_signals() {
        let cover = s.cover(sig).expect("live").clone();
        let support: Vec<usize> = cover.support().iter().collect();
        report.blocks += 1;
        buf.count("blocks.synthesized", 1);
        let sid = if support.len() <= 12 && cover.num_cubes() <= 256 {
            // local truth table over the block's fanin signals
            let k = support.len();
            let tt = TruthTable::from_fn(k, |m| {
                cover.cubes().iter().any(|c| {
                    support.iter().enumerate().all(|(b, &v)| match c.phase(v) {
                        None => true,
                        Some(ph) => ph == (m & (1 << b) != 0),
                    })
                })
            });
            let fprm = match opts.polarity {
                PolarityMode::AllPositive => Fprm::from_table_positive(&tt),
                PolarityMode::Greedy => Fprm::best_polarity_greedy(&tt),
                PolarityMode::Exhaustive => {
                    if k <= 8 {
                        Fprm::best_polarity_exhaustive(&tt)
                    } else {
                        Fprm::best_polarity_greedy(&tt)
                    }
                }
            };
            let pol = fprm.polarity().clone();
            let expr = factor_cubes_traced(fprm.cubes(), opts.apply_rules, buf);
            let mut lits = |net: &mut Network, b: usize| -> SignalId {
                let base = map[&support[b]];
                if pol.is_positive(b) {
                    base
                } else {
                    *not_cache
                        .entry(base)
                        .or_insert_with(|| net.add_gate(GateKind::Not, vec![base]))
                }
            };
            expr.emit(&mut net, &mut lits)
        } else {
            // block too wide: lower its good-factored form directly
            buf.count("blocks.sop_fallback", 1);
            let fac = xsynth_sop::algebra::factor(&cover);
            emit_block_factored(&fac, &mut net, &map, &mut not_cache)
        };
        map.insert(sig, sid);
    }
    for (name, sig) in s.outputs() {
        net.add_output(name.clone(), map[sig]);
    }
    net
}

fn emit_block_factored(
    fac: &xsynth_sop::algebra::Factored,
    net: &mut Network,
    map: &HashMap<usize, SignalId>,
    not_cache: &mut HashMap<SignalId, SignalId>,
) -> SignalId {
    use xsynth_sop::algebra::Factored;
    match fac {
        Factored::Zero => net.add_gate(GateKind::Const0, vec![]),
        Factored::One => net.add_gate(GateKind::Const1, vec![]),
        Factored::Literal(v, ph) => {
            let base = map[v];
            if *ph {
                base
            } else {
                *not_cache
                    .entry(base)
                    .or_insert_with(|| net.add_gate(GateKind::Not, vec![base]))
            }
        }
        Factored::And(xs) => {
            let fan: Vec<SignalId> = xs
                .iter()
                .map(|x| emit_block_factored(x, net, map, not_cache))
                .collect();
            net.add_gate(GateKind::And, fan)
        }
        Factored::Or(xs) => {
            let fan: Vec<SignalId> = xs
                .iter()
                .map(|x| emit_block_factored(x, net, map, not_cache))
                .collect();
            net.add_gate(GateKind::Or, fan)
        }
    }
}

/// The multi-output sharing pass — algebraic resubstitution and common
/// divisor extraction at gate granularity, the role `resub` plays when the
/// paper merges per-output networks.
fn share_pass(net: &Network) -> Network {
    let mut s = SopNet::from_network(net);
    s.eliminate(0, 16);
    s.resubstitute();
    s.extract(128);
    s.eliminate(0, 16);
    s.to_network().sweep()
}

/// Emits one candidate implementation into a scratch network and returns
/// its two-input literal cost.
fn scratch_cost(
    n: usize,
    pol: &Polarity,
    build: impl FnOnce(&mut Network, &mut dyn FnMut(&mut Network, usize) -> SignalId) -> SignalId,
) -> usize {
    let mut net = Network::new("scratch");
    let inputs: Vec<SignalId> = (0..n).map(|i| net.add_input(format!("x{i}"))).collect();
    let mut cache: HashMap<usize, SignalId> = HashMap::new();
    let pol = pol.clone();
    let mut lits = move |net: &mut Network, v: usize| -> SignalId {
        if pol.is_positive(v) {
            inputs[v]
        } else {
            *cache
                .entry(v)
                .or_insert_with(|| net.add_gate(GateKind::Not, vec![inputs[v]]))
        }
    };
    let sig = build(&mut net, &mut lits);
    net.add_output("f", sig);
    net.strash().two_input_cost().1
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsynth_sim::exhaustive_patterns;

    fn check_equiv(a: &Network, b: &Network) {
        let n = a.inputs().len();
        assert!(n <= 16);
        for p in exhaustive_patterns(n) {
            assert_eq!(a.eval(&p), b.eval(&p));
        }
    }

    fn adder(bits: usize, carry_in: bool) -> Network {
        let mut net = Network::new(format!("add{bits}"));
        let a: Vec<_> = (0..bits).map(|i| net.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..bits).map(|i| net.add_input(format!("b{i}"))).collect();
        let mut carry = carry_in.then(|| net.add_input("cin"));
        for i in 0..bits {
            let half = net.add_gate(GateKind::Xor, vec![a[i], b[i]]);
            let (sum, cout) = match carry {
                Some(c) => {
                    let s = net.add_gate(GateKind::Xor, vec![half, c]);
                    let t1 = net.add_gate(GateKind::And, vec![a[i], b[i]]);
                    let t2 = net.add_gate(GateKind::And, vec![half, c]);
                    let co = net.add_gate(GateKind::Or, vec![t1, t2]);
                    (s, co)
                }
                None => {
                    let co = net.add_gate(GateKind::And, vec![a[i], b[i]]);
                    (half, co)
                }
            };
            net.add_output(format!("s{i}"), sum);
            carry = Some(cout);
        }
        net.add_output("cout", carry.expect("at least one bit"));
        net
    }

    #[test]
    fn synthesize_adder_equivalent_and_xor_rich() {
        let spec = adder(3, true);
        let SynthOutcome {
            network: out,
            report,
        } = synthesize(&spec, &SynthOptions::default());
        check_equiv(&spec, &out);
        assert_eq!(report.redundancy.reverted, 0, "{:?}", report.redundancy);
        // sum bits keep their XORs; carries become AND/OR
        let xor_gates = out
            .topo_order()
            .iter()
            .filter(|&&id| out.gate_kind(id) == Some(GateKind::Xor))
            .count();
        assert!(xor_gates >= 2, "sum bits need XOR gates");
    }

    #[test]
    fn both_methods_agree_on_function() {
        let spec = adder(2, false);
        for method in [FactorMethod::Cube, FactorMethod::Ofdd] {
            let opts = SynthOptions::builder().method(method).build();
            let out = synthesize(&spec, &opts).network;
            check_equiv(&spec, &out);
        }
    }

    #[test]
    fn polarity_modes_all_valid() {
        let spec = adder(2, true);
        for polarity in [
            PolarityMode::AllPositive,
            PolarityMode::Greedy,
            PolarityMode::Exhaustive,
        ] {
            let opts = SynthOptions::builder().polarity(polarity).build();
            let out = synthesize(&spec, &opts).network;
            check_equiv(&spec, &out);
        }
    }

    #[test]
    fn negative_polarity_function_wins() {
        // f = ¬a·¬b·¬c + parity tail: exhaustive polarity should find the
        // negative-heavy form and the result must stay correct
        let mut spec = Network::new("neg");
        let a = spec.add_input("a");
        let b = spec.add_input("b");
        let c = spec.add_input("c");
        let na = spec.add_gate(GateKind::Not, vec![a]);
        let nb = spec.add_gate(GateKind::Not, vec![b]);
        let nc = spec.add_gate(GateKind::Not, vec![c]);
        let o = spec.add_gate(GateKind::And, vec![na, nb, nc]);
        spec.add_output("f", o);
        let SynthOutcome {
            network: out,
            report,
        } = synthesize(&spec, &SynthOptions::default());
        check_equiv(&spec, &out);
        assert_eq!(report.outputs[0].1, 1, "one cube in all-negative polarity");
    }

    #[test]
    fn multi_output_sharing_via_strash() {
        // two identical outputs must share the whole cone
        let mut spec = Network::new("share");
        let a = spec.add_input("a");
        let b = spec.add_input("b");
        let c = spec.add_input("c");
        let x = spec.add_gate(GateKind::Xor, vec![a, b, c]);
        let y = spec.add_gate(GateKind::Xor, vec![c, b, a]);
        spec.add_output("x", x);
        spec.add_output("y", y);
        let out = synthesize(&spec, &SynthOptions::default()).network;
        check_equiv(&spec, &out);
        assert!(
            out.num_gates() <= 2,
            "cones must be shared, got {}",
            out.num_gates()
        );
    }

    #[test]
    fn constant_and_wire_outputs() {
        let mut spec = Network::new("degenerate");
        let a = spec.add_input("a");
        let b = spec.add_input("b");
        let t = spec.add_gate(GateKind::Xor, vec![a, a]); // constant 0
        let w = spec.add_gate(GateKind::Buf, vec![b]);
        spec.add_output("zero", t);
        spec.add_output("wire", w);
        let out = synthesize(&spec, &SynthOptions::default()).network;
        check_equiv(&spec, &out);
        assert_eq!(out.num_gates(), 0);
    }

    #[test]
    fn report_lists_every_output() {
        let spec = adder(2, false);
        let report = synthesize(&spec, &SynthOptions::default()).report;
        assert_eq!(report.outputs.len(), spec.outputs().len());
        for (name, count, _) in &report.outputs {
            assert!(!name.is_empty());
            assert!(*count < 100);
        }
    }

    #[test]
    fn report_carries_trace_and_profile() {
        let spec = adder(3, true);
        let report = synthesize(&spec, &SynthOptions::default()).report;
        let names = report.trace.span_names();
        for p in [
            phase::SYNTHESIZE,
            phase::FPRM,
            phase::FACTORING,
            phase::SHARING,
            phase::REDUNDANCY,
            phase::VERIFY,
        ] {
            assert!(names.contains(p), "trace is missing the {p} span");
        }
        assert!(report.profile.total >= report.profile.duration(phase::FPRM));
        assert!(report
            .profile
            .phases
            .iter()
            .any(|p| p.name == phase::FPRM && p.duration > Duration::ZERO));
        // per-output planning buffers land under the fprm phase
        let forest = report.trace.forest();
        let root = &forest[0];
        assert_eq!(root.name, phase::SYNTHESIZE);
        let fprm = root
            .children
            .iter()
            .find(|c| c.name == phase::FPRM)
            .expect("fprm phase");
        let plans = fprm.children.iter().filter(|c| c.name == "plan").count();
        assert_eq!(plans, spec.outputs().len());
    }

    #[test]
    fn external_sink_aggregates_runs() {
        let sink = TraceSink::new();
        let opts = SynthOptions::builder().trace(sink.clone()).build();
        synthesize(&adder(2, false), &opts);
        synthesize(&adder(2, true), &opts);
        let trace = sink.take();
        // two runs, each with a pipeline track and one planning track per
        // output; labels are prefixed with the circuit name
        assert!(
            trace.tracks.iter().any(|t| t.label.starts_with("add2/")),
            "{:?}",
            trace.tracks.len()
        );
        let roots = trace
            .forest()
            .iter()
            .filter(|n| n.name == phase::SYNTHESIZE)
            .count();
        assert_eq!(roots, 2);
    }

    #[test]
    fn builder_covers_every_option() {
        let opts = SynthOptions::builder()
            .method(FactorMethod::Ofdd)
            .polarity(PolarityMode::Greedy)
            .apply_rules(false)
            .redundancy_removal(false)
            .share(false)
            .granularity(Granularity::Block)
            .block_threshold(9)
            .cube_cap(7)
            .pattern_opts(PatternOptions::default())
            .max_passes(1)
            .parallel(false)
            .budget(Budget::default().bdd_node_cap(Some(1000)))
            .salvage(false)
            .build();
        assert_eq!(opts.method, FactorMethod::Ofdd);
        assert_eq!(opts.polarity, PolarityMode::Greedy);
        assert!(!opts.apply_rules);
        assert!(!opts.redundancy_removal);
        assert!(!opts.share);
        assert_eq!(opts.granularity, Granularity::Block);
        assert_eq!(opts.block_threshold, 9);
        assert_eq!(opts.cube_cap, 7);
        assert_eq!(opts.max_passes, 1);
        assert!(!opts.parallel);
        assert_eq!(opts.budget.bdd_node_cap, Some(1000));
        assert!(!opts.salvage);
        assert!(opts.trace.is_none());
    }

    #[test]
    fn node_caps_give_verified_network_or_budget_error() {
        let spec = adder(3, true);
        let mut succeeded = false;
        let mut tripped = false;
        for cap in [8, 64, 512, 100_000] {
            let opts = SynthOptions::builder()
                .budget(Budget::default().bdd_node_cap(Some(cap)))
                .parallel(false)
                .build();
            match try_synthesize(&spec, &opts) {
                Ok(outcome) => {
                    succeeded = true;
                    check_equiv(&spec, &outcome.network);
                    let peak = outcome
                        .report
                        .trace
                        .gauge_max("bdd.peak_nodes")
                        .expect("peak gauge recorded");
                    assert!(peak <= cap as f64, "peak {peak} exceeds cap {cap}");
                }
                Err(Error::Budget(b)) => {
                    tripped = true;
                    assert_eq!(b.resource, Resource::BddNodes);
                }
                Err(e) => panic!("unexpected error family: {e}"),
            }
        }
        assert!(succeeded, "the loose cap must succeed");
        assert!(tripped, "the tight cap must trip");
    }

    #[test]
    fn expired_deadline_still_produces_verified_network() {
        let spec = adder(2, true);
        let opts = SynthOptions::builder()
            .budget(Budget::default().phase_timeout(Some(Duration::ZERO)))
            .parallel(false)
            .build();
        let outcome = try_synthesize(&spec, &opts).expect("time budgets degrade, never fail");
        check_equiv(&spec, &outcome.network);
        assert!(
            outcome.report.curtailed.iter().any(|p| p == phase::FPRM)
                || outcome
                    .report
                    .curtailed
                    .iter()
                    .any(|p| p == phase::REDUNDANCY),
            "an expired deadline must curtail a phase: {:?}",
            outcome.report.curtailed
        );
    }

    #[test]
    fn pattern_cap_bounds_redundancy_pattern_set() {
        let spec = adder(3, true);
        let opts = SynthOptions::builder()
            .budget(Budget::default().max_patterns(Some(8)))
            .parallel(false)
            .build();
        let outcome = try_synthesize(&spec, &opts).expect("pattern caps degrade, never fail");
        check_equiv(&spec, &outcome.network);
        let pats = outcome
            .report
            .trace
            .gauge_max("redundancy.patterns")
            .expect("pattern gauge recorded");
        assert!(pats <= 8.0, "{pats} patterns exceed the cap");
    }

    #[test]
    fn unlimited_budget_reports_nothing_curtailed() {
        let spec = adder(2, false);
        let outcome = synthesize(&spec, &SynthOptions::default());
        assert!(outcome.report.curtailed.is_empty());
        assert!(!outcome.report.verify_downgraded);
    }
}
