//! The paper's primary-input pattern sets (Section 4).
//!
//! All pattern construction happens in *literal space* — a literal mask
//! says which polarity-adjusted literals are 1 — and is translated to
//! variable space through the polarity vector:
//!
//! * **AZ** — all literals 0 (sets every XOR gate input to 0, Property 1);
//! * **AO** — all literals 1;
//! * **OC** — one pattern per FPRM cube, with exactly that cube's literals
//!   at 1;
//! * **SA1** — per cube, per literal: the OC pattern with that literal
//!   dropped to 0 (tests stuck-at-1 faults on first-level AND fanins);
//! * **closures** — unions of small cube subsets, the decidable family the
//!   paper's parity-enumeration walks to settle the controllability of
//!   missing XOR input patterns.

use xsynth_boolean::{Polarity, VarSet};

/// One input assignment per primary input, in variable space.
pub type Pattern = Vec<bool>;

/// Converts a literal mask to a variable-space pattern: a variable whose
/// literal is negative reads `1` when its literal is `0`.
pub fn literal_mask_to_pattern(n: usize, polarity: &Polarity, mask: &VarSet) -> Pattern {
    (0..n)
        .map(|v| {
            let lit = mask.contains(v);
            if polarity.is_positive(v) {
                lit
            } else {
                !lit
            }
        })
        .collect()
}

/// Options bounding pattern-set generation.
#[derive(Debug, Clone)]
pub struct PatternOptions {
    /// Skip OC/SA1/closure generation for outputs with more cubes than
    /// this (their patterns would dwarf the simulation budget).
    pub max_cubes: usize,
    /// Cap on closure (cube-union) patterns.
    pub max_closures: usize,
}

impl Default for PatternOptions {
    fn default() -> Self {
        PatternOptions {
            max_cubes: 512,
            max_closures: 4096,
        }
    }
}

#[allow(clippy::needless_range_loop)]
/// Generates the paper's pattern family for one output function given its
/// FPRM cubes and polarity. Always includes AZ and AO; includes OC, SA1
/// and pair/triple closures when the cube count is within
/// [`PatternOptions::max_cubes`].
pub fn paper_patterns(
    n: usize,
    polarity: &Polarity,
    cubes: &[VarSet],
    opts: &PatternOptions,
) -> Vec<Pattern> {
    let mut masks: Vec<VarSet> = vec![VarSet::new(), VarSet::full(n)];
    if cubes.len() <= opts.max_cubes {
        // OC
        masks.extend(cubes.iter().cloned());
        // SA1
        for c in cubes {
            for v in c.iter() {
                let mut m = c.clone();
                m.remove(v);
                masks.push(m);
            }
        }
        // closures: unions of pairs and triples
        let mut closures = 0usize;
        'outer: for i in 0..cubes.len() {
            for j in (i + 1)..cubes.len() {
                let pair = cubes[i].union(&cubes[j]);
                masks.push(pair.clone());
                closures += 1;
                if closures >= opts.max_closures {
                    break 'outer;
                }
                for k in (j + 1)..cubes.len() {
                    if closures >= opts.max_closures {
                        break 'outer;
                    }
                    masks.push(pair.union(&cubes[k]));
                    closures += 1;
                }
            }
        }
    }
    masks.sort();
    masks.dedup();
    masks
        .iter()
        .map(|m| literal_mask_to_pattern(n, polarity, m))
        .collect()
}

/// Merges per-output pattern lists, deduplicating.
pub fn merge_patterns(lists: Vec<Vec<Pattern>>) -> Vec<Pattern> {
    let mut all: Vec<Pattern> = lists.into_iter().flatten().collect();
    all.sort();
    all.dedup();
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn az_pattern_respects_polarity() {
        // negative-polarity variables read 1 when their literal is 0
        let pol = Polarity::from_bits(&[true, false, true]);
        let p = literal_mask_to_pattern(3, &pol, &VarSet::new());
        assert_eq!(p, vec![false, true, false]);
    }

    #[test]
    fn oc_pattern_sets_cube_literals() {
        let pol = Polarity::all_positive(4);
        let cube = VarSet::from_vars([1, 3]);
        let p = literal_mask_to_pattern(4, &pol, &cube);
        assert_eq!(p, vec![false, true, false, true]);
    }

    #[test]
    fn family_contains_az_ao_oc_sa1() {
        let pol = Polarity::all_positive(3);
        let cubes = vec![VarSet::from_vars([0, 1]), VarSet::from_vars([2])];
        let pats = paper_patterns(3, &pol, &cubes, &PatternOptions::default());
        let az = vec![false, false, false];
        let ao = vec![true, true, true];
        let oc1 = vec![true, true, false];
        let oc2 = vec![false, false, true];
        let sa1 = vec![true, false, false]; // cube {0,1} minus literal 1
        for want in [&az, &ao, &oc1, &oc2, &sa1] {
            assert!(pats.contains(want), "missing {want:?}");
        }
        // closure of the two cubes
        let closure = vec![true, true, true]; // same as AO here
        assert!(pats.contains(&closure));
    }

    #[test]
    fn large_cube_counts_fall_back_to_az_ao() {
        let pol = Polarity::all_positive(4);
        let cubes: Vec<VarSet> = (0..100).map(|i| VarSet::singleton(i % 4)).collect();
        let opts = PatternOptions {
            max_cubes: 10,
            max_closures: 10,
        };
        let pats = paper_patterns(4, &pol, &cubes, &opts);
        assert_eq!(pats.len(), 2, "only AZ and AO expected");
    }

    #[test]
    fn closure_cap_respected() {
        let pol = Polarity::all_positive(8);
        let cubes: Vec<VarSet> = (0..8).map(VarSet::singleton).collect();
        let opts = PatternOptions {
            max_cubes: 512,
            max_closures: 5,
        };
        let pats = paper_patterns(8, &pol, &cubes, &opts);
        // AZ + AO + 8 OC + 0 SA1 (single-literal cubes: SA1 masks collapse
        // onto AZ) + ≤5 closures, deduped
        assert!(pats.len() <= 2 + 8 + 5);
    }

    #[test]
    fn merge_dedupes() {
        let a = vec![vec![true], vec![false]];
        let b = vec![vec![true]];
        let m = merge_patterns(vec![a, b]);
        assert_eq!(m.len(), 2);
    }
}
