//! GF(2) factored expressions and the paper's Reduction/Factorization
//! rules (Section 3).
//!
//! The cube-method factorization produces a [`Gexpr`] — an AND/OR/XOR/NOT
//! expression over *literals in polarity space* (a literal is just a
//! variable index; its phase is supplied by the function's polarity vector
//! when the expression is lowered to a network). The rewrite rules are:
//!
//! * (a) `A ⊕ AB = A·¬B`
//! * (b) `AB ⊕ AC ⊕ ABC = A(B + C)` (applied after common factors are
//!   pulled out, so the instance matched here is `X ⊕ Y ⊕ XY = X + Y`)
//! * (c) `AB ⊕ ¬B = A + ¬B`

use std::fmt;
use xsynth_net::{GateKind, Network, SignalId};

/// A factored expression over GF(2) with AND/OR/XOR/NOT connectives.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Gexpr {
    /// Constant zero.
    Zero,
    /// Constant one.
    One,
    /// A literal: the variable's phase comes from the function's polarity
    /// vector at lowering time.
    Lit(usize),
    /// Complement.
    Not(Box<Gexpr>),
    /// Product.
    And(Vec<Gexpr>),
    /// Disjunction (only introduced by the reduction rules).
    Or(Vec<Gexpr>),
    /// GF(2) sum.
    Xor(Vec<Gexpr>),
}

impl Gexpr {
    /// Builds a product of literals (a cube term).
    pub fn cube<I: IntoIterator<Item = usize>>(vars: I) -> Gexpr {
        let lits: Vec<Gexpr> = vars.into_iter().map(Gexpr::Lit).collect();
        match lits.len() {
            0 => Gexpr::One,
            1 => lits.into_iter().next().expect("one element"),
            _ => Gexpr::And(lits),
        }
    }

    /// Number of literal occurrences.
    pub fn num_literals(&self) -> usize {
        match self {
            Gexpr::Zero | Gexpr::One => 0,
            Gexpr::Lit(_) => 1,
            Gexpr::Not(x) => x.num_literals(),
            Gexpr::And(xs) | Gexpr::Or(xs) | Gexpr::Xor(xs) => {
                xs.iter().map(Gexpr::num_literals).sum()
            }
        }
    }

    /// Number of XOR operators (each `Xor` of `k` children counts `k−1`).
    pub fn num_xor_ops(&self) -> usize {
        match self {
            Gexpr::Zero | Gexpr::One | Gexpr::Lit(_) => 0,
            Gexpr::Not(x) => x.num_xor_ops(),
            Gexpr::And(xs) | Gexpr::Or(xs) => xs.iter().map(Gexpr::num_xor_ops).sum(),
            Gexpr::Xor(xs) => {
                xs.len().saturating_sub(1) + xs.iter().map(Gexpr::num_xor_ops).sum::<usize>()
            }
        }
    }

    /// Evaluates against a *literal* environment: `env(v)` is the value of
    /// the polarity-adjusted literal of variable `v`.
    pub fn eval(&self, env: &dyn Fn(usize) -> bool) -> bool {
        match self {
            Gexpr::Zero => false,
            Gexpr::One => true,
            Gexpr::Lit(v) => env(*v),
            Gexpr::Not(x) => !x.eval(env),
            Gexpr::And(xs) => xs.iter().all(|x| x.eval(env)),
            Gexpr::Or(xs) => xs.iter().any(|x| x.eval(env)),
            Gexpr::Xor(xs) => xs.iter().fold(false, |a, x| a ^ x.eval(env)),
        }
    }

    /// Canonicalizes the expression: flattens nested associative operators,
    /// folds constants, sorts children of commutative operators and cancels
    /// duplicate XOR operands.
    pub fn normalize(self) -> Gexpr {
        match self {
            Gexpr::Zero | Gexpr::One | Gexpr::Lit(_) => self,
            Gexpr::Not(x) => match x.normalize() {
                Gexpr::Zero => Gexpr::One,
                Gexpr::One => Gexpr::Zero,
                Gexpr::Not(inner) => *inner,
                other => Gexpr::Not(Box::new(other)),
            },
            Gexpr::And(xs) => {
                let mut kids = Vec::new();
                for x in xs {
                    match x.normalize() {
                        Gexpr::Zero => return Gexpr::Zero,
                        Gexpr::One => {}
                        Gexpr::And(inner) => kids.extend(inner),
                        other => kids.push(other),
                    }
                }
                kids.sort();
                kids.dedup();
                match kids.len() {
                    0 => Gexpr::One,
                    1 => kids.into_iter().next().expect("one"),
                    _ => Gexpr::And(kids),
                }
            }
            Gexpr::Or(xs) => {
                let mut kids = Vec::new();
                for x in xs {
                    match x.normalize() {
                        Gexpr::One => return Gexpr::One,
                        Gexpr::Zero => {}
                        Gexpr::Or(inner) => kids.extend(inner),
                        other => kids.push(other),
                    }
                }
                kids.sort();
                kids.dedup();
                match kids.len() {
                    0 => Gexpr::Zero,
                    1 => kids.into_iter().next().expect("one"),
                    _ => Gexpr::Or(kids),
                }
            }
            Gexpr::Xor(xs) => {
                let mut kids: Vec<Gexpr> = Vec::new();
                let mut parity = false;
                for x in xs {
                    match x.normalize() {
                        Gexpr::Zero => {}
                        Gexpr::One => parity = !parity,
                        Gexpr::Xor(inner) => kids.extend(inner),
                        other => kids.push(other),
                    }
                }
                kids.sort();
                // a ⊕ a = 0: drop pairs
                let mut dedup: Vec<Gexpr> = Vec::new();
                for k in kids {
                    if dedup.last() == Some(&k) {
                        dedup.pop();
                    } else {
                        dedup.push(k);
                    }
                }
                let base = match dedup.len() {
                    0 => Gexpr::Zero,
                    1 => dedup.into_iter().next().expect("one"),
                    _ => Gexpr::Xor(dedup),
                };
                if parity {
                    match base {
                        Gexpr::Zero => Gexpr::One,
                        Gexpr::One => Gexpr::Zero,
                        Gexpr::Not(inner) => *inner,
                        other => Gexpr::Not(Box::new(other)),
                    }
                } else {
                    base
                }
            }
        }
    }

    /// The multiplicative factors of the expression: the children of an
    /// `And`, or the expression itself.
    fn factors(&self) -> Vec<Gexpr> {
        match self {
            Gexpr::And(xs) => xs.clone(),
            other => vec![other.clone()],
        }
    }

    fn from_factors(mut fs: Vec<Gexpr>) -> Gexpr {
        fs.sort();
        fs.dedup();
        match fs.len() {
            0 => Gexpr::One,
            1 => fs.into_iter().next().expect("one"),
            _ => Gexpr::And(fs),
        }
    }

    /// Applies the paper's Reduction rules (a)–(c) bottom-up until a fixed
    /// point (bounded by an internal iteration cap).
    pub fn apply_rules(self) -> Gexpr {
        let mut cur = self.normalize();
        for _ in 0..64 {
            let next = rewrite_once(cur.clone()).normalize();
            if next == cur {
                return cur;
            }
            cur = next;
        }
        cur
    }

    /// Lowers the expression into `net`, mapping literal `v` through
    /// `literal_sig` (which supplies the polarity-adjusted signal). XOR
    /// nodes become balanced trees of two-input XOR gates, as the
    /// redundancy analysis of Section 4 assumes.
    pub fn emit(
        &self,
        net: &mut Network,
        literal_sig: &mut dyn FnMut(&mut Network, usize) -> SignalId,
    ) -> SignalId {
        match self {
            Gexpr::Zero => net.add_gate(GateKind::Const0, vec![]),
            Gexpr::One => net.add_gate(GateKind::Const1, vec![]),
            Gexpr::Lit(v) => literal_sig(net, *v),
            Gexpr::Not(x) => {
                let s = x.emit(net, literal_sig);
                net.add_gate(GateKind::Not, vec![s])
            }
            Gexpr::And(xs) => {
                let fan: Vec<SignalId> = xs.iter().map(|x| x.emit(net, literal_sig)).collect();
                net.add_gate(GateKind::And, fan)
            }
            Gexpr::Or(xs) => {
                let fan: Vec<SignalId> = xs.iter().map(|x| x.emit(net, literal_sig)).collect();
                net.add_gate(GateKind::Or, fan)
            }
            Gexpr::Xor(xs) => {
                let mut layer: Vec<SignalId> =
                    xs.iter().map(|x| x.emit(net, literal_sig)).collect();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        if pair.len() == 1 {
                            next.push(pair[0]);
                        } else {
                            next.push(net.add_gate(GateKind::Xor, vec![pair[0], pair[1]]));
                        }
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }
}

/// One bottom-up rewrite sweep applying rules (a), (b), (c) where they
/// match inside XOR operator lists.
fn rewrite_once(e: Gexpr) -> Gexpr {
    match e {
        Gexpr::Zero | Gexpr::One | Gexpr::Lit(_) => e,
        Gexpr::Not(x) => Gexpr::Not(Box::new(rewrite_once(*x))),
        Gexpr::And(xs) => Gexpr::And(xs.into_iter().map(rewrite_once).collect()),
        Gexpr::Or(xs) => Gexpr::Or(xs.into_iter().map(rewrite_once).collect()),
        Gexpr::Xor(xs) => {
            let mut kids: Vec<Gexpr> = xs.into_iter().map(rewrite_once).collect();

            // rule (b): X ⊕ Y ⊕ XY = X + Y   (check before rule (a), which
            // would otherwise consume the X / XY pair first)
            'b: loop {
                for i in 0..kids.len() {
                    for j in 0..kids.len() {
                        if i == j {
                            continue;
                        }
                        for k in 0..kids.len() {
                            if k == i || k == j {
                                continue;
                            }
                            let fi = kids[i].factors();
                            let fj = kids[j].factors();
                            let fk = kids[k].factors();
                            let mut merged = fi.clone();
                            merged.extend(fj.clone());
                            merged.sort();
                            merged.dedup();
                            let mut fk_sorted = fk.clone();
                            fk_sorted.sort();
                            fk_sorted.dedup();
                            // X and Y must not share factors for XY = X∪Y
                            let disjoint = fi.iter().all(|f| !fj.contains(f));
                            if disjoint && merged == fk_sorted {
                                let x = kids[i].clone();
                                let y = kids[j].clone();
                                let mut rm: Vec<usize> = vec![i, j, k];
                                rm.sort_unstable_by(|a, b| b.cmp(a));
                                for idx in rm {
                                    kids.remove(idx);
                                }
                                kids.push(Gexpr::Or(vec![x, y]));
                                continue 'b;
                            }
                        }
                    }
                }
                break;
            }

            // rule (c): AB ⊕ ¬B = A + ¬B
            'c: loop {
                for i in 0..kids.len() {
                    let Gexpr::Not(b) = &kids[i] else { continue };
                    let b = (**b).clone();
                    let b_factors = b.factors();
                    for j in 0..kids.len() {
                        if i == j {
                            continue;
                        }
                        let fj = kids[j].factors();
                        // B's factors must all be in the product
                        if b_factors.iter().all(|f| fj.contains(f)) && fj.len() > b_factors.len() {
                            let a_factors: Vec<Gexpr> = fj
                                .iter()
                                .filter(|f| !b_factors.contains(f))
                                .cloned()
                                .collect();
                            let a = Gexpr::from_factors(a_factors);
                            let nb = kids[i].clone();
                            let mut rm = [i, j];
                            rm.sort_unstable_by(|x, y| y.cmp(x));
                            for idx in rm {
                                kids.remove(idx);
                            }
                            kids.push(Gexpr::Or(vec![a, nb]));
                            continue 'c;
                        }
                    }
                }
                break;
            }

            // rule (a): A ⊕ AB = A·¬B   (A's factors strictly inside B's)
            'a: loop {
                for i in 0..kids.len() {
                    for j in 0..kids.len() {
                        if i == j {
                            continue;
                        }
                        let fi = kids[i].factors();
                        let fj = kids[j].factors();
                        if fi.len() < fj.len() && fi.iter().all(|f| fj.contains(f)) {
                            let b_factors: Vec<Gexpr> =
                                fj.iter().filter(|f| !fi.contains(f)).cloned().collect();
                            let b = Gexpr::from_factors(b_factors);
                            let mut new_factors = fi.clone();
                            new_factors.push(Gexpr::Not(Box::new(b)).normalize());
                            let merged = Gexpr::from_factors(new_factors);
                            let mut rm = [i, j];
                            rm.sort_unstable_by(|x, y| y.cmp(x));
                            for idx in rm {
                                kids.remove(idx);
                            }
                            kids.push(merged);
                            continue 'a;
                        }
                    }
                }
                break;
            }

            Gexpr::Xor(kids)
        }
    }
}

impl fmt::Display for Gexpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gexpr::Zero => write!(f, "0"),
            Gexpr::One => write!(f, "1"),
            Gexpr::Lit(v) => write!(f, "x{v}"),
            Gexpr::Not(x) => write!(f, "¬({x})"),
            Gexpr::And(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "·")?;
                    }
                    if matches!(x, Gexpr::Or(_) | Gexpr::Xor(_)) {
                        write!(f, "({x})")?;
                    } else {
                        write!(f, "{x}")?;
                    }
                }
                Ok(())
            }
            Gexpr::Or(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    if matches!(x, Gexpr::Xor(_)) {
                        write!(f, "({x})")?;
                    } else {
                        write!(f, "{x}")?;
                    }
                }
                Ok(())
            }
            Gexpr::Xor(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ⊕ ")?;
                    }
                    if matches!(x, Gexpr::Or(_)) {
                        write!(f, "({x})")?;
                    } else {
                        write!(f, "{x}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_all(e: &Gexpr, n: usize) -> Vec<bool> {
        (0..(1u64 << n))
            .map(|m| e.eval(&|v| m & (1 << v) != 0))
            .collect()
    }

    #[test]
    fn rule_a_applies() {
        // x0 ⊕ x0·x1 → x0·¬x1
        let e = Gexpr::Xor(vec![Gexpr::cube([0]), Gexpr::cube([0, 1])]);
        let before = eval_all(&e, 2);
        let r = e.apply_rules();
        assert_eq!(eval_all(&r, 2), before);
        assert_eq!(r.num_xor_ops(), 0, "rule (a) must remove the XOR: {r}");
    }

    #[test]
    fn rule_b_applies() {
        // x0 ⊕ x1 ⊕ x0x1 = x0 + x1
        let e = Gexpr::Xor(vec![
            Gexpr::cube([0]),
            Gexpr::cube([1]),
            Gexpr::cube([0, 1]),
        ]);
        let before = eval_all(&e, 2);
        let r = e.apply_rules();
        assert_eq!(eval_all(&r, 2), before);
        assert_eq!(r, Gexpr::Or(vec![Gexpr::Lit(0), Gexpr::Lit(1)]));
    }

    #[test]
    fn rule_b_with_compound_terms() {
        // X ⊕ Y ⊕ XY with X = x0x1, Y = x2: → x0x1 + x2
        let e = Gexpr::Xor(vec![
            Gexpr::cube([0, 1]),
            Gexpr::cube([2]),
            Gexpr::cube([0, 1, 2]),
        ]);
        let before = eval_all(&e, 3);
        let r = e.apply_rules();
        assert_eq!(eval_all(&r, 3), before);
        assert_eq!(r.num_xor_ops(), 0, "{r}");
    }

    #[test]
    fn rule_c_applies() {
        // x0·x1 ⊕ ¬x1 = x0 + ¬x1
        let e = Gexpr::Xor(vec![
            Gexpr::cube([0, 1]),
            Gexpr::Not(Box::new(Gexpr::Lit(1))),
        ]);
        let before = eval_all(&e, 2);
        let r = e.apply_rules();
        assert_eq!(eval_all(&r, 2), before);
        assert_eq!(r.num_xor_ops(), 0, "{r}");
    }

    #[test]
    fn paper_reduction_chain() {
        // Section 4: (B ⊕ C) ⊕ BC = B + C
        let e = Gexpr::Xor(vec![
            Gexpr::Lit(0),
            Gexpr::Lit(1),
            Gexpr::And(vec![Gexpr::Lit(0), Gexpr::Lit(1)]),
        ]);
        let r = e.apply_rules();
        assert_eq!(r, Gexpr::Or(vec![Gexpr::Lit(0), Gexpr::Lit(1)]));
    }

    #[test]
    fn rules_preserve_random_functions() {
        // stress the rewriter on random small XOR expressions
        let mut seed = 12345u64;
        let mut rand = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for _ in 0..50 {
            let n = 4;
            let terms = 2 + rand() % 4;
            let mut kids = Vec::new();
            for _ in 0..terms {
                let sz = 1 + rand() % 3;
                let vars: Vec<usize> = (0..sz).map(|_| rand() % n).collect();
                kids.push(Gexpr::cube(vars));
            }
            let e = Gexpr::Xor(kids).normalize();
            let before = eval_all(&e, n);
            let r = e.apply_rules();
            assert_eq!(eval_all(&r, n), before, "rules changed function of {r}");
        }
    }

    #[test]
    fn normalize_cancels_xor_pairs() {
        let e = Gexpr::Xor(vec![Gexpr::Lit(0), Gexpr::Lit(0), Gexpr::Lit(1)]);
        assert_eq!(e.normalize(), Gexpr::Lit(1));
        let f = Gexpr::Xor(vec![Gexpr::Lit(0), Gexpr::One]);
        assert_eq!(f.normalize(), Gexpr::Not(Box::new(Gexpr::Lit(0))));
    }

    #[test]
    fn normalize_constant_folding() {
        let e = Gexpr::And(vec![Gexpr::Lit(0), Gexpr::Zero]);
        assert_eq!(e.normalize(), Gexpr::Zero);
        let e = Gexpr::Or(vec![Gexpr::Lit(0), Gexpr::One]);
        assert_eq!(e.normalize(), Gexpr::One);
        let e = Gexpr::Not(Box::new(Gexpr::Not(Box::new(Gexpr::Lit(3)))));
        assert_eq!(e.normalize(), Gexpr::Lit(3));
    }

    #[test]
    fn emit_builds_binary_xor_tree() {
        let e = Gexpr::Xor(vec![
            Gexpr::Lit(0),
            Gexpr::Lit(1),
            Gexpr::Lit(2),
            Gexpr::Lit(3),
        ]);
        let mut net = Network::new("t");
        let ins: Vec<SignalId> = (0..4).map(|i| net.add_input(format!("x{i}"))).collect();
        let s = e.emit(&mut net, &mut |_, v| ins[v]);
        net.add_output("y", s);
        for id in net.topo_order() {
            if net.gate_kind(id) == Some(GateKind::Xor) {
                assert_eq!(net.fanins(id).len(), 2);
            }
        }
        for m in 0..16u64 {
            assert_eq!(net.eval_u64(m)[0], (m.count_ones() % 2) == 1);
        }
    }

    #[test]
    fn display_roundtrips_visually() {
        let e = Gexpr::Xor(vec![
            Gexpr::And(vec![Gexpr::Lit(0), Gexpr::Not(Box::new(Gexpr::Lit(1)))]),
            Gexpr::Or(vec![Gexpr::Lit(2), Gexpr::Lit(3)]),
        ]);
        let s = e.to_string();
        assert!(s.contains('⊕'), "{s}");
        assert!(s.contains('+'), "{s}");
    }

    #[test]
    fn literal_count_and_xor_ops() {
        let e = Gexpr::Xor(vec![
            Gexpr::cube([0, 1]),
            Gexpr::cube([2]),
            Gexpr::cube([3, 4, 5]),
        ]);
        assert_eq!(e.num_literals(), 6);
        assert_eq!(e.num_xor_ops(), 2);
    }
}
