//! The unified error type of the synthesis stack.
//!
//! Every fallible entry point — netlist construction, BLIF/PLA parsing,
//! file loading — funnels into one [`Error`] enum, so callers (the CLI,
//! the benchmark harness, library users) handle a single type instead of
//! matching per-crate errors. `From` impls make `?` work across the crate
//! boundaries.

use crate::budget::BudgetExceeded;
use std::fmt;
use xsynth_blif::ParseError;
use xsynth_net::NetError;

/// Any error the synthesis stack can report.
///
/// Each variant family maps to a distinct nonzero process exit code in the
/// CLI (see [`Error::exit_code`]).
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A structural netlist error (unknown output, combinational cycle,
    /// bad gate arity).
    Net(NetError),
    /// A BLIF/PLA parse error, with its source line number.
    Parse(ParseError),
    /// An I/O failure, tagged with the path involved.
    Io {
        /// The file being read or written.
        path: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A candidate network's primary inputs differ from the reference the
    /// equivalence checker was built for.
    InputMismatch {
        /// Input names of the reference, in order.
        expected: Vec<String>,
        /// Input names of the candidate, in order.
        found: Vec<String>,
    },
    /// A network failed equivalence verification against its reference.
    Verify(String),
    /// A resource budget tripped where no degraded result was possible.
    Budget(BudgetExceeded),
    /// One output's synthesis failed (typically a contained worker panic)
    /// and no salvage rung could recover it.
    OutputFailed {
        /// Name of the failing primary output (or `"pipeline"` for a
        /// fault outside any per-output scope).
        output: String,
        /// The underlying panic message or error description.
        cause: String,
    },
    /// A service protocol violation: a well-formed JSON message whose
    /// shape or `protocol_version` the serve wire contract rejects.
    /// Distinct from [`Error::Parse`] (malformed input text) — the message
    /// parsed fine, its *meaning* is outside the contract.
    Protocol(String),
    /// The daemon shed this request under load (queue full, drain in
    /// progress, or a missed deadline). The work was never started, so
    /// retrying is always safe; `retry_after_ms` is the server's backoff
    /// hint for when capacity is expected again.
    Overloaded {
        /// Why admission was refused (`"per-connection queue full"`,
        /// `"draining"`, ...).
        reason: String,
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// A free-form usage or validation error.
    Msg(String),
}

impl Error {
    /// Wraps an I/O error with the path it concerns.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Error {
        Error::Io {
            path: path.into(),
            source,
        }
    }

    /// A free-form error message.
    pub fn msg(msg: impl Into<String>) -> Error {
        Error::Msg(msg.into())
    }

    /// The process exit code the CLI maps this error family to. The codes
    /// are part of the CLI contract (documented in its usage text): 2 =
    /// usage, 3 = parse, 4 = I/O, 5 = netlist, 6 = input mismatch, 7 =
    /// verification failure, 8 = budget exceeded, 9 = output failed,
    /// 10 = protocol violation, 11 = overloaded (shed, safe to retry).
    pub fn exit_code(&self) -> i32 {
        match self {
            Error::Msg(_) => 2,
            Error::Parse(_) => 3,
            Error::Io { .. } => 4,
            Error::Net(_) => 5,
            Error::InputMismatch { .. } => 6,
            Error::Verify(_) => 7,
            Error::Budget(_) => 8,
            Error::OutputFailed { .. } => 9,
            Error::Protocol(_) => 10,
            Error::Overloaded { .. } => 11,
        }
    }

    /// An overload shed with a retry hint.
    pub fn overloaded(reason: impl Into<String>, retry_after_ms: u64) -> Error {
        Error::Overloaded {
            reason: reason.into(),
            retry_after_ms,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Net(e) => write!(f, "{e}"),
            Error::Parse(e) => write!(f, "{e}"),
            Error::Io { path, source } => write!(f, "{path}: {source}"),
            Error::InputMismatch { expected, found } => write!(
                f,
                "candidate inputs [{}] differ from reference inputs [{}]",
                found.join(", "),
                expected.join(", ")
            ),
            Error::Verify(m) => write!(f, "verification failed: {m}"),
            Error::Budget(e) => write!(f, "{e}"),
            Error::OutputFailed { output, cause } => {
                write!(f, "output `{output}` failed: {cause}")
            }
            Error::Protocol(m) => write!(f, "protocol violation: {m}"),
            Error::Overloaded {
                reason,
                retry_after_ms,
            } => write!(f, "overloaded: {reason} (retry after {retry_after_ms} ms)"),
            Error::Msg(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Net(e) => Some(e),
            Error::Parse(e) => Some(e),
            Error::Io { source, .. } => Some(source),
            Error::Budget(e) => Some(e),
            Error::InputMismatch { .. }
            | Error::Verify(_)
            | Error::OutputFailed { .. }
            | Error::Protocol(_)
            | Error::Overloaded { .. }
            | Error::Msg(_) => None,
        }
    }
}

impl From<BudgetExceeded> for Error {
    fn from(e: BudgetExceeded) -> Error {
        Error::Budget(e)
    }
}

impl From<NetError> for Error {
    fn from(e: NetError) -> Error {
        Error::Net(e)
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Error {
        Error::Parse(e)
    }
}

impl From<String> for Error {
    fn from(m: String) -> Error {
        Error::Msg(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_err() -> ParseError {
        ParseError::new(3, "bad token")
    }

    #[test]
    fn displays_and_sources() {
        let e: Error = parse_err().into();
        assert!(e.to_string().contains("bad token"));
        assert!(std::error::Error::source(&e).is_some());
        let io = Error::io("a.blif", std::io::Error::other("nope"));
        assert!(io.to_string().contains("a.blif"));
        let msg = Error::msg("usage");
        assert_eq!(msg.to_string(), "usage");
        assert!(std::error::Error::source(&msg).is_none());
    }

    #[test]
    fn overloaded_carries_the_retry_hint_and_exit_code_11() {
        let e = Error::overloaded("global queue full", 250);
        assert_eq!(e.exit_code(), 11);
        let text = e.to_string();
        assert!(text.contains("global queue full"), "{text}");
        assert!(text.contains("250"), "{text}");
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn question_mark_converts_across_crates() {
        fn parse() -> Result<(), Error> {
            Err(parse_err())?;
            Ok(())
        }
        assert!(matches!(parse(), Err(Error::Parse(_))));
        fn string_err() -> Result<(), Error> {
            Err("oops".to_string())?;
            Ok(())
        }
        assert!(matches!(string_err(), Err(Error::Msg(_))));
    }
}
