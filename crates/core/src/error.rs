//! The unified error type of the synthesis stack.
//!
//! Every fallible entry point — netlist construction, BLIF/PLA parsing,
//! file loading — funnels into one [`Error`] enum, so callers (the CLI,
//! the benchmark harness, library users) handle a single type instead of
//! matching per-crate errors. `From` impls make `?` work across the crate
//! boundaries.

use std::fmt;
use xsynth_blif::ParseError;
use xsynth_net::NetError;

/// Any error the synthesis stack can report.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A structural netlist error (unknown output, combinational cycle).
    Net(NetError),
    /// A BLIF/PLA parse error, with its source line number.
    Parse(ParseError),
    /// An I/O failure, tagged with the path involved.
    Io {
        /// The file being read or written.
        path: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A free-form usage or validation error.
    Msg(String),
}

impl Error {
    /// Wraps an I/O error with the path it concerns.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Error {
        Error::Io {
            path: path.into(),
            source,
        }
    }

    /// A free-form error message.
    pub fn msg(msg: impl Into<String>) -> Error {
        Error::Msg(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Net(e) => write!(f, "{e}"),
            Error::Parse(e) => write!(f, "{e}"),
            Error::Io { path, source } => write!(f, "{path}: {source}"),
            Error::Msg(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Net(e) => Some(e),
            Error::Parse(e) => Some(e),
            Error::Io { source, .. } => Some(source),
            Error::Msg(_) => None,
        }
    }
}

impl From<NetError> for Error {
    fn from(e: NetError) -> Error {
        Error::Net(e)
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Error {
        Error::Parse(e)
    }
}

impl From<String> for Error {
    fn from(m: String) -> Error {
        Error::Msg(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_err() -> ParseError {
        ParseError::new(3, "bad token")
    }

    #[test]
    fn displays_and_sources() {
        let e: Error = parse_err().into();
        assert!(e.to_string().contains("bad token"));
        assert!(std::error::Error::source(&e).is_some());
        let io = Error::io("a.blif", std::io::Error::other("nope"));
        assert!(io.to_string().contains("a.blif"));
        let msg = Error::msg("usage");
        assert_eq!(msg.to_string(), "usage");
        assert!(std::error::Error::source(&msg).is_none());
    }

    #[test]
    fn question_mark_converts_across_crates() {
        fn parse() -> Result<(), Error> {
            Err(parse_err())?;
            Ok(())
        }
        assert!(matches!(parse(), Err(Error::Parse(_))));
        fn string_err() -> Result<(), Error> {
            Err("oops".to_string())?;
            Ok(())
        }
        assert!(matches!(string_err(), Err(Error::Msg(_))));
    }
}
