//! Multilevel logic synthesis for arithmetic functions — the core of the
//! reproduction of *Tsai & Marek-Sadowska, "Multilevel Logic Synthesis for
//! Arithmetic Functions", DAC 1996*.
//!
//! The flow synthesizes multilevel networks directly from the
//! fixed-polarity Reed-Muller (FPRM) forms of the specification:
//!
//! 1. **FPRM generation** — per-output ROBDDs are converted to OFDDs under
//!    a searched polarity vector ([`xsynth_ofdd`], [`PolarityMode`]);
//! 2. **algebraic factorization** in GF(2) — the cube method
//!    ([`factor_cubes`], rules (a)–(e) in [`Gexpr::apply_rules`]) or the
//!    OFDD method ([`ofdd_to_network`]);
//! 3. **XOR redundancy removal** — simulation of the paper's decidable
//!    pattern family ([`paper_patterns`]) classifies each XOR gate's input
//!    classes as testable or not, and untestable classes collapse the gate
//!    to OR/AND ([`remove_redundancy`], Properties 1–7), with every
//!    rewrite verified against the specification ([`EquivChecker`]).
//!
//! The entry point is [`synthesize`].
//!
//! # Examples
//!
//! ```
//! use xsynth_core::{synthesize, SynthOptions};
//! use xsynth_net::{GateKind, Network};
//!
//! // carry = ab ⊕ (a⊕b)c — redundancy removal turns the outer XOR into OR
//! let mut spec = Network::new("carry");
//! let a = spec.add_input("a");
//! let b = spec.add_input("b");
//! let c = spec.add_input("c");
//! let ab = spec.add_gate(GateKind::And, vec![a, b]);
//! let axb = spec.add_gate(GateKind::Xor, vec![a, b]);
//! let t = spec.add_gate(GateKind::And, vec![axb, c]);
//! let cout = spec.add_gate(GateKind::Or, vec![ab, t]);
//! spec.add_output("cout", cout);
//! let (out, _report) = synthesize(&spec, &SynthOptions::default());
//! for m in 0..8 {
//!     assert_eq!(out.eval_u64(m), spec.eval_u64(m));
//! }
//! ```

#![warn(missing_docs)]

pub mod atpg;
mod expr;
mod factor;
pub mod gfx;
mod patterns;
pub mod power;
mod redundancy;
mod synth;
mod verify;

pub use expr::Gexpr;
pub use factor::{disjoint_groups, factor_cubes, literal_supplier, ofdd_to_network};
pub use patterns::{
    literal_mask_to_pattern, merge_patterns, paper_patterns, Pattern, PatternOptions,
};
pub use redundancy::{remove_redundancy, RedundancyStats};
pub use synth::{
    synthesize, FactorMethod, Granularity, PhaseTimings, PolarityMode, SynthOptions, SynthReport,
};
pub use verify::{network_bdds, EquivChecker};
pub use xsynth_ofdd::PolaritySearchStats;
