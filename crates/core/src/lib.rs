//! Multilevel logic synthesis for arithmetic functions — the core of the
//! reproduction of *Tsai & Marek-Sadowska, "Multilevel Logic Synthesis for
//! Arithmetic Functions", DAC 1996*.
//!
//! The flow synthesizes multilevel networks directly from the
//! fixed-polarity Reed-Muller (FPRM) forms of the specification:
//!
//! 1. **FPRM generation** — per-output ROBDDs are converted to OFDDs under
//!    a searched polarity vector ([`xsynth_ofdd`], [`PolarityMode`]);
//! 2. **algebraic factorization** in GF(2) — the cube method
//!    ([`factor_cubes`], rules (a)–(e) in [`Gexpr::apply_rules`]) or the
//!    OFDD method ([`ofdd_to_network`]);
//! 3. **XOR redundancy removal** — simulation of the paper's decidable
//!    pattern family ([`paper_patterns`]) classifies each XOR gate's input
//!    classes as testable or not, and untestable classes collapse the gate
//!    to OR/AND ([`remove_redundancy`], Properties 1–7), with every
//!    rewrite verified against the specification ([`EquivChecker`]).
//!
//! The entry point is [`synthesize`].
//!
//! # Examples
//!
//! ```
//! use xsynth_core::{synthesize, SynthOptions};
//! use xsynth_net::{GateKind, Network};
//!
//! // carry = ab ⊕ (a⊕b)c — redundancy removal turns the outer XOR into OR
//! let mut spec = Network::new("carry");
//! let a = spec.add_input("a");
//! let b = spec.add_input("b");
//! let c = spec.add_input("c");
//! let ab = spec.add_gate(GateKind::And, vec![a, b]);
//! let axb = spec.add_gate(GateKind::Xor, vec![a, b]);
//! let t = spec.add_gate(GateKind::And, vec![axb, c]);
//! let cout = spec.add_gate(GateKind::Or, vec![ab, t]);
//! spec.add_output("cout", cout);
//! let outcome = synthesize(&spec, &SynthOptions::default());
//! for m in 0..8 {
//!     assert_eq!(outcome.network.eval_u64(m), spec.eval_u64(m));
//! }
//! ```
//!
//! Every run is traced — `outcome.report.trace` holds the structured span
//! tree (see [`xsynth_trace`]) and `outcome.report.profile` the per-phase
//! wall-clock breakdown.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod atpg;
mod budget;
mod engine;
mod error;
mod expr;
mod factor;
pub mod gfx;
mod patterns;
pub mod power;
mod redundancy;
mod synth;
mod verify;

pub use budget::{Budget, BudgetExceeded, Resource};
pub use engine::{Engine, SubstrateStats, DEFAULT_RECLAIM_NODE_WATERMARK};
pub use error::Error;
pub use expr::Gexpr;
pub use factor::{
    disjoint_groups, factor_cubes, factor_cubes_traced, literal_supplier, ofdd_to_network,
};
pub use patterns::{
    literal_mask_to_pattern, merge_patterns, paper_patterns, Pattern, PatternOptions,
};
pub use redundancy::{
    remove_redundancy, remove_redundancy_governed, remove_redundancy_traced, RedundancyStats,
};
pub use synth::{
    phase, synthesize, try_synthesize, CacheUse, FactorMethod, Granularity, PhaseProfile,
    PhaseStat, PolarityMode, SalvageRecord, SalvageRung, SynthOptions, SynthOptionsBuilder,
    SynthOutcome, SynthReport,
};
pub use verify::{network_bdds, try_network_bdds, try_network_bdds_compact, EquivChecker};
pub use xsynth_ofdd::PolaritySearchStats;

/// The one-line import for typical users of the synthesis stack.
///
/// # Examples
///
/// ```
/// use xsynth_core::prelude::*;
/// use xsynth_net::{GateKind, Network};
///
/// let mut spec = Network::new("f");
/// let a = spec.add_input("a");
/// let b = spec.add_input("b");
/// let g = spec.add_gate(GateKind::Xor, vec![a, b]);
/// spec.add_output("f", g);
/// let opts = SynthOptions::builder().parallel(false).build();
/// let SynthOutcome { network, report } = synthesize(&spec, &opts);
/// assert_eq!(network.eval_u64(1), spec.eval_u64(1));
/// assert!(!report.outputs.is_empty());
/// ```
pub mod prelude {
    pub use crate::budget::{Budget, BudgetExceeded};
    pub use crate::engine::Engine;
    pub use crate::error::Error;
    pub use crate::synth::{
        phase, synthesize, try_synthesize, CacheUse, FactorMethod, Granularity, PhaseProfile,
        PolarityMode, SalvageRecord, SalvageRung, SynthOptions, SynthOutcome, SynthReport,
    };
    pub use xsynth_cache::{CacheStats, ResultCache};
    pub use xsynth_trace::{Trace, TraceBuffer, TraceSink};
}
