//! Algebraic factorization of FPRM forms (Section 3 of the paper).
//!
//! Two methods are provided, exactly as in the paper:
//!
//! * **Method 1 — the cube method** ([`factor_cubes`]): takes the FPRM cube
//!   list, divides it into groups with disjoint support (step 2), divides
//!   each group into subgroups with maximal common support by recursively
//!   factoring on the most frequent variable (steps 3–4, rule (d)), applies
//!   the Reduction rules, and joins group subnetworks by a balanced binary
//!   XOR tree (step 5).
//! * **Method 2 — the OFDD method** ([`ofdd_to_network`]): translates each
//!   OFDD node into one AND and one XOR gate implementing its Davio
//!   expansion, sharing common subgraphs, in a single traversal.

use crate::expr::Gexpr;
use std::collections::HashMap;
use xsynth_boolean::{Polarity, VarSet};
use xsynth_net::{GateKind, Network, SignalId};
use xsynth_ofdd::{Ofdd, OfddManager};
use xsynth_trace::TraceBuffer;

/// Factors an FPRM cube list into a [`Gexpr`] (the cube method).
///
/// When `apply_rules` is set, the paper's Reduction rules (a)–(c) rewrite
/// reducible XOR operators into AND/OR during factorization; otherwise the
/// expression keeps every XOR (assumption (3) of Section 4, which the
/// redundancy-removal pass expects).
pub fn factor_cubes(cubes: &[VarSet], apply_rules: bool) -> Gexpr {
    xsynth_trace::fail_point!("core.factor");
    // Assumption (2): the constant-one cube becomes an inverter at the
    // primary output (f = g ⊕ 1 = ¬g).
    let constant_parity = cubes.iter().filter(|c| c.is_empty()).count() % 2 == 1;
    let proper: Vec<VarSet> = cubes.iter().filter(|c| !c.is_empty()).cloned().collect();
    let body = factor_set(&proper);
    let body = if apply_rules {
        body.apply_rules()
    } else {
        body.normalize()
    };
    if constant_parity {
        Gexpr::Not(Box::new(body)).normalize()
    } else {
        body
    }
}

/// [`factor_cubes`] recording into a trace buffer: runs inside a
/// `factor_cubes` span counting the cubes factored (`factor.cubes`) and
/// the calls made (`factor.calls`).
pub fn factor_cubes_traced(cubes: &[VarSet], apply_rules: bool, buf: &mut TraceBuffer) -> Gexpr {
    buf.span("factor_cubes", |buf| {
        buf.count("factor.calls", 1);
        buf.count("factor.cubes", cubes.len() as u64);
        factor_cubes(cubes, apply_rules)
    })
}

/// Step 2: partitions cubes into groups with pairwise-disjoint support.
#[allow(clippy::needless_range_loop)]
pub fn disjoint_groups(cubes: &[VarSet]) -> Vec<Vec<VarSet>> {
    let n = cubes.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let r = find(parent, parent[i]);
            parent[i] = r;
        }
        parent[i]
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if !cubes[i].is_disjoint(&cubes[j]) {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a] = b;
                }
            }
        }
    }
    let mut groups: HashMap<usize, Vec<VarSet>> = HashMap::new();
    for i in 0..n {
        let r = find(&mut parent, i);
        groups.entry(r).or_default().push(cubes[i].clone());
    }
    let mut out: Vec<Vec<VarSet>> = groups.into_values().collect();
    out.sort_by_key(|g| g.iter().map(VarSet::min_var).min().flatten());
    out
}

/// Factors a cube set: groups disjointly, factors each group and joins the
/// results with a balanced XOR tree.
fn factor_set(cubes: &[VarSet]) -> Gexpr {
    if cubes.is_empty() {
        return Gexpr::Zero;
    }
    let groups = disjoint_groups(cubes);
    let exprs: Vec<Gexpr> = groups.iter().map(|g| factor_group(g)).collect();
    match exprs.len() {
        1 => exprs.into_iter().next().expect("one"),
        _ => Gexpr::Xor(exprs),
    }
}

/// Steps 3–4 on a connected group: factor out the most frequent variable
/// (Factorization rule (d)), recursing into both halves.
fn factor_group(cubes: &[VarSet]) -> Gexpr {
    if cubes.is_empty() {
        return Gexpr::Zero;
    }
    if cubes.len() == 1 {
        return Gexpr::cube(cubes[0].iter());
    }
    // most frequent variable
    let mut counts: HashMap<usize, usize> = HashMap::new();
    for c in cubes {
        for v in c.iter() {
            *counts.entry(v).or_default() += 1;
        }
    }
    let (&best_var, &best_count) = counts
        .iter()
        .max_by_key(|&(v, c)| (*c, std::cmp::Reverse(*v)))
        .expect("non-empty cubes");
    if best_count < 2 {
        // no shareable variable: plain XOR of cube terms
        return Gexpr::Xor(cubes.iter().map(|c| Gexpr::cube(c.iter())).collect());
    }
    let mut with_v: Vec<VarSet> = Vec::new();
    let mut without: Vec<VarSet> = Vec::new();
    for c in cubes {
        if c.contains(best_var) {
            let mut c2 = c.clone();
            c2.remove(best_var);
            with_v.push(c2);
        } else {
            without.push(c.clone());
        }
    }
    // the inner part may contain the empty cube (the factored literal
    // alone); empty cubes XOR-accumulate into a parity bit
    let inner_parity = with_v.iter().filter(|c| c.is_empty()).count() % 2 == 1;
    let proper: Vec<VarSet> = with_v.into_iter().filter(|c| !c.is_empty()).collect();
    let inner = if proper.is_empty() {
        if inner_parity {
            Gexpr::One
        } else {
            Gexpr::Zero
        }
    } else {
        let e = factor_set(&proper);
        if inner_parity {
            Gexpr::Xor(vec![e, Gexpr::One])
        } else {
            e
        }
    };
    let term = Gexpr::And(vec![Gexpr::Lit(best_var), inner]);
    if without.is_empty() {
        term
    } else {
        let rest = factor_set(&without);
        Gexpr::Xor(vec![term, rest])
    }
}

/// Lowers an OFDD into gates (the paper's Method 2): each internal node
/// becomes `lo ⊕ λ·hi` (one AND + one two-input XOR), with DAG sharing
/// preserved, in one topological traversal. Returns the signal of the
/// root.
///
/// `literal_sig` supplies the polarity-adjusted literal signal of a
/// variable (as in [`Gexpr::emit`]).
pub fn ofdd_to_network(
    om: &OfddManager,
    root: Ofdd,
    net: &mut Network,
    literal_sig: &mut dyn FnMut(&mut Network, usize) -> SignalId,
) -> SignalId {
    if root == Ofdd::ZERO {
        return net.add_gate(GateKind::Const0, vec![]);
    }
    if root == Ofdd::ONE {
        return net.add_gate(GateKind::Const1, vec![]);
    }
    let mut map: HashMap<Ofdd, SignalId> = HashMap::new();
    for (h, var, lo, hi) in om.topo_nodes(root) {
        let lit = literal_sig(net, var);
        // hi is never ZERO in a reduced OFDD
        let and_part = if hi == Ofdd::ONE {
            lit
        } else {
            net.add_gate(GateKind::And, vec![lit, map[&hi]])
        };
        let sig = match lo {
            Ofdd::ZERO => and_part,
            Ofdd::ONE => net.add_gate(GateKind::Not, vec![and_part]),
            _ => net.add_gate(GateKind::Xor, vec![map[&lo], and_part]),
        };
        map.insert(h, sig);
    }
    map[&root]
}

/// Builds a literal-signal supplier for a polarity over a fixed input
/// list: positive literals are the inputs themselves, negative literals
/// get one shared NOT gate per variable.
pub fn literal_supplier(
    polarity: &Polarity,
    inputs: &[SignalId],
) -> impl FnMut(&mut Network, usize) -> SignalId {
    let polarity = polarity.clone();
    let inputs = inputs.to_vec();
    let mut not_cache: HashMap<usize, SignalId> = HashMap::new();
    move |net: &mut Network, v: usize| {
        if polarity.is_positive(v) {
            inputs[v]
        } else {
            *not_cache
                .entry(v)
                .or_insert_with(|| net.add_gate(GateKind::Not, vec![inputs[v]]))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsynth_boolean::{Fprm, TruthTable};

    fn check_expr_matches_fprm(cubes: &[VarSet], n: usize, apply_rules: bool) {
        let f = Fprm::new(Polarity::all_positive(n), cubes.to_vec());
        let e = factor_cubes(cubes, apply_rules);
        for m in 0..(1u64 << n) {
            let env = |v: usize| m & (1 << v) != 0;
            assert_eq!(e.eval(&env), f.eval(m), "mismatch at {m} for {e}");
        }
    }

    #[test]
    fn disjoint_grouping() {
        let cubes = vec![
            VarSet::from_vars([0, 1]),
            VarSet::from_vars([2]),
            VarSet::from_vars([1, 3]),
            VarSet::from_vars([4, 5]),
        ];
        let groups = disjoint_groups(&cubes);
        assert_eq!(groups.len(), 3);
        let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        assert!(sizes.contains(&2), "cubes sharing x1 group together");
    }

    #[test]
    fn factoring_preserves_function() {
        let cubes = vec![
            VarSet::from_vars([0, 1]),
            VarSet::from_vars([0, 2]),
            VarSet::from_vars([3]),
            VarSet::from_vars([1, 2, 3]),
        ];
        check_expr_matches_fprm(&cubes, 4, false);
        check_expr_matches_fprm(&cubes, 4, true);
    }

    #[test]
    fn factoring_shares_common_variable() {
        // x0x1 ⊕ x0x2 ⊕ x0x3 = x0(x1 ⊕ x2 ⊕ x3): 4 literals
        let cubes = vec![
            VarSet::from_vars([0, 1]),
            VarSet::from_vars([0, 2]),
            VarSet::from_vars([0, 3]),
        ];
        let e = factor_cubes(&cubes, false);
        assert_eq!(e.num_literals(), 4, "{e}");
        check_expr_matches_fprm(&cubes, 4, false);
    }

    #[test]
    fn constant_cube_becomes_top_inverter() {
        // 1 ⊕ x0x1
        let cubes = vec![VarSet::new(), VarSet::from_vars([0, 1])];
        let e = factor_cubes(&cubes, false);
        assert!(matches!(e, Gexpr::Not(_)), "{e}");
        check_expr_matches_fprm(&cubes, 2, false);
    }

    #[test]
    fn adder_sum_factors_well() {
        // z4ml's x26 (paper): x3 ⊕ x6 ⊕ x1x4 ⊕ x1x7 ⊕ x4x7 — renumbered to
        // 0..5: a ⊕ b ⊕ cd ⊕ ce ⊕ de
        let cubes = vec![
            VarSet::from_vars([0]),
            VarSet::from_vars([1]),
            VarSet::from_vars([2, 3]),
            VarSet::from_vars([2, 4]),
            VarSet::from_vars([3, 4]),
        ];
        check_expr_matches_fprm(&cubes, 5, false);
        check_expr_matches_fprm(&cubes, 5, true);
        let e = factor_cubes(&cubes, false);
        // factoring shares one variable: ≤ 7 literals vs 8 flat
        assert!(e.num_literals() <= 7, "{e}");
    }

    #[test]
    fn random_cube_sets_roundtrip() {
        let mut seed = 77u64;
        let mut rand = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(99991);
            (seed >> 33) as usize
        };
        for _ in 0..40 {
            let n = 5;
            let m = 1 + rand() % 6;
            let mut cubes = Vec::new();
            for _ in 0..m {
                let mut c = VarSet::new();
                for v in 0..n {
                    if rand() % 3 == 0 {
                        c.insert(v);
                    }
                }
                cubes.push(c);
            }
            // XOR algebra: duplicate cubes cancel; keep as-is, the factored
            // expression must match the Fprm evaluation which also xors.
            check_expr_matches_fprm(&cubes, n, false);
            check_expr_matches_fprm(&cubes, n, true);
        }
    }

    #[test]
    fn ofdd_method_matches_function() {
        let t = TruthTable::from_fn(6, |m| (m * 11 + 2) % 7 < 3);
        for pol_idx in [0u64, 0b101010, 0b111111] {
            let pol = Polarity::from_index(6, pol_idx);
            let mut om = OfddManager::new(pol.clone());
            let o = om.from_table(&t);
            let mut net = Network::new("m2");
            let inputs: Vec<SignalId> = (0..6).map(|i| net.add_input(format!("x{i}"))).collect();
            let mut lits = literal_supplier(&pol, &inputs);
            let s = ofdd_to_network(&om, o, &mut net, &mut lits);
            net.add_output("f", s);
            for m in 0..64u64 {
                assert_eq!(net.eval_u64(m)[0], t.eval(m), "pol {pol_idx} m {m}");
            }
        }
    }

    #[test]
    fn ofdd_method_xor_gates_are_binary() {
        let t = TruthTable::from_fn(5, |m| m.count_ones() >= 3);
        let pol = Polarity::all_positive(5);
        let mut om = OfddManager::new(pol.clone());
        let o = om.from_table(&t);
        let mut net = Network::new("m2b");
        let inputs: Vec<SignalId> = (0..5).map(|i| net.add_input(format!("x{i}"))).collect();
        let mut lits = literal_supplier(&pol, &inputs);
        let s = ofdd_to_network(&om, o, &mut net, &mut lits);
        net.add_output("f", s);
        for id in net.topo_order() {
            if net.gate_kind(id) == Some(GateKind::Xor) {
                assert_eq!(net.fanins(id).len(), 2);
            }
        }
    }

    #[test]
    fn ofdd_method_constants() {
        let pol = Polarity::all_positive(3);
        let mut om = OfddManager::new(pol.clone());
        let zero = om.from_table(&TruthTable::zero(3));
        let mut net = Network::new("c");
        let inputs: Vec<SignalId> = (0..3).map(|i| net.add_input(format!("x{i}"))).collect();
        let mut lits = literal_supplier(&pol, &inputs);
        let s = ofdd_to_network(&om, zero, &mut net, &mut lits);
        net.add_output("z", s);
        assert_eq!(net.eval_u64(5), vec![false]);
    }

    #[test]
    fn parity_balanced_tree_depth() {
        // 8-var parity through the cube method: the balanced XOR join
        // should give depth ~log2(8) in XOR gates
        let cubes: Vec<VarSet> = (0..8).map(VarSet::singleton).collect();
        let e = factor_cubes(&cubes, false);
        assert_eq!(e.num_xor_ops(), 7);
        let mut net = Network::new("p");
        let inputs: Vec<SignalId> = (0..8).map(|i| net.add_input(format!("x{i}"))).collect();
        let pol = Polarity::all_positive(8);
        let mut lits = literal_supplier(&pol, &inputs);
        let s = e.emit(&mut net, &mut lits);
        net.add_output("p", s);
        // depth check
        let mut depth: HashMap<SignalId, usize> = HashMap::new();
        let mut max_depth = 0;
        for id in net.topo_order() {
            let d = net
                .fanins(id)
                .iter()
                .map(|f| depth[f] + 1)
                .max()
                .unwrap_or(0);
            depth.insert(id, d);
            max_depth = max_depth.max(d);
        }
        assert!(max_depth <= 4, "balanced tree expected, depth {max_depth}");
    }
}
