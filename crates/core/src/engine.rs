//! The long-lived synthesis engine.
//!
//! [`Engine`] is the primary entry point of the crate: a handle that owns
//! the pieces worth keeping warm across calls — the content-addressed
//! result cache ([`xsynth_cache::ResultCache`]), a pool of BDD substrates
//! keyed by arity, and the default [`SynthOptions`]. The free functions
//! [`crate::synthesize`] / [`crate::try_synthesize`] are thin one-shot
//! wrappers over a throwaway engine, so their behavior is unchanged; a
//! daemon constructs one engine and routes every job through it, which is
//! what lets duplicate and near-duplicate traffic skip the polarity
//! descent via cache hits.
//!
//! # Cache tiers
//!
//! Per output cone (keyed by [`xsynth_cache::cone_of`]'s canonical
//! structural hash, salted with the polarity-search mode):
//!
//! * **polarity** — the winning polarity vector over the cone's canonical
//!   input order;
//! * **cubes** — the FPRM cube list under that polarity;
//! * **factored** — keyed separately by the exact literal-cube list, the
//!   factored expression (a pure-function memo, so hits are exact).
//!
//! Seeding happens in a sequential pre-pass before the planning fan-out
//! and stores happen post-merge in output-index order, so the
//! parallel ≡ sequential determinism contract is untouched: worker
//! threads never read or write the cache.

use crate::budget::Budget;
use crate::error::Error;
use crate::expr::Gexpr;
use crate::factor::factor_cubes_traced;
use crate::synth::{SynthOptions, SynthOutcome};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use xsynth_bdd::BddManager;
use xsynth_boolean::{Polarity, VarSet};
use xsynth_cache::{cubes_key, CacheEntry, CacheStats, Cone, FactoredExpr, ResultCache, Tier};
use xsynth_net::Network;
use xsynth_trace::TraceBuffer;

/// Substrate node count past which [`Engine::checkin`] attempts a
/// generational reclamation before pooling the manager for reuse.
pub const DEFAULT_RECLAIM_NODE_WATERMARK: usize = 1 << 20;

/// A long-lived synthesis handle owning the BDD substrate pool, the
/// content-addressed result cache, and the default [`SynthOptions`].
///
/// All methods take `&self`; the engine is `Sync`, so one instance can be
/// shared across the worker threads of a daemon. Each job gets per-job
/// trace/memory scoping; only the cache and (for uncapped jobs) the warm
/// BDD substrate persist between calls.
///
/// # Examples
///
/// ```
/// use xsynth_core::Engine;
/// use xsynth_net::{GateKind, Network};
///
/// let mut spec = Network::new("f");
/// let a = spec.add_input("a");
/// let b = spec.add_input("b");
/// let g = spec.add_gate(GateKind::Xor, vec![a, b]);
/// spec.add_output("f", g);
///
/// let engine = Engine::new();
/// let cold = engine.try_synthesize(&spec).unwrap();
/// let warm = engine.try_synthesize(&spec).unwrap();
/// // the second run planned every output from the cache...
/// assert!(warm.report.cache.polarity_hits > 0);
/// // ...skipping the polarity descent entirely
/// assert_eq!(warm.report.polarity_search.candidates_evaluated, 0);
/// // and the result is bit-identical
/// assert_eq!(
///     xsynth_blif::write_blif(&warm.network),
///     xsynth_blif::write_blif(&cold.network),
/// );
/// ```
#[derive(Debug)]
pub struct Engine {
    options: SynthOptions,
    cache: ResultCache,
    pool: Mutex<HashMap<usize, BddManager>>,
    reclaim_watermark: usize,
    reclaim_refused: AtomicU64,
}

/// Point-in-time statistics of one pooled BDD substrate (see
/// [`Engine::substrate_stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubstrateStats {
    /// Variable count the substrate was built for (the pool key).
    pub arity: usize,
    /// Live node count, terminal included.
    pub nodes: usize,
    /// Apply-cache hits over the substrate's lifetime (schedule-dependent
    /// under parallelism — report as a gauge, never a checked counter).
    pub apply_hits: u64,
    /// Apply-cache misses over the substrate's lifetime.
    pub apply_misses: u64,
    /// Node count per unique-table shard, indexed by shard.
    pub shard_occupancy: Vec<usize>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// An engine with default options and a default-budget cache.
    pub fn new() -> Engine {
        Engine::with_options(SynthOptions::default())
    }

    /// An engine whose [`Engine::try_synthesize`] uses `options`.
    pub fn with_options(options: SynthOptions) -> Engine {
        Engine {
            options,
            cache: ResultCache::default(),
            pool: Mutex::new(HashMap::new()),
            reclaim_watermark: DEFAULT_RECLAIM_NODE_WATERMARK,
            reclaim_refused: AtomicU64::new(0),
        }
    }

    /// Replaces the result cache with one bounded to `bytes` (builder
    /// style, for construction time).
    pub fn cache_budget(mut self, bytes: usize) -> Engine {
        self.cache = ResultCache::new(bytes);
        self
    }

    /// Sets the substrate node count past which a checked-in manager is
    /// generationally reclaimed instead of kept warm (builder style).
    pub fn reclaim_watermark(mut self, nodes: usize) -> Engine {
        self.reclaim_watermark = nodes;
        self
    }

    /// The engine's default options.
    pub fn options(&self) -> &SynthOptions {
        &self.options
    }

    /// Lifetime statistics of the shared result cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// False when the result cache was built with a zero byte budget
    /// (`serve --cache-mb 0`): lookups and stores are bypassed entirely
    /// and the pipeline skips its seed pre-pass accounting.
    pub fn cache_enabled(&self) -> bool {
        self.cache.enabled()
    }

    /// Lifetime histogram of result-cache lookup latency in seconds (one
    /// sample per lookup, hit or miss). Feeds the serve daemon's
    /// `metrics` exposition.
    pub fn cache_lookup_hist(&self) -> xsynth_trace::Histogram {
        self.cache.lookup_hist()
    }

    /// A snapshot of every *pooled* (currently idle) BDD substrate, in
    /// ascending arity order. Substrates checked out by in-flight jobs are
    /// not visible until they check back in; capped jobs use throwaway
    /// private substrates that never pool. Feeds the daemon's `metrics`
    /// exposition (`bdd.nodes`, apply-cache hit ratio, per-shard
    /// occupancy).
    pub fn substrate_stats(&self) -> Vec<SubstrateStats> {
        let pool = self.lock_pool();
        let mut stats: Vec<SubstrateStats> = pool
            .values()
            .map(|bm| {
                let (apply_hits, apply_misses) = bm.apply_cache_stats();
                SubstrateStats {
                    arity: bm.num_vars(),
                    nodes: bm.num_nodes(),
                    apply_hits,
                    apply_misses,
                    shard_occupancy: bm.shard_occupancy(),
                }
            })
            .collect();
        stats.sort_by_key(|s| s.arity);
        stats
    }

    /// Drops every cached entry (statistics are kept).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Synthesizes `spec` under the engine's default options, consulting
    /// and populating the shared cache. See [`crate::try_synthesize`] for
    /// the error contract.
    pub fn try_synthesize(&self, spec: &Network) -> Result<SynthOutcome, Error> {
        crate::synth::try_synthesize_on(self, spec, &self.options)
    }

    /// Synthesizes `spec` under per-job `opts` (budgets, tracing, method
    /// choices), still sharing the engine's cache and substrate pool.
    pub fn try_synthesize_with(
        &self,
        spec: &Network,
        opts: &SynthOptions,
    ) -> Result<SynthOutcome, Error> {
        crate::synth::try_synthesize_on(self, spec, opts)
    }

    fn lock_pool(&self) -> MutexGuard<'_, HashMap<usize, BddManager>> {
        self.pool.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Hands out a BDD manager for an `n`-variable job. Capped jobs get a
    /// fresh private substrate so the node cap stays a true per-job limit;
    /// uncapped jobs reuse the pooled substrate of the same arity (warm
    /// unique-table and apply caches) when one is available.
    pub(crate) fn checkout(&self, n: usize, budget: &Budget) -> BddManager {
        if let Some(cap) = budget.bdd_node_cap {
            return BddManager::with_node_limit(n, cap);
        }
        self.lock_pool()
            .remove(&n)
            .unwrap_or_else(|| BddManager::new(n))
    }

    /// Returns a manager to the pool. Capped managers are dropped (their
    /// cap was per-job). A substrate grown past the reclaim watermark is
    /// generationally reclaimed first; if reclamation is refused (a clone
    /// is still alive somewhere) the bloated substrate is dropped, a
    /// *fresh* substrate of the same arity is pooled in its place so the
    /// next job does not pay an unannounced cold start, and the
    /// `engine.reclaim_refused` counter records the refusal.
    pub(crate) fn checkin(&self, mut bm: BddManager) {
        if bm.node_limit().is_some() {
            return;
        }
        if bm.num_nodes() > self.reclaim_watermark && !bm.try_reclaim() {
            self.reclaim_refused.fetch_add(1, Ordering::Relaxed);
            let fresh = BddManager::new(bm.num_vars());
            self.lock_pool().insert(fresh.num_vars(), fresh);
            return;
        }
        self.lock_pool().insert(bm.num_vars(), bm);
    }

    /// Lifetime count of check-ins where generational reclamation was
    /// refused by a live substrate clone (`engine.reclaim_refused`). A
    /// steadily rising value means some component is pinning manager
    /// clones across jobs, forcing fresh substrates into the pool instead
    /// of reclaimed warm ones. Kept off the per-job trace on purpose: the
    /// refusal depends on drop timing, which would break the
    /// parallel ≡ sequential counter-equality contract.
    pub fn reclaim_refused(&self) -> u64 {
        self.reclaim_refused.load(Ordering::Relaxed)
    }

    /// Looks up the polarity + cube seed for one output cone. `mode_salt`
    /// partitions entries by polarity-search mode so a winner found under
    /// one mode never masquerades as another's. Returns `None` unless the
    /// polarity tier hits with a vector of the right width; the cube list
    /// rides along when present and consistent.
    pub(crate) fn lookup_seed(&self, cone: &Cone, n: usize, mode_salt: u64) -> Option<PlanSeed> {
        let key = cone.key.mix(mode_salt);
        let bits = match self.cache.get(Tier::Polarity, key) {
            Some(CacheEntry::Polarity(bits)) if bits.len() == cone.support.len() => bits,
            _ => return None,
        };
        if cone.support.iter().any(|&v| v >= n) {
            return None;
        }
        let mut pol = Polarity::all_positive(n);
        for (slot, &positive) in bits.iter().enumerate() {
            pol.set(cone.support[slot], positive);
        }
        let cubes = match self.cache.get(Tier::Cubes, key) {
            Some(CacheEntry::Cubes { count, cubes }) if !cubes.is_empty() => {
                let remapped: Option<Vec<VarSet>> = cubes
                    .iter()
                    .map(|cube| {
                        cube.iter()
                            .map(|&slot| cone.support.get(slot as usize).copied())
                            .collect::<Option<VarSet>>()
                    })
                    .collect();
                remapped.map(|list| (count, list))
            }
            _ => None,
        };
        Some(PlanSeed { pol, cubes })
    }

    /// Stores one planned output's results: the winning polarity (always)
    /// and the FPRM cube list (when it was enumerated), both remapped to
    /// the cone's canonical input order so structurally identical cones in
    /// other circuits can reuse them.
    pub(crate) fn store_plan(
        &self,
        cone: &Cone,
        mode_salt: u64,
        pol: &Polarity,
        count: u64,
        fprm_cubes: &[VarSet],
    ) {
        let key = cone.key.mix(mode_salt);
        let bits: Vec<bool> = cone.support.iter().map(|&v| pol.is_positive(v)).collect();
        self.cache
            .put(Tier::Polarity, key, CacheEntry::Polarity(bits));
        if fprm_cubes.is_empty() {
            return;
        }
        let slot_of: HashMap<usize, u32> = cone
            .support
            .iter()
            .enumerate()
            .map(|(slot, &v)| (v, slot as u32))
            .collect();
        let mut remapped: Vec<Vec<u32>> = Vec::with_capacity(fprm_cubes.len());
        for cube in fprm_cubes {
            let mut out = Vec::with_capacity(cube.len());
            for v in cube.iter() {
                match slot_of.get(&v) {
                    Some(&slot) => out.push(slot),
                    // a cube variable outside the structural support would
                    // mean the cone hash missed a dependency — don't store
                    None => return,
                }
            }
            remapped.push(out);
        }
        self.cache.put(
            Tier::Cubes,
            key,
            CacheEntry::Cubes {
                count,
                cubes: remapped,
            },
        );
    }

    /// [`factor_cubes_traced`] behind the factored-tier memo. Factoring is
    /// a pure function of `(cubes, apply_rules)`, so a hit returns exactly
    /// the expression a recomputation would — callers keep bit-identical
    /// results either way. `hits`/`misses` are the caller's per-job
    /// counters.
    pub(crate) fn factor_cubes_cached(
        &self,
        cubes: &[VarSet],
        apply_rules: bool,
        buf: &mut TraceBuffer,
        hits: &mut u64,
        misses: &mut u64,
    ) -> Gexpr {
        let raw: Vec<Vec<u32>> = cubes
            .iter()
            .map(|c| c.iter().map(|v| v as u32).collect())
            .collect();
        let key = cubes_key(&raw, u64::from(apply_rules));
        if let Some(CacheEntry::Factored(fx)) = self.cache.get(Tier::Factored, key) {
            *hits += 1;
            return from_cached_expr(&fx);
        }
        *misses += 1;
        let expr = factor_cubes_traced(cubes, apply_rules, buf);
        self.cache.put(
            Tier::Factored,
            key,
            CacheEntry::Factored(to_cached_expr(&expr)),
        );
        expr
    }
}

/// A cache-derived plan seed for one output: the winning polarity and,
/// when available, the FPRM cube list (already remapped into the current
/// circuit's variable numbering). A seeded plan skips the polarity descent
/// entirely.
#[derive(Debug, Clone)]
pub(crate) struct PlanSeed {
    pub(crate) pol: Polarity,
    pub(crate) cubes: Option<(u64, Vec<VarSet>)>,
}

fn to_cached_expr(e: &Gexpr) -> FactoredExpr {
    match e {
        Gexpr::Zero => FactoredExpr::Zero,
        Gexpr::One => FactoredExpr::One,
        Gexpr::Lit(v) => FactoredExpr::Lit(*v as u32),
        Gexpr::Not(x) => FactoredExpr::Not(Box::new(to_cached_expr(x))),
        Gexpr::And(xs) => FactoredExpr::And(xs.iter().map(to_cached_expr).collect()),
        Gexpr::Or(xs) => FactoredExpr::Or(xs.iter().map(to_cached_expr).collect()),
        Gexpr::Xor(xs) => FactoredExpr::Xor(xs.iter().map(to_cached_expr).collect()),
    }
}

fn from_cached_expr(e: &FactoredExpr) -> Gexpr {
    match e {
        FactoredExpr::Zero => Gexpr::Zero,
        FactoredExpr::One => Gexpr::One,
        FactoredExpr::Lit(v) => Gexpr::Lit(*v as usize),
        FactoredExpr::Not(x) => Gexpr::Not(Box::new(from_cached_expr(x))),
        FactoredExpr::And(xs) => Gexpr::And(xs.iter().map(from_cached_expr).collect()),
        FactoredExpr::Or(xs) => Gexpr::Or(xs.iter().map(from_cached_expr).collect()),
        FactoredExpr::Xor(xs) => Gexpr::Xor(xs.iter().map(from_cached_expr).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsynth_net::GateKind;

    fn adder_bit(name: &str) -> Network {
        let mut net = Network::new(name);
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("cin");
        let s = net.add_gate(GateKind::Xor, vec![a, b, c]);
        let ab = net.add_gate(GateKind::And, vec![a, b]);
        let axb = net.add_gate(GateKind::Xor, vec![a, b]);
        let t = net.add_gate(GateKind::And, vec![axb, c]);
        let cout = net.add_gate(GateKind::Or, vec![ab, t]);
        net.add_output("s", s);
        net.add_output("cout", cout);
        net
    }

    #[test]
    fn warm_run_is_bit_identical_and_skips_the_descent() {
        let engine = Engine::new();
        let spec = adder_bit("fa");
        let cold = engine.try_synthesize(&spec).unwrap();
        assert_eq!(cold.report.cache.polarity_hits, 0);
        assert!(cold.report.polarity_search.candidates_evaluated > 0);
        let warm = engine.try_synthesize(&spec).unwrap();
        assert_eq!(warm.report.cache.polarity_hits, 2, "both outputs seeded");
        assert_eq!(
            warm.report.polarity_search.candidates_evaluated, 0,
            "descent skipped on the warm run"
        );
        assert_eq!(
            xsynth_blif::write_blif(&warm.network),
            xsynth_blif::write_blif(&cold.network)
        );
        assert_eq!(warm.report.outputs, cold.report.outputs);
    }

    #[test]
    fn structurally_identical_circuit_hits_across_names() {
        let engine = Engine::new();
        let one = adder_bit("one");
        engine.try_synthesize(&one).unwrap();
        // same structure, different circuit/IO declaration names
        let mut two = Network::new("two");
        let a = two.add_input("x");
        let b = two.add_input("y");
        let c = two.add_input("z");
        let s = two.add_gate(GateKind::Xor, vec![a, b, c]);
        let ab = two.add_gate(GateKind::And, vec![a, b]);
        let axb = two.add_gate(GateKind::Xor, vec![a, b]);
        let t = two.add_gate(GateKind::And, vec![axb, c]);
        let cout = two.add_gate(GateKind::Or, vec![ab, t]);
        two.add_output("sum", s);
        two.add_output("carry", cout);
        let warm = engine.try_synthesize(&two).unwrap();
        assert_eq!(warm.report.cache.polarity_hits, 2);
        // the result is still verified against *this* spec
        for m in 0..8 {
            assert_eq!(warm.network.eval_u64(m), two.eval_u64(m));
        }
    }

    #[test]
    fn one_shot_wrappers_start_cold_every_time() {
        let spec = adder_bit("fa");
        let first = crate::try_synthesize(&spec, &SynthOptions::default()).unwrap();
        let second = crate::try_synthesize(&spec, &SynthOptions::default()).unwrap();
        assert_eq!(second.report.cache.polarity_hits, 0);
        assert_eq!(
            xsynth_blif::write_blif(&first.network),
            xsynth_blif::write_blif(&second.network)
        );
    }

    #[test]
    fn capped_jobs_get_private_substrates() {
        let engine = Engine::new();
        let budget = Budget {
            bdd_node_cap: Some(64),
            ..Budget::default()
        };
        let bm = engine.checkout(4, &budget);
        assert_eq!(bm.node_limit(), Some(64));
        engine.checkin(bm);
        // capped managers are never pooled
        let again = engine.checkout(4, &Budget::default());
        assert_eq!(again.node_limit(), None);
        assert_eq!(again.num_nodes(), 1, "fresh substrate, not the capped one");
    }

    #[test]
    fn pooled_substrate_is_reused_and_reclaimed_past_watermark() {
        let engine = Engine::new().reclaim_watermark(8);
        let mut bm = engine.checkout(4, &Budget::default());
        let a = bm.var(0);
        let b = bm.var(1);
        bm.and(a, b);
        let grown = bm.num_nodes();
        assert!(grown > 1 && grown <= 8);
        engine.checkin(bm);
        // under the watermark: the same warm substrate comes back
        let bm = engine.checkout(4, &Budget::default());
        assert_eq!(bm.num_nodes(), grown);
        assert_eq!(bm.generation(), 0);
        engine.checkin(bm);
        // grow past the watermark: checkin reclaims to a fresh generation
        let mut bm = engine.checkout(4, &Budget::default());
        let c = bm.var(2);
        let d = bm.var(3);
        let cd = bm.and(c, d);
        bm.xor(cd, a);
        bm.or(cd, a);
        assert!(bm.num_nodes() > 8);
        engine.checkin(bm);
        let bm = engine.checkout(4, &Budget::default());
        assert_eq!(bm.num_nodes(), 1, "reclaimed past the watermark");
        assert_eq!(bm.generation(), 1);
        assert_eq!(engine.reclaim_refused(), 0, "nothing pinned the substrate");
    }

    #[test]
    fn refused_reclaim_pools_a_fresh_substrate_and_counts() {
        let engine = Engine::new().reclaim_watermark(4);
        let mut bm = engine.checkout(4, &Budget::default());
        let pin = bm.clone(); // a live clone makes try_reclaim refuse
        let a = bm.var(0);
        let b = bm.var(1);
        let ab = bm.and(a, b);
        bm.xor(ab, a);
        assert!(bm.num_nodes() > 4, "must be past the watermark");
        assert_eq!(engine.reclaim_refused(), 0);
        engine.checkin(bm);
        assert_eq!(engine.reclaim_refused(), 1, "the refusal is counted");
        // the old behavior dropped the substrate silently; now a fresh one
        // is pooled so the next checkout is not an unannounced cold start
        let next = engine.checkout(4, &Budget::default());
        assert_eq!(next.num_nodes(), 1, "fresh substrate pooled on refusal");
        assert_eq!(next.generation(), 0);
        drop(pin);
    }
}
