//! Cell libraries for technology mapping.

use std::collections::HashMap;
use xsynth_blif::GenlibGate;
use xsynth_boolean::TruthTable;

/// A combinational standard cell: name, area, and function over its input
/// pins (at most four — the mapper enumerates 4-feasible cuts).
#[derive(Debug, Clone)]
pub struct Cell {
    name: String,
    area: f64,
    pins: usize,
    tt: u16,
}

impl Cell {
    /// Builds a cell from a truth-table word over `pins` inputs (bit `m` =
    /// value on minterm `m`).
    ///
    /// # Panics
    ///
    /// Panics if `pins > 4`.
    pub fn new(name: impl Into<String>, area: f64, pins: usize, tt: u16) -> Self {
        assert!(pins <= 4, "mapper cells have at most 4 pins");
        let mask = tt_mask(pins);
        Cell {
            name: name.into(),
            area,
            pins,
            tt: tt & mask,
        }
    }

    /// Cell name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cell area (arbitrary units; relative values drive the mapper).
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Number of input pins.
    pub fn num_pins(&self) -> usize {
        self.pins
    }

    /// The function as a 16-bit truth-table word.
    pub fn tt(&self) -> u16 {
        self.tt
    }
}

fn tt_mask(pins: usize) -> u16 {
    if pins >= 4 {
        0xffff
    } else {
        ((1u32 << (1 << pins)) - 1) as u16
    }
}

/// A mapping library: a set of [`Cell`]s with a precomputed Boolean-match
/// index over all input permutations.
#[derive(Debug, Clone)]
pub struct Library {
    cells: Vec<Cell>,
    /// (pins, canonical tt) → (cell index, permutation): `perm[i]` is the
    /// cut-leaf position feeding pin `i`.
    matches: HashMap<(usize, u16), (usize, Vec<usize>)>,
}

impl Library {
    /// Builds a library from cells, indexing every input permutation of
    /// every cell (cheapest cell wins collisions).
    pub fn new(cells: Vec<Cell>) -> Self {
        let mut matches: HashMap<(usize, u16), (usize, Vec<usize>)> = HashMap::new();
        for (ci, cell) in cells.iter().enumerate() {
            for perm in permutations(cell.pins) {
                // tt_perm(m) — the function seen from the cut: leaf j of
                // the cut feeds pin i when perm[i] = j
                let tt = permute_tt(cell.tt, cell.pins, &perm);
                let key = (cell.pins, tt);
                let better = match matches.get(&key) {
                    Some(&(old, _)) => cell.area < cells[old].area,
                    None => true,
                };
                if better {
                    matches.insert(key, (ci, perm));
                }
            }
        }
        Library { cells, matches }
    }

    /// The mcnc.genlib-like library the paper maps onto: inverter, buffer,
    /// 2-input AND/OR, NAND/NOR of 2–4 inputs, 2-input XOR/XNOR, the four
    /// complex cells AOI21/AOI22/OAI21/OAI22, and zero/one tie cells.
    pub fn mcnc() -> Library {
        let tt = |pins: usize, f: &dyn Fn(u16) -> bool| -> u16 {
            let mut t = 0u16;
            for m in 0..(1u32 << pins) as u16 {
                if f(m) {
                    t |= 1 << m;
                }
            }
            t
        };
        let and = |pins: usize| tt(pins, &|m| m == ((1u32 << pins) - 1) as u16);
        let or = |pins: usize| tt(pins, &|m| m != 0);
        let cells = vec![
            Cell::new("zero", 0.0, 0, 0b0),
            Cell::new("one", 0.0, 0, 0b1),
            Cell::new("inv", 1.0, 1, 0b01),
            Cell::new("buf", 1.0, 1, 0b10),
            Cell::new("nand2", 2.0, 2, !and(2) & 0xf),
            Cell::new("nand3", 3.0, 3, !and(3) & 0xff),
            Cell::new("nand4", 4.0, 4, !and(4)),
            Cell::new("nor2", 2.0, 2, !or(2) & 0xf),
            Cell::new("nor3", 3.0, 3, !or(3) & 0xff),
            Cell::new("nor4", 4.0, 4, !or(4)),
            Cell::new("and2", 3.0, 2, and(2)),
            Cell::new("or2", 3.0, 2, or(2)),
            Cell::new("xor2", 5.0, 2, 0b0110),
            Cell::new("xnor2", 5.0, 2, 0b1001),
            // aoi21: !(a·b + c)
            Cell::new(
                "aoi21",
                3.0,
                3,
                tt(3, &|m| !((m & 1 != 0 && m & 2 != 0) || m & 4 != 0)),
            ),
            // aoi22: !(a·b + c·d)
            Cell::new(
                "aoi22",
                4.0,
                4,
                tt(4, &|m| {
                    !((m & 1 != 0 && m & 2 != 0) || (m & 4 != 0 && m & 8 != 0))
                }),
            ),
            // oai21: !((a + b)·c)
            Cell::new(
                "oai21",
                3.0,
                3,
                tt(3, &|m| !((m & 1 != 0 || m & 2 != 0) && m & 4 != 0)),
            ),
            // oai22: !((a + b)·(c + d))
            Cell::new(
                "oai22",
                4.0,
                4,
                tt(4, &|m| {
                    !((m & 1 != 0 || m & 2 != 0) && (m & 4 != 0 || m & 8 != 0))
                }),
            ),
        ];
        Library::new(cells)
    }

    /// Builds a library from parsed genlib gates, skipping cells with more
    /// than four pins.
    pub fn from_genlib(gates: &[GenlibGate]) -> Library {
        let mut cells = Vec::new();
        for g in gates {
            let (pins, tt) = g.truth_table();
            if pins.len() > 4 {
                continue;
            }
            let mut word = 0u16;
            for m in 0..(1u64 << pins.len()) {
                if tt.eval(m) {
                    word |= 1 << m;
                }
            }
            cells.push(Cell::new(g.name(), g.area(), pins.len(), word));
        }
        Library::new(cells)
    }

    /// The cells of the library.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Finds the cheapest cell matching a cut function of `pins` leaves;
    /// returns `(cell index, permutation)` with `perm[i]` = the cut-leaf
    /// position feeding pin `i`.
    pub fn matches(&self, pins: usize, tt: u16) -> Option<(usize, &[usize])> {
        self.matches
            .get(&(pins, tt & tt_mask(pins)))
            .map(|(ci, perm)| (*ci, perm.as_slice()))
    }

    /// The full truth table of a cell, for verification.
    pub fn cell_table(&self, cell: usize) -> TruthTable {
        let c = &self.cells[cell];
        TruthTable::from_fn(c.pins, |m| c.tt & (1 << m) != 0)
    }
}

fn permutations(k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..k).collect();
    permute_rec(&mut items, 0, &mut out);
    if out.is_empty() {
        out.push(Vec::new());
    }
    out
}

fn permute_rec(items: &mut Vec<usize>, i: usize, out: &mut Vec<Vec<usize>>) {
    if items.is_empty() {
        return;
    }
    if i == items.len() {
        out.push(items.clone());
        return;
    }
    for j in i..items.len() {
        items.swap(i, j);
        permute_rec(items, i + 1, out);
        items.swap(i, j);
    }
}

/// The function seen from cut leaves when `perm[i]` names the leaf feeding
/// pin `i`: `tt'(leaf-minterm) = tt(pin-minterm)`.
fn permute_tt(tt: u16, pins: usize, perm: &[usize]) -> u16 {
    let mut out = 0u16;
    for lm in 0..(1u32 << pins) as u16 {
        // build the pin minterm: pin i reads leaf perm[i]
        let mut pm = 0u16;
        for (i, &leaf) in perm.iter().enumerate() {
            if lm & (1 << leaf) != 0 {
                pm |= 1 << i;
            }
        }
        if tt & (1 << pm) != 0 {
            out |= 1 << lm;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcnc_has_expected_cells() {
        let lib = Library::mcnc();
        let names: Vec<&str> = lib.cells().iter().map(Cell::name).collect();
        for want in ["inv", "nand2", "nor4", "xor2", "xnor2", "aoi22", "oai21"] {
            assert!(names.contains(&want), "missing {want}");
        }
    }

    #[test]
    fn and2_matches() {
        let lib = Library::mcnc();
        let (ci, _) = lib.matches(2, 0b1000).expect("and2 function");
        assert_eq!(lib.cells()[ci].name(), "and2");
    }

    #[test]
    fn xor_matches() {
        let lib = Library::mcnc();
        let (ci, _) = lib.matches(2, 0b0110).expect("xor2 function");
        assert_eq!(lib.cells()[ci].name(), "xor2");
    }

    #[test]
    fn asymmetric_cell_matches_any_pin_order() {
        let lib = Library::mcnc();
        // aoi21 with the OR-pin being leaf 0: !(bc + a) as seen from
        // leaves (a,b,c)
        let f = |m: u16| !((m & 2 != 0 && m & 4 != 0) || m & 1 != 0);
        let mut tt = 0u16;
        for m in 0..8u16 {
            if f(m) {
                tt |= 1 << m;
            }
        }
        let (ci, perm) = lib.matches(3, tt).expect("permuted aoi21");
        assert_eq!(lib.cells()[ci].name(), "aoi21");
        // pins (a,b) of the cell are the AND side; they must read leaves
        // {1,2}, and pin c must read leaf 0
        assert_eq!(perm[2], 0);
        let mut ab = vec![perm[0], perm[1]];
        ab.sort_unstable();
        assert_eq!(ab, vec![1, 2]);
    }

    #[test]
    fn permute_tt_identity() {
        assert_eq!(permute_tt(0b0110, 2, &[0, 1]), 0b0110);
        // swapping pins of xor changes nothing
        assert_eq!(permute_tt(0b0110, 2, &[1, 0]), 0b0110);
        // and2 is also symmetric; g(a,b)=a·¬b is not
        let g = 0b0010; // minterm 1 (a=1,b=0)
        assert_eq!(permute_tt(g, 2, &[1, 0]), 0b0100);
    }

    #[test]
    fn constants_and_wire_cells() {
        let lib = Library::mcnc();
        assert!(lib.matches(0, 0b0).is_some(), "zero cell");
        assert!(lib.matches(0, 0b1).is_some(), "one cell");
        assert!(lib.matches(1, 0b01).is_some(), "inverter");
        assert!(lib.matches(1, 0b10).is_some(), "buffer");
    }

    #[test]
    fn genlib_roundtrip() {
        let gates = xsynth_blif::parse_genlib(
            "GATE inv 1 y=!a;\nGATE nand2 2 y=!(a*b);\nGATE big5 9 y=a*b*c*d*e;\n",
        )
        .unwrap();
        let lib = Library::from_genlib(&gates);
        assert_eq!(lib.cells().len(), 2, "5-pin cell skipped");
        assert!(lib.matches(2, 0b0111).is_some(), "nand2 matches");
    }

    #[test]
    fn cell_table_matches_word() {
        let lib = Library::mcnc();
        let (ci, _) = lib.matches(2, 0b0110).unwrap();
        let t = lib.cell_table(ci);
        assert!(t.eval(0b01));
        assert!(!t.eval(0b11));
    }
}
