//! Cut-based minimum-area covering.

use crate::library::Library;
use std::collections::HashMap;
use xsynth_net::{GateKind, Network, NodeKind, SignalId};

/// The result of technology mapping: a netlist of library cells.
#[derive(Debug, Clone)]
pub struct Mapping {
    input_names: Vec<String>,
    /// `(cell index, fanins)` — a fanin is either an input (`< inputs`) or
    /// `inputs + gate index`.
    gates: Vec<(usize, Vec<usize>)>,
    outputs: Vec<(String, usize)>,
    cell_names: Vec<String>,
    cell_pins: Vec<usize>,
    area: f64,
}

impl Mapping {
    /// Number of mapped cells (inverters and buffers included, zero-pin
    /// tie cells excluded — the SIS `map` gate count).
    pub fn num_gates(&self) -> usize {
        self.gates
            .iter()
            .filter(|(c, _)| self.cell_pins[*c] > 0)
            .count()
    }

    /// Total cell input pins (the post-mapping literal count).
    pub fn num_literals(&self) -> usize {
        self.gates.iter().map(|(_, f)| f.len()).sum()
    }

    /// Total cell area.
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Depth of the mapped netlist in cell levels (every cell counts one).
    pub fn depth(&self) -> usize {
        let n_in = self.input_names.len();
        let mut d = vec![0usize; n_in + self.gates.len()];
        for (gi, (_, fanins)) in self.gates.iter().enumerate() {
            let base = fanins.iter().map(|&f| d[f]).max().unwrap_or(0);
            d[n_in + gi] = base + 1;
        }
        self.outputs.iter().map(|&(_, s)| d[s]).max().unwrap_or(0)
    }

    /// How many instances of each cell were used, by cell name.
    pub fn cell_histogram(&self) -> HashMap<String, usize> {
        let mut h = HashMap::new();
        for (c, _) in &self.gates {
            *h.entry(self.cell_names[*c].clone()).or_default() += 1;
        }
        h
    }

    /// Emits the mapped netlist as structural Verilog: one module with the
    /// library cells instantiated gate by gate (cell pins are named
    /// `a, b, c, d` in pin order with output `y`, matching
    /// [`Library::mcnc`]'s conventions).
    pub fn to_verilog(&self, module: &str) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let id = |k: usize, names: &[String]| -> String {
            if k < names.len() {
                sanitize_verilog(&names[k])
            } else {
                format!("w{}", k - names.len())
            }
        };
        let ports: Vec<String> = self
            .input_names
            .iter()
            .map(|n| sanitize_verilog(n))
            .chain(self.outputs.iter().map(|(n, _)| sanitize_verilog(n)))
            .collect();
        let _ = writeln!(
            s,
            "module {} ({});",
            sanitize_verilog(module),
            ports.join(", ")
        );
        for n in &self.input_names {
            let _ = writeln!(s, "  input {};", sanitize_verilog(n));
        }
        for (n, _) in &self.outputs {
            let _ = writeln!(s, "  output {};", sanitize_verilog(n));
        }
        for gi in 0..self.gates.len() {
            let _ = writeln!(s, "  wire w{gi};");
        }
        const PIN_NAMES: [&str; 4] = ["a", "b", "c", "d"];
        for (gi, (cell, fanins)) in self.gates.iter().enumerate() {
            let mut pins: Vec<String> = fanins
                .iter()
                .enumerate()
                .map(|(k, &f)| format!(".{}({})", PIN_NAMES[k], id(f, &self.input_names)))
                .collect();
            pins.push(format!(".y(w{gi})"));
            let _ = writeln!(
                s,
                "  {} g{gi} ({});",
                self.cell_names[*cell],
                pins.join(", ")
            );
        }
        for (name, sig) in &self.outputs {
            let _ = writeln!(
                s,
                "  assign {} = {};",
                sanitize_verilog(name),
                id(*sig, &self.input_names)
            );
        }
        let _ = writeln!(s, "endmodule");
        s
    }

    /// Reconstructs a gate network computing the mapped netlist's
    /// function, for verification against the subject network.
    pub fn to_network(&self, lib: &Library) -> Network {
        let mut net = Network::new("mapped");
        let mut sig: Vec<SignalId> = self
            .input_names
            .iter()
            .map(|n| net.add_input(n.clone()))
            .collect();
        for (cell, fanins) in &self.gates {
            let t = lib.cell_table(*cell);
            let fan_sigs: Vec<SignalId> = fanins.iter().map(|&f| sig[f]).collect();
            // the cell function as a two-level SOP over its fanins
            let k = fan_sigs.len();
            let mut cubes = Vec::new();
            for m in 0..(1u64 << k) {
                if t.eval(m) {
                    let lits: Vec<SignalId> = (0..k)
                        .map(|i| {
                            if m & (1 << i) != 0 {
                                fan_sigs[i]
                            } else {
                                net.add_gate(GateKind::Not, vec![fan_sigs[i]])
                            }
                        })
                        .collect();
                    cubes.push(match lits.len() {
                        0 => net.add_gate(GateKind::Const1, vec![]),
                        1 => lits[0],
                        _ => net.add_gate(GateKind::And, lits),
                    });
                }
            }
            let s = match cubes.len() {
                0 => net.add_gate(GateKind::Const0, vec![]),
                1 => cubes[0],
                _ => net.add_gate(GateKind::Or, cubes),
            };
            sig.push(s);
        }
        for (name, idx) in &self.outputs {
            net.add_output(name.clone(), sig[*idx]);
        }
        net
    }
}

/// What the covering DP minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MapGoal {
    /// Minimum total cell area (the paper's Table 2 setting).
    #[default]
    Area,
    /// Minimum depth in cell levels, ties broken by area — the delay-
    /// oriented mode the paper's conclusion flags as future analysis.
    Depth,
}

/// Makes a name a legal Verilog identifier.
fn sanitize_verilog(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Maximum cut size (the library has up to 4 pins).
const CUT_SIZE: usize = 4;
/// Cuts kept per node.
const CUTS_PER_NODE: usize = 64;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Cut {
    leaves: Vec<u32>, // sorted subject-node indices
}

#[derive(Clone)]
struct Choice {
    cut: Cut,
    cell: usize,
    perm: Vec<usize>,
}

/// Maps a network onto `lib` for minimum area.
///
/// The network is first lowered to a two-input AND/inverter subject graph;
/// 4-feasible cuts are enumerated bottom-up, each cut's local function is
/// matched against the library, and a minimum-area cover is selected by
/// dynamic programming over the DAG (with the usual tree approximation of
/// area).
///
/// # Panics
///
/// Panics if some cut function has no matching cell — impossible with any
/// library containing inverter + and2 (or nand2) + tie cells, such as
/// [`Library::mcnc`].
pub fn map_network(net: &Network, lib: &Library) -> Mapping {
    map_network_for(net, lib, MapGoal::Area)
}

/// Maps a network onto `lib` optimizing the chosen [`MapGoal`].
///
/// # Panics
///
/// Panics under the same conditions as [`map_network`].
pub fn map_network_for(net: &Network, lib: &Library, goal: MapGoal) -> Mapping {
    let subject = to_subject(net);
    let order = subject.topo_order();
    let n_nodes = subject.num_nodes();
    // index → handle table (indices are stable)
    let mut handle: Vec<Option<SignalId>> = vec![None; n_nodes];
    for &id in &order {
        handle[id.index()] = Some(id);
    }

    // 1. cut enumeration
    let mut cuts: Vec<Vec<Cut>> = vec![Vec::new(); n_nodes];
    for &id in &order {
        let i = id.index();
        match subject.kind(id) {
            NodeKind::Input => {
                cuts[i] = vec![Cut {
                    leaves: vec![i as u32],
                }];
            }
            NodeKind::Gate(GateKind::Const0) | NodeKind::Gate(GateKind::Const1) => {
                cuts[i] = vec![Cut { leaves: vec![] }];
            }
            NodeKind::Gate(GateKind::Not) => {
                let f = subject.fanins(id)[0].index();
                let mut cs = vec![Cut {
                    leaves: vec![i as u32],
                }];
                cs.extend(cuts[f].iter().cloned());
                dedup_cuts(&mut cs, i);
                cuts[i] = cs;
            }
            NodeKind::Gate(GateKind::And) => {
                let f0 = subject.fanins(id)[0].index();
                let f1 = subject.fanins(id)[1].index();
                let mut cs = vec![Cut {
                    leaves: vec![i as u32],
                }];
                for a in &cuts[f0] {
                    for b in &cuts[f1] {
                        let mut leaves = a.leaves.clone();
                        for &l in &b.leaves {
                            if !leaves.contains(&l) {
                                leaves.push(l);
                            }
                        }
                        if leaves.len() <= CUT_SIZE {
                            leaves.sort_unstable();
                            cs.push(Cut { leaves });
                        }
                    }
                }
                dedup_cuts(&mut cs, i);
                cuts[i] = cs;
            }
            other => panic!("unexpected subject-graph node {other:?}"),
        }
    }

    // 2. dynamic program for the chosen goal: cost = (primary, secondary)
    // with primary = area (Area goal) or depth (Depth goal, ties by area)
    let mut best_cost: Vec<(f64, f64)> = vec![(f64::INFINITY, f64::INFINITY); n_nodes];
    let mut best_choice: Vec<Option<Choice>> = vec![None; n_nodes];
    for &id in &order {
        let i = id.index();
        if matches!(subject.kind(id), NodeKind::Input) {
            best_cost[i] = (0.0, 0.0);
            continue;
        }
        for cut in &cuts[i] {
            if cut.leaves.as_slice() == [i as u32] {
                continue; // the trivial self-cut implements nothing
            }
            let tt = cut_function(&subject, &handle, id, cut);
            let Some((cell, perm)) = lib.matches(cut.leaves.len(), tt) else {
                continue;
            };
            let cell_area = lib.cells()[cell].area();
            let cost = match goal {
                MapGoal::Area => {
                    let mut area = cell_area;
                    for &l in &cut.leaves {
                        area += best_cost[l as usize].0;
                    }
                    (area, 0.0)
                }
                MapGoal::Depth => {
                    let mut depth = 0.0f64;
                    let mut area = cell_area;
                    for &l in &cut.leaves {
                        let (d, a) = best_cost[l as usize];
                        depth = depth.max(d);
                        area += a;
                    }
                    (depth + 1.0, area)
                }
            };
            if cost < best_cost[i] {
                best_cost[i] = cost;
                best_choice[i] = Some(Choice {
                    cut: cut.clone(),
                    cell,
                    perm: perm.to_vec(),
                });
            }
        }
        assert!(
            best_choice[i].is_some(),
            "no library match for subject node {i} — the library lacks a base cell"
        );
    }

    // 3. backtrack from outputs, materializing each chosen cell once
    let input_names: Vec<String> = subject
        .inputs()
        .iter()
        .map(|&s| subject.node_name(s).unwrap_or("in").to_string())
        .collect();
    let input_pos: HashMap<usize, usize> = subject
        .inputs()
        .iter()
        .enumerate()
        .map(|(k, s)| (s.index(), k))
        .collect();
    let n_inputs = input_names.len();

    struct Builder<'a> {
        best_choice: &'a [Option<Choice>],
        input_pos: &'a HashMap<usize, usize>,
        n_inputs: usize,
        lib: &'a Library,
        gates: Vec<(usize, Vec<usize>)>,
        materialized: HashMap<usize, usize>,
        area: f64,
    }
    impl Builder<'_> {
        fn materialize(&mut self, node: usize) -> usize {
            if let Some(&m) = self.materialized.get(&node) {
                return m;
            }
            if let Some(&pos) = self.input_pos.get(&node) {
                self.materialized.insert(node, pos);
                return pos;
            }
            let choice = self.best_choice[node]
                .as_ref()
                .expect("every reachable gate node has a choice")
                .clone();
            let leaf_sigs: Vec<usize> = choice
                .cut
                .leaves
                .iter()
                .map(|&l| self.materialize(l as usize))
                .collect();
            // pin i of the cell reads cut leaf perm[i]
            let fanins: Vec<usize> = choice.perm.iter().map(|&p| leaf_sigs[p]).collect();
            let sig = self.n_inputs + self.gates.len();
            self.area += self.lib.cells()[choice.cell].area();
            self.gates.push((choice.cell, fanins));
            self.materialized.insert(node, sig);
            sig
        }
    }

    let mut b = Builder {
        best_choice: &best_choice,
        input_pos: &input_pos,
        n_inputs,
        lib,
        gates: Vec::new(),
        materialized: HashMap::new(),
        area: 0.0,
    };
    let mut outputs = Vec::new();
    for (name, sig) in subject.outputs().to_vec() {
        let m = b.materialize(sig.index());
        outputs.push((name, m));
    }

    Mapping {
        input_names,
        gates: b.gates,
        outputs,
        cell_names: lib.cells().iter().map(|c| c.name().to_string()).collect(),
        cell_pins: lib.cells().iter().map(|c| c.num_pins()).collect(),
        area: b.area,
    }
}

fn dedup_cuts(cs: &mut Vec<Cut>, node: usize) {
    cs.sort_by(|a, b| {
        a.leaves
            .len()
            .cmp(&b.leaves.len())
            .then(a.leaves.cmp(&b.leaves))
    });
    cs.dedup();
    // drop dominated cuts (a strict superset of another cut never matches
    // a cheaper cell family exclusively enough to matter at this size),
    // but always keep the trivial self-cut: fanout cuts build on it
    let snapshot = cs.clone();
    cs.retain(|c| {
        c.leaves.as_slice() == [node as u32]
            || !snapshot
                .iter()
                .any(|o| o.leaves != c.leaves && o.leaves.iter().all(|l| c.leaves.contains(l)))
    });
    cs.truncate(CUTS_PER_NODE);
}

/// The function of `node` in terms of the cut leaves, as a 16-bit word.
fn cut_function(subject: &Network, handle: &[Option<SignalId>], node: SignalId, cut: &Cut) -> u16 {
    let k = cut.leaves.len();
    let mut tt = 0u16;
    for m in 0..(1u32 << k) as u16 {
        let mut vals: HashMap<usize, bool> = HashMap::new();
        for (b, &l) in cut.leaves.iter().enumerate() {
            vals.insert(l as usize, m & (1 << b) != 0);
        }
        if eval_to_cut(subject, handle, node.index(), &mut vals) {
            tt |= 1 << m;
        }
    }
    tt
}

fn eval_to_cut(
    subject: &Network,
    handle: &[Option<SignalId>],
    node: usize,
    vals: &mut HashMap<usize, bool>,
) -> bool {
    if let Some(&v) = vals.get(&node) {
        return v;
    }
    let sid = handle[node].expect("cut nodes are reachable");
    let v = match subject.kind(sid) {
        NodeKind::Input => panic!("reached an input beyond the cut — malformed cut"),
        NodeKind::Gate(GateKind::Const0) => false,
        NodeKind::Gate(GateKind::Const1) => true,
        NodeKind::Gate(GateKind::Not) => {
            !eval_to_cut(subject, handle, subject.fanins(sid)[0].index(), vals)
        }
        NodeKind::Gate(GateKind::And) => {
            eval_to_cut(subject, handle, subject.fanins(sid)[0].index(), vals)
                && eval_to_cut(subject, handle, subject.fanins(sid)[1].index(), vals)
        }
        other => panic!("unexpected subject node {other:?}"),
    };
    vals.insert(node, v);
    v
}

/// Lowers a network to the two-input AND / inverter subject graph.
fn to_subject(net: &Network) -> Network {
    let d = net.decompose2().sweep();
    let mut out = Network::new(d.name().to_string());
    let mut map: HashMap<SignalId, SignalId> = HashMap::new();
    for &i in d.inputs() {
        let ni = out.add_input(d.node_name(i).unwrap_or("in").to_string());
        map.insert(i, ni);
    }
    for id in d.topo_order() {
        let NodeKind::Gate(kind) = d.kind(id) else {
            continue;
        };
        let fan: Vec<SignalId> = d.fanins(id).iter().map(|f| map[f]).collect();
        let s = match kind {
            GateKind::Const0 => out.add_gate(GateKind::Const0, vec![]),
            GateKind::Const1 => out.add_gate(GateKind::Const1, vec![]),
            GateKind::Buf => fan[0],
            GateKind::Not => out.add_gate(GateKind::Not, vec![fan[0]]),
            GateKind::And => out.add_gate(GateKind::And, fan),
            GateKind::Or => {
                let n0 = out.add_gate(GateKind::Not, vec![fan[0]]);
                let n1 = out.add_gate(GateKind::Not, vec![fan[1]]);
                let a = out.add_gate(GateKind::And, vec![n0, n1]);
                out.add_gate(GateKind::Not, vec![a])
            }
            other => panic!("decompose2 must not emit {other}"),
        };
        map.insert(id, s);
    }
    for (name, sig) in d.outputs() {
        out.add_output(name.clone(), map[sig]);
    }
    out.strash()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Library;

    fn check_mapping(net: &Network) -> Mapping {
        let lib = Library::mcnc();
        let mapped = map_network(net, &lib);
        let back = mapped.to_network(&lib);
        let n = net.inputs().len();
        assert!(n <= 12);
        for m in 0..(1u64 << n) {
            assert_eq!(back.eval_u64(m), net.eval_u64(m), "minterm {m}");
        }
        mapped
    }

    #[test]
    fn xor_maps_to_single_cell() {
        let mut n = Network::new("x");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_gate(GateKind::Xor, vec![a, b]);
        n.add_output("y", x);
        let m = check_mapping(&n);
        assert_eq!(m.num_gates(), 1);
        assert_eq!(m.cell_histogram().get("xor2"), Some(&1));
        assert!((m.area() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn aoi_pattern_found() {
        // !(ab + c) should map to one aoi21 cell
        let mut n = Network::new("aoi");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, vec![a, b]);
        let o = n.add_gate(GateKind::Or, vec![ab, c]);
        let f = n.add_gate(GateKind::Not, vec![o]);
        n.add_output("y", f);
        let m = check_mapping(&n);
        assert_eq!(m.num_gates(), 1, "{:?}", m.cell_histogram());
        assert_eq!(m.cell_histogram().get("aoi21"), Some(&1));
    }

    #[test]
    fn full_adder_maps_reasonably() {
        let mut n = Network::new("fa");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("cin");
        let s = n.add_gate(GateKind::Xor, vec![a, b, c]);
        let ab = n.add_gate(GateKind::And, vec![a, b]);
        let ax = n.add_gate(GateKind::Xor, vec![a, b]);
        let t = n.add_gate(GateKind::And, vec![ax, c]);
        let co = n.add_gate(GateKind::Or, vec![ab, t]);
        n.add_output("s", s);
        n.add_output("co", co);
        let m = check_mapping(&n);
        assert!(m.num_gates() <= 7, "got {} gates", m.num_gates());
        assert!(m.num_literals() <= 14);
    }

    #[test]
    fn nand_chain_prefers_nand_cells() {
        let mut n = Network::new("n3");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g = n.add_gate(GateKind::Nand, vec![a, b, c]);
        n.add_output("y", g);
        let m = check_mapping(&n);
        assert_eq!(m.num_gates(), 1, "{:?}", m.cell_histogram());
        assert_eq!(m.cell_histogram().get("nand3"), Some(&1));
    }

    #[test]
    fn constant_outputs_use_tie_cells() {
        let mut n = Network::new("c");
        let a = n.add_input("a");
        let x = n.add_gate(GateKind::Xor, vec![a, a]);
        n.add_output("zero", x);
        let m = check_mapping(&n);
        assert_eq!(m.num_gates(), 0, "tie cells are free and uncounted");
        assert_eq!(m.num_literals(), 0);
    }

    #[test]
    fn shared_logic_counted_once() {
        let mut n = Network::new("sh");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_gate(GateKind::And, vec![a, b]);
        n.add_output("o1", x);
        n.add_output("o2", x);
        let m = check_mapping(&n);
        assert_eq!(m.num_gates(), 1);
    }

    #[test]
    fn wire_output() {
        let mut n = Network::new("w");
        let a = n.add_input("a");
        n.add_output("y", a);
        let m = check_mapping(&n);
        assert_eq!(m.num_gates(), 0);
    }

    #[test]
    fn depth_goal_flattens_chains() {
        use crate::MapGoal;
        // an 8-input AND built as a linear chain: area mapping may keep it
        // deep, depth mapping must reach ceil(log_4(8)) = 2 nand/nor levels
        // + polarity fixup
        let mut n = Network::new("chain8");
        let ins: Vec<SignalId> = (0..8).map(|i| n.add_input(format!("x{i}"))).collect();
        let mut s = ins[0];
        for &i in &ins[1..] {
            s = n.add_gate(GateKind::And, vec![s, i]);
        }
        n.add_output("y", s);
        let lib = Library::mcnc();
        let area_map = map_network_for(&n, &lib, MapGoal::Area);
        let depth_map = map_network_for(&n, &lib, MapGoal::Depth);
        let d_area = area_map.depth();
        let d_depth = depth_map.depth();
        // Structural covering cannot re-associate the chain (the mcnc-like
        // library has no AND3/AND4 cell to absorb positive-phase windows),
        // so the guarantee is only that the depth goal never loses.
        assert!(
            d_depth <= d_area,
            "depth goal must not be deeper: {d_depth} vs {d_area}"
        );
        // both remain functionally correct
        for m in 0..256u64 {
            assert_eq!(depth_map.to_network(&lib).eval_u64(m)[0], m == 255);
            assert_eq!(area_map.to_network(&lib).eval_u64(m)[0], m == 255);
        }
        // where a matching complex cell exists, the depth goal exploits it:
        // !(a·b·c·d) collapses to one nand4 level
        let mut n2 = Network::new("nand4chain");
        let ins: Vec<SignalId> = (0..4).map(|i| n2.add_input(format!("x{i}"))).collect();
        let mut s = ins[0];
        for &i in &ins[1..] {
            s = n2.add_gate(GateKind::And, vec![s, i]);
        }
        let inv = n2.add_gate(GateKind::Not, vec![s]);
        n2.add_output("y", inv);
        let m2 = map_network_for(&n2, &lib, MapGoal::Depth);
        assert_eq!(m2.depth(), 1, "{:?}", m2.cell_histogram());
    }

    #[test]
    fn verilog_netlist_is_structural() {
        let mut n = Network::new("fa");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_gate(GateKind::Xor, vec![a, b]);
        let g = n.add_gate(GateKind::And, vec![a, b]);
        n.add_output("s", x);
        n.add_output("c", g);
        let lib = Library::mcnc();
        let m = map_network(&n, &lib);
        let v = m.to_verilog("half_adder");
        assert!(v.contains("module half_adder (a, b, s, c);"), "{v}");
        assert!(v.contains("xor2"), "{v}");
        assert!(v.contains("and2"), "{v}");
        assert!(v.contains("endmodule"));
        // every gate instance drives a declared wire
        for gi in 0..m.num_gates() {
            assert!(v.contains(&format!("wire w{gi};")), "{v}");
        }
    }

    #[test]
    fn verilog_sanitizes_names() {
        let mut n = Network::new("s");
        let a = n.add_input("bcd-div3.in");
        n.add_output("1out", a);
        let lib = Library::mcnc();
        let m = map_network(&n, &lib);
        let v = m.to_verilog("top");
        assert!(v.contains("bcd_div3_in"), "{v}");
        assert!(v.contains("_1out"), "{v}");
    }

    #[test]
    fn mapped_cost_of_parity16() {
        // 16-input parity: 15 xor2 cells, 30 pins.
        let mut n = Network::new("parity");
        let ins: Vec<SignalId> = (0..16).map(|i| n.add_input(format!("x{i}"))).collect();
        let x = n.add_gate(GateKind::Xor, ins);
        n.add_output("p", x);
        let lib = Library::mcnc();
        let m = map_network(&n, &lib);
        assert_eq!(m.num_gates(), 15);
        assert_eq!(m.num_literals(), 30);
    }

    #[test]
    fn mapping_beats_naive_on_invertible_logic() {
        // nor4 exists: !(a+b+c+d) should be 1 cell rather than 3 or-gates
        // and an inverter
        let mut n = Network::new("nor4");
        let ins: Vec<SignalId> = (0..4).map(|i| n.add_input(format!("x{i}"))).collect();
        let g = n.add_gate(GateKind::Nor, ins);
        n.add_output("y", g);
        let m = check_mapping(&n);
        assert_eq!(m.num_gates(), 1, "{:?}", m.cell_histogram());
    }
}
