//! Technology mapping onto a standard-cell library.
//!
//! Reproduces the role of `map` + `mcnc.genlib` in the paper's Table 2:
//! the subject network is decomposed into a two-input AND/inverter graph,
//! 4-feasible cuts are enumerated for every node, each cut function is
//! Boolean-matched (under input permutation) against the cell library, and
//! a dynamic program picks the minimum-area cover. The built-in
//! [`Library::mcnc`] mirrors the paper's library: 2-input XOR/XNOR,
//! 2-input AND/OR, NAND/NOR up to four inputs, and the four complex
//! AOI/OAI cells.
//!
//! # Examples
//!
//! ```
//! use xsynth_map::{map_network, Library};
//! use xsynth_net::{GateKind, Network};
//!
//! let mut n = Network::new("xor2");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let x = n.add_gate(GateKind::Xor, vec![a, b]);
//! n.add_output("y", x);
//! let mapped = map_network(&n, &Library::mcnc());
//! // one xor2 cell
//! assert_eq!(mapped.num_gates(), 1);
//! assert_eq!(mapped.num_literals(), 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod library;
mod mapper;

pub use library::{Cell, Library};
pub use mapper::{map_network, map_network_for, MapGoal, Mapping};
