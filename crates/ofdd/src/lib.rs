//! Ordered functional decision diagrams (OFDDs) with fixed polarity.
//!
//! An OFDD (Kebschull & Rosenstiel; Section 2 of the paper) is the decision
//! diagram of the fixed-polarity Davio expansion: an internal node for
//! variable `x` with children `(lo, hi)` denotes
//!
//! ```text
//! f = lo ⊕ λ·hi        where λ = x or ¬x according to the polarity vector
//! ```
//!
//! Nodes are reduced (a node whose `hi` child is constant zero contributes
//! nothing and is removed) and shared through a unique table, so a handle is
//! canonical for a given manager and polarity. Each path from the root to
//! the 1-terminal corresponds to one cube of the FPRM form; the manager
//! extracts the full cube set, which is exactly the FPRM form used by the
//! synthesis flow.
//!
//! # Examples
//!
//! ```
//! use xsynth_bdd::BddManager;
//! use xsynth_boolean::{Polarity, TruthTable};
//! use xsynth_ofdd::OfddManager;
//!
//! // x0 OR x1 = x0 ⊕ x1 ⊕ x0·x1 in positive polarity.
//! let t = TruthTable::var(2, 0) | TruthTable::var(2, 1);
//! let mut bm = BddManager::new(2);
//! let f = bm.from_table(&t);
//! let mut om = OfddManager::new(Polarity::all_positive(2));
//! let o = om.from_bdd(&mut bm, f);
//! assert_eq!(om.num_cubes(o), 3);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod kfdd;

use std::collections::HashMap;
use std::time::Instant;
use xsynth_bdd::{Bdd, BddManager, NodeLimitExceeded};
use xsynth_boolean::{Fprm, Polarity, TruthTable, VarSet};
use xsynth_trace::TraceBuffer;

/// A handle to an OFDD node inside an [`OfddManager`].
///
/// Handles are canonical within one manager: equal handles denote equal
/// functions (for the manager's fixed polarity and variable order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ofdd(u32);

impl Ofdd {
    /// The constant-zero function.
    pub const ZERO: Ofdd = Ofdd(0);
    /// The constant-one function.
    pub const ONE: Ofdd = Ofdd(1);

    /// Whether this is a terminal node.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }

    /// Raw index, for debugging and statistics.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: Ofdd,
    hi: Ofdd,
}

const TERMINAL_VAR: u32 = u32::MAX;

/// An arena of reduced, shared OFDD nodes under a fixed [`Polarity`].
#[derive(Debug)]
pub struct OfddManager {
    polarity: Polarity,
    nodes: Vec<Node>,
    unique: HashMap<(u32, Ofdd, Ofdd), Ofdd>,
    xor_cache: HashMap<(Ofdd, Ofdd), Ofdd>,
}

impl OfddManager {
    /// Creates a manager over `polarity.num_vars()` variables.
    pub fn new(polarity: Polarity) -> Self {
        OfddManager {
            polarity,
            nodes: vec![
                Node {
                    var: TERMINAL_VAR,
                    lo: Ofdd::ZERO,
                    hi: Ofdd::ZERO,
                },
                Node {
                    var: TERMINAL_VAR,
                    lo: Ofdd::ONE,
                    hi: Ofdd::ONE,
                },
            ],
            unique: HashMap::new(),
            xor_cache: HashMap::new(),
        }
    }

    /// The polarity vector of this manager.
    pub fn polarity(&self) -> &Polarity {
        &self.polarity
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.polarity.num_vars()
    }

    /// Total allocated nodes (including terminals).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn mk(&mut self, var: u32, lo: Ofdd, hi: Ofdd) -> Ofdd {
        if hi == Ofdd::ZERO {
            // f = lo ⊕ λ·0 = lo : the OFDD reduction rule
            return lo;
        }
        if let Some(&o) = self.unique.get(&(var, lo, hi)) {
            return o;
        }
        let id = Ofdd(self.nodes.len() as u32);
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), id);
        id
    }

    fn node(&self, o: Ofdd) -> Node {
        self.nodes[o.0 as usize]
    }

    /// The decision variable of `o`, or `None` for terminals.
    pub fn top_var(&self, o: Ofdd) -> Option<usize> {
        if o.is_const() {
            None
        } else {
            Some(self.node(o).var as usize)
        }
    }

    /// The low child (cubes without the literal); `o` itself for terminals.
    pub fn low(&self, o: Ofdd) -> Ofdd {
        if o.is_const() {
            o
        } else {
            self.node(o).lo
        }
    }

    /// The high child (cubes with the literal); `o` itself for terminals.
    pub fn high(&self, o: Ofdd) -> Ofdd {
        if o.is_const() {
            o
        } else {
            self.node(o).hi
        }
    }

    /// XOR of two OFDDs — structural, since XOR distributes over the Davio
    /// expansion.
    pub fn xor(&mut self, f: Ofdd, g: Ofdd) -> Ofdd {
        if f == Ofdd::ZERO {
            return g;
        }
        if g == Ofdd::ZERO {
            return f;
        }
        if f == g {
            return Ofdd::ZERO;
        }
        let key = if f <= g { (f, g) } else { (g, f) };
        if let Some(&r) = self.xor_cache.get(&key) {
            return r;
        }
        let r = if f == Ofdd::ONE {
            let ng = self.node(g);
            let lo = self.xor(Ofdd::ONE, ng.lo);
            self.mk(ng.var, lo, ng.hi)
        } else if g == Ofdd::ONE {
            let nf = self.node(f);
            let lo = self.xor(nf.lo, Ofdd::ONE);
            self.mk(nf.var, lo, nf.hi)
        } else {
            let (nf, ng) = (self.node(f), self.node(g));
            let var = nf.var.min(ng.var);
            let (fl, fh) = if nf.var == var {
                (nf.lo, nf.hi)
            } else {
                (f, Ofdd::ZERO)
            };
            let (gl, gh) = if ng.var == var {
                (ng.lo, ng.hi)
            } else {
                (g, Ofdd::ZERO)
            };
            let lo = self.xor(fl, gl);
            let hi = self.xor(fh, gh);
            self.mk(var, lo, hi)
        };
        self.xor_cache.insert(key, r);
        r
    }

    #[allow(clippy::wrong_self_convention)] // manager-style constructor, as in CUDD
    /// Builds the OFDD of `f` from a ROBDD, variable by variable in the
    /// shared natural order.
    ///
    /// # Panics
    ///
    /// Panics if the BDD manager's arity differs, or if a node cap is set
    /// on `bm` and tripped (use [`OfddManager::try_from_bdd`] under a
    /// budget).
    pub fn from_bdd(&mut self, bm: &mut BddManager, f: Bdd) -> Ofdd {
        self.try_from_bdd(bm, f)
            .unwrap_or_else(|e| panic!("{e} (use try_from_bdd under a node cap)"))
    }

    #[allow(clippy::wrong_self_convention)]
    /// Fallible form of [`OfddManager::from_bdd`]: the conversion drives
    /// `bm` through XOR operations that can trip its node cap. Still
    /// panics on an arity mismatch, which is a programming error.
    pub fn try_from_bdd(&mut self, bm: &mut BddManager, f: Bdd) -> Result<Ofdd, NodeLimitExceeded> {
        assert_eq!(bm.num_vars(), self.num_vars(), "arity mismatch");
        xsynth_trace::fail_point!(
            "ofdd.from_bdd",
            Err(NodeLimitExceeded {
                limit: bm.node_limit().unwrap_or(0),
            })
        );
        let mut memo = HashMap::new();
        self.from_bdd_rec(bm, f, &mut memo)
    }

    #[allow(clippy::wrong_self_convention)]
    fn from_bdd_rec(
        &mut self,
        bm: &mut BddManager,
        f: Bdd,
        memo: &mut HashMap<Bdd, Ofdd>,
    ) -> Result<Ofdd, NodeLimitExceeded> {
        if f == Bdd::ZERO {
            return Ok(Ofdd::ZERO);
        }
        if f == Bdd::ONE {
            return Ok(Ofdd::ONE);
        }
        if let Some(&o) = memo.get(&f) {
            return Ok(o);
        }
        let var = bm.top_var(f).expect("non-terminal");
        let f0 = bm.low(f);
        let f1 = bm.high(f);
        let diff_bdd = bm.try_xor(f0, f1)?;
        let base_bdd = if self.polarity.is_positive(var) {
            f0
        } else {
            f1
        };
        let lo = self.from_bdd_rec(bm, base_bdd, memo)?;
        let hi = self.from_bdd_rec(bm, diff_bdd, memo)?;
        let o = self.mk(var as u32, lo, hi);
        memo.insert(f, o);
        Ok(o)
    }

    /// Convenience: builds the OFDD of a truth table.
    pub fn from_table(&mut self, t: &TruthTable) -> Ofdd {
        let mut bm = BddManager::new(t.num_vars());
        let f = bm.from_table(t);
        self.from_bdd(&mut bm, f)
    }

    /// Number of FPRM cubes (paths to the 1-terminal).
    pub fn num_cubes(&self, o: Ofdd) -> u64 {
        let mut memo = HashMap::new();
        self.count_rec(o, &mut memo)
    }

    fn count_rec(&self, o: Ofdd, memo: &mut HashMap<Ofdd, u64>) -> u64 {
        if o == Ofdd::ZERO {
            return 0;
        }
        if o == Ofdd::ONE {
            return 1;
        }
        if let Some(&c) = memo.get(&o) {
            return c;
        }
        let n = self.node(o);
        let c = self.count_rec(n.lo, memo) + self.count_rec(n.hi, memo);
        memo.insert(o, c);
        c
    }

    /// Extracts all FPRM cubes of `o` (each a set of variables; phases come
    /// from the manager's polarity).
    pub fn cubes(&self, o: Ofdd) -> Vec<VarSet> {
        match o {
            Ofdd::ZERO => Vec::new(),
            Ofdd::ONE => vec![VarSet::new()],
            _ => {
                let mut memo: HashMap<Ofdd, Vec<VarSet>> = HashMap::new();
                self.cubes_rec(o, &mut memo);
                memo.remove(&o).expect("root visited")
            }
        }
    }

    fn cubes_rec(&self, o: Ofdd, memo: &mut HashMap<Ofdd, Vec<VarSet>>) {
        if o.is_const() || memo.contains_key(&o) {
            return;
        }
        let n = self.node(o);
        self.cubes_rec(n.lo, memo);
        self.cubes_rec(n.hi, memo);
        let lo_cubes: Vec<VarSet> = match n.lo {
            Ofdd::ZERO => Vec::new(),
            Ofdd::ONE => vec![VarSet::new()],
            _ => memo[&n.lo].clone(),
        };
        let hi_cubes: Vec<VarSet> = match n.hi {
            Ofdd::ZERO => Vec::new(),
            Ofdd::ONE => vec![VarSet::new()],
            _ => memo[&n.hi].clone(),
        };
        let mut out = lo_cubes;
        for mut c in hi_cubes {
            c.insert(n.var as usize);
            out.push(c);
        }
        memo.insert(o, out);
    }

    /// The FPRM form of `o` under this manager's polarity.
    pub fn to_fprm(&self, o: Ofdd) -> Fprm {
        Fprm::new(self.polarity.clone(), self.cubes(o))
    }

    /// Evaluates `o` on a variable-space assignment.
    pub fn eval(&self, o: Ofdd, minterm: u64) -> bool {
        let mut memo = HashMap::new();
        self.eval_rec(o, minterm, &mut memo)
    }

    fn eval_rec(&self, o: Ofdd, minterm: u64, memo: &mut HashMap<Ofdd, bool>) -> bool {
        if o == Ofdd::ZERO {
            return false;
        }
        if o == Ofdd::ONE {
            return true;
        }
        if let Some(&v) = memo.get(&o) {
            return v;
        }
        let n = self.node(o);
        let var = n.var as usize;
        let x = minterm & (1u64 << var) != 0;
        let lit = if self.polarity.is_positive(var) {
            x
        } else {
            !x
        };
        let lo = self.eval_rec(n.lo, minterm, memo);
        let v = if lit {
            lo ^ self.eval_rec(n.hi, minterm, memo)
        } else {
            lo
        };
        memo.insert(o, v);
        v
    }

    /// Number of distinct internal nodes in the DAG rooted at `o`.
    pub fn size(&self, o: Ofdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![o];
        let mut count = 0;
        while let Some(b) = stack.pop() {
            if b.is_const() || !seen.insert(b) {
                continue;
            }
            count += 1;
            let n = self.node(b);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    /// The internal nodes of the DAG rooted at `o` in a topological order
    /// (children before parents), as `(handle, var, lo, hi)` tuples. Used by
    /// the OFDD-based factorization (Method 2) to build the initial network
    /// in one traversal.
    pub fn topo_nodes(&self, o: Ofdd) -> Vec<(Ofdd, usize, Ofdd, Ofdd)> {
        let mut order = Vec::new();
        let mut seen = std::collections::HashSet::new();
        self.topo_rec(o, &mut seen, &mut order);
        order
    }

    fn topo_rec(
        &self,
        o: Ofdd,
        seen: &mut std::collections::HashSet<Ofdd>,
        order: &mut Vec<(Ofdd, usize, Ofdd, Ofdd)>,
    ) {
        if o.is_const() || !seen.insert(o) {
            return;
        }
        let n = self.node(o);
        self.topo_rec(n.lo, seen, order);
        self.topo_rec(n.hi, seen, order);
        order.push((o, n.var as usize, n.lo, n.hi));
    }
}

/// How a polarity vector is chosen (Section 2 of the paper, ref \[20\]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolarityMode {
    /// All variables positive (the plain positive-polarity Reed-Muller
    /// form).
    AllPositive,
    /// Round-based greedy descent on the OFDD cube count: each round
    /// evaluates every single-variable flip of the current polarity and
    /// moves to the best strictly-improving one.
    Greedy,
    /// Gray-code-ordered exhaustive enumeration over outputs with support
    /// ≤ [`EXHAUSTIVE_LIMIT`] variables, greedy beyond.
    Exhaustive,
}

/// Support size up to which [`PolarityMode::Exhaustive`] really enumerates
/// all `2^k` polarities.
pub const EXHAUSTIVE_LIMIT: usize = 10;

/// Counters kept by [`PolaritySearch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PolaritySearchStats {
    /// Polarity vectors whose cube count was actually computed.
    pub candidates_evaluated: u64,
    /// Cube-count requests answered from the memo table.
    pub memo_hits: u64,
    /// Times the search stopped early (node cap or deadline) and kept the
    /// best polarity found so far.
    pub budget_trips: u64,
}

impl PolaritySearchStats {
    /// Accumulates another search's counters (used when per-output
    /// searches are merged into one report).
    pub fn absorb(&mut self, other: &PolaritySearchStats) {
        self.candidates_evaluated += other.candidates_evaluated;
        self.memo_hits += other.memo_hits;
        self.budget_trips += other.budget_trips;
    }
}

/// An incremental polarity search over one function.
///
/// The search owns a borrowed [`BddManager`] for the whole descent — the
/// BDD of the function is built once and candidate polarities only pay for
/// the BDD→OFDD conversion. Evaluated polarities are memoized (keyed by
/// the polarity vector itself), so greedy rounds never re-evaluate a visited
/// vector, and the independent single-flip candidates of a round can be
/// evaluated in parallel (`parallel(true)`) on clone handles of the shared
/// manager substrate, every worker hash-consing into the same DAG under
/// one global node cap.
/// Results are bit-identical with and without parallelism: workers only
/// compute cube counts, and the selection logic is a pure function of
/// those counts applied in a fixed order.
#[derive(Debug)]
pub struct PolaritySearch<'a> {
    bm: &'a mut BddManager,
    f: Bdd,
    memo: HashMap<Polarity, u64>,
    parallel: bool,
    deadline: Option<Instant>,
    trace: Option<&'a mut TraceBuffer>,
    /// Counters: candidates evaluated and memo hits so far.
    pub stats: PolaritySearchStats,
}

impl<'a> PolaritySearch<'a> {
    /// Starts a search for `f` inside `bm`.
    ///
    /// A node cap set on `bm` (see [`BddManager::set_node_limit`]) governs
    /// the search: when a candidate evaluation trips it, the search stops
    /// and keeps the best polarity found so far instead of panicking.
    pub fn new(bm: &'a mut BddManager, f: Bdd) -> Self {
        PolaritySearch {
            bm,
            f,
            memo: HashMap::new(),
            parallel: false,
            deadline: None,
            trace: None,
            stats: PolaritySearchStats::default(),
        }
    }

    /// Enables or disables parallel candidate evaluation (off by default —
    /// callers that already fan out across outputs keep each search
    /// single-threaded to avoid oversubscription).
    pub fn parallel(mut self, enabled: bool) -> Self {
        self.parallel = enabled;
        self
    }

    /// Sets a wall-clock deadline. Once it passes, the search finishes the
    /// candidate in flight, then aborts and keeps the best polarity found
    /// so far (recorded in [`PolaritySearchStats::budget_trips`]).
    pub fn deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Whether the search has stopped early at least once because of its
    /// node cap or deadline.
    pub fn budget_tripped(&self) -> bool {
        self.stats.budget_trips > 0
    }

    /// Records the search into a trace buffer: [`PolaritySearch::run`]
    /// opens a `polarity_search` span and the evaluation sites emit the
    /// `polarity.evaluated` / `polarity.memo_hit` counters. The counter
    /// stream is deterministic — the memo logic is identical with and
    /// without [`PolaritySearch::parallel`], only *where* a candidate is
    /// evaluated changes.
    pub fn trace(mut self, buf: &'a mut TraceBuffer) -> Self {
        self.trace = Some(buf);
        self
    }

    fn record(&mut self, evaluated: u64, memo_hits: u64) {
        self.stats.candidates_evaluated += evaluated;
        self.stats.memo_hits += memo_hits;
        if let Some(buf) = self.trace.as_deref_mut() {
            buf.count("polarity.evaluated", evaluated);
            buf.count("polarity.memo_hit", memo_hits);
        }
    }

    fn record_trip(&mut self) {
        self.stats.budget_trips += 1;
        if let Some(buf) = self.trace.as_deref_mut() {
            buf.count("polarity.budget_tripped", 1);
        }
    }

    fn past_deadline(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// The FPRM cube count of the function under `pol`, memoized.
    ///
    /// # Panics
    ///
    /// Panics if the manager's node cap trips (use
    /// [`PolaritySearch::try_cube_count`] under a budget).
    pub fn cube_count(&mut self, pol: &Polarity) -> u64 {
        self.try_cube_count(pol)
            .expect("BDD node limit exceeded during polarity search (use try_cube_count)")
    }

    /// [`PolaritySearch::cube_count`] that reports a tripped node cap as
    /// `None` instead of panicking.
    pub fn try_cube_count(&mut self, pol: &Polarity) -> Option<u64> {
        if let Some(&c) = self.memo.get(pol) {
            self.record(0, 1);
            return Some(c);
        }
        match try_eval_polarity(self.bm, self.f, pol) {
            Some(c) => {
                self.record(1, 0);
                self.memo.insert(pol.clone(), c);
                Some(c)
            }
            None => {
                self.record_trip();
                None
            }
        }
    }

    /// Cube counts for a batch of candidate polarities, answered from the
    /// memo where possible and computed (in parallel when enabled) where
    /// not. The returned vector is index-aligned with `pols`.
    ///
    /// # Panics
    ///
    /// Panics if the manager's node cap trips; the budget-governed search
    /// strategies use the internal keep-best-so-far path instead.
    pub fn cube_counts(&mut self, pols: &[Polarity]) -> Vec<u64> {
        let (counts, _) = self.counts_governed(pols);
        counts
            .into_iter()
            .map(|c| c.expect("BDD node limit exceeded during polarity search"))
            .collect()
    }

    /// Batch evaluation under the budget: memo hits always answer;
    /// missing candidates evaluate until the node cap or deadline trips.
    /// Returns the index-aligned counts (`None` = not affordable) and
    /// whether the budget tripped.
    fn counts_governed(&mut self, pols: &[Polarity]) -> (Vec<Option<u64>>, bool) {
        let mut out: Vec<Option<u64>> = Vec::with_capacity(pols.len());
        let mut missing: Vec<usize> = Vec::new();
        let mut hits = 0u64;
        for p in pols {
            match self.memo.get(p) {
                Some(&c) => {
                    hits += 1;
                    out.push(Some(c));
                }
                None => {
                    missing.push(out.len());
                    out.push(None);
                }
            }
        }
        // a batch may name the same uncached polarity twice; computing it
        // twice would double-count, so dedup by key first
        missing.dedup_by_key(|&mut i| pols[i].clone());
        let mut tripped = false;
        let mut evaluated = 0u64;
        if self.past_deadline() {
            tripped = true;
        } else {
            let workers = if self.parallel && missing.len() >= 2 {
                xsynth_bdd::worker_threads(missing.len())
            } else {
                1
            };
            if workers > 1 {
                let bm = &*self.bm;
                let f = self.f;
                let counts: Vec<(usize, Option<u64>)> = std::thread::scope(|s| {
                    let handles: Vec<_> = (0..workers)
                        .map(|w| {
                            let chunk: Vec<usize> =
                                missing.iter().copied().skip(w).step_by(workers).collect();
                            let pols = &pols;
                            s.spawn(move || {
                                let mut local = bm.clone();
                                chunk
                                    .into_iter()
                                    .map(|i| (i, try_eval_polarity(&mut local, f, &pols[i])))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("polarity worker panicked"))
                        .collect()
                });
                for (i, c) in counts {
                    match c {
                        Some(c) => {
                            evaluated += 1;
                            self.memo.insert(pols[i].clone(), c);
                        }
                        None => tripped = true,
                    }
                }
            } else {
                for &i in &missing {
                    if self.past_deadline() {
                        tripped = true;
                        break;
                    }
                    match try_eval_polarity(self.bm, self.f, &pols[i]) {
                        Some(c) => {
                            evaluated += 1;
                            self.memo.insert(pols[i].clone(), c);
                        }
                        None => {
                            tripped = true;
                            break;
                        }
                    }
                }
            }
        }
        self.record(evaluated, hits);
        if tripped {
            self.record_trip();
        }
        let out = out
            .into_iter()
            .zip(pols)
            .map(|(c, p)| c.or_else(|| self.memo.get(p).copied()))
            .collect();
        (out, tripped)
    }

    /// Round-based greedy descent from the all-positive polarity: each
    /// round evaluates every single-variable flip over `support` and moves
    /// to the smallest strictly-improving cube count (ties broken toward
    /// the lowest variable). Returns the winning polarity and its count.
    pub fn greedy(&mut self, support: &[usize]) -> (Polarity, u64) {
        let n = self.bm.num_vars();
        let mut pol = Polarity::all_positive(n);
        let Some(mut best) = self.try_cube_count(&pol.clone()) else {
            // even the base polarity is unaffordable under the budget:
            // keep it with an unknown cost
            return (pol, u64::MAX);
        };
        loop {
            let candidates: Vec<Polarity> = support
                .iter()
                .map(|&v| {
                    let mut p = pol.clone();
                    p.flip(v);
                    p
                })
                .collect();
            if candidates.is_empty() {
                return (pol, best);
            }
            let (counts, tripped) = self.counts_governed(&candidates);
            let mut winner: Option<usize> = None;
            for (i, c) in counts.iter().enumerate() {
                if let Some(c) = *c {
                    if c < best && winner.is_none_or(|w| Some(c) < counts[w]) {
                        winner = Some(i);
                    }
                }
            }
            match winner {
                Some(i) => {
                    best = counts[i].expect("winner has a count");
                    pol = candidates[i].clone();
                }
                None => return (pol, best),
            }
            if tripped {
                // abort-and-keep-best: the round in flight still applied
                // its improvement, but no further rounds start
                return (pol, best);
            }
        }
    }

    /// Exhaustive enumeration of all `2^k` polarities over `support`, in
    /// gray-code order (each step flips exactly one variable, the order a
    /// future incremental OFDD update can exploit). Ties keep the earliest
    /// polarity in gray order. Returns the winner and its count.
    pub fn exhaustive_gray(&mut self, support: &[usize]) -> (Polarity, u64) {
        let n = self.bm.num_vars();
        let k = support.len();
        assert!(k <= 24, "exhaustive polarity space too large for {k} vars");
        // candidate i: the i-th gray code, a set bit meaning the variable
        // is flipped to negative (gray 0 = all-positive)
        let make = |i: u64| {
            let g = i ^ (i >> 1);
            let mut p = Polarity::all_positive(n);
            for (b, &v) in support.iter().enumerate() {
                if g & (1 << b) != 0 {
                    p.set(v, false);
                }
            }
            p
        };
        let mut best: Option<(u64, Polarity)> = None;
        // batches keep peak memory flat and still feed the parallel path
        const BATCH: u64 = 256;
        let total = 1u64 << k;
        let mut start = 0u64;
        while start < total {
            let end = (start + BATCH).min(total);
            let pols: Vec<Polarity> = (start..end).map(make).collect();
            let (counts, tripped) = self.counts_governed(&pols);
            for (p, c) in pols.into_iter().zip(counts) {
                if let Some(c) = c {
                    if best.as_ref().is_none_or(|(bc, _)| c < *bc) {
                        best = Some((c, p));
                    }
                }
            }
            if tripped {
                // abort-and-keep-best under the budget
                break;
            }
            start = end;
        }
        match best {
            Some((c, p)) => (p, c),
            // budget tripped before any candidate was affordable
            None => (Polarity::all_positive(n), u64::MAX),
        }
    }

    /// Dispatches on `mode`: all-positive, greedy descent, or gray-code
    /// exhaustive when the support fits under [`EXHAUSTIVE_LIMIT`]. When a
    /// trace buffer is attached the whole search runs inside a
    /// `polarity_search` span.
    pub fn run(&mut self, mode: PolarityMode, support: &[usize]) -> (Polarity, u64) {
        xsynth_trace::fail_point!("ofdd.polarity_search");
        if let Some(buf) = self.trace.as_deref_mut() {
            buf.begin("polarity_search");
        }
        let result = self.dispatch(mode, support);
        if let Some(buf) = self.trace.as_deref_mut() {
            if result.1 != u64::MAX {
                buf.gauge("polarity.best_cubes", result.1 as f64);
            }
            buf.end();
        }
        result
    }

    fn dispatch(&mut self, mode: PolarityMode, support: &[usize]) -> (Polarity, u64) {
        let n = self.bm.num_vars();
        match mode {
            PolarityMode::AllPositive => {
                let pol = Polarity::all_positive(n);
                let c = self.try_cube_count(&pol.clone()).unwrap_or(u64::MAX);
                (pol, c)
            }
            PolarityMode::Greedy => self.greedy(support),
            PolarityMode::Exhaustive => {
                if support.len() <= EXHAUSTIVE_LIMIT {
                    self.exhaustive_gray(support)
                } else {
                    self.greedy(support)
                }
            }
        }
    }
}

/// One candidate evaluation: BDD→OFDD conversion under `pol`, cube count.
/// `None` when the conversion trips the manager's node cap.
fn try_eval_polarity(bm: &mut BddManager, f: Bdd, pol: &Polarity) -> Option<u64> {
    let mut om = OfddManager::new(pol.clone());
    let o = om.try_from_bdd(bm, f).ok()?;
    Some(om.num_cubes(o))
}

/// Searches for a cube-minimizing polarity of `t` by the memoized greedy
/// descent of [`PolaritySearch`], evaluating candidates through OFDD cube
/// counts. Returns the winning manager and root.
///
/// This is the practical polarity-optimization loop of the paper's
/// reference \[20\] scaled to functions whose truth tables fit in memory; for
/// larger functions build from a [`BddManager`] directly with
/// [`PolaritySearch`] and the polarity of your choice.
pub fn optimize_polarity(t: &TruthTable) -> (OfddManager, Ofdd) {
    let ((om, o), _) = optimize_polarity_mode(t, PolarityMode::Greedy);
    (om, o)
}

/// [`optimize_polarity`] with an explicit search mode, also returning the
/// search counters.
pub fn optimize_polarity_mode(
    t: &TruthTable,
    mode: PolarityMode,
) -> ((OfddManager, Ofdd), PolaritySearchStats) {
    let n = t.num_vars();
    let mut bm = BddManager::new(n);
    let f = bm.from_table(t);
    let support: Vec<usize> = bm.support(f).iter().collect();
    let (pol, stats) = {
        let mut search = PolaritySearch::new(&mut bm, f).parallel(true);
        let (pol, _) = search.run(mode, &support);
        (pol, search.stats)
    };
    let mut om = OfddManager::new(pol);
    let o = om.from_bdd(&mut bm, f);
    ((om, o), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_semantics(t: &TruthTable, pol: &Polarity) {
        let mut om = OfddManager::new(pol.clone());
        let o = om.from_table(t);
        for m in 0..(1u64 << t.num_vars()) {
            assert_eq!(om.eval(o, m), t.eval(m), "pol {pol:?} minterm {m}");
        }
        // cube set must match the transform-derived FPRM
        let fprm_direct = Fprm::from_table(t, pol);
        let fprm_ofdd = om.to_fprm(o);
        let mut a = fprm_direct.cubes().to_vec();
        let mut b = fprm_ofdd.cubes().to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b, "cube sets must agree with the fast transform");
    }

    #[test]
    fn matches_transform_all_polarities_small() {
        let t = TruthTable::from_fn(4, |m| (m * 23 + 3) % 7 < 3);
        for idx in 0..16u64 {
            check_semantics(&t, &Polarity::from_index(4, idx));
        }
    }

    #[test]
    fn matches_transform_medium() {
        let t = TruthTable::from_fn(8, |m| m.count_ones() % 3 == 1);
        check_semantics(&t, &Polarity::all_positive(8));
        check_semantics(&t, &Polarity::from_index(8, 0b10110101));
    }

    #[test]
    fn figure1_ofdd() {
        // Paper Figure 1: f over (x1,x2,x3)=(v0,v1,v2), V=(0 1 1),
        // f = ¬x1 ⊕ ¬x1·x3 ⊕ ¬x1·x2 ⊕ ¬x1·x2·x3 ⊕ x3 ⊕ x2 — six cubes.
        let pol = Polarity::from_bits(&[false, true, true]);
        let f = Fprm::new(
            pol.clone(),
            vec![
                VarSet::from_vars([0]),
                VarSet::from_vars([0, 2]),
                VarSet::from_vars([0, 1]),
                VarSet::from_vars([0, 1, 2]),
                VarSet::from_vars([2]),
                VarSet::from_vars([1]),
            ],
        );
        let t = f.to_table();
        let mut om = OfddManager::new(pol);
        let o = om.from_table(&t);
        assert_eq!(om.num_cubes(o), 6);
        // The paper's drawing uses a merge-isomorphic-children reduction and
        // shows 3 nonterminal nodes; under the standard zero-suppressed OFDD
        // reduction used here the same function takes 5 shared nodes (the
        // 1 ⊕ x3 subgraph is shared by both children of the x2 node).
        assert_eq!(om.size(o), 5);
    }

    #[test]
    fn xor_is_structural() {
        let t1 = TruthTable::var(5, 0) & TruthTable::var(5, 3);
        let t2 = TruthTable::var(5, 2);
        let mut om = OfddManager::new(Polarity::all_positive(5));
        let (a, b) = (om.from_table(&t1), om.from_table(&t2));
        let x = om.xor(a, b);
        let expect = om.from_table(&(&t1 ^ &t2));
        assert_eq!(x, expect, "canonical handles must match");
        let zero = om.xor(x, x);
        assert_eq!(zero, Ofdd::ZERO);
    }

    #[test]
    fn parity_has_linear_ofdd_and_n_cubes() {
        let n = 10;
        let t = TruthTable::from_fn(n, |m| m.count_ones() % 2 == 1);
        let mut om = OfddManager::new(Polarity::all_positive(n));
        let o = om.from_table(&t);
        assert_eq!(om.num_cubes(o), n as u64);
        assert_eq!(om.size(o), n);
    }

    #[test]
    fn topo_order_children_first() {
        let t = TruthTable::from_fn(6, |m| (m % 11) < 4);
        let mut om = OfddManager::new(Polarity::all_positive(6));
        let o = om.from_table(&t);
        let order = om.topo_nodes(o);
        let mut pos = HashMap::new();
        for (i, (h, _, _, _)) in order.iter().enumerate() {
            pos.insert(*h, i);
        }
        for (h, _, lo, hi) in &order {
            for c in [lo, hi] {
                if !c.is_const() {
                    assert!(pos[c] < pos[h], "child must precede parent");
                }
            }
        }
        assert_eq!(order.len(), om.size(o));
        assert_eq!(order.last().map(|x| x.0), Some(o), "root comes last");
    }

    #[test]
    fn optimize_polarity_beats_positive_on_negated_and() {
        // ¬x0·¬x1·¬x2 has 1 cube in all-negative polarity but 8 in positive.
        let t = TruthTable::from_fn(3, |m| m == 0);
        let pos = Fprm::from_table_positive(&t);
        assert_eq!(pos.num_cubes(), 8);
        let (om, o) = optimize_polarity(&t);
        assert_eq!(om.num_cubes(o), 1);
        for m in 0..8u64 {
            assert_eq!(om.eval(o, m), t.eval(m));
        }
    }

    #[test]
    fn try_from_bdd_trips_capped_manager() {
        let t = TruthTable::from_fn(8, |m| (m * 31 + 7) % 11 < 4);
        let mut bm = BddManager::new(8);
        let f = bm.from_table(&t);
        // the conversion drives the BDD manager through fresh XORs, so a
        // cap at the current size must trip
        bm.set_node_limit(Some(bm.num_nodes()));
        let mut om = OfddManager::new(Polarity::all_positive(8));
        assert!(om.try_from_bdd(&mut bm, f).is_err());
        // uncapped, the same conversion succeeds
        bm.set_node_limit(None);
        let o = om.try_from_bdd(&mut bm, f).unwrap();
        assert_eq!(om.num_cubes(o), om.num_cubes(o));
    }

    #[test]
    fn capped_search_aborts_and_keeps_best() {
        let t = TruthTable::from_fn(6, |m| (m * 37 + 11) % 5 < 2);
        let mut bm = BddManager::new(6);
        let f = bm.from_table(&t);
        let support: Vec<usize> = bm.support(f).iter().collect();
        // cap at the current size: the very first candidate is
        // unaffordable, so the search must fall back to all-positive with
        // an unknown count — without panicking
        bm.set_node_limit(Some(bm.num_nodes()));
        let mut search = PolaritySearch::new(&mut bm, f);
        let (pol, count) = search.run(PolarityMode::Greedy, &support);
        assert!(search.budget_tripped());
        assert_eq!(pol, Polarity::all_positive(6));
        assert_eq!(count, u64::MAX);
    }

    #[test]
    fn expired_deadline_keeps_base_polarity_result() {
        let t = TruthTable::from_fn(6, |m| m.count_ones() % 3 == 1);
        let mut bm = BddManager::new(6);
        let f = bm.from_table(&t);
        let support: Vec<usize> = bm.support(f).iter().collect();
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let mut search = PolaritySearch::new(&mut bm, f).deadline(Some(past));
        let (pol, count) = search.run(PolarityMode::Greedy, &support);
        // greedy evaluates the base polarity before the deadline gates the
        // flip rounds, so the result is the real all-positive count
        assert!(search.budget_tripped());
        assert_eq!(pol, Polarity::all_positive(6));
        assert_ne!(count, u64::MAX);
        // an unconstrained search finds a result at least as good
        let mut bm2 = BddManager::new(6);
        let f2 = bm2.from_table(&t);
        let mut free = PolaritySearch::new(&mut bm2, f2);
        let (_, free_count) = free.run(PolarityMode::Greedy, &support);
        assert!(free_count <= count);
    }

    #[test]
    fn constant_functions() {
        let mut om = OfddManager::new(Polarity::all_positive(3));
        let z = om.from_table(&TruthTable::zero(3));
        let one = om.from_table(&TruthTable::one(3));
        assert_eq!(z, Ofdd::ZERO);
        assert_eq!(one, Ofdd::ONE);
        assert_eq!(om.cubes(one), vec![VarSet::new()]);
        assert!(om.cubes(z).is_empty());
    }
}
