//! Ordered Kronecker functional decision diagrams (OKFDDs).
//!
//! The paper's related work (\[1\] Becker & Drechsler, \[16\] Sarabi et al.)
//! generalizes OFDDs by letting *each variable* pick its own expansion:
//!
//! * **Shannon**:        `f = ¬x·f₀ ⊕ x·f₁`
//! * **positive Davio**: `f = f₀ ⊕ x·(f₀ ⊕ f₁)`
//! * **negative Davio**: `f = f₁ ⊕ ¬x·(f₀ ⊕ f₁)`
//!
//! A pure-Davio list is exactly an OFDD (and its paths are an FPRM form);
//! a pure-Shannon list is a BDD. Mixed lists often beat both — MUX-flavored
//! variables want Shannon, parity-flavored variables want Davio — which is
//! why the paper lists OKFDD synthesis as the natural extension of its
//! flow. This module provides the diagram, a BDD→KFDD conversion, a greedy
//! per-variable decomposition search, and network lowering.

use crate::{Ofdd, OfddManager};
use std::collections::HashMap;
use xsynth_bdd::{Bdd, BddManager, NodeLimitExceeded};
use xsynth_boolean::{Polarity, TruthTable};
use xsynth_net::{GateKind, Network, SignalId};

/// The expansion used for one variable of a KFDD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decomposition {
    /// `f = ¬x·f₀ ⊕ x·f₁` (the BDD expansion).
    Shannon,
    /// `f = f₀ ⊕ x·(f₀ ⊕ f₁)`.
    PositiveDavio,
    /// `f = f₁ ⊕ ¬x·(f₀ ⊕ f₁)`.
    NegativeDavio,
}

/// A handle to a KFDD node inside a [`KfddManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Kfdd(u32);

impl Kfdd {
    /// The constant-zero function.
    pub const ZERO: Kfdd = Kfdd(0);
    /// The constant-one function.
    pub const ONE: Kfdd = Kfdd(1);

    /// Whether this is a terminal node.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: Kfdd,
    hi: Kfdd,
}

const TERMINAL_VAR: u32 = u32::MAX;

/// An arena of reduced, shared KFDD nodes under a fixed per-variable
/// decomposition type list.
#[derive(Debug)]
pub struct KfddManager {
    types: Vec<Decomposition>,
    nodes: Vec<Node>,
    unique: HashMap<(u32, Kfdd, Kfdd), Kfdd>,
}

impl KfddManager {
    /// Creates a manager with one decomposition type per variable.
    pub fn new(types: Vec<Decomposition>) -> Self {
        KfddManager {
            types,
            nodes: vec![
                Node {
                    var: TERMINAL_VAR,
                    lo: Kfdd::ZERO,
                    hi: Kfdd::ZERO,
                },
                Node {
                    var: TERMINAL_VAR,
                    lo: Kfdd::ONE,
                    hi: Kfdd::ONE,
                },
            ],
            unique: HashMap::new(),
        }
    }

    /// The decomposition list.
    pub fn types(&self) -> &[Decomposition] {
        &self.types
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.types.len()
    }

    fn mk(&mut self, var: u32, lo: Kfdd, hi: Kfdd) -> Kfdd {
        let reducible = match self.types[var as usize] {
            // Shannon: node redundant when both children equal
            Decomposition::Shannon => lo == hi,
            // Davio: node redundant when the difference part is zero
            _ => hi == Kfdd::ZERO,
        };
        if reducible {
            return lo;
        }
        if let Some(&k) = self.unique.get(&(var, lo, hi)) {
            return k;
        }
        let id = Kfdd(self.nodes.len() as u32);
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), id);
        id
    }

    fn node(&self, k: Kfdd) -> Node {
        self.nodes[k.0 as usize]
    }

    #[allow(clippy::wrong_self_convention)] // manager-style constructor, as in CUDD
    /// Builds the KFDD of a BDD function under this manager's types.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch, or if `bm` has a node cap and trips it
    /// (use [`KfddManager::try_from_bdd`] under a budget).
    pub fn from_bdd(&mut self, bm: &mut BddManager, f: Bdd) -> Kfdd {
        self.try_from_bdd(bm, f).unwrap_or_else(|e| panic!("{e}"))
    }

    #[allow(clippy::wrong_self_convention)]
    /// Fallible form of [`KfddManager::from_bdd`]: the Davio expansions
    /// allocate XOR cofactors in `bm`, so a node-capped manager can trip.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch (a programming error, not a resource one).
    pub fn try_from_bdd(&mut self, bm: &mut BddManager, f: Bdd) -> Result<Kfdd, NodeLimitExceeded> {
        assert_eq!(bm.num_vars(), self.num_vars(), "arity mismatch");
        let mut memo = HashMap::new();
        self.from_bdd_rec(bm, f, &mut memo)
    }

    #[allow(clippy::wrong_self_convention)]
    fn from_bdd_rec(
        &mut self,
        bm: &mut BddManager,
        f: Bdd,
        memo: &mut HashMap<Bdd, Kfdd>,
    ) -> Result<Kfdd, NodeLimitExceeded> {
        if f == Bdd::ZERO {
            return Ok(Kfdd::ZERO);
        }
        if f == Bdd::ONE {
            return Ok(Kfdd::ONE);
        }
        if let Some(&k) = memo.get(&f) {
            return Ok(k);
        }
        let var = bm.top_var(f).expect("non-terminal");
        let f0 = bm.low(f);
        let f1 = bm.high(f);
        let (lo_bdd, hi_bdd) = match self.types[var] {
            Decomposition::Shannon => (f0, f1),
            Decomposition::PositiveDavio => (f0, bm.try_xor(f0, f1)?),
            Decomposition::NegativeDavio => (f1, bm.try_xor(f0, f1)?),
        };
        let lo = self.from_bdd_rec(bm, lo_bdd, memo)?;
        let hi = self.from_bdd_rec(bm, hi_bdd, memo)?;
        let k = self.mk(var as u32, lo, hi);
        memo.insert(f, k);
        Ok(k)
    }

    /// Convenience: builds from a truth table.
    pub fn from_table(&mut self, t: &TruthTable) -> Kfdd {
        let mut bm = BddManager::new(t.num_vars());
        let f = bm.from_table(t);
        self.from_bdd(&mut bm, f)
    }

    /// Evaluates on a variable-space assignment.
    pub fn eval(&self, k: Kfdd, minterm: u64) -> bool {
        let mut memo = HashMap::new();
        self.eval_rec(k, minterm, &mut memo)
    }

    fn eval_rec(&self, k: Kfdd, minterm: u64, memo: &mut HashMap<Kfdd, bool>) -> bool {
        if k == Kfdd::ZERO {
            return false;
        }
        if k == Kfdd::ONE {
            return true;
        }
        if let Some(&v) = memo.get(&k) {
            return v;
        }
        let n = self.node(k);
        let x = minterm & (1u64 << n.var) != 0;
        let lo = self.eval_rec(n.lo, minterm, memo);
        let v = match self.types[n.var as usize] {
            Decomposition::Shannon => {
                if x {
                    self.eval_rec(n.hi, minterm, memo)
                } else {
                    lo
                }
            }
            Decomposition::PositiveDavio => {
                if x {
                    lo ^ self.eval_rec(n.hi, minterm, memo)
                } else {
                    lo
                }
            }
            Decomposition::NegativeDavio => {
                if x {
                    lo
                } else {
                    lo ^ self.eval_rec(n.hi, minterm, memo)
                }
            }
        };
        memo.insert(k, v);
        v
    }

    /// Number of distinct internal nodes reachable from `k`.
    pub fn size(&self, k: Kfdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![k];
        let mut count = 0;
        while let Some(x) = stack.pop() {
            if x.is_const() || !seen.insert(x) {
                continue;
            }
            count += 1;
            let n = self.node(x);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    /// Lowers the KFDD into gates: Shannon nodes become multiplexers,
    /// Davio nodes become AND+XOR pairs, with DAG sharing preserved.
    pub fn to_network(&self, root: Kfdd, net: &mut Network, inputs: &[SignalId]) -> SignalId {
        if root == Kfdd::ZERO {
            return net.add_gate(GateKind::Const0, vec![]);
        }
        if root == Kfdd::ONE {
            return net.add_gate(GateKind::Const1, vec![]);
        }
        // topological order, children first
        let mut order = Vec::new();
        let mut seen = std::collections::HashSet::new();
        fn topo(
            m: &KfddManager,
            k: Kfdd,
            seen: &mut std::collections::HashSet<Kfdd>,
            order: &mut Vec<Kfdd>,
        ) {
            if k.is_const() || !seen.insert(k) {
                return;
            }
            let n = m.node(k);
            topo(m, n.lo, seen, order);
            topo(m, n.hi, seen, order);
            order.push(k);
        }
        topo(self, root, &mut seen, &mut order);

        let mut not_cache: HashMap<SignalId, SignalId> = HashMap::new();
        let mut zero: Option<SignalId> = None;
        let mut one: Option<SignalId> = None;
        let mut sig: HashMap<Kfdd, SignalId> = HashMap::new();
        let resolve = |k: Kfdd,
                       net: &mut Network,
                       sig: &HashMap<Kfdd, SignalId>,
                       zero: &mut Option<SignalId>,
                       one: &mut Option<SignalId>| {
            match k {
                Kfdd::ZERO => *zero.get_or_insert_with(|| net.add_gate(GateKind::Const0, vec![])),
                Kfdd::ONE => *one.get_or_insert_with(|| net.add_gate(GateKind::Const1, vec![])),
                _ => sig[&k],
            }
        };
        for k in order {
            let n = self.node(k);
            let x = inputs[n.var as usize];
            let s = match self.types[n.var as usize] {
                Decomposition::Shannon => {
                    // ¬x·lo + x·hi (disjoint, so OR == XOR; emit the mux)
                    let lo = resolve(n.lo, net, &sig, &mut zero, &mut one);
                    let hi = resolve(n.hi, net, &sig, &mut zero, &mut one);
                    let nx = *not_cache
                        .entry(x)
                        .or_insert_with(|| net.add_gate(GateKind::Not, vec![x]));
                    let a = net.add_gate(GateKind::And, vec![nx, lo]);
                    let b = net.add_gate(GateKind::And, vec![x, hi]);
                    net.add_gate(GateKind::Or, vec![a, b])
                }
                Decomposition::PositiveDavio | Decomposition::NegativeDavio => {
                    let lit = if self.types[n.var as usize] == Decomposition::PositiveDavio {
                        x
                    } else {
                        *not_cache
                            .entry(x)
                            .or_insert_with(|| net.add_gate(GateKind::Not, vec![x]))
                    };
                    let and_part = if n.hi == Kfdd::ONE {
                        lit
                    } else {
                        let hi = resolve(n.hi, net, &sig, &mut zero, &mut one);
                        net.add_gate(GateKind::And, vec![lit, hi])
                    };
                    match n.lo {
                        Kfdd::ZERO => and_part,
                        Kfdd::ONE => net.add_gate(GateKind::Not, vec![and_part]),
                        _ => {
                            let lo = sig[&n.lo];
                            net.add_gate(GateKind::Xor, vec![lo, and_part])
                        }
                    }
                }
            };
            sig.insert(k, s);
        }
        sig[&root]
    }
}

/// Greedy per-variable decomposition search: starting from all
/// positive-Davio (the OFDD), repeatedly retypes the single variable whose
/// change most reduces the node count, until a local minimum. Returns the
/// winning manager and root.
///
/// # Panics
///
/// Panics if `bm` has a node cap and even the base all-positive-Davio
/// build trips it (use [`try_optimize_decomposition`] under a budget).
pub fn optimize_decomposition(bm: &mut BddManager, f: Bdd) -> (KfddManager, Kfdd) {
    try_optimize_decomposition(bm, f).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`optimize_decomposition`]. Under a node-capped
/// manager, candidate retypes that trip the cap are simply skipped (the
/// best affordable decomposition so far is kept); the call only errors
/// when even the base all-positive-Davio build is unaffordable.
pub fn try_optimize_decomposition(
    bm: &mut BddManager,
    f: Bdd,
) -> Result<(KfddManager, Kfdd), NodeLimitExceeded> {
    let n = bm.num_vars();
    let all = [
        Decomposition::Shannon,
        Decomposition::PositiveDavio,
        Decomposition::NegativeDavio,
    ];
    let mut types = vec![Decomposition::PositiveDavio; n];
    let mut best_size = {
        let mut m = KfddManager::new(types.clone());
        let r = m.try_from_bdd(bm, f)?;
        m.size(r)
    };
    loop {
        let mut improved = false;
        for v in 0..n {
            let orig = types[v];
            for d in all {
                if d == orig {
                    continue;
                }
                types[v] = d;
                let mut m = KfddManager::new(types.clone());
                match m.try_from_bdd(bm, f) {
                    Ok(r) => {
                        let s = m.size(r);
                        if s < best_size {
                            best_size = s;
                            improved = true;
                        } else {
                            types[v] = orig;
                        }
                    }
                    // unaffordable candidate: keep the best so far
                    Err(_) => types[v] = orig,
                }
            }
        }
        if !improved {
            break;
        }
    }
    let mut m = KfddManager::new(types);
    // every retype kept in `types` was built successfully above, so the
    // final rebuild replays cached XORs and cannot trip
    let r = m.try_from_bdd(bm, f)?;
    Ok((m, r))
}

/// The OFDD seen as the pure positive-Davio KFDD (consistency bridge).
pub fn ofdd_node_count(t: &TruthTable) -> usize {
    let mut om = OfddManager::new(Polarity::all_positive(t.num_vars()));
    let o: Ofdd = om.from_table(t);
    om.size(o)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(t: &TruthTable, types: Vec<Decomposition>) -> usize {
        let mut m = KfddManager::new(types);
        let k = m.from_table(t);
        for mt in 0..(1u64 << t.num_vars()) {
            assert_eq!(m.eval(k, mt), t.eval(mt), "at {mt}");
        }
        // lowering agrees too
        let mut net = Network::new("kfdd");
        let inputs: Vec<SignalId> = (0..t.num_vars())
            .map(|i| net.add_input(format!("x{i}")))
            .collect();
        let s = m.to_network(k, &mut net, &inputs);
        net.add_output("f", s);
        for mt in 0..(1u64 << t.num_vars()) {
            assert_eq!(net.eval_u64(mt)[0], t.eval(mt), "lowered at {mt}");
        }
        m.size(k)
    }

    #[test]
    fn pure_davio_matches_ofdd() {
        let t = TruthTable::from_fn(6, |m| (m * 31 + 7) % 9 < 4);
        let kfdd_size = check(&t, vec![Decomposition::PositiveDavio; 6]);
        assert_eq!(kfdd_size, ofdd_node_count(&t));
    }

    #[test]
    fn pure_shannon_matches_bdd_size() {
        let t = TruthTable::from_fn(6, |m| (m * 13 + 5) % 11 < 5);
        let kfdd_size = check(&t, vec![Decomposition::Shannon; 6]);
        let mut bm = BddManager::new(6);
        let f = bm.from_table(&t);
        assert_eq!(kfdd_size, bm.size(f));
    }

    #[test]
    fn mixed_types_all_valid() {
        use Decomposition::*;
        let t = TruthTable::from_fn(5, |m| m.count_ones() % 2 == 1 || m == 17);
        for types in [
            vec![
                Shannon,
                PositiveDavio,
                NegativeDavio,
                Shannon,
                PositiveDavio,
            ],
            vec![NegativeDavio; 5],
            vec![
                Shannon,
                Shannon,
                PositiveDavio,
                PositiveDavio,
                NegativeDavio,
            ],
        ] {
            check(&t, types);
        }
    }

    #[test]
    fn greedy_never_worse_than_ofdd() {
        for seed in 0..8u64 {
            let mut s = seed;
            let t = TruthTable::from_fn(6, |m| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(m + 3);
                (s >> 40) & 7 < 3
            });
            let mut bm = BddManager::new(6);
            let f = bm.from_table(&t);
            let (m, r) = optimize_decomposition(&mut bm, f);
            assert!(m.size(r) <= ofdd_node_count(&t), "seed {seed}");
            for mt in 0..64u64 {
                assert_eq!(m.eval(r, mt), t.eval(mt));
            }
        }
    }

    #[test]
    fn mux_prefers_shannon() {
        // f = s ? a : b — one Shannon node at s beats Davio chains
        let t = TruthTable::from_fn(3, |m| if m & 1 != 0 { m & 2 != 0 } else { m & 4 != 0 });
        let mut bm = BddManager::new(3);
        let f = bm.from_table(&t);
        let (m, r) = optimize_decomposition(&mut bm, f);
        assert!(
            m.size(r) <= 3,
            "mux should be tiny under mixed types, got {}",
            m.size(r)
        );
    }

    #[test]
    fn parity_prefers_davio() {
        let t = TruthTable::from_fn(8, |m| m.count_ones() % 2 == 1);
        let mut bm = BddManager::new(8);
        let f = bm.from_table(&t);
        let (m, r) = optimize_decomposition(&mut bm, f);
        // pure Davio gives n nodes; Shannon would give 2n-1
        assert_eq!(m.size(r), 8);
        assert!(m.types().iter().all(|d| *d != Decomposition::Shannon));
    }

    #[test]
    fn constants() {
        let mut m = KfddManager::new(vec![Decomposition::Shannon; 3]);
        assert_eq!(m.from_table(&TruthTable::zero(3)), Kfdd::ZERO);
        assert_eq!(m.from_table(&TruthTable::one(3)), Kfdd::ONE);
    }
}
