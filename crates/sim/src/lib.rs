//! Logic simulation, single-stuck-at fault simulation and switching-activity
//! power estimation for [`xsynth_net::Network`]s.
//!
//! The paper leans on simulation twice: the redundancy-removal pass of
//! Section 4 simulates the OC/AZ/AO/SA1 pattern sets to find reducible XOR
//! gates, and the evaluation reports SIS `power_estimate` numbers and
//! claims complete single-stuck-at test sets. This crate provides those
//! engines: 64-way bit-parallel simulation, fault enumeration/simulation,
//! and the zero-delay, uniform-input switching-activity power model.
//!
//! # Examples
//!
//! ```
//! use xsynth_net::{GateKind, Network};
//! use xsynth_sim::Simulator;
//!
//! let mut n = Network::new("and");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let g = n.add_gate(GateKind::And, vec![a, b]);
//! n.add_output("y", g);
//! let sim = Simulator::new(&n);
//! let outs = sim.outputs_for_patterns(&xsynth_sim::exhaustive_patterns(2));
//! assert_eq!(outs[3], vec![true]); // pattern 0b11
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fault;
mod power;

pub use fault::{enumerate_faults, fault_simulate, Fault, FaultReport, FaultSite};
pub use power::{power_estimate, signal_activity, PowerReport};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xsynth_net::{Network, NodeKind, SignalId};
use xsynth_trace::TraceBuffer;

/// A single input assignment: one value per primary input, in declaration
/// order.
pub type Pattern = Vec<bool>;

/// Error from [`try_exhaustive_patterns`]: the requested pattern set is
/// too large to materialise as `Vec<Pattern>`. Use the streaming
/// [`exhaustive_blocks`] form instead, whose peak memory is one 64-lane
/// block regardless of `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternSetTooLarge {
    /// The requested input count.
    pub inputs: usize,
    /// The largest input count this helper materialises.
    pub max_inputs: usize,
}

impl std::fmt::Display for PatternSetTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "exhaustive pattern set too large for {} inputs (max {}); \
             use exhaustive_blocks for a streaming form",
            self.inputs, self.max_inputs
        )
    }
}

impl std::error::Error for PatternSetTooLarge {}

/// The largest input count [`exhaustive_patterns`] will materialise.
pub const EXHAUSTIVE_MATERIALIZE_LIMIT: usize = 24;

/// All `2^n` input patterns of an `n`-input network, in minterm order.
///
/// This materialises `2^n` `Vec<bool>`s and is meant for small `n` only;
/// bulk consumers (redundancy removal, verification) should stream
/// [`exhaustive_blocks`] instead.
///
/// # Panics
///
/// Panics if `n > 24` (16 M patterns); use [`try_exhaustive_patterns`]
/// to handle that case as an error.
pub fn exhaustive_patterns(n: usize) -> Vec<Pattern> {
    try_exhaustive_patterns(n).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`exhaustive_patterns`].
pub fn try_exhaustive_patterns(n: usize) -> Result<Vec<Pattern>, PatternSetTooLarge> {
    if n > EXHAUSTIVE_MATERIALIZE_LIMIT {
        return Err(PatternSetTooLarge {
            inputs: n,
            max_inputs: EXHAUSTIVE_MATERIALIZE_LIMIT,
        });
    }
    Ok((0..(1u64 << n))
        .map(|m| (0..n).map(|i| m & (1 << i) != 0).collect())
        .collect())
}

/// A word-packed block of up to 64 input patterns: `words[i]` holds the
/// values of primary input `i`, one pattern per bit lane.
///
/// This is the form the simulator consumes directly; packing once up
/// front (or streaming blocks from a generator) avoids materialising one
/// `Vec<bool>` per pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternBlock {
    /// One word per primary input; bit `k` is the value in lane `k`.
    pub words: Vec<u64>,
    /// Number of valid lanes (1..=64).
    pub lanes: u32,
}

impl PatternBlock {
    /// Mask with one bit set per valid lane.
    pub fn lane_mask(&self) -> u64 {
        if self.lanes >= 64 {
            !0
        } else {
            (1u64 << self.lanes) - 1
        }
    }
}

/// Packs an explicit pattern list into 64-lane blocks.
///
/// # Panics
///
/// Panics if any pattern's length differs from `n`.
pub fn pack_patterns(n: usize, patterns: &[Pattern]) -> Vec<PatternBlock> {
    patterns
        .chunks(64)
        .map(|chunk| {
            let mut words = vec![0u64; n];
            for (k, p) in chunk.iter().enumerate() {
                assert_eq!(p.len(), n, "pattern arity mismatch");
                for (i, &b) in p.iter().enumerate() {
                    if b {
                        words[i] |= 1 << k;
                    }
                }
            }
            PatternBlock {
                words,
                lanes: chunk.len() as u32,
            }
        })
        .collect()
}

// Periodic lane masks for inputs 0..6 within a full 64-lane block: bit `k`
// of LANE_BITS[i] is bit `i` of the lane index `k`.
const LANE_BITS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// Streams the full `2^n` exhaustive pattern space as word-packed
/// 64-lane blocks in minterm order, with peak memory bounded at one
/// block regardless of `n`.
///
/// # Panics
///
/// Panics if `n > 32` (the iteration itself would never finish).
pub fn exhaustive_blocks(n: usize) -> ExhaustiveBlocks {
    assert!(n <= 32, "exhaustive simulation infeasible for {n} inputs");
    ExhaustiveBlocks { n, next: 0 }
}

/// Iterator returned by [`exhaustive_blocks`].
#[derive(Debug, Clone)]
pub struct ExhaustiveBlocks {
    n: usize,
    next: u64,
}

impl Iterator for ExhaustiveBlocks {
    type Item = PatternBlock;

    fn next(&mut self) -> Option<PatternBlock> {
        let total: u64 = 1u64 << self.n;
        if self.next >= total {
            return None;
        }
        let base = self.next;
        let lanes = 64u64.min(total - base) as u32;
        let mask = if lanes >= 64 { !0 } else { (1u64 << lanes) - 1 };
        // Minterm `base + k` sits in lane `k`: inputs below 6 cycle within
        // the block (fixed masks), inputs from 6 up are constant across it.
        let words = (0..self.n)
            .map(|i| {
                if i < 6 {
                    LANE_BITS[i] & mask
                } else if base >> i & 1 != 0 {
                    mask
                } else {
                    0u64
                }
            })
            .collect();
        self.next = base + 64;
        Some(PatternBlock { words, lanes })
    }
}

/// `count` uniformly random patterns from a fixed seed (reproducible).
pub fn random_patterns(n: usize, count: usize, seed: u64) -> Vec<Pattern> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..n).map(|_| rng.gen::<bool>()).collect())
        .collect()
}

/// A prepared bit-parallel simulator over a network.
///
/// Evaluates up to 64 patterns at once by packing one bit per pattern into
/// `u64` lanes.
#[derive(Debug)]
pub struct Simulator<'a> {
    net: &'a Network,
    order: Vec<SignalId>,
}

impl<'a> Simulator<'a> {
    /// Prepares a simulator (computes the topological order once).
    pub fn new(net: &'a Network) -> Self {
        Simulator {
            net,
            order: net.topo_order(),
        }
    }

    /// The underlying network.
    pub fn network(&self) -> &Network {
        self.net
    }

    /// Prepares a simulator whose evaluation order covers exactly the
    /// cone rooted at `root`, children before parents. Unlike [`new`],
    /// this works on a network still under construction that has no
    /// outputs yet — the use case is self-checking an emitted cone
    /// before it is registered as an output.
    ///
    /// [`new`]: Simulator::new
    pub fn for_cone(net: &'a Network, root: SignalId) -> Self {
        let mut seen = vec![false; net.num_nodes()];
        let mut order = Vec::new();
        let mut stack: Vec<(SignalId, usize)> = vec![(root, 0)];
        while let Some(&mut (id, ref mut next)) = stack.last_mut() {
            if seen[id.index()] {
                stack.pop();
                continue;
            }
            let fanins = net.fanins(id);
            if *next < fanins.len() {
                let child = fanins[*next];
                *next += 1;
                if !seen[child.index()] {
                    stack.push((child, 0));
                }
            } else {
                seen[id.index()] = true;
                order.push(id);
                stack.pop();
            }
        }
        Simulator { net, order }
    }

    /// Simulates one 64-pattern block. `input_words[i]` holds the 64 values
    /// of primary input `i` (pattern `k` in bit `k`). Returns one word per
    /// network node (indexed by `SignalId::index`); unreachable nodes stay
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics if `input_words.len()` differs from the input count.
    pub fn simulate_block(&self, input_words: &[u64]) -> Vec<u64> {
        xsynth_trace::fail_point!("sim.block");
        assert_eq!(
            input_words.len(),
            self.net.inputs().len(),
            "input arity mismatch"
        );
        let mut val = vec![0u64; self.net.num_nodes()];
        for (i, &id) in self.net.inputs().iter().enumerate() {
            val[id.index()] = input_words[i];
        }
        for &id in &self.order {
            if let NodeKind::Gate(k) = self.net.kind(id) {
                val[id.index()] = eval_gate_words(*k, self.net.fanins(id), &val);
            }
        }
        val
    }

    /// Output values for one packed block: one word per primary output,
    /// with lanes outside the block's `lane_mask` forced to zero.
    pub fn output_words(&self, block: &PatternBlock) -> Vec<u64> {
        let val = self.simulate_block(&block.words);
        let mask = block.lane_mask();
        self.net
            .outputs()
            .iter()
            .map(|&(_, s)| val[s.index()] & mask)
            .collect()
    }

    /// Simulates an arbitrary pattern list, returning the output values for
    /// each pattern.
    pub fn outputs_for_patterns(&self, patterns: &[Pattern]) -> Vec<Vec<bool>> {
        let n = self.net.inputs().len();
        let mut results = Vec::with_capacity(patterns.len());
        for block in pack_patterns(n, patterns) {
            let val = self.simulate_block(&block.words);
            for k in 0..block.lanes as usize {
                results.push(
                    self.net
                        .outputs()
                        .iter()
                        .map(|&(_, s)| val[s.index()] & (1 << k) != 0)
                        .collect(),
                );
            }
        }
        results
    }

    /// Per-node one-counts over a pattern list: returns `(counts, total)`
    /// where `counts[node]` is how many patterns set that node to 1.
    pub fn node_one_counts(&self, patterns: &[Pattern]) -> (Vec<u64>, u64) {
        let n = self.net.inputs().len();
        let mut counts = vec![0u64; self.net.num_nodes()];
        for block in pack_patterns(n, patterns) {
            let mask = block.lane_mask();
            let val = self.simulate_block(&block.words);
            for (c, w) in counts.iter_mut().zip(val.iter()) {
                *c += (w & mask).count_ones() as u64;
            }
        }
        (counts, patterns.len() as u64)
    }
}

/// Evaluates one gate over packed 64-pattern words.
pub(crate) fn eval_gate_words(kind: xsynth_net::GateKind, fanins: &[SignalId], val: &[u64]) -> u64 {
    use xsynth_net::GateKind::*;
    let mut it = fanins.iter().map(|f| val[f.index()]);
    match kind {
        Const0 => 0,
        Const1 => !0,
        Buf => it.next().expect("buf fanin"),
        Not => !it.next().expect("not fanin"),
        And => it.fold(!0u64, |a, b| a & b),
        Nand => !it.fold(!0u64, |a, b| a & b),
        Or => it.fold(0u64, |a, b| a | b),
        Nor => !it.fold(0u64, |a, b| a | b),
        Xor => it.fold(0u64, |a, b| a ^ b),
        Xnor => !it.fold(0u64, |a, b| a ^ b),
    }
}

/// Checks functional equivalence of two networks on an explicit pattern
/// list (both must have the same input/output counts). This is the
/// workhorse behind the `verify`-style checks in the benchmark harness;
/// for complete certainty on small circuits pass
/// [`exhaustive_patterns`].
pub fn equivalent_on(a: &Network, b: &Network, patterns: &[Pattern]) -> bool {
    equivalent_on_blocks(a, b, pack_patterns(a.inputs().len(), patterns))
}

/// Streaming form of [`equivalent_on`] over word-packed blocks: each block
/// is simulated and compared as it arrives, so a generator like
/// [`exhaustive_blocks`] keeps peak memory at one block.
pub fn equivalent_on_blocks<I>(a: &Network, b: &Network, blocks: I) -> bool
where
    I: IntoIterator<Item = PatternBlock>,
{
    let (sa, sb) = (Simulator::new(a), Simulator::new(b));
    blocks
        .into_iter()
        .all(|blk| sa.output_words(&blk) == sb.output_words(&blk))
}

/// Complete equivalence check over the full input space, streaming
/// [`exhaustive_blocks`] so no pattern list is ever materialised.
///
/// # Panics
///
/// Panics if the networks' input count exceeds 32.
pub fn equivalent_exhaustive(a: &Network, b: &Network) -> bool {
    equivalent_on_blocks(a, b, exhaustive_blocks(a.inputs().len()))
}

/// [`equivalent_on`] recording into a trace buffer: runs inside an
/// `equivalent_on` span and counts the patterns (`sim.patterns`) and
/// 64-lane simulation blocks (`sim.blocks`) each network was driven with.
pub fn equivalent_on_traced(
    a: &Network,
    b: &Network,
    patterns: &[Pattern],
    buf: &mut TraceBuffer,
) -> bool {
    buf.span("equivalent_on", |buf| {
        buf.count("sim.patterns", 2 * patterns.len() as u64);
        buf.count("sim.blocks", 2 * patterns.chunks(64).len() as u64);
        buf.gauge("sim.pattern_blocks", patterns.chunks(64).len() as f64);
        equivalent_on(a, b, patterns)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsynth_net::GateKind;

    fn adder2() -> Network {
        // 2-bit adder: inputs a0 a1 b0 b1, outputs s0 s1 c
        let mut n = Network::new("adder2");
        let a0 = n.add_input("a0");
        let a1 = n.add_input("a1");
        let b0 = n.add_input("b0");
        let b1 = n.add_input("b1");
        let s0 = n.add_gate(GateKind::Xor, vec![a0, b0]);
        let c0 = n.add_gate(GateKind::And, vec![a0, b0]);
        let s1 = n.add_gate(GateKind::Xor, vec![a1, b1, c0]);
        let ab = n.add_gate(GateKind::And, vec![a1, b1]);
        let ac = n.add_gate(GateKind::And, vec![a1, c0]);
        let bc = n.add_gate(GateKind::And, vec![b1, c0]);
        let c1 = n.add_gate(GateKind::Or, vec![ab, ac, bc]);
        n.add_output("s0", s0);
        n.add_output("s1", s1);
        n.add_output("c", c1);
        n
    }

    #[test]
    fn block_simulation_matches_scalar_eval() {
        let n = adder2();
        let sim = Simulator::new(&n);
        let pats = exhaustive_patterns(4);
        let outs = sim.outputs_for_patterns(&pats);
        for (m, out) in outs.iter().enumerate() {
            assert_eq!(*out, n.eval_u64(m as u64), "pattern {m}");
        }
    }

    #[test]
    fn adder_adds() {
        let n = adder2();
        let sim = Simulator::new(&n);
        let outs = sim.outputs_for_patterns(&exhaustive_patterns(4));
        for m in 0..16u64 {
            let a = m & 0b11;
            let b = (m >> 2) & 0b11;
            let s = a + b;
            let o = &outs[m as usize];
            let got = (o[0] as u64) | ((o[1] as u64) << 1) | ((o[2] as u64) << 2);
            assert_eq!(got, s, "{a}+{b}");
        }
    }

    #[test]
    fn one_counts_of_and2() {
        let mut n = Network::new("and2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::And, vec![a, b]);
        n.add_output("y", g);
        let sim = Simulator::new(&n);
        let (counts, total) = sim.node_one_counts(&exhaustive_patterns(2));
        assert_eq!(total, 4);
        assert_eq!(counts[g.index()], 1);
        assert_eq!(counts[a.index()], 2);
    }

    #[test]
    fn cone_simulation_works_without_outputs() {
        // a net still under construction: gates exist, no outputs yet
        let mut n = Network::new("partial");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let ab = n.add_gate(GateKind::And, vec![a, b]);
        let root = n.add_gate(GateKind::Xor, vec![ab, c]);
        let stray = n.add_gate(GateKind::Or, vec![a, c]);
        let sim = Simulator::for_cone(&n, root);
        let pats = exhaustive_patterns(3);
        for block in pack_patterns(3, &pats) {
            let val = sim.simulate_block(&block.words);
            for k in 0..block.lanes as usize {
                let (av, bv, cv) = (pats[k][0], pats[k][1], pats[k][2]);
                let want = (av && bv) ^ cv;
                assert_eq!(val[root.index()] & (1 << k) != 0, want, "pattern {k}");
            }
            // nodes outside the cone are untouched
            assert_eq!(val[stray.index()], 0);
        }
    }

    #[test]
    fn random_patterns_reproducible() {
        let p1 = random_patterns(8, 100, 42);
        let p2 = random_patterns(8, 100, 42);
        assert_eq!(p1, p2);
        let p3 = random_patterns(8, 100, 43);
        assert_ne!(p1, p3);
    }

    #[test]
    fn more_than_64_patterns() {
        let n = adder2();
        let sim = Simulator::new(&n);
        let mut pats = exhaustive_patterns(4);
        // repeat to cross the 64-pattern block boundary
        let reps = pats.clone();
        for _ in 0..8 {
            pats.extend(reps.iter().cloned());
        }
        let outs = sim.outputs_for_patterns(&pats);
        for (i, p) in pats.iter().enumerate() {
            let m: u64 = p.iter().enumerate().map(|(b, &v)| (v as u64) << b).sum();
            assert_eq!(outs[i], n.eval_u64(m));
        }
    }

    #[test]
    fn exhaustive_blocks_match_materialised_patterns() {
        for n in [0usize, 1, 3, 5, 6, 7, 9] {
            let pats = exhaustive_patterns(n);
            let packed = pack_patterns(n, &pats);
            let streamed: Vec<PatternBlock> = exhaustive_blocks(n).collect();
            assert_eq!(packed, streamed, "n={n}");
        }
    }

    #[test]
    fn try_exhaustive_patterns_rejects_large_n() {
        let err = try_exhaustive_patterns(25).unwrap_err();
        assert_eq!(err.inputs, 25);
        assert_eq!(err.max_inputs, EXHAUSTIVE_MATERIALIZE_LIMIT);
        assert!(try_exhaustive_patterns(8).is_ok());
    }

    #[test]
    fn streaming_equivalence_matches_pattern_equivalence() {
        let n1 = adder2();
        let n2 = adder2().sweep();
        assert!(equivalent_exhaustive(&n1, &n2));
        let mut broken = adder2();
        let out = broken.outputs()[0].1;
        broken.replace_gate(out, GateKind::Xnor, broken.fanins(out).to_vec());
        assert!(!equivalent_exhaustive(&n1, &broken));
    }

    #[test]
    fn output_words_agree_with_scalar_outputs() {
        let n = adder2();
        let sim = Simulator::new(&n);
        for block in exhaustive_blocks(4) {
            let words = sim.output_words(&block);
            assert_eq!(words.len(), n.outputs().len());
            for k in 0..block.lanes as u64 {
                let expect = n.eval_u64(k);
                for (o, w) in words.iter().enumerate() {
                    assert_eq!(w >> k & 1 != 0, expect[o]);
                }
            }
        }
    }

    #[test]
    fn equivalence_checking() {
        let n1 = adder2();
        let mut n2 = adder2().sweep();
        assert!(equivalent_on(&n1, &n2, &exhaustive_patterns(4)));
        // break it
        let out = n2.outputs()[0].1;
        if n2.gate_kind(out).is_some() {
            n2.replace_gate(out, GateKind::Xnor, n2.fanins(out).to_vec());
            assert!(!equivalent_on(&n1, &n2, &exhaustive_patterns(4)));
        }
    }
}
