//! Switching-activity power estimation.
//!
//! Reimplements the model behind SIS `power_estimate` with default options
//! as used in the paper's Table 2 power column: zero-delay, spatially and
//! temporally independent primary inputs with signal probability 0.5, and
//! per-node switching activity `E = 2·p·(1−p)` weighted by the node's
//! capacitive load (its fanout count, plus one if it drives a primary
//! output). The absolute scale is arbitrary; only ratios between circuits
//! are meaningful, which is all the paper's `improve%power` column uses.

use crate::{exhaustive_patterns, random_patterns, Pattern, Simulator};
use std::fmt;
use xsynth_net::{Network, NodeKind};

/// The result of a power estimation run.
#[derive(Debug, Clone)]
pub struct PowerReport {
    /// Total weighted switching activity (arbitrary units).
    pub total: f64,
    /// Per-node activity (indexed by `SignalId::index`).
    pub per_node: Vec<f64>,
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "power ≈ {:.3} (normalized switching)", self.total)
    }
}

/// Per-node switching activity `2·p·(1−p)` measured over a pattern set.
pub fn signal_activity(net: &Network, patterns: &[Pattern]) -> Vec<f64> {
    let sim = Simulator::new(net);
    let (counts, total) = sim.node_one_counts(patterns);
    counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total as f64;
            2.0 * p * (1.0 - p)
        })
        .collect()
}

/// Estimates power with the SIS `power_estimate` default model.
///
/// Signal probabilities are exact (exhaustive simulation) for up to 16
/// inputs and Monte-Carlo (4096 fixed-seed random patterns) beyond that.
pub fn power_estimate(net: &Network) -> PowerReport {
    let n = net.inputs().len();
    let patterns = if n <= 16 {
        exhaustive_patterns(n)
    } else {
        random_patterns(n, 4096, 0x5eed)
    };
    let activity = signal_activity(net, &patterns);
    let fanouts = net.fanouts();
    let mut per_node = vec![0.0; net.num_nodes()];
    let mut total = 0.0;
    let mut drives_po = vec![0usize; net.num_nodes()];
    for (_, s) in net.outputs() {
        drives_po[s.index()] += 1;
    }
    for id in net.topo_order() {
        // primary inputs also switch and drive load
        let load = fanouts[id.index()].len() + drives_po[id.index()];
        if load == 0 {
            continue;
        }
        let is_free = matches!(
            net.kind(id),
            NodeKind::Gate(xsynth_net::GateKind::Const0)
                | NodeKind::Gate(xsynth_net::GateKind::Const1)
        );
        if is_free {
            continue;
        }
        let p = activity[id.index()] * load as f64;
        per_node[id.index()] = p;
        total += p;
    }
    PowerReport { total, per_node }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsynth_net::{GateKind, Network};

    #[test]
    fn inverter_chain_power_scales_with_length() {
        let build = |k: usize| {
            let mut n = Network::new("chain");
            let mut s = n.add_input("a");
            for _ in 0..k {
                s = n.add_gate(GateKind::Not, vec![s]);
            }
            n.add_output("y", s);
            n
        };
        let p2 = power_estimate(&build(2)).total;
        let p8 = power_estimate(&build(8)).total;
        assert!(p8 > p2, "longer chain must burn more power");
        // every node in a NOT chain has p = 0.5, activity 0.5, load 1
        assert!((p2 - 1.5).abs() < 1e-9, "got {p2}");
    }

    #[test]
    fn and_gate_activity_is_biased() {
        let mut n = Network::new("and");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g = n.add_gate(GateKind::And, vec![a, b]);
        n.add_output("y", g);
        let act = signal_activity(&n, &exhaustive_patterns(2));
        // p(and)=0.25, activity = 2·0.25·0.75 = 0.375
        assert!((act[g.index()] - 0.375).abs() < 1e-9);
        assert!((act[a.index()] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn constant_nodes_are_free() {
        let mut n = Network::new("c");
        let a = n.add_input("a");
        let one = n.add_gate(GateKind::Const1, vec![]);
        let g = n.add_gate(GateKind::And, vec![a, one]);
        n.add_output("y", g);
        let rep = power_estimate(&n);
        assert_eq!(rep.per_node[one.index()], 0.0);
    }

    #[test]
    fn monte_carlo_close_to_exact() {
        // 18-input parity triggers the Monte-Carlo path; its activity per
        // node is exactly 0.5, so the estimate should land close.
        let mut n = Network::new("p18");
        let ins: Vec<_> = (0..18).map(|i| n.add_input(format!("x{i}"))).collect();
        let mut s = ins[0];
        for &i in &ins[1..] {
            s = n.add_gate(GateKind::Xor, vec![s, i]);
        }
        n.add_output("y", s);
        let rep = power_estimate(&n);
        // 18 inputs (load 1 each) + 17 xors (16 with load 1, root load 1)
        // all with activity 0.5 → exact total 17.5
        assert!((rep.total - 17.5).abs() < 0.8, "got {}", rep.total);
    }
}
