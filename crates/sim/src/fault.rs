//! Single-stuck-at fault enumeration and simulation.
//!
//! The paper claims its synthesized networks are irredundant and come with
//! a complete single-stuck-at test set derived from the FPRM cubes (the OC
//! and SA1 pattern sets) with no conventional ATPG. This module provides
//! the machinery to check that claim: enumerate the fault universe of a
//! network and measure which faults a pattern set detects.

use crate::{eval_gate_words, Pattern, Simulator};
use std::fmt;
use xsynth_net::{Network, NodeKind, SignalId};

/// A location where a stuck-at fault can occur.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// The output wire of a node (also models primary-input faults).
    Output(SignalId),
    /// The `k`-th fanin wire of a gate (a fanout branch fault).
    Fanin(SignalId, usize),
}

/// A single stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Where the wire is stuck.
    pub site: FaultSite,
    /// The stuck value (`true` = stuck-at-1).
    pub stuck_at: bool,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = if self.stuck_at { 1 } else { 0 };
        match self.site {
            FaultSite::Output(s) => write!(f, "n{}/sa{}", s.index(), v),
            FaultSite::Fanin(s, k) => write!(f, "n{}.in{}/sa{}", s.index(), k, v),
        }
    }
}

/// Enumerates the full (uncollapsed) single-stuck-at fault universe of the
/// reachable subnetwork: both polarities on every node output and every
/// gate fanin wire.
pub fn enumerate_faults(net: &Network) -> Vec<Fault> {
    let mut faults = Vec::new();
    for id in net.topo_order() {
        for stuck in [false, true] {
            faults.push(Fault {
                site: FaultSite::Output(id),
                stuck_at: stuck,
            });
        }
        if matches!(net.kind(id), NodeKind::Gate(_)) {
            for k in 0..net.fanins(id).len() {
                for stuck in [false, true] {
                    faults.push(Fault {
                        site: FaultSite::Fanin(id, k),
                        stuck_at: stuck,
                    });
                }
            }
        }
    }
    faults
}

/// The outcome of fault-simulating a pattern set.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// All faults that were simulated.
    pub total: usize,
    /// Faults no pattern detected.
    pub undetected: Vec<Fault>,
}

impl FaultReport {
    /// Number of detected faults.
    pub fn detected(&self) -> usize {
        self.total - self.undetected.len()
    }

    /// Fault coverage in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.detected() as f64 / self.total as f64
        }
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} faults detected ({:.1}% coverage)",
            self.detected(),
            self.total,
            100.0 * self.coverage()
        )
    }
}

/// Simulates every fault in `faults` against every pattern (bit-parallel,
/// 64 patterns at a time) and reports which faults stay undetected.
///
/// A fault is detected by a pattern when some primary output differs from
/// the fault-free value.
pub fn fault_simulate(net: &Network, patterns: &[Pattern], faults: &[Fault]) -> FaultReport {
    let sim = Simulator::new(net);
    let order = net.topo_order();
    let n_in = net.inputs().len();
    let mut undetected: Vec<bool> = vec![true; faults.len()];

    for chunk in patterns.chunks(64) {
        let mut words = vec![0u64; n_in];
        for (k, p) in chunk.iter().enumerate() {
            assert_eq!(p.len(), n_in, "pattern arity mismatch");
            for (i, &b) in p.iter().enumerate() {
                if b {
                    words[i] |= 1 << k;
                }
            }
        }
        let mask = if chunk.len() == 64 {
            !0u64
        } else {
            (1u64 << chunk.len()) - 1
        };
        let good = sim.simulate_block(&words);
        for (fi, fault) in faults.iter().enumerate() {
            if !undetected[fi] {
                continue;
            }
            if differs_under_fault(net, &order, &words, &good, *fault, mask) {
                undetected[fi] = false;
            }
        }
    }

    FaultReport {
        total: faults.len(),
        undetected: faults
            .iter()
            .zip(undetected)
            .filter_map(|(f, u)| u.then_some(*f))
            .collect(),
    }
}

/// Re-simulates one 64-pattern block with `fault` injected and reports
/// whether any primary output differs from the fault-free values in any of
/// the `mask`ed lanes.
fn differs_under_fault(
    net: &Network,
    order: &[SignalId],
    input_words: &[u64],
    good: &[u64],
    fault: Fault,
    mask: u64,
) -> bool {
    let stuck_word = if fault.stuck_at { !0u64 } else { 0u64 };
    let mut val = vec![0u64; net.num_nodes()];
    for (i, &id) in net.inputs().iter().enumerate() {
        val[id.index()] = input_words[i];
    }
    if let FaultSite::Output(s) = fault.site {
        if matches!(net.kind(s), NodeKind::Input) {
            val[s.index()] = stuck_word;
        }
    }
    for &id in order {
        if let NodeKind::Gate(k) = net.kind(id) {
            let v = match fault.site {
                FaultSite::Fanin(g, idx) if g == id => {
                    // evaluate with the idx-th fanin wire overridden
                    let fanins = net.fanins(id);
                    let mut vals: Vec<u64> = fanins.iter().map(|f| val[f.index()]).collect();
                    vals[idx] = stuck_word;
                    eval_gate_words_direct(*k, &vals)
                }
                _ => eval_gate_words(*k, net.fanins(id), &val),
            };
            val[id.index()] = if fault.site == FaultSite::Output(id) {
                stuck_word
            } else {
                v
            };
        }
    }
    net.outputs()
        .iter()
        .any(|&(_, s)| (val[s.index()] ^ good[s.index()]) & mask != 0)
}

fn eval_gate_words_direct(kind: xsynth_net::GateKind, vals: &[u64]) -> u64 {
    use xsynth_net::GateKind::*;
    let mut it = vals.iter().copied();
    match kind {
        Const0 => 0,
        Const1 => !0,
        Buf => it.next().expect("buf fanin"),
        Not => !it.next().expect("not fanin"),
        And => it.fold(!0u64, |a, b| a & b),
        Nand => !it.fold(!0u64, |a, b| a & b),
        Or => it.fold(0u64, |a, b| a | b),
        Nor => !it.fold(0u64, |a, b| a | b),
        Xor => it.fold(0u64, |a, b| a ^ b),
        Xnor => !it.fold(0u64, |a, b| a ^ b),
    }
}

/// Whether a wire is redundant: no input pattern in `patterns` detects
/// either stuck-at fault... for a *proof* of redundancy pass the
/// exhaustive pattern set; for the paper's criterion pass the OC/SA1 sets.
pub fn is_undetected(net: &Network, patterns: &[Pattern], fault: Fault) -> bool {
    fault_simulate(net, patterns, &[fault]).undetected.len() == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive_patterns;
    use xsynth_net::GateKind;

    fn xor_as_aoi() -> Network {
        // a⊕b built from AND/OR/NOT — Hayes: all 4 patterns needed.
        let mut n = Network::new("xor_aoi");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let na = n.add_gate(GateKind::Not, vec![a]);
        let nb = n.add_gate(GateKind::Not, vec![b]);
        let l = n.add_gate(GateKind::And, vec![a, nb]);
        let r = n.add_gate(GateKind::And, vec![na, b]);
        let o = n.add_gate(GateKind::Or, vec![l, r]);
        n.add_output("y", o);
        n
    }

    #[test]
    fn xor_aoi_is_fully_testable_exhaustively() {
        let n = xor_as_aoi();
        let faults = enumerate_faults(&n);
        let rep = fault_simulate(&n, &exhaustive_patterns(2), &faults);
        assert_eq!(rep.undetected, vec![], "irredundant circuit: {rep}");
        assert_eq!(rep.coverage(), 1.0);
    }

    #[test]
    fn xor_aoi_needs_all_four_patterns() {
        // Hayes' result (paper Section 4): dropping any one of the four
        // patterns leaves some internal fault undetected.
        let n = xor_as_aoi();
        let faults = enumerate_faults(&n);
        let all = exhaustive_patterns(2);
        for skip in 0..4 {
            let subset: Vec<_> = all
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != skip)
                .map(|(_, p)| p.clone())
                .collect();
            let rep = fault_simulate(&n, &subset, &faults);
            assert!(
                !rep.undetected.is_empty(),
                "dropping pattern {skip} should lose coverage"
            );
        }
    }

    #[test]
    fn redundant_wire_is_undetectable() {
        // y = a·b + a·b  (duplicate cube): faults in the duplicate are
        // undetectable by any pattern.
        let mut n = Network::new("red");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_gate(GateKind::And, vec![a, b]);
        let g2 = n.add_gate(GateKind::And, vec![a, b]);
        let o = n.add_gate(GateKind::Or, vec![g1, g2]);
        n.add_output("y", o);
        let rep = fault_simulate(&n, &exhaustive_patterns(2), &enumerate_faults(&n));
        assert!(
            !rep.undetected.is_empty(),
            "duplicated cube must create untestable faults"
        );
        // specifically, g2's output stuck-at-0 changes nothing
        let f = Fault {
            site: FaultSite::Fanin(o, 1),
            stuck_at: false,
        };
        assert!(is_undetected(&n, &exhaustive_patterns(2), f));
    }

    #[test]
    fn pi_fault_detection() {
        let mut n = Network::new("buf");
        let a = n.add_input("a");
        n.add_output("y", a);
        let f0 = Fault {
            site: FaultSite::Output(a),
            stuck_at: false,
        };
        // only the pattern a=1 detects stuck-at-0
        assert!(is_undetected(&n, &[vec![false]], f0));
        assert!(!is_undetected(&n, &[vec![true]], f0));
    }

    #[test]
    fn report_formatting() {
        let n = xor_as_aoi();
        let rep = fault_simulate(&n, &exhaustive_patterns(2), &enumerate_faults(&n));
        let s = rep.to_string();
        assert!(s.contains("100.0%"), "{s}");
    }
}
