//! Content-addressed result cache for the synthesis stack.
//!
//! The cache key insight comes straight from the domain: an FPRM cover is
//! a canonical GF(2) polynomial of its cone, so a **canonical structural
//! hash of an output cone** is a sound content address for everything the
//! pipeline derives from that cone — the winning polarity vector, the FPRM
//! cube list, and the factored sub-network. Two structurally identical
//! cones (same gate DAG shape, input names and node ids ignored) hash to
//! the same key, so a long-lived daemon serving duplicate or
//! near-duplicate jobs can skip the polarity descent and factoring for
//! cones it has already solved.
//!
//! Three memo tiers share one byte-budgeted LRU store:
//!
//! * [`Tier::Polarity`] — the winning polarity vector, expressed over the
//!   cone's *canonical input order* (first-visit order of the DFS that
//!   hashed it), so it transfers between circuits that merely renumber
//!   their inputs;
//! * [`Tier::Cubes`] — the FPRM cube list under that polarity, again in
//!   canonical input numbering and in OFDD enumeration order;
//! * [`Tier::Factored`] — the factored expression of a cover, keyed by a
//!   content hash of the exact literal-cube list (factoring is a pure
//!   function of the cover, so the memo is exact).
//!
//! The store is a plain `Mutex` around a hash map plus an LRU index:
//! lookups are rare (a handful per synthesis job) and entries are small,
//! so contention is negligible next to the BDD work the hits avoid.
//! Hit/miss/evict totals are exposed via [`ResultCache::stats`] and the
//! synthesis pipeline re-emits its per-job counts in the existing gauge
//! vocabulary (`cache.hits`, `cache.misses`, `cache.evictions`,
//! `cache.bytes`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;
use xsynth_net::{GateKind, Network, NodeKind, SignalId};
use xsynth_trace::Histogram;

/// A 128-bit content address (FNV-1a over the canonical encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(u128);

impl Key {
    /// The raw 128-bit value (for diagnostics and tests).
    pub fn raw(self) -> u128 {
        self.0
    }

    /// Derives a new key by continuing the hash over `salt`. Callers use
    /// this to partition one content address by context — e.g. the same
    /// cone keyed separately per polarity-search mode, so entries computed
    /// under different options never alias.
    pub fn mix(self, salt: u64) -> Key {
        let mut h = Fnv128(self.0);
        h.word(salt);
        h.finish()
    }
}

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// Incremental FNV-1a-128 over a stream of `u64` words.
#[derive(Debug, Clone)]
struct Fnv128(u128);

impl Fnv128 {
    fn new() -> Self {
        Fnv128(FNV_OFFSET)
    }

    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= u128::from(byte);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(self) -> Key {
        Key(self.0)
    }
}

/// One output cone's content address plus the mapping that grounds it.
///
/// `support[slot]` is the primary-input index (the variable number) the
/// cone's `slot`-th canonical input corresponds to in the circuit the cone
/// was hashed from. Cached polarity bits and cube variables are expressed
/// in canonical slots; callers remap through `support` when seeding a
/// plan, which is what lets an entry populated by one circuit serve a
/// structurally identical cone in another.
#[derive(Debug, Clone)]
pub struct Cone {
    /// Canonical structural hash of the cone.
    pub key: Key,
    /// Canonical slot → primary-input index of the hashed circuit.
    pub support: Vec<usize>,
}

/// Stable per-kind codes for the canonical encoding. Input nodes use 1.
fn kind_code(kind: GateKind) -> u64 {
    match kind {
        GateKind::Const0 => 2,
        GateKind::Const1 => 3,
        GateKind::Buf => 4,
        GateKind::Not => 5,
        GateKind::And => 6,
        GateKind::Or => 7,
        GateKind::Nand => 8,
        GateKind::Nor => 9,
        GateKind::Xor => 10,
        GateKind::Xnor => 11,
    }
}

/// Computes the canonical structural hash of the cone rooted at `root`.
///
/// The cone is walked depth-first from the root, fanins in order; every
/// node is numbered by first visit, and the hash covers each node's kind
/// and the canonical numbers of its fanins. Node ids, node names and input
/// names never enter the encoding, so two cones built independently — even
/// in different circuits — hash equal exactly when their DAGs have the
/// same shape. Primary inputs are numbered in the same first-visit order;
/// the returned [`Cone::support`] records which circuit variable each
/// canonical slot stands for.
pub fn cone_of(net: &Network, root: SignalId) -> Cone {
    let var_of: HashMap<SignalId, usize> = net
        .inputs()
        .iter()
        .enumerate()
        .map(|(v, &sig)| (sig, v))
        .collect();
    let mut canon: HashMap<SignalId, u64> = HashMap::new();
    let mut visit_order: Vec<SignalId> = Vec::new();
    let mut support: Vec<usize> = Vec::new();
    let mut stack = vec![root];
    while let Some(sig) = stack.pop() {
        if canon.contains_key(&sig) {
            continue;
        }
        canon.insert(sig, visit_order.len() as u64);
        visit_order.push(sig);
        if let Some(&v) = var_of.get(&sig) {
            support.push(v);
        } else {
            // fanins pushed in reverse so they pop in declaration order
            for &f in net.fanins(sig).iter().rev() {
                stack.push(f);
            }
        }
    }
    let mut h = Fnv128::new();
    h.word(visit_order.len() as u64);
    for &sig in &visit_order {
        match net.kind(sig) {
            NodeKind::Input => h.word(1),
            NodeKind::Gate(k) => {
                h.word(kind_code(*k));
                let fanins = net.fanins(sig);
                h.word(fanins.len() as u64);
                for f in fanins {
                    h.word(canon[f]);
                }
            }
        }
    }
    Cone {
        key: h.finish(),
        support,
    }
}

/// Content hash of a cube list (each cube a sorted variable/literal list),
/// order-sensitive, salted — the factored tier salts with the
/// rule-application flag so covers factored under different options never
/// alias.
pub fn cubes_key(cubes: &[Vec<u32>], salt: u64) -> Key {
    let mut h = Fnv128::new();
    h.word(salt);
    h.word(cubes.len() as u64);
    for cube in cubes {
        h.word(cube.len() as u64);
        for &v in cube {
            h.word(u64::from(v));
        }
    }
    h.finish()
}

/// The memo tiers sharing one [`ResultCache`] store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Winning polarity vector of a cone (canonical input order).
    Polarity,
    /// FPRM cube list of a cone under its winning polarity.
    Cubes,
    /// Factored expression of an exact literal-cube cover.
    Factored,
}

impl Tier {
    fn code(self) -> u8 {
        match self {
            Tier::Polarity => 0,
            Tier::Cubes => 1,
            Tier::Factored => 2,
        }
    }

    /// Human-readable tier name (gauge suffixes, logs).
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Polarity => "polarity",
            Tier::Cubes => "cubes",
            Tier::Factored => "factored",
        }
    }
}

/// A factored GF(2) expression in cache-neutral form, mirroring the
/// synthesis crate's `Gexpr` shape one-to-one so the conversion is
/// lossless. Literal ids are stored verbatim: the factored tier is keyed
/// by the exact cube list, so the ids mean the same thing on both sides of
/// the memo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactoredExpr {
    /// Constant zero.
    Zero,
    /// Constant one.
    One,
    /// A literal id.
    Lit(u32),
    /// Complement.
    Not(Box<FactoredExpr>),
    /// Product.
    And(Vec<FactoredExpr>),
    /// Disjunction.
    Or(Vec<FactoredExpr>),
    /// GF(2) sum.
    Xor(Vec<FactoredExpr>),
}

impl FactoredExpr {
    fn bytes(&self) -> usize {
        let children: usize = match self {
            FactoredExpr::Zero | FactoredExpr::One | FactoredExpr::Lit(_) => 0,
            FactoredExpr::Not(x) => x.bytes(),
            FactoredExpr::And(xs) | FactoredExpr::Or(xs) | FactoredExpr::Xor(xs) => {
                xs.iter().map(FactoredExpr::bytes).sum()
            }
        };
        32 + children
    }
}

/// One cached value. The variants correspond to the [`Tier`]s; a lookup
/// that returns the wrong variant for its tier is treated as a miss by the
/// callers (it cannot happen through this API, which keys by tier).
#[derive(Debug, Clone)]
pub enum CacheEntry {
    /// Polarity bits in canonical slot order (`true` = positive).
    Polarity(Vec<bool>),
    /// FPRM cube list in canonical numbering and enumeration order, plus
    /// its cube count (kept even when the list itself was too large to
    /// store, so warm runs can skip the recount).
    Cubes {
        /// Number of FPRM cubes under the winning polarity.
        count: u64,
        /// The cubes (canonical variable slots), empty when elided.
        cubes: Vec<Vec<u32>>,
    },
    /// Factored expression of an exact cover.
    Factored(FactoredExpr),
}

impl CacheEntry {
    fn bytes(&self) -> usize {
        match self {
            CacheEntry::Polarity(bits) => 32 + bits.len(),
            CacheEntry::Cubes { cubes, .. } => {
                48 + cubes.iter().map(|c| 24 + 4 * c.len()).sum::<usize>()
            }
            CacheEntry::Factored(fx) => fx.bytes(),
        }
    }
}

/// Aggregate statistics of one [`ResultCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted by the byte-budget LRU.
    pub evictions: u64,
    /// Entries inserted over the cache's lifetime.
    pub insertions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Approximate resident bytes.
    pub bytes: u64,
    /// The byte budget evictions keep the cache under.
    pub budget: u64,
}

#[derive(Debug)]
struct Slot {
    entry: CacheEntry,
    bytes: usize,
    stamp: u64,
}

#[derive(Debug)]
struct Inner {
    map: HashMap<(u8, Key), Slot>,
    lru: BTreeMap<u64, (u8, Key)>,
    next_stamp: u64,
    bytes: usize,
    budget: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    insertions: u64,
    lookup_seconds: Histogram,
}

/// A shared, byte-budgeted, content-addressed memo store.
///
/// Cloning is O(1): clones address the same store, so one cache can be
/// shared across every worker of a long-lived engine. All methods take
/// `&self`.
#[derive(Debug, Clone)]
pub struct ResultCache {
    inner: Arc<Mutex<Inner>>,
}

/// Default byte budget: plenty for thousands of typical cones while
/// keeping a runaway daemon bounded.
pub const DEFAULT_CACHE_BYTES: usize = 64 << 20;

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::new(DEFAULT_CACHE_BYTES)
    }
}

impl ResultCache {
    /// Creates a cache bounded to approximately `budget_bytes` resident
    /// bytes (entries are evicted least-recently-used past the budget).
    ///
    /// A budget of **zero disables the cache entirely**: every lookup and
    /// store becomes a no-op that touches no statistics, rather than a
    /// degenerate LRU that counts misses and evicts each entry on insert.
    /// `serve --cache-mb 0` relies on this to run cacheless.
    pub fn new(budget_bytes: usize) -> ResultCache {
        ResultCache {
            inner: Arc::new(Mutex::new(Inner {
                map: HashMap::new(),
                lru: BTreeMap::new(),
                next_stamp: 0,
                bytes: 0,
                budget: budget_bytes,
                hits: 0,
                misses: 0,
                evictions: 0,
                insertions: 0,
                lookup_seconds: Histogram::new(),
            })),
        }
    }

    /// False when the cache was built with a zero budget (lookups and
    /// stores are bypassed entirely).
    pub fn enabled(&self) -> bool {
        self.lock().budget > 0
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up `key` in `tier`, refreshing its LRU position. Returns a
    /// clone of the entry (entries are small by construction). The time
    /// spent under the store lock is recorded into the lookup-latency
    /// histogram ([`ResultCache::lookup_hist`]). On a disabled cache this
    /// is a statistics-free no-op.
    pub fn get(&self, tier: Tier, key: Key) -> Option<CacheEntry> {
        let started = Instant::now();
        let mut inner = self.lock();
        if inner.budget == 0 {
            return None;
        }
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        let found = match inner.map.get_mut(&(tier.code(), key)) {
            Some(slot) => {
                let old = slot.stamp;
                slot.stamp = stamp;
                let entry = slot.entry.clone();
                inner.lru.remove(&old);
                inner.lru.insert(stamp, (tier.code(), key));
                inner.hits += 1;
                Some(entry)
            }
            None => {
                inner.misses += 1;
                None
            }
        };
        let elapsed = started.elapsed().as_secs_f64();
        inner.lookup_seconds.observe(elapsed);
        found
    }

    /// Inserts (or refreshes) `key` in `tier`, then evicts
    /// least-recently-used entries until the store fits its byte budget.
    /// An entry larger than the whole budget is not stored at all.
    pub fn put(&self, tier: Tier, key: Key, entry: CacheEntry) {
        let bytes = entry.bytes();
        let mut inner = self.lock();
        if inner.budget == 0 || bytes > inner.budget {
            return;
        }
        let stamp = inner.next_stamp;
        inner.next_stamp += 1;
        if let Some(old) = inner.map.insert(
            (tier.code(), key),
            Slot {
                entry,
                bytes,
                stamp,
            },
        ) {
            inner.lru.remove(&old.stamp);
            inner.bytes -= old.bytes;
        } else {
            inner.insertions += 1;
        }
        inner.lru.insert(stamp, (tier.code(), key));
        inner.bytes += bytes;
        while inner.bytes > inner.budget {
            let Some((&victim_stamp, &victim_key)) = inner.lru.iter().next() else {
                break;
            };
            if victim_stamp == stamp {
                break; // never evict the entry just inserted
            }
            inner.lru.remove(&victim_stamp);
            if let Some(slot) = inner.map.remove(&victim_key) {
                inner.bytes -= slot.bytes;
                inner.evictions += 1;
            }
        }
    }

    /// Lifetime statistics plus the current resident footprint.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            insertions: inner.insertions,
            entries: inner.map.len() as u64,
            bytes: inner.bytes as u64,
            budget: inner.budget as u64,
        }
    }

    /// Lifetime histogram of per-lookup wall-clock latency in seconds
    /// (one sample per [`ResultCache::get`] on an enabled cache). Timing
    /// is schedule-dependent, so the daemon exposes this only as a
    /// metrics-exposition histogram, never as determinism-checked data.
    pub fn lookup_hist(&self) -> Histogram {
        self.lock().lookup_seconds.clone()
    }

    /// Drops every entry (statistics are kept).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.lru.clear();
        inner.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsynth_net::{GateKind, Network};

    fn xor_cone(name: &str, in_a: &str, in_b: &str) -> Network {
        let mut net = Network::new(name);
        let a = net.add_input(in_a);
        let b = net.add_input(in_b);
        let x = net.add_gate(GateKind::Xor, vec![a, b]);
        let y = net.add_gate(GateKind::And, vec![x, a]);
        net.add_output("f", y);
        net
    }

    #[test]
    fn structurally_equal_cones_hash_equal() {
        let n1 = xor_cone("one", "a", "b");
        let n2 = xor_cone("two", "p", "q");
        let c1 = cone_of(&n1, n1.outputs()[0].1);
        let c2 = cone_of(&n2, n2.outputs()[0].1);
        assert_eq!(c1.key, c2.key);
        assert_eq!(c1.support, c2.support);
    }

    #[test]
    fn gate_kind_changes_the_hash() {
        let n1 = xor_cone("one", "a", "b");
        let mut n2 = Network::new("two");
        let a = n2.add_input("a");
        let b = n2.add_input("b");
        let x = n2.add_gate(GateKind::Or, vec![a, b]);
        let y = n2.add_gate(GateKind::And, vec![x, a]);
        n2.add_output("f", y);
        let c1 = cone_of(&n1, n1.outputs()[0].1);
        let c2 = cone_of(&n2, n2.outputs()[0].1);
        assert_ne!(c1.key, c2.key);
    }

    #[test]
    fn fanin_order_is_part_of_the_shape() {
        let mut n1 = Network::new("one");
        let a = n1.add_input("a");
        let b = n1.add_input("b");
        let x = n1.add_gate(GateKind::And, vec![a, b]);
        let g = n1.add_gate(GateKind::Xor, vec![x, a]);
        n1.add_output("f", g);
        let mut n2 = Network::new("two");
        let a = n2.add_input("a");
        let b = n2.add_input("b");
        let x = n2.add_gate(GateKind::And, vec![b, a]);
        let g = n2.add_gate(GateKind::Xor, vec![x, a]);
        n2.add_output("f", g);
        let c1 = cone_of(&n1, n1.outputs()[0].1);
        let c2 = cone_of(&n2, n2.outputs()[0].1);
        assert_ne!(c1.key, c2.key, "swapped fanins are a different shape");
    }

    #[test]
    fn support_is_first_visit_order() {
        let mut net = Network::new("n");
        let a = net.add_input("a"); // var 0
        let b = net.add_input("b"); // var 1
        let c = net.add_input("c"); // var 2
        let g = net.add_gate(GateKind::And, vec![c, a, b]);
        net.add_output("f", g);
        let cone = cone_of(&net, net.outputs()[0].1);
        assert_eq!(cone.support, vec![2, 0, 1]);
    }

    #[test]
    fn cubes_key_is_order_and_salt_sensitive() {
        let cubes = vec![vec![0u32, 2], vec![1]];
        let swapped = vec![vec![1u32], vec![0, 2]];
        assert_ne!(cubes_key(&cubes, 0), cubes_key(&swapped, 0));
        assert_ne!(cubes_key(&cubes, 0), cubes_key(&cubes, 1));
        assert_eq!(cubes_key(&cubes, 7), cubes_key(&cubes.clone(), 7));
    }

    #[test]
    fn get_put_roundtrip_and_stats() {
        let cache = ResultCache::new(1 << 20);
        let key = cubes_key(&[vec![0]], 0);
        assert!(cache.get(Tier::Polarity, key).is_none());
        cache.put(Tier::Polarity, key, CacheEntry::Polarity(vec![true, false]));
        match cache.get(Tier::Polarity, key) {
            Some(CacheEntry::Polarity(bits)) => assert_eq!(bits, vec![true, false]),
            other => panic!("unexpected entry: {other:?}"),
        }
        // tiers are separate namespaces over the same key
        assert!(cache.get(Tier::Cubes, key).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 2, 1));
        assert_eq!(s.entries, 1);
        assert!(s.bytes > 0);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        // each polarity entry costs 32 + len bytes; budget fits two
        let cache = ResultCache::new(100);
        let keys: Vec<Key> = (0..3u32).map(|i| cubes_key(&[vec![i]], 0)).collect();
        cache.put(Tier::Polarity, keys[0], CacheEntry::Polarity(vec![true; 8]));
        cache.put(Tier::Polarity, keys[1], CacheEntry::Polarity(vec![true; 8]));
        // touch key 0 so key 1 is the LRU victim
        assert!(cache.get(Tier::Polarity, keys[0]).is_some());
        cache.put(Tier::Polarity, keys[2], CacheEntry::Polarity(vec![true; 8]));
        assert!(cache.get(Tier::Polarity, keys[0]).is_some());
        assert!(cache.get(Tier::Polarity, keys[1]).is_none(), "LRU evicted");
        assert!(cache.get(Tier::Polarity, keys[2]).is_some());
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(s.bytes <= s.budget);
    }

    #[test]
    fn zero_budget_disables_the_cache_entirely() {
        let cache = ResultCache::new(0);
        assert!(!cache.enabled());
        let key = cubes_key(&[vec![0]], 0);
        cache.put(Tier::Polarity, key, CacheEntry::Polarity(vec![true]));
        assert!(cache.get(Tier::Polarity, key).is_none());
        let s = cache.stats();
        // a disabled cache is a statistics-free bypass, not a zero-budget
        // LRU that counts misses and evicts every insert
        assert_eq!(
            (
                s.hits,
                s.misses,
                s.insertions,
                s.evictions,
                s.entries,
                s.bytes
            ),
            (0, 0, 0, 0, 0, 0)
        );
        assert_eq!(s.budget, 0);
        assert!(cache.lookup_hist().is_empty());
        assert!(ResultCache::new(64).enabled());
    }

    #[test]
    fn lookups_record_latency_samples() {
        let cache = ResultCache::new(1024);
        let key = cubes_key(&[vec![0]], 0);
        cache.put(Tier::Polarity, key, CacheEntry::Polarity(vec![true]));
        assert!(cache.get(Tier::Polarity, key).is_some());
        assert!(cache
            .get(Tier::Polarity, cubes_key(&[vec![9]], 0))
            .is_none());
        let h = cache.lookup_hist();
        assert_eq!(h.count(), 2, "one sample per get, hit or miss");
    }

    #[test]
    fn oversized_entries_are_not_stored() {
        let cache = ResultCache::new(64);
        let key = cubes_key(&[vec![0]], 0);
        cache.put(
            Tier::Cubes,
            key,
            CacheEntry::Cubes {
                count: 4,
                cubes: vec![vec![0; 64]; 4],
            },
        );
        assert!(cache.get(Tier::Cubes, key).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn clear_keeps_statistics() {
        let cache = ResultCache::new(1 << 20);
        let key = cubes_key(&[vec![3]], 0);
        cache.put(Tier::Factored, key, CacheEntry::Factored(FactoredExpr::One));
        assert!(cache.get(Tier::Factored, key).is_some());
        cache.clear();
        assert!(cache.get(Tier::Factored, key).is_none());
        let s = cache.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.bytes, 0);
        assert_eq!(s.insertions, 1);
    }
}
