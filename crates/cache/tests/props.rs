//! Property tests for the content-address layer: structural cone hashing
//! must identify exactly structure, and the cube-list hash must be
//! sensitive to any single-cube mutation.

use proptest::prelude::*;
use xsynth_cache::{cone_of, cubes_key};
use xsynth_net::{GateKind, Network, SignalId};

const KINDS: [GateKind; 6] = [
    GateKind::And,
    GateKind::Or,
    GateKind::Xor,
    GateKind::Nand,
    GateKind::Nor,
    GateKind::Xnor,
];

/// A reproducible random DAG: `picks[i]` chooses the kind and the second
/// fanin of gate `i`; the first fanin is always the newest signal, so the
/// gates form a chain and every one of them lies in the root's cone.
fn build_net(name: &str, input_prefix: &str, n_inputs: usize, picks: &[(u8, u8, u8)]) -> Network {
    let mut net = Network::new(name);
    let mut sigs: Vec<SignalId> = (0..n_inputs)
        .map(|i| net.add_input(format!("{input_prefix}{i}")))
        .collect();
    for &(k, _, b) in picks {
        let kind = KINDS[k as usize % KINDS.len()];
        let fa = *sigs.last().expect("inputs exist");
        let fb = sigs[b as usize % sigs.len()];
        let g = net.add_gate(kind, vec![fa, fb]);
        sigs.push(g);
    }
    let root = *sigs.last().expect("at least one signal");
    net.add_output("f", root);
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structurally equal cones hash equal even when every name and the
    /// declaration interleaving differ between the two circuits.
    #[test]
    fn structurally_equal_cones_hash_equal(
        n_inputs in 1usize..6,
        picks in proptest::collection::vec((0u8..6, 0u8..8, 0u8..8), 1..12),
    ) {
        let n1 = build_net("left", "a", n_inputs, &picks);
        let n2 = build_net("right", "zz", n_inputs, &picks);
        let c1 = cone_of(&n1, n1.outputs()[0].1);
        let c2 = cone_of(&n2, n2.outputs()[0].1);
        prop_assert_eq!(c1.key, c2.key);
        prop_assert_eq!(c1.support, c2.support);
    }

    /// Changing one gate's kind changes the cone hash.
    #[test]
    fn gate_kind_mutation_changes_cone_hash(
        n_inputs in 1usize..6,
        picks in proptest::collection::vec((0u8..6, 0u8..8, 0u8..8), 1..12),
        which in 0usize..12,
        bump in 1u8..6,
    ) {
        let idx = which % picks.len();
        let mut mutated = picks.clone();
        mutated[idx].0 = (mutated[idx].0 + bump) % 6;
        // the mutation must actually change the resolved kind
        prop_assume!(mutated[idx].0 % 6 != picks[idx].0 % 6);
        let n1 = build_net("left", "a", n_inputs, &picks);
        let n2 = build_net("right", "a", n_inputs, &mutated);
        let c1 = cone_of(&n1, n1.outputs()[0].1);
        let c2 = cone_of(&n2, n2.outputs()[0].1);
        prop_assert_ne!(c1.key, c2.key);
    }

    /// Any single-cube mutation — dropping a cube, duplicating a cube, or
    /// flipping one variable inside one cube — changes the cube-list hash.
    #[test]
    fn single_cube_mutation_changes_cubes_key(
        cubes in proptest::collection::vec(
            proptest::collection::vec(0u32..16, 1..5), 1..8),
        which in 0usize..8,
        var_bump in 1u32..16,
    ) {
        let base = cubes_key(&cubes, 0);
        let idx = which % cubes.len();

        let mut dropped = cubes.clone();
        dropped.remove(idx);
        prop_assert_ne!(base, cubes_key(&dropped, 0));

        let mut doubled = cubes.clone();
        doubled.insert(idx, cubes[idx].clone());
        prop_assert_ne!(base, cubes_key(&doubled, 0));

        let mut flipped = cubes.clone();
        let vi = which % flipped[idx].len();
        flipped[idx][vi] = (flipped[idx][vi] + var_bump) % 16;
        prop_assume!(flipped[idx][vi] != cubes[idx][vi]);
        prop_assert_ne!(base, cubes_key(&flipped, 0));
    }
}
