//! Benchmark harness reproducing the paper's evaluation (Table 2 and the
//! worked examples).
//!
//! The harness runs two flows over the rebuilt IWLS'91 suite:
//!
//! * the **baseline** — the SIS-style SOP script from [`xsynth_sop`]
//!   (standing in for the best of `rugged`/`boolean`/`algebraic`), and
//! * **ours** — the paper's FPRM flow from [`xsynth_core`],
//!
//! then measures literals before mapping (two-input AND/OR form, XOR = 3
//! gates), gate/literal counts after technology mapping onto the mcnc-like
//! library, the `power_estimate` model, wall-clock time (split into
//! synthesis / mapping / verification), and functional equivalence of
//! every result against the specification.
//!
//! All three binaries (`table2`, `par_speedup`, `flow_report`) report
//! from one measurement path, [`measure_flow`], which also produces the
//! machine-readable [`telemetry::BenchRecord`] persisted as
//! `BENCH_*.json` and gated in CI by `bench_compare` (see [`compare`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compare;
pub mod telemetry;

use std::time::Instant;
use xsynth_circuits::{registry, Benchmark};
use xsynth_core::{
    phase, synthesize, Budget, EquivChecker, SynthOptions, SynthOutcome, SynthReport,
};
use xsynth_map::{map_network, Library};
use xsynth_net::Network;
use xsynth_sim::power_estimate;
use xsynth_sop::{script_algebraic, ScriptOptions};

pub use telemetry::{BenchRecord, BenchSuite, VerifyStatus, MIN_SCHEMA_VERSION, SCHEMA_VERSION};

/// BDD node cap for benchmark verification. Generous enough that every
/// registry circuit verifies exactly today; a pathological case trips it
/// and degrades to fixed-seed simulation (`verified: "downgraded"`)
/// instead of stalling the whole sweep.
pub const VERIFY_NODE_CAP: usize = 4_000_000;

/// The quick registry subset used by the CI regression gate and the
/// committed `BENCH_baseline.json`: small enough to run with repetitions
/// in seconds, broad enough to cover both granularities, XOR-heavy and
/// SOP-friendly circuits.
pub const QUICK_SUBSET: [&str; 8] = [
    "z4ml", "f2", "majority", "t481", "rd53", "cm82a", "adr4", "mlp4",
];

/// Metrics of one synthesized implementation.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Two-input AND/OR gates before mapping.
    pub premap_gates: usize,
    /// Literals before mapping (2 × gates — the paper's accounting).
    pub premap_lits: usize,
    /// Mapped cell count.
    pub map_gates: usize,
    /// Mapped literal (pin) count.
    pub map_lits: usize,
    /// Mapped area.
    pub map_area: f64,
    /// Normalized switching power of the mapped netlist.
    pub power: f64,
    /// Synthesis wall-clock seconds (the flow itself).
    pub synth_seconds: f64,
    /// Technology-mapping + power-model wall-clock seconds.
    pub map_seconds: f64,
    /// Equivalence-check wall-clock seconds.
    pub verify_seconds: f64,
    /// Equivalence-check outcome against the specification.
    pub verified: VerifyStatus,
    /// The synthesis report with per-phase timings and polarity-search
    /// counters (`None` for the SOP baseline, which has no FPRM phases).
    pub report: Option<SynthReport>,
}

impl FlowResult {
    /// Total wall-clock attributed to this flow (synth + map + verify).
    pub fn total_seconds(&self) -> f64 {
        self.synth_seconds + self.map_seconds + self.verify_seconds
    }
}

/// Runs one synthesized network through mapping/power/verification,
/// timing each stage separately. Verification runs under `budget` via
/// `try_check`, so a blowup degrades to simulation instead of stalling.
fn evaluate(
    spec: &Network,
    result: &Network,
    lib: &Library,
    synth_seconds: f64,
    budget: &Budget,
) -> FlowResult {
    let (premap_gates, premap_lits) = result.two_input_cost();
    let t_map = Instant::now();
    let mapped = map_network(result, lib);
    let mapped_net = mapped.to_network(lib);
    let power = power_estimate(&mapped_net).total;
    let map_seconds = t_map.elapsed().as_secs_f64();
    let t_verify = Instant::now();
    let mut checker = EquivChecker::with_budget(spec, budget);
    let verified = match checker.try_check(result) {
        Ok(true) if checker.downgraded() => VerifyStatus::Downgraded,
        Ok(true) => VerifyStatus::Verified,
        _ => VerifyStatus::Failed,
    };
    let verify_seconds = t_verify.elapsed().as_secs_f64();
    FlowResult {
        premap_gates,
        premap_lits,
        map_gates: mapped.num_gates(),
        map_lits: mapped.num_literals(),
        map_area: mapped.area(),
        power,
        synth_seconds,
        map_seconds,
        verify_seconds,
        verified,
        report: None,
    }
}

/// Which flow [`measure_flow`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// The paper's FPRM pipeline ([`xsynth_core::synthesize`]).
    Fprm,
    /// The SIS-style SOP baseline ([`xsynth_sop::script_algebraic`]).
    Sop,
}

/// Options for the shared measurement path.
#[derive(Debug, Clone)]
pub struct MeasureOptions {
    /// Timed synthesis repetitions (median/min are taken over these).
    pub runs: usize,
    /// FPRM flow options.
    pub synth: SynthOptions,
    /// SOP baseline options.
    pub script: ScriptOptions,
    /// Verification budget (see [`VERIFY_NODE_CAP`]).
    pub verify_budget: Budget,
}

impl Default for MeasureOptions {
    fn default() -> Self {
        MeasureOptions {
            runs: 1,
            synth: SynthOptions::default(),
            script: ScriptOptions::default(),
            verify_budget: Budget::default().bdd_node_cap(Some(VERIFY_NODE_CAP)),
        }
    }
}

/// One measured flow: the human-facing [`FlowResult`] plus the
/// machine-readable [`BenchRecord`] and the synthesized network itself.
#[derive(Debug, Clone)]
pub struct Measured {
    /// The telemetry record (persisted in `BENCH_*.json`).
    pub record: BenchRecord,
    /// The human-facing metrics (drives `render_table2`).
    pub flow: FlowResult,
    /// The synthesized network of the recorded (last) run.
    pub network: Network,
}

/// The shared measurement path: synthesizes `spec` `opts.runs` times
/// (keeping the last result — all runs are deterministic), evaluates it
/// once, and assembles the [`BenchRecord`] with median/min wall-clock,
/// per-phase durations, counter totals, trace gauge maxima, and the
/// process peak-RSS gauge.
pub fn measure_flow(
    name: &str,
    spec: &Network,
    flow: Flow,
    flow_label: &str,
    lib: &Library,
    opts: &MeasureOptions,
) -> Measured {
    let runs = opts.runs.max(1);
    // Scope the peak-RSS gauge to this measurement. The scope guard is the
    // daemon-safe form of the old process-wide reset: the outermost live
    // scope resets the high-water mark, overlapping measurements (serve
    // jobs in flight) observe shared upper bounds instead of truncating
    // each other mid-read.
    let _mem_scope = xsynth_trace::mem::MemScope::begin();
    let mut times = Vec::with_capacity(runs);
    let mut last: Option<(Network, Option<SynthReport>)> = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        let (network, report) = match flow {
            Flow::Fprm => {
                let SynthOutcome { network, report } = synthesize(spec, &opts.synth);
                (network, Some(report))
            }
            Flow::Sop => (script_algebraic(spec, &opts.script), None),
        };
        times.push(t0.elapsed().as_secs_f64());
        last = Some((network, report));
    }
    let (network, report) = last.expect("runs >= 1");
    record_from_run(
        name,
        flow_label,
        spec,
        network,
        report,
        &times,
        lib,
        &opts.verify_budget,
    )
}

/// Assembles a [`Measured`] from an already-synthesized network — the
/// tail of [`measure_flow`], also used by the CLI's `--bench-json` so the
/// record describes the exact run the CLI performed.
#[allow(clippy::too_many_arguments)]
pub fn record_from_run(
    name: &str,
    flow_label: &str,
    spec: &Network,
    network: Network,
    report: Option<SynthReport>,
    synth_times: &[f64],
    lib: &Library,
    verify_budget: &Budget,
) -> Measured {
    let synth_seconds = synth_times.last().copied().unwrap_or(0.0);
    let mut fr = evaluate(spec, &network, lib, synth_seconds, verify_budget);
    fr.report = report;
    let mut record = BenchRecord {
        name: name.to_string(),
        flow: flow_label.to_string(),
        premap_gates: fr.premap_gates as u64,
        premap_lits: fr.premap_lits as u64,
        map_gates: fr.map_gates as u64,
        map_lits: fr.map_lits as u64,
        map_area: fr.map_area,
        power: fr.power,
        verified: fr.verified,
        salvaged: fr.report.as_ref().map_or(0, |r| r.salvaged.len() as u64),
        runs: synth_times.len() as u64,
        median_seconds: median(synth_times),
        min_seconds: synth_times.iter().copied().fold(f64::INFINITY, f64::min),
        synth_seconds,
        latency_p50_seconds: latency_quantile(synth_times, 0.50),
        latency_p99_seconds: latency_quantile(synth_times, 0.99),
        map_seconds: fr.map_seconds,
        verify_seconds: fr.verify_seconds,
        phases: Default::default(),
        counters: Default::default(),
        gauges: Default::default(),
    };
    if !record.min_seconds.is_finite() {
        record.min_seconds = 0.0;
    }
    if let Some(r) = &fr.report {
        for p in &r.profile.phases {
            record
                .phases
                .insert(p.name.clone(), p.duration.as_secs_f64());
        }
        record.counters = r.trace.counter_totals();
        record.gauges = r.trace.gauge_maxima();
    }
    // sampled by the harness, not the pipeline trace: peak RSS is
    // process-wide and nondeterministic, so it must never enter the trace
    // the parallel≡sequential tests compare
    if let Some(kb) = xsynth_trace::mem::peak_rss_kb() {
        record
            .gauges
            .insert("mem.peak_rss_kb".to_string(), kb as f64);
    }
    Measured {
        record,
        flow: fr,
        network,
    }
}

/// Latency percentile via the shared fixed-bucket log-scale histogram
/// (`xsynth_trace::Histogram`), so the bench schema's percentile fields
/// use the exact same estimator the serve daemon's `metrics` exposition
/// derives p50/p99 from: the upper bound of the bucket holding the rank.
fn latency_quantile(xs: &[f64], q: f64) -> f64 {
    let mut hist = xsynth_trace::Histogram::new();
    for &x in xs {
        hist.observe(x);
    }
    hist.quantile(q)
}

fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Runs the paper's FPRM flow on `spec` and evaluates it.
pub fn run_fprm_flow(spec: &Network, opts: &SynthOptions, lib: &Library) -> FlowResult {
    let m_opts = MeasureOptions {
        synth: opts.clone(),
        ..Default::default()
    };
    measure_flow("adhoc", spec, Flow::Fprm, "fprm", lib, &m_opts).flow
}

/// Runs the SIS-style SOP baseline on `spec` and evaluates it.
pub fn run_sop_flow(spec: &Network, opts: &ScriptOptions, lib: &Library) -> FlowResult {
    let m_opts = MeasureOptions {
        script: opts.clone(),
        ..Default::default()
    };
    measure_flow("adhoc", spec, Flow::Sop, "sop", lib, &m_opts).flow
}

/// Renders a one-line phase-timing breakdown from a flow's report:
/// `fprm/factor/share/redund` milliseconds, plus the polarity-search
/// counters. Returns `None` when the flow carries no report.
pub fn render_phases(fr: &FlowResult) -> Option<String> {
    let r = fr.report.as_ref()?;
    let p = &r.profile;
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    Some(format!(
        "fprm {:.1}ms factor {:.1}ms share {:.1}ms redund {:.1}ms (polarity: {} eval, {} memo)",
        ms(p.duration(phase::FPRM)),
        ms(p.duration(phase::FACTORING)),
        ms(p.duration(phase::SHARING)),
        ms(p.duration(phase::REDUNDANCY)),
        r.polarity_search.candidates_evaluated,
        r.polarity_search.memo_hits,
    ))
}

/// One completed Table 2 row: both flows on one benchmark.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// The benchmark (with the paper's reference numbers).
    pub bench: Benchmark,
    /// Baseline (SIS-style) result.
    pub sop: FlowResult,
    /// FPRM-flow result.
    pub fprm: FlowResult,
}

impl Table2Row {
    /// Percentage improvement of mapped literals (positive = FPRM wins),
    /// the paper's `improve%lits` column.
    pub fn improve_lits(&self) -> f64 {
        percent(self.sop.map_lits as f64, self.fprm.map_lits as f64)
    }

    /// Percentage improvement of estimated power.
    pub fn improve_power(&self) -> f64 {
        percent(self.sop.power, self.fprm.power)
    }
}

fn percent(base: f64, ours: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        100.0 * (base - ours) / base
    }
}

/// Runs both flows over the registry (optionally restricted to names in
/// `filter`), returning the human-facing rows *and* the telemetry suite
/// from the same measurements.
pub fn run_suite(
    filter: Option<&[&str]>,
    suite_label: &str,
    opts: &MeasureOptions,
) -> (Vec<Table2Row>, BenchSuite) {
    let lib = Library::mcnc();
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for bench in registry() {
        if let Some(f) = filter {
            if !f.contains(&bench.name) {
                continue;
            }
        }
        let spec = xsynth_circuits::build(bench.name).expect("registered circuit builds");
        let sop = measure_flow(bench.name, &spec, Flow::Sop, "sop", &lib, opts);
        let fprm = measure_flow(bench.name, &spec, Flow::Fprm, "fprm", &lib, opts);
        records.push(sop.record);
        records.push(fprm.record);
        rows.push(Table2Row {
            bench,
            sop: sop.flow,
            fprm: fprm.flow,
        });
    }
    (
        rows,
        BenchSuite {
            suite: suite_label.to_string(),
            records,
        },
    )
}

/// Runs the full Table 2 experiment over the registry (optionally
/// restricted to names in `filter`).
pub fn run_table2(filter: Option<&[&str]>) -> Vec<Table2Row> {
    run_suite(filter, "table2", &MeasureOptions::default()).0
}

/// Renders rows in the paper's Table 2 layout, with subtotals and the
/// paper's reference improvements alongside.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<10} {:>7} | {:>6} {:>7} | {:>6} {:>7} | {:>5} {:>5} | {:>5} {:>5} | {:>6} {:>6} | {:>6} {:>6} | {}\n",
        "circuit", "I/O", "base", "t(s)", "ours", "t(s)", "bGate", "bLits", "oGate", "oLits",
        "impr%L", "papr%L", "impr%P", "papr%P", "ok"
    ));
    s.push_str(&"-".repeat(132));
    s.push('\n');
    let emit_group = |s: &mut String, rows: &[&Table2Row], label: &str| {
        let sum = |f: &dyn Fn(&Table2Row) -> f64| rows.iter().map(|r| f(r)).sum::<f64>();
        let b_lits = sum(&|r| r.sop.map_lits as f64);
        let o_lits = sum(&|r| r.fprm.map_lits as f64);
        let b_pow = sum(&|r| r.sop.power);
        let o_pow = sum(&|r| r.fprm.power);
        let avg_l = rows.iter().map(|r| r.improve_lits()).sum::<f64>() / rows.len().max(1) as f64;
        let avg_p = rows.iter().map(|r| r.improve_power()).sum::<f64>() / rows.len().max(1) as f64;
        s.push_str(&format!(
            "{:<10} {:>7} | {:>6.0} {:>7.2} | {:>6.0} {:>7.2} | {:>5.0} {:>5.0} | {:>5.0} {:>5.0} | {:>6.1} {:>6} | {:>6.1} {:>6} | (avg impr {:.1}%L {:.1}%P)\n",
            label,
            rows.len(),
            sum(&|r| r.sop.premap_lits as f64),
            sum(&|r| r.sop.synth_seconds),
            sum(&|r| r.fprm.premap_lits as f64),
            sum(&|r| r.fprm.synth_seconds),
            sum(&|r| r.sop.map_gates as f64),
            b_lits,
            sum(&|r| r.fprm.map_gates as f64),
            o_lits,
            percent(b_lits, o_lits),
            "",
            percent(b_pow, o_pow),
            "",
            avg_l,
            avg_p,
        ));
    };
    for r in rows {
        let flag = if r.bench.substituted { "~" } else { " " };
        s.push_str(&format!(
            "{:<9}{} {:>3}/{:<3} | {:>6} {:>7.2} | {:>6} {:>7.2} | {:>5} {:>5} | {:>5} {:>5} | {:>6.0} {:>6} | {:>6.0} {:>6} | {}{}\n",
            r.bench.name,
            flag,
            r.bench.io.0,
            r.bench.io.1,
            r.sop.premap_lits,
            r.sop.synth_seconds,
            r.fprm.premap_lits,
            r.fprm.synth_seconds,
            r.sop.map_gates,
            r.sop.map_lits,
            r.fprm.map_gates,
            r.fprm.map_lits,
            r.improve_lits(),
            r.bench.paper.improve_lits,
            r.improve_power(),
            r.bench.paper.improve_power,
            match r.sop.verified {
                VerifyStatus::Verified => "",
                VerifyStatus::Downgraded => "base~ ",
                VerifyStatus::Failed => "BASE-UNVERIFIED ",
            },
            match r.fprm.verified {
                VerifyStatus::Verified => "ok",
                VerifyStatus::Downgraded => "ok~ (sim only)",
                VerifyStatus::Failed => "FPRM-UNVERIFIED",
            },
        ));
    }
    s.push_str(&"-".repeat(132));
    s.push('\n');
    let arith: Vec<&Table2Row> = rows.iter().filter(|r| r.bench.arithmetic).collect();
    let all: Vec<&Table2Row> = rows.iter().collect();
    if !arith.is_empty() {
        emit_group(&mut s, &arith, "Σ arith");
    }
    emit_group(&mut s, &all, "Σ all");
    s.push_str("~ = substituted synthetic circuit (original MCNC function not public)\n");
    s.push_str("\nper-phase timings of the FPRM flow (from SynthReport):\n");
    for r in rows {
        if let Some(phases) = render_phases(&r.fprm) {
            s.push_str(&format!("{:<10} {phases}\n", r.bench.name));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_small_circuits() {
        let rows = run_table2(Some(&["z4ml", "f2", "majority"]));
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(
                r.sop.verified,
                VerifyStatus::Verified,
                "{} baseline unverified",
                r.bench.name
            );
            assert_eq!(
                r.fprm.verified,
                VerifyStatus::Verified,
                "{} fprm unverified",
                r.bench.name
            );
            assert!(r.fprm.map_lits > 0);
            assert!(r.fprm.map_seconds >= 0.0 && r.fprm.verify_seconds >= 0.0);
        }
        let text = render_table2(&rows);
        assert!(text.contains("z4ml"));
        assert!(text.contains("Σ all"));
    }

    #[test]
    fn t481_fprm_flow_crushes_baseline() {
        let rows = run_table2(Some(&["t481"]));
        let r = &rows[0];
        assert!(r.fprm.verified.passed());
        // the paper reports 50 premap literals for t481; anything in that
        // ballpark demonstrates the reproduction (SIS needed 474)
        assert!(
            r.fprm.premap_lits <= 80,
            "t481 premap lits {} too high",
            r.fprm.premap_lits
        );
    }

    #[test]
    fn measure_flow_fills_the_record() {
        let lib = Library::mcnc();
        let spec = xsynth_circuits::build("z4ml").unwrap();
        let opts = MeasureOptions {
            runs: 3,
            ..Default::default()
        };
        let m = measure_flow("z4ml", &spec, Flow::Fprm, "fprm", &lib, &opts);
        let r = &m.record;
        assert_eq!(
            (r.name.as_str(), r.flow.as_str(), r.runs),
            ("z4ml", "fprm", 3)
        );
        assert_eq!(r.verified, VerifyStatus::Verified);
        assert!(r.min_seconds <= r.median_seconds);
        assert!(r.premap_lits > 0 && r.map_lits > 0);
        assert!(r.phases.contains_key(phase::FPRM), "phases: {:?}", r.phases);
        assert!(
            r.gauges.contains_key("bdd.peak_nodes") && r.gauges.contains_key("net.gates"),
            "gauges: {:?}",
            r.gauges
        );
        #[cfg(target_os = "linux")]
        assert!(r.gauges["mem.peak_rss_kb"] > 0.0);
        // SOP flow has no pipeline trace but still gets the memory gauge
        let m = measure_flow("z4ml", &spec, Flow::Sop, "sop", &lib, &opts);
        assert!(m.record.phases.is_empty());
        #[cfg(target_os = "linux")]
        assert!(m.record.gauges.contains_key("mem.peak_rss_kb"));
    }

    #[test]
    fn quick_subset_names_are_registered() {
        for name in QUICK_SUBSET {
            assert!(
                xsynth_circuits::build(name).is_some(),
                "{name} not in registry"
            );
        }
    }

    #[test]
    fn run_suite_produces_one_record_per_flow() {
        let (rows, suite) = run_suite(
            Some(&["f2", "majority"]),
            "test",
            &MeasureOptions::default(),
        );
        assert_eq!(rows.len(), 2);
        assert_eq!(suite.records.len(), 4);
        assert!(suite.find("f2", "sop").is_some());
        assert!(suite.find("f2", "fprm").is_some());
        let text = suite.to_json();
        assert_eq!(BenchSuite::from_json(&text).unwrap(), suite);
    }
}
