//! Benchmark harness reproducing the paper's evaluation (Table 2 and the
//! worked examples).
//!
//! The harness runs two flows over the rebuilt IWLS'91 suite:
//!
//! * the **baseline** — the SIS-style SOP script from [`xsynth_sop`]
//!   (standing in for the best of `rugged`/`boolean`/`algebraic`), and
//! * **ours** — the paper's FPRM flow from [`xsynth_core`],
//!
//! then measures literals before mapping (two-input AND/OR form, XOR = 3
//! gates), gate/literal counts after technology mapping onto the mcnc-like
//! library, the `power_estimate` model, wall-clock time, and functional
//! equivalence of every result against the specification.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::Instant;
use xsynth_circuits::{registry, Benchmark};
use xsynth_core::{phase, synthesize, EquivChecker, SynthOptions, SynthOutcome, SynthReport};
use xsynth_map::{map_network, Library};
use xsynth_net::Network;
use xsynth_sim::power_estimate;
use xsynth_sop::{script_algebraic, ScriptOptions};

/// Metrics of one synthesized implementation.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Two-input AND/OR gates before mapping.
    pub premap_gates: usize,
    /// Literals before mapping (2 × gates — the paper's accounting).
    pub premap_lits: usize,
    /// Mapped cell count.
    pub map_gates: usize,
    /// Mapped literal (pin) count.
    pub map_lits: usize,
    /// Mapped area.
    pub map_area: f64,
    /// Normalized switching power of the mapped netlist.
    pub power: f64,
    /// Flow wall-clock seconds (synthesis only, excluding mapping).
    pub seconds: f64,
    /// Whether the result checked equivalent to the specification.
    pub verified: bool,
    /// The synthesis report with per-phase timings and polarity-search
    /// counters (`None` for the SOP baseline, which has no FPRM phases).
    pub report: Option<SynthReport>,
}

/// Runs one synthesized network through mapping/power/verification.
fn evaluate(spec: &Network, result: &Network, lib: &Library, seconds: f64) -> FlowResult {
    let (premap_gates, premap_lits) = result.two_input_cost();
    let mapped = map_network(result, lib);
    let mapped_net = mapped.to_network(lib);
    let power = power_estimate(&mapped_net).total;
    let mut checker = EquivChecker::new(spec);
    let verified = checker.check(result);
    FlowResult {
        premap_gates,
        premap_lits,
        map_gates: mapped.num_gates(),
        map_lits: mapped.num_literals(),
        map_area: mapped.area(),
        power,
        seconds,
        verified,
        report: None,
    }
}

/// Runs the paper's FPRM flow on `spec` and evaluates it.
pub fn run_fprm_flow(spec: &Network, opts: &SynthOptions, lib: &Library) -> FlowResult {
    let t0 = Instant::now();
    let SynthOutcome { network, report } = synthesize(spec, opts);
    let seconds = t0.elapsed().as_secs_f64();
    let mut fr = evaluate(spec, &network, lib, seconds);
    fr.report = Some(report);
    fr
}

/// Runs the SIS-style SOP baseline on `spec` and evaluates it.
pub fn run_sop_flow(spec: &Network, opts: &ScriptOptions, lib: &Library) -> FlowResult {
    let t0 = Instant::now();
    let result = script_algebraic(spec, opts);
    let seconds = t0.elapsed().as_secs_f64();
    evaluate(spec, &result, lib, seconds)
}

/// Renders a one-line phase-timing breakdown from a flow's report:
/// `fprm/factor/share/redund` milliseconds, plus the polarity-search
/// counters. Returns `None` when the flow carries no report.
pub fn render_phases(fr: &FlowResult) -> Option<String> {
    let r = fr.report.as_ref()?;
    let p = &r.profile;
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    Some(format!(
        "fprm {:.1}ms factor {:.1}ms share {:.1}ms redund {:.1}ms (polarity: {} eval, {} memo)",
        ms(p.duration(phase::FPRM)),
        ms(p.duration(phase::FACTORING)),
        ms(p.duration(phase::SHARING)),
        ms(p.duration(phase::REDUNDANCY)),
        r.polarity_search.candidates_evaluated,
        r.polarity_search.memo_hits,
    ))
}

/// One completed Table 2 row: both flows on one benchmark.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// The benchmark (with the paper's reference numbers).
    pub bench: Benchmark,
    /// Baseline (SIS-style) result.
    pub sop: FlowResult,
    /// FPRM-flow result.
    pub fprm: FlowResult,
}

impl Table2Row {
    /// Percentage improvement of mapped literals (positive = FPRM wins),
    /// the paper's `improve%lits` column.
    pub fn improve_lits(&self) -> f64 {
        percent(self.sop.map_lits as f64, self.fprm.map_lits as f64)
    }

    /// Percentage improvement of estimated power.
    pub fn improve_power(&self) -> f64 {
        percent(self.sop.power, self.fprm.power)
    }
}

fn percent(base: f64, ours: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        100.0 * (base - ours) / base
    }
}

/// Runs the full Table 2 experiment over the registry (optionally
/// restricted to names in `filter`).
pub fn run_table2(filter: Option<&[&str]>) -> Vec<Table2Row> {
    let lib = Library::mcnc();
    let synth_opts = SynthOptions::default();
    let sop_opts = ScriptOptions::default();
    let mut rows = Vec::new();
    for bench in registry() {
        if let Some(f) = filter {
            if !f.contains(&bench.name) {
                continue;
            }
        }
        let spec = xsynth_circuits::build(bench.name).expect("registered circuit builds");
        let sop = run_sop_flow(&spec, &sop_opts, &lib);
        let fprm = run_fprm_flow(&spec, &synth_opts, &lib);
        rows.push(Table2Row { bench, sop, fprm });
    }
    rows
}

/// Renders rows in the paper's Table 2 layout, with subtotals and the
/// paper's reference improvements alongside.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<10} {:>7} | {:>6} {:>7} | {:>6} {:>7} | {:>5} {:>5} | {:>5} {:>5} | {:>6} {:>6} | {:>6} {:>6} | {}\n",
        "circuit", "I/O", "base", "t(s)", "ours", "t(s)", "bGate", "bLits", "oGate", "oLits",
        "impr%L", "papr%L", "impr%P", "papr%P", "ok"
    ));
    s.push_str(&"-".repeat(132));
    s.push('\n');
    let emit_group = |s: &mut String, rows: &[&Table2Row], label: &str| {
        let sum = |f: &dyn Fn(&Table2Row) -> f64| rows.iter().map(|r| f(r)).sum::<f64>();
        let b_lits = sum(&|r| r.sop.map_lits as f64);
        let o_lits = sum(&|r| r.fprm.map_lits as f64);
        let b_pow = sum(&|r| r.sop.power);
        let o_pow = sum(&|r| r.fprm.power);
        let avg_l = rows.iter().map(|r| r.improve_lits()).sum::<f64>() / rows.len().max(1) as f64;
        let avg_p = rows.iter().map(|r| r.improve_power()).sum::<f64>() / rows.len().max(1) as f64;
        s.push_str(&format!(
            "{:<10} {:>7} | {:>6.0} {:>7.2} | {:>6.0} {:>7.2} | {:>5.0} {:>5.0} | {:>5.0} {:>5.0} | {:>6.1} {:>6} | {:>6.1} {:>6} | (avg impr {:.1}%L {:.1}%P)\n",
            label,
            rows.len(),
            sum(&|r| r.sop.premap_lits as f64),
            sum(&|r| r.sop.seconds),
            sum(&|r| r.fprm.premap_lits as f64),
            sum(&|r| r.fprm.seconds),
            sum(&|r| r.sop.map_gates as f64),
            b_lits,
            sum(&|r| r.fprm.map_gates as f64),
            o_lits,
            percent(b_lits, o_lits),
            "",
            percent(b_pow, o_pow),
            "",
            avg_l,
            avg_p,
        ));
    };
    for r in rows {
        let flag = if r.bench.substituted { "~" } else { " " };
        s.push_str(&format!(
            "{:<9}{} {:>3}/{:<3} | {:>6} {:>7.2} | {:>6} {:>7.2} | {:>5} {:>5} | {:>5} {:>5} | {:>6.0} {:>6} | {:>6.0} {:>6} | {}{}\n",
            r.bench.name,
            flag,
            r.bench.io.0,
            r.bench.io.1,
            r.sop.premap_lits,
            r.sop.seconds,
            r.fprm.premap_lits,
            r.fprm.seconds,
            r.sop.map_gates,
            r.sop.map_lits,
            r.fprm.map_gates,
            r.fprm.map_lits,
            r.improve_lits(),
            r.bench.paper.improve_lits,
            r.improve_power(),
            r.bench.paper.improve_power,
            if r.sop.verified { "" } else { "BASE-UNVERIFIED " },
            if r.fprm.verified { "ok" } else { "FPRM-UNVERIFIED" },
        ));
    }
    s.push_str(&"-".repeat(132));
    s.push('\n');
    let arith: Vec<&Table2Row> = rows.iter().filter(|r| r.bench.arithmetic).collect();
    let all: Vec<&Table2Row> = rows.iter().collect();
    if !arith.is_empty() {
        emit_group(&mut s, &arith, "Σ arith");
    }
    emit_group(&mut s, &all, "Σ all");
    s.push_str("~ = substituted synthetic circuit (original MCNC function not public)\n");
    s.push_str("\nper-phase timings of the FPRM flow (from SynthReport):\n");
    for r in rows {
        if let Some(phases) = render_phases(&r.fprm) {
            s.push_str(&format!("{:<10} {phases}\n", r.bench.name));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_small_circuits() {
        let rows = run_table2(Some(&["z4ml", "f2", "majority"]));
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.sop.verified, "{} baseline unverified", r.bench.name);
            assert!(r.fprm.verified, "{} fprm unverified", r.bench.name);
            assert!(r.fprm.map_lits > 0);
        }
        let text = render_table2(&rows);
        assert!(text.contains("z4ml"));
        assert!(text.contains("Σ all"));
    }

    #[test]
    fn t481_fprm_flow_crushes_baseline() {
        let rows = run_table2(Some(&["t481"]));
        let r = &rows[0];
        assert!(r.fprm.verified);
        // the paper reports 50 premap literals for t481; anything in that
        // ballpark demonstrates the reproduction (SIS needed 474)
        assert!(
            r.fprm.premap_lits <= 80,
            "t481 premap lits {} too high",
            r.fprm.premap_lits
        );
    }
}
