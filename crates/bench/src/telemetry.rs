//! Machine-readable benchmark telemetry: a versioned, serde-free JSON
//! schema for persisted benchmark suites (`BENCH_*.json`).
//!
//! The paper's evaluation is a table of literal/gate counts and CPU
//! seconds; this module makes that table durable and diffable. A
//! [`BenchSuite`] is written with a hand-rolled writer (mirroring the
//! Chrome-trace exporter in `xsynth-trace`) and read back with a *strict*
//! parser built on [`xsynth_trace::json::parse`]: unknown keys, missing
//! keys, duplicate keys, wrong types, and wrong schema versions are all
//! hard errors, so a drifted schema fails loudly in CI rather than
//! silently comparing garbage.
//!
//! Schema (version [`SCHEMA_VERSION`]):
//!
//! ```json
//! {
//!   "schema_version": 3,
//!   "suite": "table2",
//!   "records": [
//!     {
//!       "name": "z4ml", "flow": "fprm",
//!       "premap_gates": 16, "premap_lits": 32,
//!       "map_gates": 10, "map_lits": 31, "map_area": 23.0, "power": 6.1,
//!       "verified": "verified", "salvaged": 0,
//!       "runs": 3, "median_seconds": 0.011, "min_seconds": 0.010,
//!       "synth_seconds": 0.011, "latency_p50_seconds": 0.0156,
//!       "latency_p99_seconds": 0.0156,
//!       "map_seconds": 0.001, "verify_seconds": 0.002,
//!       "phases":   { "fprm": 0.008, "factoring": 0.001 },
//!       "counters": { "patterns.generated": 96 },
//!       "gauges":   { "bdd.peak_nodes": 353.0, "mem.peak_rss_kb": 14200.0 }
//!     }
//!   ]
//! }
//! ```
//!
//! Numbers are written with [`xsynth_trace::json::number`], whose finite
//! output round-trips exactly through the parser, so write → parse →
//! write is the identity on well-formed suites.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use xsynth_trace::json::{self, Value};

/// Version stamp written into every suite; bump on breaking changes.
///
/// Version history:
/// * **1** — the original schema.
/// * **2** — adds the required `salvaged` field (outputs recovered by the
///   salvage ladder). The parser still accepts version-1 suites, reading
///   `salvaged` as 0, so existing baselines keep working.
/// * **3** — adds the required `latency_p50_seconds` / `latency_p99_seconds`
///   fields (per-run synthesis-latency percentiles, derived from the
///   fixed-bucket log-scale histogram in `xsynth-trace`). Older suites
///   read both as 0.
pub const SCHEMA_VERSION: u64 = 3;

/// Oldest schema version [`BenchSuite::from_json`] still accepts.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// Outcome of the equivalence check of one flow's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum VerifyStatus {
    /// The check failed, errored, or could not run.
    #[default]
    Failed,
    /// The check passed, but only after the budget downgraded it from
    /// exact BDD comparison to fixed-seed simulation.
    Downgraded,
    /// The check passed exactly.
    Verified,
}

impl VerifyStatus {
    /// The schema's string form (`"verified"` / `"downgraded"` / `"failed"`).
    pub fn as_str(self) -> &'static str {
        match self {
            VerifyStatus::Verified => "verified",
            VerifyStatus::Downgraded => "downgraded",
            VerifyStatus::Failed => "failed",
        }
    }

    /// Parses the schema's string form.
    pub fn parse(s: &str) -> Option<VerifyStatus> {
        match s {
            "verified" => Some(VerifyStatus::Verified),
            "downgraded" => Some(VerifyStatus::Downgraded),
            "failed" => Some(VerifyStatus::Failed),
            _ => None,
        }
    }

    /// Confidence rank (higher is better); a rank *decrease* between two
    /// suites is a quality regression.
    pub fn rank(self) -> u8 {
        match self {
            VerifyStatus::Verified => 2,
            VerifyStatus::Downgraded => 1,
            VerifyStatus::Failed => 0,
        }
    }

    /// Whether the result checked out at all (possibly downgraded).
    pub fn passed(self) -> bool {
        self != VerifyStatus::Failed
    }
}

/// Everything measured about one (benchmark, flow) pair.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchRecord {
    /// Benchmark name (registry key).
    pub name: String,
    /// Flow label: `"sop"`, `"fprm"`, `"fprm-seq"`, or a CLI engine name.
    pub flow: String,
    /// Two-input AND/OR gates before mapping.
    pub premap_gates: u64,
    /// Literals before mapping (the paper's accounting).
    pub premap_lits: u64,
    /// Mapped cell count.
    pub map_gates: u64,
    /// Mapped literal (pin) count.
    pub map_lits: u64,
    /// Mapped area.
    pub map_area: f64,
    /// Normalized switching power of the mapped netlist.
    pub power: f64,
    /// Equivalence-check outcome.
    pub verified: VerifyStatus,
    /// Outputs the salvage ladder recovered instead of failing the run.
    /// Nonzero means the result is degraded — `bench_compare` treats any
    /// increase as a quality regression. Schema version 2; reads as 0
    /// from version-1 suites.
    pub salvaged: u64,
    /// How many timed synthesis runs the timing stats aggregate.
    pub runs: u64,
    /// Median synthesis wall-clock over `runs` repetitions.
    pub median_seconds: f64,
    /// Minimum synthesis wall-clock over `runs` repetitions.
    pub min_seconds: f64,
    /// Synthesis wall-clock of the recorded (last) run.
    pub synth_seconds: f64,
    /// p50 of the per-run synthesis latencies, estimated from the
    /// fixed-bucket log-scale histogram (bucket upper bound, Prometheus
    /// convention). Schema version 3; reads as 0 from older suites.
    pub latency_p50_seconds: f64,
    /// p99 of the per-run synthesis latencies (same estimator).
    pub latency_p99_seconds: f64,
    /// Technology-mapping + power-model wall-clock.
    pub map_seconds: f64,
    /// Equivalence-check wall-clock.
    pub verify_seconds: f64,
    /// Per-phase durations (seconds) from the synthesis span tree.
    pub phases: BTreeMap<String, f64>,
    /// Counter totals from the synthesis trace.
    pub counters: BTreeMap<String, u64>,
    /// Gauge maxima from the synthesis trace, plus `mem.peak_rss_kb`
    /// sampled by the harness (process-wide high-water mark).
    pub gauges: BTreeMap<String, f64>,
}

/// A versioned collection of [`BenchRecord`]s — the unit persisted as
/// `BENCH_*.json` and diffed by `bench_compare`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchSuite {
    /// Label of the producing harness (`"table2"`, `"par_speedup"`, `"cli"`).
    pub suite: String,
    /// The records, in production order.
    pub records: Vec<BenchRecord>,
}

impl BenchSuite {
    /// Finds the record for one (benchmark, flow) pair.
    pub fn find(&self, name: &str, flow: &str) -> Option<&BenchRecord> {
        self.records
            .iter()
            .find(|r| r.name == name && r.flow == flow)
    }

    /// Serializes the suite as schema-versioned JSON. The output always
    /// passes [`xsynth_trace::json::validate`]; non-finite floats are
    /// written as `0` (JSON has no NaN/Infinity).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(s, "  \"suite\": \"{}\",", json::escape(&self.suite));
        s.push_str("  \"records\": [");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('\n');
            record_json(&mut s, r);
        }
        if !self.records.is_empty() {
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Strictly parses a suite from JSON.
    ///
    /// Accepts schema versions [`MIN_SCHEMA_VERSION`]..=[`SCHEMA_VERSION`];
    /// fields added in later versions read as their defaults from older
    /// suites (and remain unknown-field errors there).
    ///
    /// # Errors
    ///
    /// Rejects syntax errors, an out-of-range `schema_version`, and any
    /// missing, unknown, duplicate, or wrongly-typed field.
    pub fn from_json(src: &str) -> Result<BenchSuite, String> {
        let root = json::parse(src)?;
        let mut top = Fields::new(&root, "suite")?;
        let version = top.u64("schema_version")?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version) {
            return Err(format!(
                "unsupported schema_version {version} \
                 (expected {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
            ));
        }
        let suite = top.string("suite")?;
        let records_v = top.required("records")?;
        let items = records_v
            .as_arr()
            .ok_or_else(|| format!("field 'records': expected array, got {records_v}"))?;
        top.finish()?;
        let mut records = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            records
                .push(record_from_value(item, version).map_err(|e| format!("records[{i}]: {e}"))?);
        }
        Ok(BenchSuite { suite, records })
    }
}

fn record_json(s: &mut String, r: &BenchRecord) {
    let _ = write!(s, "    {{\"name\": \"{}\"", json::escape(&r.name));
    let _ = write!(s, ", \"flow\": \"{}\"", json::escape(&r.flow));
    let _ = write!(s, ", \"premap_gates\": {}", r.premap_gates);
    let _ = write!(s, ", \"premap_lits\": {}", r.premap_lits);
    let _ = write!(s, ", \"map_gates\": {}", r.map_gates);
    let _ = write!(s, ", \"map_lits\": {}", r.map_lits);
    let _ = write!(s, ", \"map_area\": {}", json::number(r.map_area));
    let _ = write!(s, ", \"power\": {}", json::number(r.power));
    let _ = write!(s, ", \"verified\": \"{}\"", r.verified.as_str());
    let _ = write!(s, ", \"salvaged\": {}", r.salvaged);
    let _ = write!(s, ", \"runs\": {}", r.runs);
    let _ = write!(
        s,
        ", \"median_seconds\": {}",
        json::number(r.median_seconds)
    );
    let _ = write!(s, ", \"min_seconds\": {}", json::number(r.min_seconds));
    let _ = write!(s, ", \"synth_seconds\": {}", json::number(r.synth_seconds));
    let _ = write!(
        s,
        ", \"latency_p50_seconds\": {}",
        json::number(r.latency_p50_seconds)
    );
    let _ = write!(
        s,
        ", \"latency_p99_seconds\": {}",
        json::number(r.latency_p99_seconds)
    );
    let _ = write!(s, ", \"map_seconds\": {}", json::number(r.map_seconds));
    let _ = write!(
        s,
        ", \"verify_seconds\": {}",
        json::number(r.verify_seconds)
    );
    s.push_str(",\n     \"phases\": {");
    for (i, (k, v)) in r.phases.iter().enumerate() {
        let sep = if i > 0 { ", " } else { "" };
        let _ = write!(s, "{sep}\"{}\": {}", json::escape(k), json::number(*v));
    }
    s.push_str("},\n     \"counters\": {");
    for (i, (k, v)) in r.counters.iter().enumerate() {
        let sep = if i > 0 { ", " } else { "" };
        // clamp to 2^53 so the integer survives the f64-based parser
        // exactly (pipeline counters are many orders of magnitude below)
        let v = (*v).min(9_007_199_254_740_992);
        let _ = write!(s, "{sep}\"{}\": {v}", json::escape(k));
    }
    s.push_str("},\n     \"gauges\": {");
    for (i, (k, v)) in r.gauges.iter().enumerate() {
        let sep = if i > 0 { ", " } else { "" };
        let _ = write!(s, "{sep}\"{}\": {}", json::escape(k), json::number(*v));
    }
    s.push_str("}}");
}

fn record_from_value(v: &Value, version: u64) -> Result<BenchRecord, String> {
    let mut f = Fields::new(v, "record")?;
    let r = BenchRecord {
        name: f.string("name")?,
        flow: f.string("flow")?,
        premap_gates: f.u64("premap_gates")?,
        premap_lits: f.u64("premap_lits")?,
        map_gates: f.u64("map_gates")?,
        map_lits: f.u64("map_lits")?,
        map_area: f.f64("map_area")?,
        power: f.f64("power")?,
        verified: {
            let s = f.string("verified")?;
            VerifyStatus::parse(&s)
                .ok_or_else(|| format!("field 'verified': unknown status {s:?}"))?
        },
        // required from v2 on; v1 suites predate the salvage ladder, so a
        // v1 record carrying the field is still an unknown-field error
        salvaged: if version >= 2 { f.u64("salvaged")? } else { 0 },
        runs: f.u64("runs")?,
        median_seconds: f.f64("median_seconds")?,
        min_seconds: f.f64("min_seconds")?,
        synth_seconds: f.f64("synth_seconds")?,
        latency_p50_seconds: if version >= 3 {
            f.f64("latency_p50_seconds")?
        } else {
            0.0
        },
        latency_p99_seconds: if version >= 3 {
            f.f64("latency_p99_seconds")?
        } else {
            0.0
        },
        map_seconds: f.f64("map_seconds")?,
        verify_seconds: f.f64("verify_seconds")?,
        phases: f.f64_map("phases")?,
        counters: f.u64_map("counters")?,
        gauges: f.f64_map("gauges")?,
    };
    f.finish()?;
    Ok(r)
}

/// Strict field reader over a parsed JSON object: every field must be
/// consumed exactly once and [`Fields::finish`] rejects leftovers.
struct Fields<'a> {
    fields: &'a [(String, Value)],
    used: Vec<bool>,
}

impl<'a> Fields<'a> {
    fn new(v: &'a Value, what: &str) -> Result<Fields<'a>, String> {
        let fields = v
            .as_obj()
            .ok_or_else(|| format!("expected a {what} object, got {v}"))?;
        Ok(Fields {
            fields,
            used: vec![false; fields.len()],
        })
    }

    fn required(&mut self, key: &str) -> Result<&'a Value, String> {
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if k == key {
                self.used[i] = true;
                return Ok(v);
            }
        }
        Err(format!("missing field '{key}'"))
    }

    fn string(&mut self, key: &str) -> Result<String, String> {
        let v = self.required(key)?;
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("field '{key}': expected string, got {v}"))
    }

    fn u64(&mut self, key: &str) -> Result<u64, String> {
        let v = self.required(key)?;
        v.as_u64()
            .ok_or_else(|| format!("field '{key}': expected unsigned integer, got {v}"))
    }

    fn f64(&mut self, key: &str) -> Result<f64, String> {
        let v = self.required(key)?;
        v.as_f64()
            .ok_or_else(|| format!("field '{key}': expected number, got {v}"))
    }

    fn f64_map(&mut self, key: &str) -> Result<BTreeMap<String, f64>, String> {
        let v = self.required(key)?;
        let obj = v
            .as_obj()
            .ok_or_else(|| format!("field '{key}': expected object, got {v}"))?;
        let mut out = BTreeMap::new();
        for (k, item) in obj {
            let n = item
                .as_f64()
                .ok_or_else(|| format!("field '{key}.{k}': expected number, got {item}"))?;
            out.insert(k.clone(), n);
        }
        Ok(out)
    }

    fn u64_map(&mut self, key: &str) -> Result<BTreeMap<String, u64>, String> {
        let v = self.required(key)?;
        let obj = v
            .as_obj()
            .ok_or_else(|| format!("field '{key}': expected object, got {v}"))?;
        let mut out = BTreeMap::new();
        for (k, item) in obj {
            let n = item.as_u64().ok_or_else(|| {
                format!("field '{key}.{k}': expected unsigned integer, got {item}")
            })?;
            out.insert(k.clone(), n);
        }
        Ok(out)
    }

    fn finish(self) -> Result<(), String> {
        for (i, (k, _)) in self.fields.iter().enumerate() {
            if !self.used[i] {
                return Err(format!("unknown field '{k}'"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_record(name: &str, flow: &str) -> BenchRecord {
        BenchRecord {
            name: name.into(),
            flow: flow.into(),
            premap_gates: 16,
            premap_lits: 32,
            map_gates: 10,
            map_lits: 31,
            map_area: 23.5,
            power: 6.125,
            verified: VerifyStatus::Verified,
            salvaged: 0,
            runs: 3,
            median_seconds: 0.0115,
            min_seconds: 0.0101,
            synth_seconds: 0.012,
            latency_p50_seconds: 0.015625,
            latency_p99_seconds: 0.015625,
            map_seconds: 0.0009,
            verify_seconds: 0.0021,
            phases: [("fprm".into(), 0.008), ("factoring".into(), 0.001)].into(),
            counters: [("patterns.generated".into(), 96u64)].into(),
            gauges: [("bdd.peak_nodes".into(), 353.0)].into(),
        }
    }

    #[test]
    fn suite_round_trips_exactly() {
        let suite = BenchSuite {
            suite: "table2".into(),
            records: vec![
                sample_record("z4ml", "fprm"),
                sample_record("weird \"name\"\n", "sop"),
            ],
        };
        let text = suite.to_json();
        xsynth_trace::json::validate(&text).expect("writer emits valid JSON");
        let back = BenchSuite::from_json(&text).expect("strict parse");
        assert_eq!(back, suite);
    }

    #[test]
    fn strict_parser_rejects_drift() {
        let good = BenchSuite {
            suite: "s".into(),
            records: vec![sample_record("a", "fprm")],
        }
        .to_json();
        BenchSuite::from_json(&good).unwrap();
        // future version
        let bad = good.replace("\"schema_version\": 3", "\"schema_version\": 4");
        assert!(BenchSuite::from_json(&bad)
            .unwrap_err()
            .contains("schema_version"));
        // v1 suites must not carry v2 fields
        let bad = good.replace("\"schema_version\": 3", "\"schema_version\": 1");
        assert!(BenchSuite::from_json(&bad)
            .unwrap_err()
            .contains("salvaged"));
        // v2 suites must not carry v3 fields
        let bad = good.replace("\"schema_version\": 3", "\"schema_version\": 2");
        assert!(BenchSuite::from_json(&bad)
            .unwrap_err()
            .contains("latency_p50_seconds"));
        // unknown field
        let bad = good.replace("\"runs\": 3", "\"runs\": 3, \"bogus\": 1");
        assert!(BenchSuite::from_json(&bad).unwrap_err().contains("bogus"));
        // missing field
        let bad = good.replace(", \"runs\": 3", "");
        assert!(BenchSuite::from_json(&bad).unwrap_err().contains("runs"));
        // wrong type
        let bad = good.replace("\"runs\": 3", "\"runs\": \"3\"");
        assert!(BenchSuite::from_json(&bad).unwrap_err().contains("runs"));
        // bad verify status
        let bad = good.replace("\"verified\": \"verified\"", "\"verified\": \"maybe\"");
        assert!(BenchSuite::from_json(&bad).unwrap_err().contains("maybe"));
        // duplicate key (rejected by the JSON layer itself)
        let bad = good.replace("\"runs\": 3", "\"runs\": 3, \"runs\": 3");
        assert!(BenchSuite::from_json(&bad).is_err());
    }

    #[test]
    fn version_1_suites_still_parse() {
        let v2 = BenchSuite {
            suite: "s".into(),
            records: vec![sample_record("a", "fprm")],
        }
        .to_json();
        // a legacy suite: version 1, no salvaged or latency fields
        let v1 = v2
            .replace("\"schema_version\": 3", "\"schema_version\": 1")
            .replace(", \"salvaged\": 0", "")
            .replace(", \"latency_p50_seconds\": 0.015625", "")
            .replace(", \"latency_p99_seconds\": 0.015625", "");
        let back = BenchSuite::from_json(&v1).expect("v1 accepted");
        assert_eq!(back.records[0].salvaged, 0);
        assert_eq!(back.records[0].latency_p50_seconds, 0.0);
        // re-serializing upgrades it to the current schema
        assert!(back.to_json().contains("\"schema_version\": 3"));
    }

    #[test]
    fn verify_status_orders_by_confidence() {
        assert!(VerifyStatus::Verified.rank() > VerifyStatus::Downgraded.rank());
        assert!(VerifyStatus::Downgraded.rank() > VerifyStatus::Failed.rank());
        for s in [
            VerifyStatus::Verified,
            VerifyStatus::Downgraded,
            VerifyStatus::Failed,
        ] {
            assert_eq!(VerifyStatus::parse(s.as_str()), Some(s));
        }
        assert_eq!(VerifyStatus::parse("ok"), None);
    }
}
