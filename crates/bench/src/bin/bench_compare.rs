//! Diffs two benchmark telemetry suites (`BENCH_*.json`) and exits
//! non-zero on regression — the CI perf/quality gate.
//!
//! Usage: `bench_compare <old.json> <new.json> [--max-regress-pct N]
//! [--time-floor-ms N]`
//!
//! Quality metrics (literals, gates, power, verification status) compare
//! exactly; time and memory regress only past both the relative threshold
//! and an absolute floor. Exit codes: 0 no regression, 1 regression,
//! 2 usage, 3 parse error, 4 I/O error.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = xsynth_bench::compare::run_compare_cli(&args, &mut std::io::stdout());
    std::process::exit(code);
}
