//! Regenerates the paper's Table 2 over the rebuilt benchmark suite.
//!
//! Usage: `table2 [--json FILE] [--runs N] [--quick] [circuit ...]`
//!
//! With no circuit arguments the full 41-circuit suite runs; `--quick`
//! selects the CI subset ([`xsynth_bench::QUICK_SUBSET`]); otherwise only
//! the named circuits. `--json FILE` additionally writes the
//! schema-versioned telemetry suite (`BENCH_*.json`) from the same
//! measurements; `--runs N` repeats each synthesis N times so the JSON's
//! `median_seconds`/`min_seconds` are noise-resistant.

use xsynth_bench::MeasureOptions;

fn main() {
    let mut circuits: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut opts = MeasureOptions::default();
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => {
                let Some(p) = args.next() else {
                    eprintln!("error: --json needs a file path");
                    std::process::exit(2);
                };
                json_path = Some(p);
            }
            "--runs" => {
                let Some(n) = args.next().and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("error: --runs needs a positive integer");
                    std::process::exit(2);
                };
                opts.runs = n.max(1);
            }
            "--quick" => quick = true,
            f if f.starts_with("--") => {
                eprintln!("error: unknown flag {f}");
                eprintln!("usage: table2 [--json FILE] [--runs N] [--quick] [circuit ...]");
                std::process::exit(2);
            }
            _ => circuits.push(a),
        }
    }
    if quick {
        circuits.extend(xsynth_bench::QUICK_SUBSET.iter().map(|s| s.to_string()));
    }
    // names are 'static, so they outlive the temporary registry
    let known: Vec<&'static str> = xsynth_circuits::registry().iter().map(|b| b.name).collect();
    for c in &circuits {
        if !known.contains(&c.as_str()) {
            eprintln!("unknown circuit '{c}' — known circuits:");
            eprintln!("  {}", known.join(" "));
            std::process::exit(2);
        }
    }
    let filter: Option<Vec<&str>> = if circuits.is_empty() {
        None
    } else {
        Some(circuits.iter().map(String::as_str).collect())
    };
    let (rows, suite) = xsynth_bench::run_suite(filter.as_deref(), "table2", &opts);
    print!("{}", xsynth_bench::render_table2(&rows));
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, suite.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(4);
        }
        eprintln!(
            "wrote {} records ({} runs each) to {path}",
            suite.records.len(),
            opts.runs
        );
    }
}
