//! Regenerates the paper's Table 2 over the rebuilt benchmark suite.
//!
//! Usage: `table2 [circuit ...]` — with no arguments the full 41-circuit
//! suite runs; otherwise only the named circuits.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // names are 'static, so they outlive the temporary registry
    let known: Vec<&'static str> = xsynth_circuits::registry().iter().map(|b| b.name).collect();
    for a in &args {
        if !known.contains(&a.as_str()) {
            eprintln!("unknown circuit '{a}' — known circuits:");
            eprintln!("  {}", known.join(" "));
            std::process::exit(2);
        }
    }
    let rows = if args.is_empty() {
        xsynth_bench::run_table2(None)
    } else {
        let names: Vec<&str> = args.iter().map(String::as_str).collect();
        xsynth_bench::run_table2(Some(&names))
    };
    print!("{}", xsynth_bench::render_table2(&rows));
}
