//! Per-circuit flow diagnostics: FPRM cube counts, chosen polarities,
//! extracted divisors, redundancy-removal statistics — measured through
//! the shared [`xsynth_bench::measure_flow`] path, so the numbers printed
//! here are exactly the ones `table2 --json` persists.
//!
//! Usage: `flow_report [--runs N] <circuit> [...]`

use xsynth_bench::{measure_flow, Flow, MeasureOptions};
use xsynth_map::Library;

fn main() {
    let mut names: Vec<String> = Vec::new();
    let mut opts = MeasureOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--runs" => {
                let Some(n) = args.next().and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("error: --runs needs a positive integer");
                    std::process::exit(2);
                };
                opts.runs = n.max(1);
            }
            f if f.starts_with("--") => {
                eprintln!("error: unknown flag {f}");
                eprintln!("usage: flow_report [--runs N] <circuit> [...]");
                std::process::exit(2);
            }
            _ => names.push(a),
        }
    }
    if names.is_empty() {
        names = vec!["z4ml".into(), "t481".into()];
    }
    let lib = Library::mcnc();
    for name in names {
        let Some(spec) = xsynth_circuits::build(&name) else {
            eprintln!("unknown circuit {name}");
            continue;
        };
        let m = measure_flow(&name, &spec, Flow::Fprm, "fprm", &lib, &opts);
        let report = m.flow.report.as_ref().expect("FPRM flow carries a report");
        println!("{name}: {spec}");
        for (oname, cubes, pol) in &report.outputs {
            println!("  output {oname}: {cubes} FPRM cubes, polarity {pol:?}");
        }
        println!(
            "  divisors {} | blocks {} | cube-cap fallbacks {}",
            report.divisors, report.blocks, report.cube_cap_fallbacks
        );
        println!("  redundancy: {:?}", report.redundancy);
        let phases: Vec<String> = report
            .profile
            .phases
            .iter()
            .map(|p| format!("{} {:.2?}", p.name, p.duration))
            .collect();
        println!(
            "  phases: {} | total {:.2?}",
            phases.join(" | "),
            report.profile.total
        );
        println!(
            "  polarity search: {} candidates evaluated, {} memo hits",
            report.polarity_search.candidates_evaluated, report.polarity_search.memo_hits
        );
        println!(
            "  result: {} two-input gates / {} literals; mapped {} gates / {} lits; {}",
            m.flow.premap_gates,
            m.flow.premap_lits,
            m.flow.map_gates,
            m.flow.map_lits,
            m.record.verified.as_str()
        );
        println!(
            "  time: synth {:.1}ms (median of {} run(s): {:.1}ms, min {:.1}ms) | map {:.1}ms | verify {:.1}ms",
            m.flow.synth_seconds * 1e3,
            m.record.runs,
            m.record.median_seconds * 1e3,
            m.record.min_seconds * 1e3,
            m.flow.map_seconds * 1e3,
            m.flow.verify_seconds * 1e3,
        );
        let gauges: Vec<String> = m
            .record
            .gauges
            .iter()
            .map(|(k, v)| format!("{k} {v:.0}"))
            .collect();
        println!("  gauges: {}", gauges.join(" | "));
        println!("  trace:");
        for line in report.trace.render_tree().lines() {
            println!("    {line}");
        }
        println!();
    }
}
