//! Per-circuit flow diagnostics: FPRM cube counts, chosen polarities,
//! extracted divisors, redundancy-removal statistics.
//!
//! Usage: `flow_report <circuit> [...]`

use xsynth_core::{synthesize, SynthOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<String> = if args.is_empty() {
        vec!["z4ml".into(), "t481".into()]
    } else {
        args
    };
    for name in names {
        let Some(spec) = xsynth_circuits::build(&name) else {
            eprintln!("unknown circuit {name}");
            continue;
        };
        let t0 = std::time::Instant::now();
        let outcome = synthesize(&spec, &SynthOptions::default());
        let dt = t0.elapsed();
        let report = &outcome.report;
        let (gates, lits) = outcome.network.two_input_cost();
        println!("{name}: {spec}");
        for (oname, cubes, pol) in &report.outputs {
            println!("  output {oname}: {cubes} FPRM cubes, polarity {pol:?}");
        }
        println!(
            "  divisors {} | blocks {} | cube-cap fallbacks {}",
            report.divisors, report.blocks, report.cube_cap_fallbacks
        );
        println!("  redundancy: {:?}", report.redundancy);
        let phases: Vec<String> = report
            .profile
            .phases
            .iter()
            .map(|p| format!("{} {:.2?}", p.name, p.duration))
            .collect();
        println!(
            "  phases: {} | total {:.2?}",
            phases.join(" | "),
            report.profile.total
        );
        println!(
            "  polarity search: {} candidates evaluated, {} memo hits",
            report.polarity_search.candidates_evaluated, report.polarity_search.memo_hits
        );
        println!("  result: {gates} two-input gates / {lits} literals in {dt:.2?}");
        println!("  trace:");
        for line in report.trace.render_tree().lines() {
            println!("    {line}");
        }
        println!();
    }
}
