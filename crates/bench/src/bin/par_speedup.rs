//! Measures the wall-clock effect of parallel synthesis: runs the FPRM
//! flow twice per circuit (parallel on/off), checks the networks are
//! bit-identical, and prints the speedup.
//!
//! Usage: `par_speedup [circuit ...]` — defaults to the multi-output
//! arithmetic circuits where the per-output fan-out matters most.

use std::time::Instant;
use xsynth_core::{synthesize, SynthOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<String> = if args.is_empty() {
        ["z4ml", "adr4", "add6", "addm4", "mlp4", "my_adder"]
            .map(String::from)
            .to_vec()
    } else {
        args
    };
    println!(
        "{:<10} {:>6} {:>10} {:>10} {:>8}  identical?",
        "circuit", "outs", "seq (ms)", "par (ms)", "speedup"
    );
    for name in names {
        let Some(spec) = xsynth_circuits::build(&name) else {
            eprintln!("unknown circuit {name}");
            continue;
        };
        let seq_opts = SynthOptions::builder().parallel(false).build();
        let par_opts = SynthOptions::default();
        let t0 = Instant::now();
        let seq_net = synthesize(&spec, &seq_opts).network;
        let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let par_net = synthesize(&spec, &par_opts).network;
        let par_ms = t1.elapsed().as_secs_f64() * 1e3;
        let same = xsynth_blif::write_blif(&seq_net) == xsynth_blif::write_blif(&par_net);
        println!(
            "{:<10} {:>6} {:>10.1} {:>10.1} {:>7.2}x  {}",
            name,
            spec.outputs().len(),
            seq_ms,
            par_ms,
            seq_ms / par_ms,
            if same { "yes" } else { "NO — BUG" }
        );
    }
}
