//! Measures the wall-clock effect of parallel synthesis: runs the FPRM
//! flow twice per circuit (parallel on/off) through the shared
//! [`xsynth_bench::measure_flow`] path, checks the networks are
//! bit-identical, and prints the speedup from the run medians.
//!
//! Usage: `par_speedup [--json FILE] [--runs N] [circuit ...]` — defaults
//! to the multi-output arithmetic circuits where the per-output fan-out
//! matters most. `--json FILE` persists both flows' records (`fprm` and
//! `fprm-seq`) as a telemetry suite.

use xsynth_bench::{measure_flow, BenchSuite, Flow, MeasureOptions};
use xsynth_core::SynthOptions;
use xsynth_map::Library;

fn main() {
    let mut names: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut runs = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => {
                let Some(p) = args.next() else {
                    eprintln!("error: --json needs a file path");
                    std::process::exit(2);
                };
                json_path = Some(p);
            }
            "--runs" => {
                let Some(n) = args.next().and_then(|s| s.parse::<usize>().ok()) else {
                    eprintln!("error: --runs needs a positive integer");
                    std::process::exit(2);
                };
                runs = n.max(1);
            }
            f if f.starts_with("--") => {
                eprintln!("error: unknown flag {f}");
                eprintln!("usage: par_speedup [--json FILE] [--runs N] [circuit ...]");
                std::process::exit(2);
            }
            _ => names.push(a),
        }
    }
    if names.is_empty() {
        names = ["z4ml", "adr4", "add6", "addm4", "mlp4", "my_adder"]
            .map(String::from)
            .to_vec();
    }
    let lib = Library::mcnc();
    let seq_opts = MeasureOptions {
        runs,
        synth: SynthOptions::builder().parallel(false).build(),
        ..Default::default()
    };
    let par_opts = MeasureOptions {
        runs,
        ..Default::default()
    };
    let mut records = Vec::new();
    println!(
        "{:<10} {:>6} {:>10} {:>10} {:>8}  identical?",
        "circuit", "outs", "seq (ms)", "par (ms)", "speedup"
    );
    for name in names {
        let Some(spec) = xsynth_circuits::build(&name) else {
            eprintln!("unknown circuit {name}");
            continue;
        };
        let seq = measure_flow(&name, &spec, Flow::Fprm, "fprm-seq", &lib, &seq_opts);
        let par = measure_flow(&name, &spec, Flow::Fprm, "fprm", &lib, &par_opts);
        let seq_ms = seq.record.median_seconds * 1e3;
        let par_ms = par.record.median_seconds * 1e3;
        let same = xsynth_blif::write_blif(&seq.network) == xsynth_blif::write_blif(&par.network);
        println!(
            "{:<10} {:>6} {:>10.1} {:>10.1} {:>7.2}x  {}",
            name,
            spec.outputs().len(),
            seq_ms,
            par_ms,
            seq_ms / par_ms,
            if same { "yes" } else { "NO — BUG" }
        );
        records.push(seq.record);
        records.push(par.record);
    }
    if let Some(path) = json_path {
        let suite = BenchSuite {
            suite: "par_speedup".to_string(),
            records,
        };
        if let Err(e) = std::fs::write(&path, suite.to_json()) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(4);
        }
    }
}
